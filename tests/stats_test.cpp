#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tcppred::analysis {
namespace {

TEST(stats, mean_median_stddev) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(stats, quantile_interpolates) {
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(stats, quantile_rejects_bad_q) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
    EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(stats, pearson_perfect_correlation) {
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> zs{8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(stats, pearson_degenerate_is_zero) {
    const std::vector<double> xs{1, 1, 1};
    const std::vector<double> ys{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(stats, cov_is_relative_spread) {
    const std::vector<double> xs{90.0, 110.0};
    EXPECT_NEAR(cov(xs), 10.0 / 100.0, 1e-12);
}

TEST(weighted_cov_fn, equals_plain_cov_for_stationary_series) {
    std::vector<double> s;
    for (int i = 0; i < 40; ++i) s.push_back(100.0 + (i % 2 == 0 ? 3.0 : -3.0));
    EXPECT_NEAR(weighted_cov(s), cov(s), 1e-9);
}

TEST(weighted_cov_fn, shift_does_not_inflate_cov) {
    // Two perfectly flat levels: a naive CoV over the whole series is large,
    // the stationarity-weighted CoV is ~0.
    std::vector<double> s(20, 10.0);
    s.insert(s.end(), 20, 30.0);
    EXPECT_GT(cov(s), 0.3);
    EXPECT_NEAR(weighted_cov(s), 0.0, 1e-9);
}

TEST(weighted_cov_fn, outliers_are_excluded) {
    std::vector<double> s(30, 10.0);
    s[7] = 100.0;
    EXPECT_NEAR(weighted_cov(s), 0.0, 1e-9);
}

TEST(ecdf_class, fraction_below_threshold) {
    ecdf e({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(e.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
}

TEST(ecdf_class, quantile_inverts_cdf) {
    ecdf e({5.0, 1.0, 3.0});
    EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
}

TEST(ecdf_class, curve_is_monotone) {
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i) samples.push_back(std::sin(i * 0.7) * 10.0);
    ecdf e(std::move(samples));
    const auto pts = e.curve(20);
    ASSERT_EQ(pts.size(), 20u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].first, pts[i - 1].first);
        EXPECT_GT(pts[i].second, pts[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

}  // namespace
}  // namespace tcppred::analysis
