#!/usr/bin/env bash
# CLI contract test for the shipped tools, run as a ctest:
#   cli_test.sh <tcppred_campaign> <tcppred_analyze>
#
# Verifies the exit-code convention (0 ok / 1 bad args / 2 runtime failure /
# 130 interrupted), that diagnostics land on stderr, and the fault +
# interrupt + --resume byte-identity guarantee end to end.
set -u

CAMPAIGN=${1:?usage: cli_test.sh CAMPAIGN_BIN ANALYZE_BIN}
ANALYZE=${2:?usage: cli_test.sh CAMPAIGN_BIN ANALYZE_BIN}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

check_exit() {  # description expected actual
    if [ "$3" -ne "$2" ]; then
        echo "FAIL: $1 (expected exit $2, got $3)"
        FAILURES=$((FAILURES + 1))
    else
        echo "ok: $1"
    fi
}

TINY="--paths 2 --traces 1 --epochs 3 --transfer-s 1.5"

# --- bad arguments -> 1, usage on stderr, nothing on stdout
"$CAMPAIGN" >"$WORK/out" 2>"$WORK/err"; check_exit "campaign without --out" 1 $?
[ -s "$WORK/out" ] && { echo "FAIL: campaign usage leaked to stdout"; FAILURES=$((FAILURES+1)); }
grep -q "usage:" "$WORK/err" || { echo "FAIL: campaign usage not on stderr"; FAILURES=$((FAILURES+1)); }

"$CAMPAIGN" --no-such-flag >/dev/null 2>&1; check_exit "campaign unknown flag" 1 $?
"$CAMPAIGN" --out "$WORK/x.csv" --faults "bogus=1" >/dev/null 2>&1
check_exit "campaign bad --faults spec" 1 $?

# --- malformed flag VALUES -> 2, diagnostic names the flag (the checked
# parser of core/checked_parse.hpp; atoi used to turn these into 0 silently)
"$CAMPAIGN" --out "$WORK/x.csv" --paths foo >/dev/null 2>"$WORK/err"
check_exit "campaign --paths foo" 2 $?
grep -q -- "--paths" "$WORK/err" || { echo "FAIL: bad --paths error does not name the flag"; FAILURES=$((FAILURES+1)); }
"$CAMPAIGN" --out "$WORK/x.csv" --paths -3 >/dev/null 2>"$WORK/err"
check_exit "campaign --paths -3" 2 $?
grep -q -- "--paths" "$WORK/err" || { echo "FAIL: negative --paths error does not name the flag"; FAILURES=$((FAILURES+1)); }
"$CAMPAIGN" --out "$WORK/x.csv" --epochs 3.5 >/dev/null 2>&1
check_exit "campaign --epochs 3.5" 2 $?
"$CAMPAIGN" --out "$WORK/x.csv" --seed -1 >/dev/null 2>&1
check_exit "campaign --seed -1" 2 $?
"$CAMPAIGN" --out "$WORK/x.csv" --workers 0 >/dev/null 2>&1
check_exit "campaign --workers 0" 2 $?
"$CAMPAIGN" --out "$WORK/x.csv" --transfer-s banana >/dev/null 2>&1
check_exit "campaign --transfer-s banana" 2 $?

# Garbage in an env knob fails just as loudly, naming the variable.
REPRO_JOBS=garbage "$CAMPAIGN" $TINY --out "$WORK/x.csv" >/dev/null 2>"$WORK/err"
check_exit "campaign REPRO_JOBS=garbage" 2 $?
grep -q "REPRO_JOBS" "$WORK/err" || { echo "FAIL: bad REPRO_JOBS error does not name the variable"; FAILURES=$((FAILURES+1)); }
# ...while 0 still means auto (the documented --jobs 0 alias).
REPRO_JOBS=0 "$CAMPAIGN" $TINY --out "$WORK/envjobs.csv" >/dev/null 2>&1
check_exit "campaign REPRO_JOBS=0 is auto" 0 $?
"$ANALYZE" >/dev/null 2>&1; check_exit "analyze without dataset" 1 $?
"$ANALYZE" --help >/dev/null 2>&1; check_exit "analyze --help" 0 $?

# --- runtime failure -> 2
"$ANALYZE" "$WORK/does-not-exist.csv" >/dev/null 2>"$WORK/err"
check_exit "analyze missing dataset" 2 $?
grep -q "error:" "$WORK/err" || { echo "FAIL: analyze error not on stderr"; FAILURES=$((FAILURES+1)); }

printf 'not,a,campaign\ncsv,at,all\n' > "$WORK/garbage.csv"
"$ANALYZE" "$WORK/garbage.csv" >/dev/null 2>&1
check_exit "analyze malformed dataset" 2 $?

# --- success -> 0, CSV written, analyze reads it back
"$CAMPAIGN" $TINY --out "$WORK/clean.csv" --jobs 2 >/dev/null 2>&1
check_exit "campaign tiny clean run" 0 $?
[ -s "$WORK/clean.csv" ] || { echo "FAIL: no CSV written"; FAILURES=$((FAILURES+1)); }
"$ANALYZE" "$WORK/clean.csv" >"$WORK/analyze.out" 2>/dev/null
check_exit "analyze clean dataset" 0 $?
grep -q "formula-based" "$WORK/analyze.out" || { echo "FAIL: analyze summary missing"; FAILURES=$((FAILURES+1)); }

# --- predictor specs: valid list -> 0 and per-spec rows; bad spec -> 2 with
# the offending spec named on stderr
"$ANALYZE" "$WORK/clean.csv" --predictors 5-MA,fb:sqrt,hybrid:0.8-HW >"$WORK/specs.out" 2>/dev/null
check_exit "analyze custom --predictors" 0 $?
for spec in 5-MA fb:sqrt hybrid:0.8-HW; do
    grep -q "$spec" "$WORK/specs.out" || { echo "FAIL: --predictors row for $spec missing"; FAILURES=$((FAILURES+1)); }
done
"$ANALYZE" "$WORK/clean.csv" --predictors bogus >/dev/null 2>"$WORK/err"
check_exit "analyze unknown predictor spec" 2 $?
grep -q "bad predictor spec 'bogus'" "$WORK/err" || { echo "FAIL: spec error does not name the spec"; FAILURES=$((FAILURES+1)); }

# --- faulty campaign: deterministic for a fixed seed, analyze conditions on it
FAULTS="pathload=0.3,abort=0.4,seed=7"
"$CAMPAIGN" $TINY --epochs 4 --out "$WORK/faulty1.csv" --faults "$FAULTS" --jobs 2 >/dev/null 2>&1
check_exit "faulty campaign run 1" 0 $?
"$CAMPAIGN" $TINY --epochs 4 --out "$WORK/faulty2.csv" --faults "$FAULTS" --jobs 1 >/dev/null 2>&1
check_exit "faulty campaign run 2" 0 $?
cmp -s "$WORK/faulty1.csv" "$WORK/faulty2.csv"
check_exit "faulty runs byte-identical across job counts" 0 $?
grep -q "fault_flags" "$WORK/faulty1.csv" || { echo "FAIL: faulty CSV lacks fault_flags"; FAILURES=$((FAILURES+1)); }
grep -q "fault_flags" "$WORK/clean.csv" && { echo "FAIL: clean CSV has fault_flags column"; FAILURES=$((FAILURES+1)); }
"$ANALYZE" "$WORK/faulty1.csv" >"$WORK/faulty.out" 2>/dev/null
check_exit "analyze faulty dataset" 0 $?
grep -q "measurement status" "$WORK/faulty.out" || { echo "FAIL: analyze lacks fault-conditioned RMSRE"; FAILURES=$((FAILURES+1)); }

# --- observability flags: --trace writes parseable JSONL, --metrics-summary
# prints the counter table to stderr, --from-trace round-trips, and a
# malformed trace is a runtime failure (2).
"$CAMPAIGN" $TINY --out "$WORK/obs.csv" --trace "$WORK/obs.jsonl" \
    --metrics-summary >/dev/null 2>"$WORK/obs.err"
check_exit "campaign with --trace and --metrics-summary" 0 $?
[ -s "$WORK/obs.jsonl" ] || { echo "FAIL: --trace wrote nothing"; FAILURES=$((FAILURES+1)); }
grep -q '"ev":"epoch"' "$WORK/obs.jsonl" || { echo "FAIL: trace lacks epoch events"; FAILURES=$((FAILURES+1)); }
grep -q "== metrics summary ==" "$WORK/obs.err" || { echo "FAIL: metrics summary not on stderr"; FAILURES=$((FAILURES+1)); }

"$ANALYZE" "$WORK/obs.csv" --trace "$WORK/engine.jsonl" >/dev/null 2>&1
check_exit "analyze with --trace" 0 $?
"$ANALYZE" --from-trace "$WORK/engine.jsonl" >"$WORK/fromtrace.out" 2>/dev/null
check_exit "analyze --from-trace round-trip" 0 $?
grep -q "re-derived from trace" "$WORK/fromtrace.out" || { echo "FAIL: --from-trace table missing"; FAILURES=$((FAILURES+1)); }
printf 'not json at all\n' > "$WORK/bad.jsonl"
"$ANALYZE" --from-trace "$WORK/bad.jsonl" >/dev/null 2>&1
check_exit "analyze malformed trace" 2 $?
"$ANALYZE" --from-trace "$WORK/engine.jsonl" "$WORK/obs.csv" >/dev/null 2>&1
check_exit "--from-trace plus dataset is a usage error" 1 $?

# --- interrupt + resume: SIGINT mid-run exits 130, --resume completes, and
# the result is byte-identical to an uninterrupted run.
"$CAMPAIGN" $TINY --epochs 30 --out "$WORK/full.csv" --faults "$FAULTS" --jobs 2 >/dev/null 2>&1
check_exit "uninterrupted reference run" 0 $?

"$CAMPAIGN" $TINY --epochs 30 --out "$WORK/resumed.csv" --faults "$FAULTS" \
    --checkpoint-every 1 --jobs 1 >/dev/null 2>&1 &
PID=$!
# Wait for the first checkpoint flush, then interrupt.
for _ in $(seq 1 200); do
    [ -f "$WORK/resumed.csv.ckpt" ] && break
    sleep 0.1
done
kill -INT "$PID" 2>/dev/null
wait "$PID"
RC=$?
if [ "$RC" -eq 130 ]; then
    echo "ok: interrupted campaign exits 130"
    [ -f "$WORK/resumed.csv.ckpt" ] || { echo "FAIL: no checkpoint after SIGINT"; FAILURES=$((FAILURES+1)); }
elif [ "$RC" -eq 0 ]; then
    # The tiny run can legitimately finish before the signal lands; the
    # resume path is still exercised below (resume of a complete run).
    echo "ok: campaign finished before SIGINT landed (timing)"
else
    echo "FAIL: interrupted campaign exited $RC (want 130 or 0)"
    FAILURES=$((FAILURES + 1))
fi

"$CAMPAIGN" $TINY --epochs 30 --out "$WORK/resumed.csv" --faults "$FAULTS" \
    --resume --jobs 2 >/dev/null 2>&1
check_exit "resumed campaign completes" 0 $?
cmp -s "$WORK/full.csv" "$WORK/resumed.csv"
check_exit "resumed CSV byte-identical to uninterrupted" 0 $?
[ -f "$WORK/resumed.csv.ckpt" ] && { echo "FAIL: checkpoint not removed on completion"; FAILURES=$((FAILURES+1)); }

# --- sharding: bad specs -> 1, shard+merge and --workers reproduce the
# serial CSV byte for byte, merge of a missing shard -> 2, and a resume
# under a changed config names the differing field.
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --shard "2/2" >/dev/null 2>&1
check_exit "out-of-range --shard" 1 $?
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --shard "x/2" >/dev/null 2>&1
check_exit "malformed --shard" 1 $?
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --workers 2 --shard 0/2 >/dev/null 2>&1
check_exit "--workers with --shard" 1 $?

"$CAMPAIGN" $TINY --out "$WORK/s.csv" --shard 0/2 >/dev/null 2>&1
check_exit "shard 0/2 run" 0 $?
[ -f "$WORK/s.csv" ] && { echo "FAIL: shard run wrote a CSV"; FAILURES=$((FAILURES+1)); }
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --merge 2 >/dev/null 2>&1
check_exit "merge with a shard still missing" 2 $?
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --shard 1/2 >/dev/null 2>&1
check_exit "shard 1/2 run" 0 $?
"$CAMPAIGN" $TINY --out "$WORK/s.csv" --merge 2 >/dev/null 2>&1
check_exit "merge of both shards" 0 $?
"$CAMPAIGN" $TINY --out "$WORK/serial.csv" --jobs 1 >/dev/null 2>&1
cmp -s "$WORK/serial.csv" "$WORK/s.csv"
check_exit "shard+merge CSV byte-identical to serial" 0 $?

"$CAMPAIGN" $TINY --out "$WORK/sup.csv" --workers 2 >/dev/null 2>&1
check_exit "supervised --workers 2 run" 0 $?
cmp -s "$WORK/serial.csv" "$WORK/sup.csv"
check_exit "supervised CSV byte-identical to serial" 0 $?
ls "$WORK"/sup.csv.shard-*.ckpt >/dev/null 2>&1 && { echo "FAIL: shard checkpoints survive a complete supervised run"; FAILURES=$((FAILURES+1)); }

# --- record store (--format store / --convert / --from-store): the past-RAM
# path must reproduce the CSV path byte for byte at every entry point.
"$CAMPAIGN" $TINY --out "$WORK/a.store" --format store --jobs 2 >/dev/null 2>&1
check_exit "store campaign run (jobs 2)" 0 $?
"$CAMPAIGN" --convert "$WORK/a.store" --out "$WORK/a.csv" >/dev/null 2>&1
check_exit "store -> CSV conversion" 0 $?
cmp -s "$WORK/a.csv" "$WORK/serial.csv"
check_exit "converted store byte-identical to serial CSV" 0 $?

"$CAMPAIGN" $TINY --out "$WORK/b.store" --format store --jobs 1 >/dev/null 2>&1
check_exit "store campaign run (jobs 1)" 0 $?
cmp -s "$WORK/a.store" "$WORK/b.store"
check_exit "store bytes identical across job counts" 0 $?

"$CAMPAIGN" $TINY --out "$WORK/w.store" --format store --workers 2 >/dev/null 2>&1
check_exit "supervised --workers store run" 0 $?
"$CAMPAIGN" --convert "$WORK/w.store" --out "$WORK/w.csv" >/dev/null 2>&1
cmp -s "$WORK/w.csv" "$WORK/serial.csv"
check_exit "workers store converts byte-identical to serial CSV" 0 $?

# Shard checkpoints merge straight into a store (s.csv's shards were
# consumed by the CSV merge above, so run a fresh pair).
"$CAMPAIGN" $TINY --out "$WORK/m.store" --shard 0/2 >/dev/null 2>&1
"$CAMPAIGN" $TINY --out "$WORK/m.store" --shard 1/2 >/dev/null 2>&1
"$CAMPAIGN" $TINY --out "$WORK/m.store" --merge 2 --format store >/dev/null 2>&1
check_exit "merge of shards into a store" 0 $?
"$CAMPAIGN" --convert "$WORK/m.store" --out "$WORK/m.csv" >/dev/null 2>&1
cmp -s "$WORK/m.csv" "$WORK/serial.csv"
check_exit "merged store converts byte-identical to serial CSV" 0 $?

# Streamed analysis reads the store directly and must print the same report.
"$ANALYZE" "$WORK/serial.csv" >"$WORK/csv_report.out" 2>/dev/null
"$ANALYZE" --from-store "$WORK/a.store" >"$WORK/store_report.out" 2>/dev/null
check_exit "analyze --from-store" 0 $?
cmp -s "$WORK/store_report.out" "$WORK/csv_report.out"
check_exit "--from-store report byte-identical to CSV report" 0 $?

# Flag validation: the store path is explicit about what it refuses.
"$CAMPAIGN" $TINY --out "$WORK/x" --format bogus >/dev/null 2>&1
check_exit "bad --format" 1 $?
"$CAMPAIGN" $TINY --out "$WORK/x.store" --format store --resume >/dev/null 2>&1
check_exit "store with --resume" 1 $?
"$CAMPAIGN" $TINY --out "$WORK/x.store" --format store --shard 0/2 >/dev/null 2>&1
check_exit "store with --shard" 1 $?
"$CAMPAIGN" --convert "$WORK/a.store" --out "$WORK/x.csv" --workers 2 >/dev/null 2>&1
check_exit "--convert with campaign flags" 1 $?
"$ANALYZE" --from-store "$WORK/a.store" "$WORK/serial.csv" >/dev/null 2>&1
check_exit "--from-store plus dataset is a usage error" 1 $?
"$ANALYZE" --from-store "$WORK/does-not-exist.store" >/dev/null 2>&1
check_exit "--from-store missing store" 2 $?

# Resume under a changed seed: refused, and the error names the field.
"$CAMPAIGN" $TINY --out "$WORK/mm.csv" --shard 0/2 >/dev/null 2>&1
"$CAMPAIGN" $TINY --out "$WORK/mm.csv" --shard 0/2 --seed 99 --resume >/dev/null 2>"$WORK/mm.err"
check_exit "shard resume under changed seed" 2 $?
grep -q "seed: checkpoint=20040501 requested=99" "$WORK/mm.err" || { echo "FAIL: mismatch error does not name the seed field"; FAILURES=$((FAILURES+1)); }

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES CLI contract check(s) failed"
    exit 1
fi
echo "all CLI contract checks passed"
