#include "core/predictor_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace tcppred::core {
namespace {

TEST(make_predictor_factory, every_documented_spec_round_trips) {
    // spec -> canonical name() ("fb" is shorthand, "NWS" names its set size,
    // "hybrid:...:<k>" drops the k — every other spec is its own name).
    const std::vector<std::pair<std::string, std::string>> specs{
        {"fb", "fb:pftk"},
        {"fb:pftk", "fb:pftk"},
        {"fb:pftk-full", "fb:pftk-full"},
        {"fb:sqrt", "fb:sqrt"},
        {"fb:minwa", "fb:minwa"},
        {"1-MA", "1-MA"},
        {"10-MA", "10-MA"},
        {"0.8-EWMA", "0.8-EWMA"},
        {"0.5-HW", "0.5-HW"},
        {"4-AR", "4-AR"},
        {"10-MA-LSO", "10-MA-LSO"},
        {"0.8-HW-LSO", "0.8-HW-LSO"},
        {"4-AR-LSO", "4-AR-LSO"},
        {"NWS", "NWS-4"},
        {"hybrid:0.8-HW-LSO", "hybrid:0.8-HW-LSO"},
        {"hybrid:10-MA:5", "hybrid:10-MA"},
    };
    for (const auto& [spec, canonical] : specs) {
        const auto p = make_predictor(spec);
        ASSERT_NE(p, nullptr) << spec;
        EXPECT_EQ(p->name(), canonical) << spec;
    }
}

TEST(make_predictor_factory, clone_empty_preserves_kind_and_parameters) {
    for (const char* spec :
         {"fb:sqrt", "10-MA", "0.8-EWMA", "0.5-HW", "4-AR-LSO", "NWS",
          "hybrid:0.8-HW-LSO"}) {
        const auto p = make_predictor(spec);
        const auto clone = p->clone_empty();
        EXPECT_EQ(clone->name(), p->name()) << spec;
        EXPECT_EQ(clone->min_trace_length(), p->min_trace_length()) << spec;
    }
}

TEST(make_predictor_factory, fresh_history_predictor_is_unusable) {
    for (const char* spec : {"10-MA", "0.8-HW-LSO", "4-AR", "NWS"}) {
        auto p = make_predictor(spec);
        const prediction before = p->predict(epoch_inputs::absent());
        EXPECT_FALSE(before.usable()) << spec;
        EXPECT_EQ(before.status, prediction_status::no_history) << spec;
        EXPECT_TRUE(std::isnan(before.value_bps)) << spec;

        p->observe(5e6);
        p->observe(5e6);
        const prediction after = p->predict(epoch_inputs::absent());
        EXPECT_TRUE(after.usable()) << spec;
        EXPECT_GT(after.value_bps, 0.0) << spec;

        // ... and a fresh clone starts over with no history.
        const prediction cloned =
            p->clone_empty()->predict(epoch_inputs::absent());
        EXPECT_FALSE(cloned.usable()) << spec;
    }
}

TEST(make_predictor_factory, config_controls_shared_parameters) {
    predictor_config cfg;
    cfg.window_bytes = 20 * 1024;
    const auto p = make_predictor("fb:pftk", cfg);
    path_measurement m;
    m.rtt = seconds{0.05};
    m.loss_rate = probability{0.0};
    m.avail_bw = bits_per_second{50e6};
    // Lossless branch with a tiny window: min(W/T, A) = W/T = 20KB*8/0.05.
    const prediction pred = p->predict(epoch_inputs::valid(m));
    ASSERT_TRUE(pred.usable());
    EXPECT_EQ(pred.inputs_used.source, prediction_source::window_bound);
    EXPECT_NEAR(pred.value_bps, 20 * 1024 * 8 / 0.05, 1.0);
}

TEST(make_predictor_factory, rejects_malformed_specs_with_payload) {
    for (const char* bad : {"", "MA", "10-XX", "x-MA", "10x-MA", "-MA", "10-",
                            "fb:bogus", "0-MA", "1.5-EWMA", "hybrid:",
                            "hybrid:MA", "hybrid:10-MA:0", "hybrid:10-MA:x"}) {
        try {
            [[maybe_unused]] const auto p = make_predictor(bad);
            FAIL() << "spec '" << bad << "' should have been rejected";
        } catch (const predictor_spec_error& e) {
            EXPECT_EQ(e.spec(), bad);
            EXPECT_NE(std::string(e.what()).find("bad predictor spec"),
                      std::string::npos);
        }
    }
}

TEST(make_predictor_factory, spec_error_is_an_invalid_argument) {
    // Callers that only know std::invalid_argument still catch it.
    EXPECT_THROW(make_predictor("nonsense"), std::invalid_argument);
}

}  // namespace
}  // namespace tcppred::core
