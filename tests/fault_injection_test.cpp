// The measurement-fault layer: deterministic planning, fixed draw order,
// graceful degradation of individual epochs, and the default-off guarantee
// (a disabled profile changes nothing, bit for bit).
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "testbed/checkpoint.hpp"
#include "testbed/epoch_runner.hpp"
#include "testbed/load_process.hpp"
#include "testbed/path_catalog.hpp"

using namespace tcppred;
using sim::epoch_fault_plan;
using sim::fault_profile;
using sim::plan_epoch_faults;

namespace {

testbed::path_profile test_profile() {
    // A mid-capacity single-bottleneck path from the standard catalogue.
    return testbed::ron_like_catalog(3, 42)[1];
}

testbed::epoch_config fast_epoch() {
    testbed::epoch_config cfg;
    cfg.warmup = core::seconds{0.5};
    cfg.prior_ping.count = 60;
    cfg.transfer = core::seconds{1.5};
    return cfg;
}

testbed::load_state test_load(const testbed::path_profile& p) {
    return testbed::load_trajectory(p, 7, 1)[0];
}

}  // namespace

TEST(fault_profile, parse_roundtrip_and_validation) {
    const fault_profile p = fault_profile::parse(
        "pathload=0.1,ping-timeout=0.02,ping-truncate=0.05,abort=0.2,outage=0.03,"
        "seed=99");
    EXPECT_DOUBLE_EQ(p.pathload_fail, 0.1);
    EXPECT_DOUBLE_EQ(p.ping_timeout_rate, 0.02);
    EXPECT_DOUBLE_EQ(p.ping_truncate, 0.05);
    EXPECT_DOUBLE_EQ(p.transfer_abort, 0.2);
    EXPECT_DOUBLE_EQ(p.outage, 0.03);
    EXPECT_EQ(p.seed, 99u);
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(fault_profile::parse(p.spec()).spec(), p.spec());

    EXPECT_FALSE(fault_profile{}.enabled());
    EXPECT_EQ(fault_profile{}.spec(), "off");
    EXPECT_THROW(static_cast<void>(fault_profile::parse("bogus=0.1")),
                 std::invalid_argument);
    EXPECT_THROW(static_cast<void>(fault_profile::parse("pathload=1.5")),
                 std::invalid_argument);
    EXPECT_THROW(static_cast<void>(fault_profile::parse("pathload=-0.1")),
                 std::invalid_argument);
}

TEST(fault_profile, from_env_reads_spec_and_field_overrides) {
    ::setenv("REPRO_FAULTS", "pathload=0.2,abort=0.1", 1);
    ::setenv("REPRO_FAULT_ABORT", "0.5", 1);
    ::setenv("REPRO_FAULT_SEED", "123", 1);
    const fault_profile p = fault_profile::from_env();
    ::unsetenv("REPRO_FAULTS");
    ::unsetenv("REPRO_FAULT_ABORT");
    ::unsetenv("REPRO_FAULT_SEED");
    EXPECT_DOUBLE_EQ(p.pathload_fail, 0.2);
    EXPECT_DOUBLE_EQ(p.transfer_abort, 0.5);  // field override beats the spec
    EXPECT_EQ(p.seed, 123u);

    EXPECT_FALSE(fault_profile::from_env().enabled()) << "clean env means no faults";
}

TEST(plan_epoch_faults, deterministic_in_coordinates) {
    fault_profile prof;
    prof.pathload_fail = 0.5;
    prof.transfer_abort = 0.5;
    const epoch_fault_plan a = plan_epoch_faults(prof, 1234, 3, 1, 7);
    const epoch_fault_plan b = plan_epoch_faults(prof, 1234, 3, 1, 7);
    EXPECT_EQ(a.pathload_fail, b.pathload_fail);
    EXPECT_EQ(a.transfer_abort_fraction, b.transfer_abort_fraction);
    EXPECT_EQ(a.ping_fault_seed, b.ping_fault_seed);

    // Different coordinates draw from independent streams.
    const epoch_fault_plan c = plan_epoch_faults(prof, 1234, 3, 1, 8);
    // (Not a strict inequality on any single field — but the ping stream
    // seed, derived per coordinate, must differ.)
    EXPECT_NE(a.ping_fault_seed, c.ping_fault_seed);
}

TEST(plan_epoch_faults, fixed_draw_order_isolates_fault_types) {
    // Enabling the abort fault must not re-randomize the pathload decision:
    // each decision consumes its slots in a fixed order regardless of which
    // rates are zero.
    fault_profile only_pathload;
    only_pathload.pathload_fail = 0.5;
    fault_profile both = only_pathload;
    both.transfer_abort = 0.9;

    for (int epoch = 0; epoch < 50; ++epoch) {
        const epoch_fault_plan a = plan_epoch_faults(only_pathload, 99, 1, 0, epoch);
        const epoch_fault_plan b = plan_epoch_faults(both, 99, 1, 0, epoch);
        EXPECT_EQ(a.pathload_fail, b.pathload_fail) << "epoch " << epoch;
    }
}

TEST(plan_epoch_faults, zero_profile_yields_empty_plan) {
    const epoch_fault_plan plan = plan_epoch_faults(fault_profile{}, 1, 0, 0, 0);
    EXPECT_FALSE(plan.any());
    EXPECT_FALSE(testbed::epoch_config{}.faults.any()) << "default epoch has no faults";
}

TEST(epoch_faults, default_plan_changes_nothing) {
    const auto profile = test_profile();
    const auto load = test_load(profile);
    const testbed::epoch_config cfg = fast_epoch();

    const testbed::epoch_measurement a = testbed::run_epoch(profile, load, 5, cfg);
    testbed::epoch_config with_empty_plan = cfg;
    with_empty_plan.faults = epoch_fault_plan{};
    const testbed::epoch_measurement b =
        testbed::run_epoch(profile, load, 5, with_empty_plan);

    EXPECT_EQ(a.r_large_bps, b.r_large_bps);
    EXPECT_EQ(a.avail_bw_bps, b.avail_bw_bps);
    EXPECT_EQ(a.phat, b.phat);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.fault_flags, testbed::fault_none);
    EXPECT_EQ(b.fault_flags, testbed::fault_none);
}

TEST(epoch_faults, pathload_nonconvergence_yields_nan_and_flag) {
    const auto profile = test_profile();
    const auto load = test_load(profile);
    testbed::epoch_config cfg = fast_epoch();
    cfg.faults.pathload_fail = true;

    const testbed::epoch_measurement m = testbed::run_epoch(profile, load, 5, cfg);
    EXPECT_TRUE(std::isnan(m.avail_bw_bps));
    EXPECT_TRUE(m.fault_flags & testbed::fault_pathload_failed);
    EXPECT_TRUE(testbed::apriori_faulty(m.fault_flags));
    // The rest of the epoch still happened.
    EXPECT_GT(m.r_large_bps, 0.0);
    EXPECT_GT(m.that_s, 0.0);
}

TEST(epoch_faults, transfer_abort_truncates_and_flags) {
    const auto profile = test_profile();
    const auto load = test_load(profile);
    const testbed::epoch_config clean_cfg = fast_epoch();
    const testbed::epoch_measurement clean =
        testbed::run_epoch(profile, load, 5, clean_cfg);

    testbed::epoch_config cfg = fast_epoch();
    cfg.faults.transfer_abort_fraction = 0.4;
    const testbed::epoch_measurement m = testbed::run_epoch(profile, load, 5, cfg);
    EXPECT_TRUE(m.fault_flags & testbed::fault_transfer_aborted);
    EXPECT_TRUE(testbed::actual_faulty(m.fault_flags));
    // An aborted transfer reports goodput over its (shorter) lifetime; the
    // a-priori view is untouched.
    EXPECT_EQ(m.phat, clean.phat);
    EXPECT_EQ(m.that_s, clean.that_s);
    EXPECT_GT(m.r_large_bps, 0.0);
}

TEST(epoch_faults, ping_faults_degrade_the_apriori_view) {
    const auto profile = test_profile();
    const auto load = test_load(profile);
    testbed::epoch_config cfg = fast_epoch();
    cfg.faults.ping_timeout_rate = 0.5;
    cfg.faults.ping_fault_seed = 77;
    cfg.faults.ping_truncate_fraction = 0.5;

    const testbed::epoch_measurement m = testbed::run_epoch(profile, load, 5, cfg);
    EXPECT_TRUE(m.fault_flags & testbed::fault_ping_degraded);
    EXPECT_TRUE(m.fault_flags & testbed::fault_ping_partial);
    EXPECT_TRUE(testbed::apriori_faulty(m.fault_flags));
    // Injected timeouts inflate the apparent loss rate well above the clean
    // epoch's (which is near zero on this path at this load).
    EXPECT_GT(m.phat, 0.2);
}

TEST(epoch_faults, outage_flags_and_degrades_throughput) {
    const auto profile = test_profile();
    const auto load = test_load(profile);
    const testbed::epoch_measurement clean =
        testbed::run_epoch(profile, load, 5, fast_epoch());

    testbed::epoch_config cfg = fast_epoch();
    cfg.faults.outage = true;
    cfg.faults.outage_start_fraction = 0.2;
    cfg.faults.outage_duration_fraction = 0.2;
    const testbed::epoch_measurement m = testbed::run_epoch(profile, load, 5, cfg);
    EXPECT_TRUE(m.fault_flags & testbed::fault_path_outage);
    EXPECT_TRUE(testbed::actual_faulty(m.fault_flags));
    // A 20% blackout inside the transfer costs real throughput.
    EXPECT_LT(m.r_large_bps, clean.r_large_bps);
}

// --- checkpoint fingerprint coverage of the fault profile -------------------
// A resume under ANY changed fault knob must be refused: the records already
// in the checkpoint were produced under the old profile, and mixing them
// with epochs from a new one silently corrupts the dataset. The fingerprint
// embeds fault_profile::spec(), which canonically encodes every knob the
// $REPRO_FAULT_* environment can set.

TEST(checkpoint_fingerprint, covers_every_fault_profile_knob) {
    testbed::campaign_config base;
    base.paths = 2;
    base.traces_per_path = 1;
    base.epochs_per_trace = 3;
    const std::string fp = testbed::campaign_fingerprint(base);

    const auto perturbed = [&](auto&& mutate) {
        testbed::campaign_config c = base;
        mutate(c.faults);
        return testbed::campaign_fingerprint(c);
    };
    EXPECT_NE(fp, perturbed([](fault_profile& f) { f.pathload_fail = 0.1; }));
    EXPECT_NE(fp, perturbed([](fault_profile& f) { f.ping_timeout_rate = 0.1; }));
    EXPECT_NE(fp, perturbed([](fault_profile& f) { f.ping_truncate = 0.1; }));
    EXPECT_NE(fp, perturbed([](fault_profile& f) { f.transfer_abort = 0.1; }));
    EXPECT_NE(fp, perturbed([](fault_profile& f) { f.outage = 0.1; }));
    // The fault seed only matters once some fault is enabled.
    EXPECT_NE(perturbed([](fault_profile& f) {
                  f.pathload_fail = 0.1;
                  f.seed = 99;
              }),
              perturbed([](fault_profile& f) { f.pathload_fail = 0.1; }));
}

TEST(checkpoint_fingerprint, distinct_rates_of_the_same_knob_differ) {
    testbed::campaign_config a, b;
    a.faults.transfer_abort = 0.25;
    b.faults.transfer_abort = 0.50;
    EXPECT_NE(testbed::campaign_fingerprint(a), testbed::campaign_fingerprint(b));
}

TEST(checkpoint_fingerprint, resume_under_changed_fault_knob_is_rejected) {
    testbed::campaign_config cfg;
    cfg.paths = 1;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 2;
    cfg.faults.ping_timeout_rate = 0.05;  // as if REPRO_FAULT_PING_TIMEOUT=0.05

    testbed::campaign_checkpoint ck;
    ck.fingerprint = testbed::campaign_fingerprint(cfg);
    ck.total = 2;
    ck.done.assign(2, 0);
    ck.done[0] = 1;
    ck.records.resize(2);
    const std::filesystem::path file =
        std::filesystem::temp_directory_path() / "tcppred_fp_test.ckpt";
    testbed::save_checkpoint(ck, file);

    // Same profile: the checkpoint loads.
    EXPECT_TRUE(testbed::load_checkpoint(file, testbed::campaign_fingerprint(cfg))
                    .has_value());

    // One knob nudged (the env override scenario): refused, not merged.
    testbed::campaign_config changed = cfg;
    changed.faults.ping_timeout_rate = 0.10;
    EXPECT_THROW(
        (void)testbed::load_checkpoint(file,
                                       testbed::campaign_fingerprint(changed)),
        testbed::dataset_error);

    std::filesystem::remove(file);
}

TEST(checkpoint_fingerprint, fields_join_is_the_fingerprint) {
    // The named-field decomposition and the opaque string are one schema:
    // the '|'-join of the field values must reproduce the fingerprint
    // byte for byte, or mismatch diagnoses would drift from reality.
    for (const bool second : {false, true}) {
        testbed::campaign_config cfg;
        cfg.second_set = second;
        cfg.faults.transfer_abort = 0.25;
        std::string joined;
        for (const auto& f : testbed::campaign_fingerprint_fields(cfg)) {
            if (!joined.empty()) joined += '|';
            joined += f.value;
        }
        EXPECT_EQ(joined, testbed::campaign_fingerprint(cfg));
    }
}

TEST(checkpoint_fingerprint, mismatch_report_names_the_differing_fields) {
    testbed::campaign_config cfg;
    cfg.paths = 2;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 3;

    testbed::campaign_config changed = cfg;
    changed.seed = 777;
    changed.faults.transfer_abort = 0.5;

    const std::string diff = testbed::describe_fingerprint_mismatch(
        testbed::campaign_fingerprint(cfg), testbed::campaign_fingerprint(changed));
    EXPECT_NE(diff.find("seed: checkpoint=20040501 requested=777"), std::string::npos)
        << diff;
    EXPECT_NE(diff.find("faults: checkpoint=off requested=abort=0.5"),
              std::string::npos)
        << diff;
    // Unchanged fields stay out of the report.
    EXPECT_EQ(diff.find("paths:"), std::string::npos) << diff;

    // And load_checkpoint surfaces the same diagnosis to the user.
    testbed::campaign_checkpoint ck;
    ck.fingerprint = testbed::campaign_fingerprint(cfg);
    ck.total = 6;
    ck.done.assign(6, 0);
    ck.records.resize(6);
    const std::filesystem::path file =
        std::filesystem::temp_directory_path() / "tcppred_fpdiff_test.ckpt";
    testbed::save_checkpoint(ck, file);
    try {
        (void)testbed::load_checkpoint(file, testbed::campaign_fingerprint(changed));
        FAIL() << "mismatched fingerprint must throw";
    } catch (const testbed::dataset_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("seed: checkpoint=20040501 requested=777"),
                  std::string::npos)
            << what;
    }
    std::filesystem::remove(file);
}

// --- atomic_write_text: cross-filesystem (EXDEV) fallback -------------------
// The temp file honors $TMPDIR, which may sit on a different filesystem than
// the target; rename(2) then fails EXDEV and the copy+fsync+same-dir-rename
// fallback must kick in. Tests cannot mount a second filesystem, so the
// fallback is forced via $TCPPRED_FORCE_EXDEV=1 — the code path is identical
// from the EXDEV branch on.

TEST(atomic_write_text, honors_tmpdir_and_survives_forced_exdev) {
    const auto base = std::filesystem::temp_directory_path() / "tcppred_exdev_test";
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base / "tmp");
    std::filesystem::create_directories(base / "data");
    const std::filesystem::path target = base / "data" / "out.txt";

    ::setenv("TMPDIR", (base / "tmp").string().c_str(), 1);
    ::setenv("TCPPRED_FORCE_EXDEV", "1", 1);
    testbed::atomic_write_text(target, "first\n");
    testbed::atomic_write_text(target, "second\n");
    ::unsetenv("TCPPRED_FORCE_EXDEV");
    ::unsetenv("TMPDIR");

    std::ifstream in(target);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "second\n");
    // No droppings: the temp and the fallback sibling are both cleaned up.
    std::size_t entries = 0;
    for (const auto& e : std::filesystem::directory_iterator(base / "data")) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    EXPECT_TRUE(std::filesystem::is_empty(base / "tmp"));
    std::filesystem::remove_all(base);
}

TEST(atomic_write_text, checkpoint_roundtrips_through_the_exdev_path) {
    const auto base = std::filesystem::temp_directory_path() / "tcppred_exdev_ck";
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base / "tmp");
    const std::filesystem::path file = base / "c.ckpt";

    testbed::campaign_config cfg;
    cfg.paths = 1;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 2;
    testbed::campaign_checkpoint ck;
    ck.fingerprint = testbed::campaign_fingerprint(cfg);
    ck.total = 2;
    ck.done.assign(2, 0);
    ck.done[1] = 1;
    ck.records.resize(2);
    ck.records[1].path_id = 3;
    ck.records[1].m.r_large_bps = 1.25e6;

    ::setenv("TMPDIR", (base / "tmp").string().c_str(), 1);
    ::setenv("TCPPRED_FORCE_EXDEV", "1", 1);
    testbed::save_checkpoint(ck, file);
    ::unsetenv("TCPPRED_FORCE_EXDEV");
    ::unsetenv("TMPDIR");

    const auto back = testbed::load_checkpoint(file, ck.fingerprint);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->done[1], 1);
    EXPECT_EQ(back->records[1].path_id, 3);
    EXPECT_EQ(back->records[1].m.r_large_bps, 1.25e6);
    std::filesystem::remove_all(base);
}
