#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcppred::sim {
namespace {

TEST(scheduler, starts_at_time_zero) {
    scheduler s;
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_EQ(s.pending(), 0u);
}

TEST(scheduler, fires_events_in_time_order) {
    scheduler s;
    std::vector<int> order;
    s.schedule_at(2.0, [&] { order.push_back(2); });
    s.schedule_at(1.0, [&] { order.push_back(1); });
    s.schedule_at(3.0, [&] { order.push_back(3); });
    s.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(scheduler, simultaneous_events_fire_fifo) {
    scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        s.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
    s.run_all();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(scheduler, schedule_in_is_relative_to_now) {
    scheduler s;
    double fired_at = -1.0;
    s.schedule_at(5.0, [&] { s.schedule_in(2.5, [&] { fired_at = s.now(); }); });
    s.run_all();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(scheduler, rejects_events_in_the_past) {
    scheduler s;
    s.schedule_at(10.0, [] {});
    s.run_all();
    EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST(scheduler, cancelled_event_does_not_fire) {
    scheduler s;
    bool fired = false;
    const event_handle h = s.schedule_at(1.0, [&] { fired = true; });
    s.cancel(h);
    s.run_all();
    EXPECT_FALSE(fired);
}

TEST(scheduler, cancelling_invalid_handle_is_safe) {
    scheduler s;
    s.cancel(event_handle{});
    s.cancel(event_handle{12345});
    bool fired = false;
    s.schedule_at(1.0, [&] { fired = true; });
    s.run_all();
    EXPECT_TRUE(fired);
}

TEST(scheduler, run_until_stops_at_horizon) {
    scheduler s;
    std::vector<double> fired;
    for (double t = 1.0; t <= 5.0; t += 1.0) {
        s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
    }
    s.run_until(3.0);
    EXPECT_EQ(fired.size(), 3u);
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
    s.run_until(10.0);
    EXPECT_EQ(fired.size(), 5u);
    EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(scheduler, run_until_skips_cancelled_head) {
    scheduler s;
    bool late_fired = false;
    const event_handle h = s.schedule_at(1.0, [] {});
    s.schedule_at(5.0, [&] { late_fired = true; });
    s.cancel(h);
    s.run_until(2.0);
    EXPECT_FALSE(late_fired);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(scheduler, events_scheduled_while_running_fire) {
    scheduler s;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100) s.schedule_in(0.1, chain);
    };
    s.schedule_in(0.1, chain);
    s.run_all();
    EXPECT_EQ(count, 100);
    EXPECT_NEAR(s.now(), 10.0, 1e-9);
}

TEST(scheduler, fired_counts_events) {
    scheduler s;
    for (int i = 0; i < 7; ++i) s.schedule_at(static_cast<double>(i), [] {});
    s.run_all();
    EXPECT_EQ(s.fired(), 7u);
}

TEST(scheduler, step_returns_false_when_empty) {
    scheduler s;
    EXPECT_FALSE(s.step());
    s.schedule_at(1.0, [] {});
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace tcppred::sim
