// Corpus-replay driver: the main() linked into the fuzz harnesses when they
// are built WITHOUT libFuzzer (any compiler; libFuzzer needs Clang). Each
// argument is a corpus file or directory; every file found is replayed
// through LLVMFuzzerTestOneInput in sorted order, which turns the seed
// corpora into deterministic regression tests (the fuzz_corpus_* ctests).
//
// Exit codes: 0 all inputs replayed, 1 usage error or empty corpus (an empty
// corpus almost certainly means a wrong path, and silently "passing" on zero
// inputs would hide that).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace fs = std::filesystem;

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s CORPUS_FILE_OR_DIR...\n", argv[0]);
        return 1;
    }
    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        const fs::path p = argv[i];
        if (fs::is_directory(p)) {
            for (const auto& e : fs::recursive_directory_iterator(p)) {
                if (e.is_regular_file()) files.push_back(e.path());
            }
        } else if (fs::is_regular_file(p)) {
            files.push_back(p);
        } else {
            std::fprintf(stderr, "error: no such corpus input: %s\n", p.string().c_str());
            return 1;
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
        std::ifstream in(f, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        (void)LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                                     bytes.size());
    }
    if (files.empty()) {
        std::fprintf(stderr, "error: corpus is empty\n");
        return 1;
    }
    std::fprintf(stderr, "replayed %zu corpus input(s)\n", files.size());
    return 0;
}
