// Fuzz harness: serve::parse_request_line over arbitrary bytes.
//
// Contract under test — the serve daemon's request parser is its untrusted
// network boundary and must either return a well-formed request or throw
// protocol_error; any other escape (crash, sanitizer report, a foreign
// exception such as the TCPPRED_EXPECTS abort inside core::probability for
// an out-of-range loss rate) is a bug. Accepted OBSERVE requests are
// additionally re-rendered with format_observe and re-parsed: the second
// parse must accept and agree bitwise, pinning the parse/format inverse the
// snapshot replay and loadgen rely on.
//
// Built two ways (see tests/fuzz/CMakeLists.txt): as a libFuzzer target
// under -DREPRO_FUZZ=ON (Clang), or with the corpus-replay main() under any
// compiler, where it runs as the fuzz_corpus_serve_request ctest.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace {

bool bits_equal(double a, double b) {
    if (std::isnan(a) && std::isnan(b)) return true;
    return a == b;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view line(reinterpret_cast<const char*>(data), size);
    try {
        const tcppred::serve::request req = tcppred::serve::parse_request_line(line);
        if (req.kind != tcppred::serve::request_kind::observe) return 0;
        // Accepted observations must survive the format/parse round trip.
        const std::string rendered =
            tcppred::serve::format_observe(req.path, req.obs);
        const tcppred::serve::request again =
            tcppred::serve::parse_request_line(rendered);
        if (again.path != req.path || again.obs.epoch != req.obs.epoch ||
            again.obs.fault_flags != req.obs.fault_flags ||
            !bits_equal(again.obs.avail_bw_bps, req.obs.avail_bw_bps) ||
            !bits_equal(again.obs.phat, req.obs.phat) ||
            !bits_equal(again.obs.phat_events, req.obs.phat_events) ||
            !bits_equal(again.obs.that_s, req.obs.that_s) ||
            !bits_equal(again.obs.r_large_bps, req.obs.r_large_bps)) {
            std::abort();  // round-trip divergence is a harness-visible bug
        }
    } catch (const tcppred::serve::protocol_error&) {
        // The documented rejection path for malformed input.
    }
    return 0;
}
