// Fuzz harness: testbed::record_reader over arbitrary bytes.
//
// Contract under test — the record store reader consumes untrusted files
// (header, footer index, column chunks) and must either stream records or
// throw dataset_error; any other escape (crash, sanitizer report, unbounded
// allocation steered by a hostile header, foreign exception type) is a bug.
// The input is parsed twice: once accepting any fingerprint, once demanding
// a specific one, so the mismatch path is exercised too.
//
// Built two ways (see tests/fuzz/CMakeLists.txt): as a libFuzzer target
// under -DREPRO_FUZZ=ON (Clang), or with the corpus-replay main() under any
// compiler, where it runs as the fuzz_corpus_record_store ctest.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "testbed/dataset.hpp"
#include "testbed/record_store.hpp"

namespace {

void parse_one(const std::string& bytes, const std::string& expected_fingerprint) {
    std::istringstream in(bytes);
    try {
        tcppred::testbed::record_reader reader(in, "<fuzz>", expected_fingerprint);
        tcppred::testbed::epoch_record rec;
        while (reader.next(rec)) {
            // Drain the full store: chunk decoding is where most of the
            // parsing lives, and next() loads chunks lazily.
        }
        (void)reader.catalog_lines();
        (void)reader.n_traces();
        (void)reader.n_faulted();
    } catch (const tcppred::testbed::dataset_error&) {
        // The documented rejection path for malformed input.
    }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string bytes(reinterpret_cast<const char*>(data), size);
    parse_one(bytes, "");
    parse_one(bytes, "deadbeefdeadbeefdeadbeefdeadbeef");
    return 0;
}
