// Fuzz harness: obs::parse_trace_line over arbitrary bytes.
//
// Contract under test — the flat-JSON trace reader parses JSONL files that
// may come from other tools or truncated runs, and must either return a
// trace_event or throw std::runtime_error. Input is split on newlines so one
// fuzz input exercises many line shapes; events that parse are re-serialized
// through canonical_trace_line (the determinism-diff path) as well.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "obs/trace_writer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    std::string_view rest(reinterpret_cast<const char*>(data), size);
    while (!rest.empty()) {
        const std::size_t nl = rest.find('\n');
        const std::string_view line = rest.substr(0, nl);
        rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
        try {
            const tcppred::obs::trace_event ev =
                tcppred::obs::parse_trace_line(line, "<fuzz>");
            (void)tcppred::obs::canonical_trace_line(ev);
        } catch (const std::runtime_error&) {
            // The documented rejection path for malformed lines.
        }
    }
    return 0;
}
