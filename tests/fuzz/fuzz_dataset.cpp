// Fuzz harness: testbed::load_csv over arbitrary bytes.
//
// Contract under test — the dataset loader consumes untrusted files and must
// either return a dataset or throw dataset_error; any other escape (crash,
// sanitizer report, foreign exception type) is a bug. The harness also walks
// the grouping accessors so records that *parse* are exercised a little.
//
// Built two ways (see tests/fuzz/CMakeLists.txt): as a libFuzzer target
// under -DREPRO_FUZZ=ON (Clang), or with the corpus-replay main() under any
// compiler, where it runs as the fuzz_corpus_dataset ctest.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "testbed/dataset.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
    try {
        const tcppred::testbed::dataset ds = tcppred::testbed::load_csv(in, "<fuzz>");
        (void)ds.traces();
        if (!ds.records.empty()) {
            const auto& r = ds.records.front();
            (void)ds.throughput_series(r.path_id, r.trace_id);
            (void)ds.small_window_series(r.path_id, r.trace_id);
        }
    } catch (const tcppred::testbed::dataset_error&) {
        // The documented rejection path for malformed input.
    }
    return 0;
}
