// Fuzz harness: core::make_predictor over arbitrary spec strings.
//
// Contract under test — the spec grammar parser takes strings from CLI flags
// and config files and must either build a predictor or throw
// predictor_spec_error; nothing else may escape. Specs that parse are also
// driven through a short predict/observe cycle so accepted-but-degenerate
// parameters (giant MA orders, extreme EWMA gains) get a smoke run too.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/predictor.hpp"
#include "core/predictor_registry.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string spec(reinterpret_cast<const char*>(data), size);
    try {
        namespace core = tcppred::core;
        const auto p = core::make_predictor(spec);
        const auto in = core::epoch_inputs::valid(core::path_measurement{
            core::probability{0.01}, core::seconds{0.08},
            core::bits_per_second{50e6}});
        for (int i = 0; i < 8; ++i) {
            (void)p->predict(i == 5 ? core::epoch_inputs::failed_measurement() : in);
            p->observe_maybe(i == 3 ? std::nan("") : 40e6 + 1e5 * i);
        }
        (void)p->name();
        (void)p->clone_empty();
        p->reset();
    } catch (const tcppred::core::predictor_spec_error&) {
        // The documented rejection path for malformed specs.
    }
    return 0;
}
