// Tests of the TCP loss-recovery variants (Tahoe / NewReno / SACK): each
// must deliver data correctly, and their relative performance under
// multi-loss windows must match the protocol folklore.
#include <gtest/gtest.h>

#include <memory>

#include "core/units.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

namespace tcppred::tcp {
namespace {

struct world {
    sim::scheduler sched;
    std::unique_ptr<net::duplex_path> path;
    std::unique_ptr<net::path_conduit> conduit;

    world(double cap_bps, double rtt_s, std::size_t buffer) {
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{cap_bps}, core::seconds{rtt_s / 2.0}, buffer}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtt_s / 2.0}, 512}};
        path = std::make_unique<net::duplex_path>(sched, fwd, rev);
        conduit = std::make_unique<net::path_conduit>(*path);
    }
};

double run_variant(tcp_variant variant, double cap, double rtt, std::size_t buffer,
                   double random_loss, double duration) {
    world w(cap, rtt, buffer);
    if (random_loss > 0) w.path->forward_link(0).set_random_loss(random_loss, 7);
    tcp_config cfg;
    cfg.variant = variant;
    cfg.initial_ssthresh_segments = 128;
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(duration);
    conn.quiesce();
    return static_cast<double>(conn.sender().acked_bytes()) * 8.0 / duration;
}

class all_variants : public ::testing::TestWithParam<tcp_variant> {};

TEST_P(all_variants, delivers_in_order_on_clean_path) {
    world w(10e6, 0.040, 100);
    tcp_config cfg;
    cfg.variant = GetParam();
    cfg.initial_ssthresh_segments = 128;
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(5.0);
    conn.quiesce();
    EXPECT_GT(conn.sender().stats().segments_delivered, 2000u);
    EXPECT_GE(conn.receiver().next_expected(), conn.sender().stats().segments_delivered);
}

TEST_P(all_variants, survives_random_loss) {
    const double goodput = run_variant(GetParam(), 8e6, 0.040, 80, 0.01, 10.0);
    EXPECT_GT(goodput, 0.5e6);
    EXPECT_LT(goodput, 8e6);
}

INSTANTIATE_TEST_SUITE_P(variants, all_variants,
                         ::testing::Values(tcp_variant::tahoe, tcp_variant::newreno,
                                           tcp_variant::sack));

TEST(variant_comparison, sack_beats_newreno_beats_tahoe_under_burst_loss) {
    // Shallow buffer + saturating flow: periodic multi-loss windows. SACK
    // repairs them fastest, Tahoe slow-starts every time.
    const double tahoe = run_variant(tcp_variant::tahoe, 8e6, 0.050, 20, 0.0, 20.0);
    const double newreno = run_variant(tcp_variant::newreno, 8e6, 0.050, 20, 0.0, 20.0);
    const double sack = run_variant(tcp_variant::sack, 8e6, 0.050, 20, 0.0, 20.0);
    EXPECT_GT(sack, newreno * 0.95);  // SACK at least matches NewReno
    EXPECT_GT(newreno, tahoe);        // NewReno clearly beats Tahoe
}

TEST(variant_comparison, sack_recovers_multi_loss_window_without_timeout) {
    // Drop a burst mid-window via heavy random loss for a moment, then
    // check SACK's timeout count stays below NewReno's.
    const auto timeouts_of = [](tcp_variant v) {
        world w(6e6, 0.060, 15);
        tcp_config cfg;
        cfg.variant = v;
        cfg.initial_ssthresh_segments = 128;
        tcp_connection conn(w.sched, *w.conduit, 1, cfg);
        conn.start();
        w.sched.run_until(20.0);
        conn.quiesce();
        return conn.sender().stats().timeouts;
    };
    EXPECT_LE(timeouts_of(tcp_variant::sack), timeouts_of(tcp_variant::newreno) + 1);
}

TEST(sack_receiver, acks_carry_the_out_of_order_block) {
    // Deliver segments 0,1 then 4,5 directly through a conduit and check
    // the SACK block on the dupacks.
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{10e6}, core::seconds{0.01}, 64}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{10e6}, core::seconds{0.01}, 64}};
    net::duplex_path path(sched, fwd, rev);
    net::path_conduit conduit(path);

    std::vector<net::packet> acks;
    conduit.on_deliver_ack(1, [&](net::packet p) { acks.push_back(p); });

    tcp_config cfg;
    cfg.variant = tcp_variant::sack;
    cfg.delayed_ack = false;
    tcp_receiver receiver(sched, conduit, 1, cfg);

    const auto data = [&](std::uint64_t seq) {
        net::packet p;
        p.flow = 1;
        p.kind = net::packet_kind::tcp_data;
        p.size_bytes = 1500;
        p.seq = seq;
        path.send_forward(p);
    };
    data(0);
    data(1);
    data(4);
    data(5);
    sched.run_all();

    ASSERT_GE(acks.size(), 4u);
    const net::packet& dup = acks.back();
    EXPECT_EQ(dup.ack, 2u);         // cumulative: still waiting for 2
    EXPECT_EQ(dup.sack_begin, 4u);  // the out-of-order run [4,6)
    EXPECT_EQ(dup.sack_end, 6u);
}

TEST(tahoe, has_no_fast_recoveries_only_restarts) {
    world w(8e6, 0.040, 20);
    tcp_config cfg;
    cfg.variant = tcp_variant::tahoe;
    cfg.initial_ssthresh_segments = 128;
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(15.0);
    conn.quiesce();
    // Tahoe counts its dupack-triggered restarts as fast_recoveries events
    // (they are congestion events), but never enters recovery state; data
    // still completes correctly.
    EXPECT_GT(conn.sender().stats().segments_delivered, 3000u);
}

}  // namespace
}  // namespace tcppred::tcp
