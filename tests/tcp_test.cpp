#include "tcp/tcp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/units.hpp"
#include "net/cross_traffic.hpp"
#include "probe/bulk_transfer.hpp"

namespace tcppred::tcp {
namespace {

struct world {
    sim::scheduler sched;
    std::unique_ptr<net::duplex_path> path;
    std::unique_ptr<net::path_conduit> conduit;

    world(double cap_bps, double rtt_s, std::size_t buffer) {
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{cap_bps}, core::seconds{rtt_s / 2.0}, buffer}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtt_s / 2.0}, 512}};
        path = std::make_unique<net::duplex_path>(sched, fwd, rev);
        conduit = std::make_unique<net::path_conduit>(*path);
    }
};

TEST(tcp, clean_path_reaches_near_capacity) {
    world w(10e6, 0.040, 100);
    tcp_config cfg;
    cfg.initial_ssthresh_segments = 128;  // cached ssthresh, as on repeat paths
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(10.0);
    conn.quiesce();
    const double goodput = static_cast<double>(conn.sender().acked_bytes()) * 8.0 / 10.0;
    // Payload efficiency 1460/1500 of 10 Mbps ~ 9.7 Mbps, minus slow start.
    EXPECT_GT(goodput, 6.5e6);
    EXPECT_LT(goodput, 10.0e6);
}

TEST(tcp, window_limited_throughput_equals_w_over_rtt) {
    world w(10e6, 0.080, 200);
    tcp_config cfg;
    cfg.max_window_bytes = 20 * 1024;  // W/T ~ 2.05 Mbps << capacity
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(10.0);
    conn.quiesce();
    const double goodput = static_cast<double>(conn.sender().acked_bytes()) * 8.0 / 10.0;
    const double rwnd_segments = std::floor(20.0 * 1024 / 1460.0);
    const double expected = rwnd_segments * 1460 * 8 / 0.080;
    EXPECT_NEAR(goodput, expected, expected * 0.15);
    EXPECT_EQ(conn.sender().stats().timeouts, 0u);
    EXPECT_EQ(conn.sender().stats().fast_recoveries, 0u);
}

TEST(tcp, no_losses_on_uncongested_window_limited_path) {
    world w(10e6, 0.050, 64);
    tcp_config cfg;
    cfg.max_window_bytes = 16 * 1024;
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(5.0);
    conn.quiesce();
    EXPECT_EQ(conn.sender().stats().retransmits, 0u);
}

TEST(tcp, congestion_triggers_fast_recovery_not_only_timeouts) {
    world w(5e6, 0.040, 20);
    tcp_config cfg;  // W = 1 MB >> BDP: will overflow the 20-packet buffer
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(20.0);
    conn.quiesce();
    const auto& st = conn.sender().stats();
    EXPECT_GT(st.fast_recoveries, 0u);
    EXPECT_GT(st.retransmits, 0u);
    // Still must make good progress: above 50% of capacity.
    const double goodput = static_cast<double>(conn.sender().acked_bytes()) * 8.0 / 20.0;
    EXPECT_GT(goodput, 2.5e6);
}

TEST(tcp, recovers_all_data_despite_heavy_cross_traffic) {
    world w(5e6, 0.030, 30);
    // Load the bottleneck to ~70%.
    net::poisson_source cross(w.sched, *w.path, 0, 99, 1234, 3.5e6);
    cross.start();
    tcp_connection conn(w.sched, *w.conduit, 1, tcp_config{});
    conn.start();
    w.sched.run_until(15.0);
    conn.quiesce();
    cross.stop();
    const auto& st = conn.sender().stats();
    // Delivered = cumulatively ACKed: no holes, every byte arrived in order.
    EXPECT_GT(st.segments_delivered, 700u);
    EXPECT_GT(st.retransmits, 0u);
}

TEST(tcp, rtt_estimate_tracks_path_rtt) {
    world w(10e6, 0.060, 100);
    tcp_config cfg;
    cfg.max_window_bytes = 16 * 1024;  // keep queues empty
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(5.0);
    conn.quiesce();
    EXPECT_NEAR(conn.sender().smoothed_rtt().value(), 0.060, 0.015);
}

TEST(tcp, delayed_ack_halves_ack_volume) {
    world w(10e6, 0.040, 100);
    tcp_config cfg;
    cfg.max_window_bytes = 64 * 1024;
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(5.0);
    conn.quiesce();
    const auto sent = conn.sender().stats().segments_sent;
    const auto acks = conn.receiver().acks_sent();
    EXPECT_LT(acks, sent * 3 / 4);
    EXPECT_GT(acks, sent / 3);
}

TEST(tcp, immediate_ack_mode_acks_every_segment) {
    world w(10e6, 0.040, 200);
    tcp_config cfg;
    cfg.delayed_ack = false;
    cfg.max_window_bytes = 32 * 1024;  // window-limited: lossless
    tcp_connection conn(w.sched, *w.conduit, 1, cfg);
    conn.start();
    w.sched.run_until(3.0);
    conn.quiesce();
    EXPECT_EQ(conn.sender().stats().retransmits, 0u);
    EXPECT_GE(conn.receiver().acks_sent() + 30, conn.sender().stats().segments_sent);
}

TEST(tcp, quiesce_halts_all_transmissions) {
    world w(10e6, 0.040, 100);
    tcp_connection conn(w.sched, *w.conduit, 1, tcp_config{});
    conn.start();
    w.sched.run_until(2.0);
    conn.quiesce();
    const auto sent_at_stop = conn.sender().stats().segments_sent;
    w.sched.run_until(6.0);
    EXPECT_EQ(conn.sender().stats().segments_sent, sent_at_stop);
}

TEST(tcp, stop_offers_no_new_data_but_still_retransmits) {
    world w(5e6, 0.040, 15);  // lossy: retransmissions pending at stop
    tcp_connection conn(w.sched, *w.conduit, 1, tcp_config{});
    conn.start();
    w.sched.run_until(3.0);
    conn.stop();
    const auto delivered_at_stop = conn.sender().stats().segments_delivered;
    w.sched.run_until(10.0);
    // The retransmission machinery may still complete in-flight data, but
    // no segment beyond the pre-stop high-water mark is ever delivered.
    EXPECT_GE(conn.sender().stats().segments_delivered, delivered_at_stop);
    conn.quiesce();
}

TEST(tcp, congestion_events_fewer_than_retransmits_under_burst_loss) {
    world w(5e6, 0.040, 15);
    tcp_connection conn(w.sched, *w.conduit, 1, tcp_config{});
    conn.start();
    w.sched.run_until(20.0);
    conn.quiesce();
    const auto& st = conn.sender().stats();
    ASSERT_GT(st.congestion_events(), 0u);
    // Drop-tail drops come in bursts: several retransmitted segments share
    // one congestion event (the p vs p' discrepancy of §3.3).
    EXPECT_GE(st.retransmits, st.congestion_events());
}

TEST(tcp, rtt_samples_are_positive_and_at_least_base_rtt) {
    world w(10e6, 0.050, 50);
    tcp_connection conn(w.sched, *w.conduit, 1, tcp_config{});
    conn.start();
    w.sched.run_until(5.0);
    conn.quiesce();
    const auto& samples = conn.sender().stats().rtt_samples;
    ASSERT_FALSE(samples.empty());
    for (const double s : samples) EXPECT_GE(s, 0.050 - 1e-9);
}

TEST(bulk_transfer, reports_goodput_and_prefix_checkpoints) {
    world w(10e6, 0.030, 100);
    tcp_config cfg;
    cfg.initial_ssthresh_segments = 128;
    probe::bulk_transfer xfer(w.sched, *w.conduit, 1, core::seconds{4.0}, cfg);
    xfer.add_prefix_checkpoints({1.0, 2.0});
    bool called = false;
    xfer.start([&](const probe::probe_result<probe::transfer_result>& r) {
        called = true;
        EXPECT_TRUE(r.ok());
        EXPECT_NEAR(r->duration_s, 4.0, 1e-9);
        EXPECT_GT(r->goodput().value(), 4e6);
        ASSERT_EQ(r->prefix_goodput_bps.size(), 2u);
        EXPECT_DOUBLE_EQ(r->prefix_goodput_bps[0].first, 1.0);
        EXPECT_GT(r->prefix_goodput_bps[1].second, 0.0);
    });
    w.sched.run_until(5.0);
    EXPECT_TRUE(called);
    EXPECT_TRUE(xfer.done());
}

}  // namespace
}  // namespace tcppred::tcp
