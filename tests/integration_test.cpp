// Integration tests across modules: elastic cross flows competing with the
// target through shared_link_conduit, probers running concurrently with
// transfers, and the full epoch pipeline producing consistent artifacts.
#include <gtest/gtest.h>

#include <memory>

#include "core/units.hpp"
#include "core/loss_events.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "probe/bulk_transfer.hpp"
#include "probe/pathload.hpp"
#include "probe/ping_prober.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

namespace tcppred {
namespace {

struct world {
    sim::scheduler sched;
    std::unique_ptr<net::duplex_path> path;

    world(double cap_bps, double rtt_s, std::size_t buffer) {
        std::vector<net::hop_config> fwd{
            net::hop_config{core::bits_per_second{100e6}, core::seconds{rtt_s * 0.1},
                            512},
            net::hop_config{core::bits_per_second{cap_bps}, core::seconds{rtt_s * 0.4},
                            buffer}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtt_s * 0.5}, 512}};
        path = std::make_unique<net::duplex_path>(sched, fwd, rev);
    }
};

TEST(elastic_flows, compete_for_the_bottleneck_and_make_progress) {
    world w(10e6, 0.060, 80);

    // Two elastic competitors over the bottleneck link (index 1).
    std::vector<std::unique_ptr<net::shared_link_conduit>> conduits;
    std::vector<std::unique_ptr<tcp::tcp_connection>> elastic;
    for (int i = 0; i < 2; ++i) {
        conduits.push_back(std::make_unique<net::shared_link_conduit>(
            w.sched, *w.path, 1, 500 + static_cast<net::flow_id>(i), core::seconds{0.01},
            core::seconds{0.01}, core::seconds{0.02}));
        tcp::tcp_config cfg;
        cfg.max_window_bytes = 32 * 1024;
        elastic.push_back(std::make_unique<tcp::tcp_connection>(
            w.sched, *conduits.back(), 500 + static_cast<net::flow_id>(i), cfg));
        elastic.back()->start();
    }

    net::path_conduit conduit(*w.path);
    tcp::tcp_config cfg;
    cfg.initial_ssthresh_segments = 128;
    tcp::tcp_connection target(w.sched, conduit, 1, cfg);
    target.start();

    w.sched.run_until(10.0);
    target.quiesce();
    for (auto& e : elastic) e->quiesce();

    const double target_bps = static_cast<double>(target.sender().acked_bytes()) * 8 / 10;
    double elastic_bps = 0;
    for (auto& e : elastic) {
        EXPECT_GT(e->sender().stats().segments_delivered, 100u);
        elastic_bps += static_cast<double>(e->sender().acked_bytes()) * 8 / 10;
    }
    // Everyone progresses; total is bounded by capacity.
    EXPECT_GT(target_bps, 1e6);
    EXPECT_GT(elastic_bps, 1e6);
    EXPECT_LT(target_bps + elastic_bps, 10e6);
}

TEST(concurrent_measurement, prober_and_transfer_coexist) {
    world w(8e6, 0.050, 60);

    probe::ping_config pc;
    pc.count = 200;
    probe::ping_prober prober(w.sched, *w.path, 7, pc);

    net::path_conduit conduit(*w.path);
    tcp::tcp_config tcfg;
    tcfg.variant = tcp::tcp_variant::sack;
    tcfg.initial_ssthresh_segments = 128;
    probe::bulk_transfer xfer(w.sched, conduit, 1, core::seconds{6.0}, tcfg);

    prober.start();
    xfer.start();
    w.sched.run_until(10.0);

    ASSERT_TRUE(prober.done());
    ASSERT_TRUE(xfer.done());
    // The probe RTT during the transfer reflects the queue the transfer
    // builds: above the 50 ms propagation floor.
    EXPECT_GT(prober.result()->mean_rtt().value(), 0.050);
    EXPECT_GT(xfer.result()->goodput().value(), 2e6);
    // Probe outcomes exist for every probe sent.
    EXPECT_EQ(prober.result()->outcomes.size(), 200u);
    EXPECT_LE(core::loss_event_rate(prober.result()->outcomes),
              core::packet_loss_rate(prober.result()->outcomes) + 1e-12);
}

TEST(concurrent_measurement, pathload_then_transfer_sequence) {
    world w(10e6, 0.040, 80);
    net::poisson_source cross(w.sched, *w.path, 1, 99, 5, 4e6);
    cross.start();
    w.sched.run_until(1.0);

    probe::pathload_config plc;
    plc.max_rate = core::bits_per_second{13e6};
    probe::pathload pl(w.sched, *w.path, 8, plc);
    bool transfer_done = false;
    double availbw = 0, goodput = 0;

    net::path_conduit conduit(*w.path);
    tcp::tcp_config tcfg;
    tcfg.variant = tcp::tcp_variant::sack;
    tcfg.initial_ssthresh_segments = 128;
    probe::bulk_transfer xfer(w.sched, conduit, 1, core::seconds{6.0}, tcfg);

    pl.start([&](const probe::probe_result<probe::pathload_result>& r) {
        availbw = r->estimate().value();
        xfer.start([&](const probe::probe_result<probe::transfer_result>& t) {
            goodput = t->goodput().value();
            transfer_done = true;
        });
    });
    while (!transfer_done && w.sched.now() < 120.0) {
        if (!w.sched.step()) break;
    }
    ASSERT_TRUE(transfer_done);
    EXPECT_GT(availbw, 1e6);
    EXPECT_GT(goodput, 1e6);
    // The saturating transfer should reach the same order as the leftover
    // capacity the avail-bw estimate saw.
    EXPECT_LT(goodput, availbw * 2.5);
    EXPECT_GT(goodput, availbw * 0.2);
}

TEST(rto_backoff, cap_limits_stall_length) {
    // A total outage drops everything; with max_rto_backoff = 2 the RTO
    // plateaus at 4x and retransmissions keep probing.
    world w(5e6, 0.040, 30);
    w.path->forward_link(1).set_random_loss(1.0, 3);  // everything dies

    net::path_conduit conduit(*w.path);
    tcp::tcp_config cfg;
    cfg.max_rto_backoff = 2;
    tcp::tcp_connection conn(w.sched, conduit, 1, cfg);
    conn.start();
    w.sched.run_until(20.0);
    const auto timeouts_capped = conn.sender().stats().timeouts;
    conn.quiesce();

    world w2(5e6, 0.040, 30);
    w2.path->forward_link(1).set_random_loss(1.0, 3);
    net::path_conduit conduit2(*w2.path);
    tcp::tcp_config cfg2;
    cfg2.max_rto_backoff = 6;
    tcp::tcp_connection conn2(w2.sched, conduit2, 1, cfg2);
    conn2.start();
    w2.sched.run_until(20.0);
    conn2.quiesce();

    // Capped backoff retries strictly more often during the outage.
    EXPECT_GT(timeouts_capped, conn2.sender().stats().timeouts);
}

TEST(receiver_edges, duplicate_and_stale_segments_are_reacked) {
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{10e6}, core::seconds{0.01}, 64}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{10e6}, core::seconds{0.01}, 64}};
    net::duplex_path path(sched, fwd, rev);
    net::path_conduit conduit(path);

    std::vector<net::packet> acks;
    conduit.on_deliver_ack(1, [&](net::packet p) { acks.push_back(p); });
    tcp::tcp_config cfg;
    cfg.delayed_ack = false;
    tcp::tcp_receiver receiver(sched, conduit, 1, cfg);

    const auto data = [&](std::uint64_t seq) {
        net::packet p;
        p.flow = 1;
        p.kind = net::packet_kind::tcp_data;
        p.size_bytes = 1500;
        p.seq = seq;
        path.send_forward(p);
    };
    data(0);
    data(1);
    data(0);  // stale duplicate
    data(1);  // stale duplicate
    sched.run_all();
    ASSERT_EQ(acks.size(), 4u);
    EXPECT_EQ(acks.back().ack, 2u);  // cumulative ack re-sent, not regressed
    EXPECT_EQ(receiver.next_expected(), 2u);
}

}  // namespace
}  // namespace tcppred
