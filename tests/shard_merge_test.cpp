// Sharding and merge (testbed/shard.hpp): the merge property — ANY
// partition of the epoch grid into shard checkpoints, merged in ANY order,
// reproduces the serial dataset and its CSV bytes exactly — plus the shard
// arithmetic, heartbeat roundtrip, and the merge failure modes (missing
// shard, incomplete coverage, foreign config).
#include "testbed/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "testbed/campaign.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred;
using testbed::shard_ref;

namespace {

/// Small but non-trivial campaign that runs in well under a second.
testbed::campaign_config quick_config() {
    testbed::campaign_config cfg;
    cfg.paths = 3;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 4;
    cfg.jobs = 1;
    cfg.epoch.warmup = core::seconds{0.5};
    cfg.epoch.prior_ping.count = 60;
    cfg.epoch.transfer = core::seconds{1.5};
    return cfg;
}

std::size_t total_epochs(const testbed::campaign_config& cfg) {
    return static_cast<std::size_t>(cfg.paths) *
           static_cast<std::size_t>(cfg.traces_per_path) *
           static_cast<std::size_t>(cfg.epochs_per_trace);
}

std::string read_file(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Run one slice of the grid into its own checkpoint file; returns the path.
std::filesystem::path run_slice(const testbed::campaign_config& cfg,
                                const std::filesystem::path& dir, int slice_id,
                                std::function<bool(std::size_t)> filter) {
    testbed::campaign_run_options opts;
    opts.checkpoint = dir / ("slice" + std::to_string(slice_id) + ".ckpt");
    opts.keep_checkpoint = true;
    opts.epoch_filter = std::move(filter);
    const auto outcome = testbed::run_campaign_resumable(cfg, opts);
    EXPECT_TRUE(outcome.complete);
    return opts.checkpoint;
}

class shard_merge : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("tcppred_shard_merge_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->line()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

}  // namespace

TEST(shard_arith, parse_validates) {
    EXPECT_FALSE(testbed::parse_shard("").has_value());
    EXPECT_FALSE(testbed::parse_shard("2").has_value());
    EXPECT_FALSE(testbed::parse_shard("a/4").has_value());
    EXPECT_FALSE(testbed::parse_shard("2/x").has_value());
    EXPECT_FALSE(testbed::parse_shard("4/4").has_value());
    EXPECT_FALSE(testbed::parse_shard("-1/4").has_value());
    EXPECT_FALSE(testbed::parse_shard("0/0").has_value());
    const auto ok = testbed::parse_shard("2/4");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->index, 2);
    EXPECT_EQ(ok->count, 4);
}

TEST(shard_arith, filters_partition_the_grid_and_sizes_sum) {
    const std::size_t total = 37;  // deliberately not divisible
    for (const int n : {1, 2, 3, 4, 7}) {
        std::size_t claimed_total = 0;
        for (std::size_t idx = 0; idx < total; ++idx) {
            int owners = 0;
            for (int i = 0; i < n; ++i) {
                if (testbed::shard_filter(shard_ref{i, n})(idx)) ++owners;
            }
            EXPECT_EQ(owners, 1) << "epoch " << idx << " at N=" << n;
        }
        for (int i = 0; i < n; ++i) {
            claimed_total += testbed::shard_size(total, shard_ref{i, n});
        }
        EXPECT_EQ(claimed_total, total) << "N=" << n;
    }
}

TEST(shard_heartbeat, roundtrips_and_rejects_garbage) {
    const auto file = std::filesystem::temp_directory_path() / "tcppred_hb_test";
    testbed::shard_heartbeat hb;
    hb.pid = 4242;
    hb.seq = 17;
    hb.epochs_done = 5;
    hb.epochs_claimed = 9;
    testbed::write_heartbeat(file, hb);
    const auto back = testbed::read_heartbeat(file);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->pid, 4242);
    EXPECT_EQ(back->seq, 17u);
    EXPECT_EQ(back->epochs_done, 5);
    EXPECT_EQ(back->epochs_claimed, 9);

    EXPECT_FALSE(testbed::read_heartbeat(file.string() + ".absent").has_value());
    std::ofstream(file) << "not a heartbeat\n";
    EXPECT_FALSE(testbed::read_heartbeat(file).has_value());
    std::filesystem::remove(file);
}

TEST_F(shard_merge, strided_shards_reproduce_serial_csv_bytes) {
    const auto cfg = quick_config();
    const testbed::dataset serial = testbed::run_campaign(cfg);
    const auto serial_csv = dir_ / "serial.csv";
    testbed::save_csv(serial, serial_csv);

    const int n = 3;
    std::vector<std::filesystem::path> ckpts;
    for (int i = 0; i < n; ++i) {
        ckpts.push_back(
            run_slice(cfg, dir_, i, testbed::shard_filter(shard_ref{i, n})));
    }
    const testbed::dataset merged = testbed::merge_shard_checkpoints(cfg, ckpts);
    const auto merged_csv = dir_ / "merged.csv";
    testbed::save_csv(merged, merged_csv);
    EXPECT_EQ(read_file(serial_csv), read_file(merged_csv));
}

TEST_F(shard_merge, any_partition_any_merge_order_reproduces_serial) {
    // The merge property proper: partitions are random (pinned seeds), parts
    // may be empty, and the merge order is shuffled per trial.
    const auto cfg = quick_config();
    const std::size_t total = total_epochs(cfg);
    const testbed::dataset serial = testbed::run_campaign(cfg);
    const auto serial_csv = dir_ / "serial.csv";
    testbed::save_csv(serial, serial_csv);

    for (const unsigned trial : {1u, 2u, 3u}) {
        std::mt19937_64 gen(trial);  // pinned: failures replay exactly
        const int parts = 2 + static_cast<int>(gen() % 3);  // 2..4
        std::vector<int> owner(total);
        for (auto& o : owner) o = static_cast<int>(gen() % parts);

        std::vector<std::filesystem::path> ckpts;
        for (int part = 0; part < parts; ++part) {
            ckpts.push_back(run_slice(
                cfg, dir_, static_cast<int>(trial) * 10 + part,
                [&owner, part](std::size_t idx) { return owner[idx] == part; }));
        }
        std::shuffle(ckpts.begin(), ckpts.end(), gen);

        const testbed::dataset merged = testbed::merge_shard_checkpoints(cfg, ckpts);
        const auto merged_csv = dir_ / "merged.csv";
        testbed::save_csv(merged, merged_csv);
        EXPECT_EQ(read_file(serial_csv), read_file(merged_csv)) << "trial " << trial;
        for (const auto& p : ckpts) std::filesystem::remove(p);
    }
}

TEST_F(shard_merge, missing_shard_checkpoint_is_an_error) {
    const auto cfg = quick_config();
    const auto present =
        run_slice(cfg, dir_, 0, [](std::size_t) { return true; });
    try {
        (void)testbed::merge_shard_checkpoints(
            cfg, {present, dir_ / "nonexistent.ckpt"});
        FAIL() << "absent shard file must throw";
    } catch (const testbed::dataset_error& e) {
        EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos)
            << e.what();
    }
}

TEST_F(shard_merge, incomplete_coverage_is_an_error) {
    const auto cfg = quick_config();
    // Only even epochs: merge must refuse and say how many are missing.
    const auto evens =
        run_slice(cfg, dir_, 0, [](std::size_t idx) { return idx % 2 == 0; });
    try {
        (void)testbed::merge_shard_checkpoints(cfg, {evens});
        FAIL() << "uncovered epochs must throw";
    } catch (const testbed::dataset_error& e) {
        EXPECT_NE(std::string(e.what()).find("cover only"), std::string::npos)
            << e.what();
    }
}

TEST_F(shard_merge, foreign_config_checkpoint_is_rejected) {
    const auto cfg = quick_config();
    testbed::campaign_config other = cfg;
    other.seed = 999;
    const auto foreign = run_slice(other, dir_, 0, [](std::size_t) { return true; });
    EXPECT_THROW((void)testbed::merge_shard_checkpoints(cfg, {foreign}),
                 testbed::dataset_error);
}

TEST_F(shard_merge, overlapping_shards_merge_cleanly) {
    // Overlap is legal: slot contents are deterministic, so a twice-covered
    // epoch is byte-identical in both checkpoints.
    const auto cfg = quick_config();
    const testbed::dataset serial = testbed::run_campaign(cfg);
    const auto a = run_slice(cfg, dir_, 0, [](std::size_t idx) { return idx < 8; });
    const auto b = run_slice(cfg, dir_, 1, [](std::size_t idx) { return idx >= 4; });
    const testbed::dataset merged = testbed::merge_shard_checkpoints(cfg, {a, b});
    const auto serial_csv = dir_ / "serial.csv";
    const auto merged_csv = dir_ / "merged.csv";
    testbed::save_csv(serial, serial_csv);
    testbed::save_csv(merged, merged_csv);
    EXPECT_EQ(read_file(serial_csv), read_file(merged_csv));
}
