// Unit tests for the campaign thread pool (sim/thread_pool): every submitted
// task runs exactly once, exceptions propagate to the waiter, parallel_for
// covers [0, n) exactly, and the serial fallback bypasses the pool.
#include "sim/thread_pool.hpp"

#include "core/checked_parse.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace tcppred::sim;

TEST(thread_pool, runs_every_task_exactly_once) {
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& r : runs) r.store(0);

    thread_pool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&runs, i] { runs[static_cast<std::size_t>(i)].fetch_add(1); });
    }
    pool.wait();
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
    }
}

TEST(thread_pool, wait_rethrows_first_task_exception) {
    thread_pool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&completed, i] {
            if (i == 5) throw std::runtime_error("boom");
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure does not poison the pool: non-throwing tasks all ran and
    // the pool is reusable afterwards.
    EXPECT_EQ(completed.load(), 15);
    pool.submit([&completed] { completed.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(completed.load(), 16);
}

TEST(thread_pool, task_error_propagates_exactly_once) {
    // The first error is handed to exactly one wait() call; a later wait()
    // must not rethrow it again (double-reporting a failure upstream would
    // make callers retry work that already ran).
    thread_pool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_NO_THROW(pool.wait());
}

TEST(thread_pool, pool_drains_in_flight_work_on_error) {
    // Tasks already queued when one throws still run to completion: the
    // worker fleet drains rather than abandoning work mid-air.
    thread_pool pool(4);
    std::atomic<int> completed{0};
    pool.submit([] { throw std::runtime_error("early failure"); });
    for (int i = 0; i < 64; ++i) {
        pool.submit([&completed] { completed.fetch_add(1); });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(completed.load(), 64);
}

TEST(thread_pool, wait_with_no_work_returns_immediately) {
    thread_pool pool(3);
    pool.wait();  // must not deadlock
    pool.wait();
}

TEST(parallel_for, covers_every_index_exactly_once) {
    constexpr std::size_t kN = 1000;
    for (const unsigned jobs : {1u, 2u, 4u, 13u}) {
        std::vector<std::atomic<int>> runs(kN);
        for (auto& r : runs) r.store(0);
        parallel_for(kN, jobs, [&](std::size_t i) { runs[i].fetch_add(1); });
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(runs[i].load(), 1) << "index " << i << " jobs " << jobs;
        }
    }
}

TEST(parallel_for, serial_fallback_runs_in_order_on_calling_thread) {
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallel_for(10, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // no locking needed: single-threaded by contract
    });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(parallel_for, propagates_body_exception) {
    EXPECT_THROW(
        parallel_for(100, 4,
                     [](std::size_t i) {
                         if (i == 42) throw std::runtime_error("epoch failed");
                     }),
        std::runtime_error);
    // Serial fallback propagates directly too.
    EXPECT_THROW(
        parallel_for(100, 1,
                     [](std::size_t i) {
                         if (i == 3) throw std::runtime_error("epoch failed");
                     }),
        std::runtime_error);
}

TEST(parallel_for, zero_items_is_a_no_op) {
    parallel_for(0, 4, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(jobs_from_env, parses_repro_jobs_and_defaults_to_hardware) {
    ::setenv("REPRO_JOBS", "3", 1);
    EXPECT_EQ(jobs_from_env(), 3u);
    ::setenv("REPRO_JOBS", "0", 1);  // 0 -> auto, like the tools' --jobs 0
    EXPECT_GE(jobs_from_env(), 1u);
    ::setenv("REPRO_JOBS", "", 1);  // empty -> unset -> auto
    EXPECT_GE(jobs_from_env(), 1u);
    ::unsetenv("REPRO_JOBS");
    EXPECT_GE(jobs_from_env(), 1u);
}

TEST(jobs_from_env, rejects_garbage_loudly) {
    // The old behaviour silently fell back to all cores; a typo'd value now
    // surfaces as a typed parse error naming the knob.
    ::setenv("REPRO_JOBS", "garbage", 1);
    EXPECT_THROW((void)jobs_from_env(), tcppred::core::parse_error);
    ::setenv("REPRO_JOBS", "8x", 1);
    EXPECT_THROW((void)jobs_from_env(), tcppred::core::parse_error);
    ::setenv("REPRO_JOBS", "-2", 1);
    EXPECT_THROW((void)jobs_from_env(), tcppred::core::parse_error);
    ::unsetenv("REPRO_JOBS");
}
