#include "core/fb_predictor.hpp"

#include <gtest/gtest.h>

#include "core/contracts.hpp"
#include "core/metrics.hpp"

namespace tcppred::core {
namespace {

const tcp_flow_params k_flow{bytes{1460.0}, 2, bytes{1 << 20}};

path_measurement measurement(double p, double rtt_s, double abw_bps) {
    return path_measurement{probability{p}, seconds{rtt_s}, bits_per_second{abw_bps}};
}

TEST(fb_predict, lossy_path_uses_model_branch) {
    const path_measurement m = measurement(0.01, 0.060, 5e6);
    const fb_prediction pred = fb_predict(k_flow, m);
    EXPECT_EQ(pred.branch, fb_branch::model_based);
    EXPECT_NEAR(
        pred.throughput.value(),
        pftk_throughput(k_flow, seconds{0.060}, probability{0.01}, seconds{1.0}).value(),
        1.0);
}

TEST(fb_predict, lossless_path_uses_availbw_when_below_window_bound) {
    const path_measurement m = measurement(0.0, 0.060, 5e6);  // W/T ~ 140 Mbps >> Â
    const fb_prediction pred = fb_predict(k_flow, m);
    EXPECT_EQ(pred.branch, fb_branch::avail_bw);
    EXPECT_DOUBLE_EQ(pred.throughput.value(), 5e6);
}

TEST(fb_predict, lossless_window_limited_uses_window_bound) {
    tcp_flow_params f = k_flow;
    f.max_window = bytes{20.0 * 1024.0};  // W/T ~ 2.7 Mbps < Â
    const path_measurement m = measurement(0.0, 0.060, 5e6);
    const fb_prediction pred = fb_predict(f, m);
    EXPECT_EQ(pred.branch, fb_branch::window_bound);
    EXPECT_DOUBLE_EQ(pred.throughput.value(), 20 * 1024 * 8.0 / 0.060);
}

TEST(fb_predict, missing_availbw_falls_back_to_window_bound) {
    const path_measurement m = measurement(0.0, 0.060, 0.0);
    const fb_prediction pred = fb_predict(k_flow, m);
    EXPECT_EQ(pred.branch, fb_branch::window_bound);
}

TEST(fb_predict, custom_t0_is_respected) {
    const path_measurement m = measurement(0.02, 0.060, 0.0);
    const double with_default = fb_predict(k_flow, m).throughput.value();  // T0 = 1 s
    const double with_longer =
        fb_predict(k_flow, m, fb_formula::pftk, seconds{3.0}).throughput.value();
    EXPECT_GT(with_default, with_longer);
}

TEST(fb_predict, formula_selector_switches_models) {
    const path_measurement m = measurement(0.05, 0.080, 0.0);
    const double sq = fb_predict(k_flow, m, fb_formula::square_root).throughput.value();
    const double pftk = fb_predict(k_flow, m, fb_formula::pftk).throughput.value();
    const double full = fb_predict(k_flow, m, fb_formula::pftk_full).throughput.value();
    EXPECT_GT(sq, pftk);  // square-root ignores timeouts
    EXPECT_NE(pftk, full);
}

TEST(fb_predict, contract_rejects_nonpositive_rtt) {
#if TCPPRED_CHECKS
    const path_measurement m = measurement(0.01, 0.0, 0.0);
    EXPECT_THROW((void)fb_predict(k_flow, m), contract_violation);
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

TEST(relative_error, zero_for_exact_prediction) {
    EXPECT_DOUBLE_EQ(relative_error(5e6, 5e6), 0.0);
}

TEST(relative_error, symmetric_over_and_under_estimation) {
    // Predicting w*R or R/w must yield |E| = w - 1 (the property Eq. 4 is
    // designed for).
    const double r = 2e6;
    for (const double w : {1.5, 2.0, 5.0, 10.0}) {
        EXPECT_NEAR(relative_error(w * r, r), w - 1.0, 1e-9);
        EXPECT_NEAR(relative_error(r / w, r), -(w - 1.0), 1e-9);
    }
}

TEST(relative_error, sign_tracks_direction) {
    EXPECT_GT(relative_error(2e6, 1e6), 0.0);  // overestimate
    EXPECT_LT(relative_error(1e6, 2e6), 0.0);  // underestimate
}

TEST(rmsre_metric, matches_hand_computation) {
    const std::vector<double> errors{1.0, -1.0, 2.0};
    EXPECT_NEAR(rmsre(errors), std::sqrt((1.0 + 1.0 + 4.0) / 3.0), 1e-12);
}

TEST(rmsre_metric, empty_is_nan) {
    // An empty series has no error evidence at all — NaN, not a perfect 0
    // (0 would score an all-faulty trace as a flawless forecast).
    EXPECT_TRUE(std::isnan(rmsre(std::vector<double>{})));
}

}  // namespace
}  // namespace tcppred::core
