// The streaming evaluation engine and its series-level scoring loop
// (analysis/evaluation.hpp): warmup/outlier/index semantics of
// evaluate_series, gap handling for fault-flagged epochs, and the
// determinism contract (byte-identical results for any jobs value).
#include "analysis/evaluation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/hb_predictors.hpp"
#include "core/lso.hpp"
#include "core/predictor.hpp"
#include "core/units.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::analysis {
namespace {

using testbed::dataset;
using testbed::epoch_record;

core::history_predictor ma(std::size_t order) {
    return core::history_predictor(std::make_unique<core::moving_average>(order));
}

TEST(evaluate_series_fn, perfect_predictor_on_constant_series) {
    const std::vector<double> series(20, 5.0);
    const series_evaluation e = evaluate_series(series, ma(5));
    EXPECT_DOUBLE_EQ(e.rmsre, 0.0);
    EXPECT_EQ(e.forecasts(), 19u);  // warmup skips index 0
}

TEST(evaluate_series_fn, errors_align_with_indices) {
    // bps-scale values: relative_error clamps its denominator at
    // k_min_error_denominator_bps, so unit-scale toy numbers would hit the
    // floor instead of exercising the ratio.
    const std::vector<double> series{10e6, 20e6, 20e6};
    const series_evaluation e = evaluate_series(series, ma(1));
    ASSERT_EQ(e.errors.size(), 2u);
    EXPECT_EQ(e.indices[0], 1u);
    // Forecast 10M for actual 20M: E = (10M-20M)/10M = -1.
    EXPECT_DOUBLE_EQ(e.errors[0], -1.0);
    EXPECT_DOUBLE_EQ(e.errors[1], 0.0);
}

TEST(evaluate_series_fn, warmup_skips_initial_forecasts) {
    const std::vector<double> series{1.0, 1.0, 1.0, 1.0, 1.0};
    series_options opts;
    opts.warmup = 3;
    const series_evaluation e = evaluate_series(series, ma(1), opts);
    EXPECT_EQ(e.forecasts(), 2u);
}

TEST(evaluate_series_fn, excludes_outliers_when_requested) {
    std::vector<double> series(10, 10.0);
    series.push_back(100.0);  // outlier: a huge error for any predictor
    series.insert(series.end(), 5, 10.0);

    const series_evaluation with = evaluate_series(series, ma(5));

    series_options drop;
    drop.exclude_outliers = true;
    const series_evaluation without = evaluate_series(series, ma(5), drop);

    EXPECT_GT(with.rmsre, without.rmsre * 2.0);
}

TEST(evaluate_series_fn, lso_wrapper_beats_plain_on_shifted_series) {
    std::vector<double> series(15, 10.0);
    series.insert(series.end(), 15, 30.0);

    const series_evaluation plain = evaluate_series(series, ma(10));
    const core::history_predictor lso_proto(std::make_unique<core::lso_predictor>(
        std::make_unique<core::moving_average>(10)));
    const series_evaluation lso = evaluate_series(series, lso_proto);
    EXPECT_LT(lso.rmsre, plain.rmsre);
}

TEST(evaluate_series_fn, nan_samples_are_gaps_not_scores) {
    // A NaN mid-series is never scored and never pollutes the history.
    std::vector<double> series(6, 8.0);
    series[3] = std::numeric_limits<double>::quiet_NaN();
    const series_evaluation e = evaluate_series(series, ma(3));
    EXPECT_EQ(e.forecasts(), 4u);  // indices 1, 2, 4, 5
    EXPECT_DOUBLE_EQ(e.rmsre, 0.0);
    for (const std::size_t i : e.indices) EXPECT_NE(i, 3u);
}

TEST(downsample_fn, keeps_every_kth_sample) {
    const std::vector<double> s{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(downsample(s, 1), s);
    EXPECT_EQ(downsample(s, 3), (std::vector<double>{0, 3, 6, 9}));
    EXPECT_EQ(downsample(s, 15), (std::vector<double>{0}));
}

TEST(downsample_fn, rejects_factor_zero) {
    EXPECT_THROW(downsample({1.0}, 0), std::invalid_argument);
}

/// 4 paths x 2 traces x 10 epochs with varied-but-deterministic values.
dataset grid_dataset() {
    dataset data;
    for (int path = 0; path < 4; ++path) {
        testbed::path_profile p;
        p.id = path;
        p.name = "p";
        p.name += std::to_string(path);
        p.forward = {net::hop_config{core::bits_per_second{10e6}, core::seconds{0.02}, 64}};
        p.reverse = {net::hop_config{core::bits_per_second{100e6}, core::seconds{0.02}, 64}};
        data.paths.push_back(p);
        for (int trace = 0; trace < 2; ++trace) {
            for (int e = 0; e < 10; ++e) {
                epoch_record r;
                r.path_id = path;
                r.trace_id = trace;
                r.epoch_index = e;
                r.m.phat = path % 2 == 0 ? 0.004 * (1 + e % 3) : 0.0;
                r.m.that_s = 0.04 + 0.005 * path;
                r.m.avail_bw_bps = 4e6 + 1e6 * path;
                r.m.ptilde = r.m.phat * 2;
                r.m.ttilde_s = r.m.that_s + 0.01;
                r.m.r_large_bps = 2e6 + 3e5 * ((e + path) % 4) + 1e5 * trace;
                r.m.r_small_bps = 1e6 + 1e5 * (e % 2);
                data.records.push_back(r);
            }
        }
    }
    return data;
}

TEST(engine_faults, faulty_epochs_become_gaps_and_fallbacks) {
    dataset data = grid_dataset();
    // Path 0, trace 0, epoch 4: both the a-priori view and the transfer
    // measurement fault out.
    for (auto& r : data.records) {
        if (r.path_id == 0 && r.trace_id == 0 && r.epoch_index == 4) {
            r.m.fault_flags = testbed::fault_pathload_failed |
                              testbed::fault_transfer_aborted;
        }
    }
    const auto results =
        evaluation_engine{}.run(data,
                                std::vector<std::string>{"fb:pftk", "10-MA-LSO"});

    for (const auto& result : results) {
        for (const auto& t : result.traces) {
            for (const auto& e : t.epochs) {
                // The faulted epoch is never scored (its actual is missing).
                EXPECT_FALSE(e.rec->path_id == 0 && e.rec->trace_id == 0 &&
                             e.rec->epoch_index == 4)
                    << result.name;
            }
        }
    }

    // The faulted epoch's stale fallback prediction existed but was never
    // scored (no actual), so no scored epoch carries staleness.
    for (const auto& e : results[0].all_epochs()) EXPECT_EQ(e.staleness, 0u);

    const auto cond = rmsre_conditioned(results[0]);
    EXPECT_EQ(cond.n_faulty, 0u);
    EXPECT_GT(cond.n_clean, 0u);
}

TEST(engine_faults, apriori_fault_alone_scores_with_stale_inputs) {
    dataset data = grid_dataset();
    // Only the a-priori probing faults; the transfer itself succeeds, so FB
    // must score the epoch from its last good measurement (staleness 1).
    for (auto& r : data.records) {
        if (r.path_id == 1 && r.trace_id == 0 && r.epoch_index == 5) {
            r.m.fault_flags = testbed::fault_ping_degraded;
        }
    }
    const auto fb = evaluation_engine{}.run_one(data, "fb:pftk");
    bool found = false;
    for (const auto& e : fb.all_epochs()) {
        if (e.rec->path_id == 1 && e.rec->trace_id == 0 && e.rec->epoch_index == 5) {
            found = true;
            EXPECT_EQ(e.staleness, 1u);
        } else {
            EXPECT_EQ(e.staleness, 0u);
        }
    }
    EXPECT_TRUE(found);
    const auto cond = rmsre_conditioned(fb);
    EXPECT_EQ(cond.n_faulty, 1u);
    EXPECT_EQ(cond.n_stale, 1u);
}

TEST(engine_determinism, byte_identical_for_any_jobs_value) {
    const auto data = grid_dataset();
    const std::vector<std::string> specs{"fb:pftk", "10-MA-LSO", "0.8-HW",
                                         "hybrid:0.8-HW-LSO", "NWS"};
    engine_options serial;
    serial.jobs = 1;
    const auto base = evaluation_engine{serial}.run(data, specs);

    for (const int jobs : {2, 4}) {
        engine_options par;
        par.jobs = jobs;
        const auto got = evaluation_engine{par}.run(data, specs);
        ASSERT_EQ(got.size(), base.size());
        for (std::size_t pj = 0; pj < base.size(); ++pj) {
            EXPECT_EQ(got[pj].name, base[pj].name);
            ASSERT_EQ(got[pj].traces.size(), base[pj].traces.size()) << jobs;
            for (std::size_t ti = 0; ti < base[pj].traces.size(); ++ti) {
                const auto& a = base[pj].traces[ti];
                const auto& b = got[pj].traces[ti];
                EXPECT_EQ(a.path_id, b.path_id);
                EXPECT_EQ(a.trace_id, b.trace_id);
                // Bitwise, not approximate: the determinism contract.
                EXPECT_EQ(a.rmsre, b.rmsre);
                ASSERT_EQ(a.epochs.size(), b.epochs.size());
                for (std::size_t ei = 0; ei < a.epochs.size(); ++ei) {
                    EXPECT_EQ(a.epochs[ei].predicted_bps, b.epochs[ei].predicted_bps);
                    EXPECT_EQ(a.epochs[ei].error, b.epochs[ei].error);
                }
            }
        }
    }
}

TEST(engine_contract, bad_spec_throws_before_touching_data) {
    const auto data = grid_dataset();
    EXPECT_THROW(evaluation_engine{}.run(
                     data, std::vector<std::string>{"10-MA", "10-XX"}),
                 core::predictor_spec_error);
    engine_options bad;
    bad.downsample = 0;
    EXPECT_THROW(evaluation_engine{bad}.run_one(data, "10-MA"),
                 std::invalid_argument);
}

TEST(engine_contract, short_traces_are_omitted_for_history_predictors) {
    dataset data;
    testbed::path_profile p;
    p.id = 0;
    p.name = "p0";
    data.paths.push_back(p);
    for (int e = 0; e < 2; ++e) {  // 2 epochs < history min_trace_length 3
        epoch_record r;
        r.path_id = 0;
        r.trace_id = 0;
        r.epoch_index = e;
        r.m.phat = 0.0;
        r.m.that_s = 0.05;
        r.m.avail_bw_bps = 5e6;
        r.m.r_large_bps = 2e6;
        r.m.r_small_bps = 1e6;
        data.records.push_back(r);
    }
    const auto results =
        evaluation_engine{}.run(data, std::vector<std::string>{"10-MA", "fb:pftk"});
    EXPECT_TRUE(results[0].traces.empty());   // HB: trace too short
    EXPECT_EQ(results[1].traces.size(), 1u);  // FB: scored from epoch 0
}

}  // namespace
}  // namespace tcppred::analysis
