// Compile-fail test: passing the loss rate where the RTT belongs (and vice
// versa) must not compile. The build system compiles this file twice: once
// as-is (must succeed) and once with -DTCPPRED_EXPECT_COMPILE_FAIL (must
// fail), see tests/CMakeLists.txt.
#include "core/fb_formulas.hpp"

namespace tcppred::core {

bits_per_second use() {
    const tcp_flow_params flow;
#ifdef TCPPRED_EXPECT_COMPILE_FAIL
    // Arguments swapped: probability where seconds belongs and vice versa.
    return pftk_throughput(flow, probability{0.01}, seconds{0.06}, seconds{1.0});
#else
    return pftk_throughput(flow, seconds{0.06}, probability{0.01}, seconds{1.0});
#endif
}

}  // namespace tcppred::core
