// Compile-fail test: cross-unit arithmetic (adding seconds to a rate,
// assigning a bare double to a strong type) must not compile. Compiled
// twice by tests/CMakeLists.txt: once as-is (must succeed), once with
// -DTCPPRED_EXPECT_COMPILE_FAIL (must fail).
#include "core/units.hpp"

namespace tcppred::core {

double use() {
    const seconds rtt{0.06};
    const bits_per_second abw{5e6};
#ifdef TCPPRED_EXPECT_COMPILE_FAIL
    const auto nonsense = rtt + abw;  // seconds + bits_per_second: no such operator
    return nonsense.value();
#else
    const seconds doubled = rtt + rtt;
    return doubled.value() + abw.value();
#endif
}

}  // namespace tcppred::core
