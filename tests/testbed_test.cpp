#include <gtest/gtest.h>

#include <filesystem>

#include "core/units.hpp"
#include "testbed/campaign.hpp"
#include "testbed/epoch_runner.hpp"
#include "testbed/load_process.hpp"
#include "testbed/path_catalog.hpp"

namespace tcppred::testbed {
namespace {

TEST(path_catalog, produces_requested_count_and_mix) {
    const auto paths = ron_like_catalog(35, 1);
    ASSERT_EQ(paths.size(), 35u);
    int dsl = 0, eu = 0, kr = 0;
    for (const auto& p : paths) {
        if (p.klass == path_class::dsl) ++dsl;
        if (p.klass == path_class::transatlantic) ++eu;
        if (p.klass == path_class::transpacific) ++kr;
    }
    EXPECT_EQ(dsl, 7);   // 7/35 DSL bottlenecks, as in the paper
    EXPECT_EQ(eu, 5);    // 5 transatlantic
    EXPECT_EQ(kr, 1);    // 1 Korea path
}

TEST(path_catalog, is_deterministic_in_seed) {
    const auto a = ron_like_catalog(10, 42);
    const auto b = ron_like_catalog(10, 42);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].bottleneck_capacity().value(), b[i].bottleneck_capacity().value());
        EXPECT_DOUBLE_EQ(a[i].base_utilization, b[i].base_utilization);
    }
    const auto c = ron_like_catalog(10, 43);
    bool any_differ = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_differ |= a[i].bottleneck_capacity() != c[i].bottleneck_capacity();
    }
    EXPECT_TRUE(any_differ);
}

TEST(path_catalog, class_parameters_in_range) {
    for (const auto& p : ron_like_catalog(35, 7)) {
        if (p.klass == path_class::dsl) {
            EXPECT_LT(p.bottleneck_capacity().value(), 3.5e6);
        } else {
            EXPECT_GE(p.bottleneck_capacity().value(), 9e6);
        }
        if (p.klass == path_class::transatlantic) {
            EXPECT_GE(p.base_rtt().value(), 0.09);
        }
        if (p.klass == path_class::transpacific) {
            EXPECT_GE(p.base_rtt().value(), 0.2);
        }
        EXPECT_GT(p.forward.at(p.bottleneck).buffer_packets, 8u);
    }
}

TEST(load_process, deterministic_and_bounded) {
    const auto paths = ron_like_catalog(5, 3);
    const auto a = load_trajectory(paths[0], 99, 200);
    const auto b = load_trajectory(paths[0], 99, 200);
    ASSERT_EQ(a.size(), 200u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].utilization, b[i].utilization);
        EXPECT_GE(a[i].utilization, 0.0);
        EXPECT_LE(a[i].utilization, 0.97);
        EXPECT_GE(a[i].elastic_flows, 0);
    }
}

TEST(load_process, shifts_occur_at_configured_rate) {
    auto paths = ron_like_catalog(1, 3);
    paths[0].shift_probability = 0.05;
    int shifts = 0;
    for (int trace = 0; trace < 20; ++trace) {
        for (const auto& s : load_trajectory(paths[0], static_cast<std::uint64_t>(trace), 100)) {
            shifts += s.regime_shift ? 1 : 0;
        }
    }
    // 2000 epochs at 5%: expect ~100 shifts, allow wide slack.
    EXPECT_GT(shifts, 40);
    EXPECT_LT(shifts, 220);
}

class epoch_fixture : public ::testing::Test {
protected:
    static epoch_config fast_epoch() {
        epoch_config cfg;
        cfg.warmup = core::seconds{0.5};
        cfg.prior_ping.count = 150;
        cfg.transfer = core::seconds{4.0};
        return cfg;
    }
};

TEST_F(epoch_fixture, lightly_loaded_path_yields_sane_measurements) {
    auto paths = ron_like_catalog(35, 1);
    // Pick a US path and force light load.
    const path_profile* us = nullptr;
    for (const auto& p : paths) {
        if (p.klass == path_class::us_university) {
            us = &p;
            break;
        }
    }
    ASSERT_NE(us, nullptr);
    load_state load;
    load.utilization = 0.1;
    load.elastic_flows = 0;

    const epoch_measurement m = run_epoch(*us, load, 7, fast_epoch());
    const double cap = us->bottleneck_capacity().value();

    EXPECT_GT(m.that_s, us->base_rtt().value() * 0.9);
    EXPECT_LT(m.that_s, us->base_rtt().value() + 0.05);
    EXPECT_LT(m.phat, 0.05);
    EXPECT_GT(m.avail_bw_bps, cap * 0.4);
    EXPECT_LT(m.avail_bw_bps, cap * 1.4);
    // W=1MB saturates the leftover capacity.
    EXPECT_GT(m.r_large_bps, cap * 0.3);
    EXPECT_LT(m.r_large_bps, cap);
    // The companion W=20KB transfer is window-limited and slower.
    EXPECT_GT(m.r_small_bps, 0.0);
    EXPECT_LT(m.r_small_bps, m.r_large_bps);
}

TEST_F(epoch_fixture, heavy_load_inflates_loss_and_rtt_during_flow) {
    auto paths = ron_like_catalog(35, 1);
    const path_profile* us = nullptr;
    for (const auto& p : paths) {
        if (p.klass == path_class::us_university) {
            us = &p;
            break;
        }
    }
    ASSERT_NE(us, nullptr);
    load_state load;
    load.utilization = 0.75;
    load.elastic_flows = 2;

    const epoch_measurement m = run_epoch(*us, load, 7, fast_epoch());
    // The saturating target flow pushes the queue: the during-flow probing
    // view must show at least as much loss and delay (§4.2.2).
    EXPECT_GE(m.ptilde, m.phat);
    EXPECT_GT(m.ttilde_s, m.that_s * 0.95);
    EXPECT_GT(m.r_large_bps, 0.0);
}

TEST_F(epoch_fixture, epoch_is_deterministic_in_seed) {
    auto paths = ron_like_catalog(5, 2);
    load_state load;
    load.utilization = 0.4;
    load.elastic_flows = 1;
    const epoch_measurement a = run_epoch(paths[2], load, 123, fast_epoch());
    const epoch_measurement b = run_epoch(paths[2], load, 123, fast_epoch());
    EXPECT_DOUBLE_EQ(a.r_large_bps, b.r_large_bps);
    EXPECT_DOUBLE_EQ(a.phat, b.phat);
    EXPECT_DOUBLE_EQ(a.avail_bw_bps, b.avail_bw_bps);
    const epoch_measurement c = run_epoch(paths[2], load, 124, fast_epoch());
    EXPECT_NE(a.r_large_bps, c.r_large_bps);
}

TEST_F(epoch_fixture, prefix_checkpoints_recorded_for_campaign2_plan) {
    auto paths = second_campaign_catalog(2, 5);
    load_state load;
    load.utilization = 0.3;
    epoch_config cfg = fast_epoch();
    cfg.transfer = core::seconds{3.0};
    cfg.prefix_s = {1.0, 2.0, 3.0};
    cfg.run_small_window = false;
    const epoch_measurement m = run_epoch(paths[1], load, 9, cfg);
    ASSERT_EQ(m.prefix_goodputs.size(), 3u);
    EXPECT_DOUBLE_EQ(m.prefix_goodputs[0].first, 1.0);
    EXPECT_GT(m.prefix_goodputs[2].second, 0.0);
    EXPECT_DOUBLE_EQ(m.r_small_bps, 0.0);
}

TEST(dataset_io, csv_roundtrip_preserves_records) {
    campaign_config cfg;
    cfg.paths = 2;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 3;
    cfg.epoch.warmup = core::seconds{0.5};
    cfg.epoch.prior_ping.count = 80;
    cfg.epoch.transfer = core::seconds{1.5};
    const dataset data = run_campaign(cfg);
    ASSERT_EQ(data.records.size(), 6u);

    const auto file = std::filesystem::temp_directory_path() / "tcppred_roundtrip.csv";
    save_csv(data, file);
    const dataset loaded = load_csv(file);
    std::filesystem::remove(file);

    ASSERT_EQ(loaded.records.size(), data.records.size());
    ASSERT_EQ(loaded.paths.size(), data.paths.size());
    for (std::size_t i = 0; i < data.records.size(); ++i) {
        const auto& a = data.records[i];
        const auto& b = loaded.records[i];
        EXPECT_EQ(a.path_id, b.path_id);
        EXPECT_EQ(a.epoch_index, b.epoch_index);
        EXPECT_NEAR(a.m.r_large_bps, b.m.r_large_bps, 1.0);
        EXPECT_NEAR(a.m.phat, b.m.phat, 1e-9);
        EXPECT_NEAR(a.m.avail_bw_bps, b.m.avail_bw_bps, 1.0);
    }
    EXPECT_EQ(loaded.profile(0).name, data.paths[0].name);
}

TEST(dataset_io, throughput_series_ordered_by_epoch) {
    dataset data;
    for (int e : {2, 0, 1}) {
        epoch_record r;
        r.path_id = 0;
        r.trace_id = 0;
        r.epoch_index = e;
        r.m.r_large_bps = 100.0 * e;
        data.records.push_back(r);
    }
    EXPECT_EQ(data.throughput_series(0, 0), (std::vector<double>{0.0, 100.0, 200.0}));
}

TEST(campaign_cfg, scales_are_ordered) {
    const auto tiny = campaign1_config(campaign_scale::tiny);
    const auto normal = campaign1_config(campaign_scale::normal);
    const auto paper = campaign1_config(campaign_scale::paper);
    EXPECT_LT(tiny.paths * tiny.traces_per_path * tiny.epochs_per_trace,
              normal.paths * normal.traces_per_path * normal.epochs_per_trace);
    EXPECT_LT(normal.paths * normal.traces_per_path * normal.epochs_per_trace,
              paper.paths * paper.traces_per_path * paper.epochs_per_trace);
    EXPECT_EQ(paper.paths, 35);
    EXPECT_EQ(paper.traces_per_path, 7);
    EXPECT_EQ(paper.epochs_per_trace, 150);
}

TEST(campaign_cfg, second_set_uses_prefix_plan) {
    const auto cfg = campaign2_config(campaign_scale::normal);
    EXPECT_TRUE(cfg.second_set);
    EXPECT_EQ(cfg.epoch.prefix_s.size(), 3u);
    EXPECT_FALSE(cfg.epoch.run_small_window);
    EXPECT_EQ(cfg.paths, 24);
}

}  // namespace
}  // namespace tcppred::testbed
