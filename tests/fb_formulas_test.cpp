#include "core/fb_formulas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"

namespace tcppred::core {
namespace {

const tcp_flow_params k_flow{bytes{1460.0}, 2, bytes{1 << 20}};

TEST(square_root, matches_hand_computation) {
    // E[R] = M / (T sqrt(2bp/3)), M=1460B, T=0.1s, b=2, p=0.01.
    const double expected = 1460.0 * 8.0 / (0.1 * std::sqrt(2.0 * 2.0 * 0.01 / 3.0));
    EXPECT_NEAR(square_root_throughput(k_flow, seconds{0.1}, probability{0.01}).value(),
                expected, 1.0);
}

TEST(square_root, lossless_returns_window_bound) {
    EXPECT_DOUBLE_EQ(
        square_root_throughput(k_flow, seconds{0.1}, probability{0.0}).value(),
        k_flow.max_window.value() * 8.0 / 0.1);
}

TEST(square_root, caps_at_window_bound) {
    // Tiny loss: raw formula would exceed W/T.
    tcp_flow_params f = k_flow;
    f.max_window = bytes{10000.0};
    const double bound = f.max_window.value() * 8.0 / 0.1;
    EXPECT_DOUBLE_EQ(
        square_root_throughput(f, seconds{0.1}, probability{1e-9}).value(), bound);
}

TEST(pftk, approaches_square_root_for_small_loss) {
    // With negligible timeout term the two models converge.
    const probability p{1e-4};
    const double sq = square_root_throughput(k_flow, seconds{0.05}, p).value();
    const double pf = pftk_throughput(k_flow, seconds{0.05}, p, seconds{1.0}).value();
    EXPECT_NEAR(pf / sq, 1.0, 0.05);
}

TEST(pftk, below_square_root_for_heavy_loss) {
    // Timeouts dominate at high p: PFTK must predict less.
    const double sq =
        square_root_throughput(k_flow, seconds{0.05}, probability{0.1}).value();
    const double pf =
        pftk_throughput(k_flow, seconds{0.05}, probability{0.1}, seconds{1.0}).value();
    EXPECT_LT(pf, sq * 0.7);
}

TEST(pftk, monotone_decreasing_in_loss) {
    double prev =
        pftk_throughput(k_flow, seconds{0.08}, probability{1e-4}, seconds{1.0}).value();
    for (double p = 1e-3; p < 0.5; p *= 2.0) {
        const double r =
            pftk_throughput(k_flow, seconds{0.08}, probability{p}, seconds{1.0}).value();
        EXPECT_LT(r, prev) << "p=" << p;
        prev = r;
    }
}

TEST(pftk, monotone_decreasing_in_rtt) {
    double prev =
        pftk_throughput(k_flow, seconds{0.01}, probability{0.01}, seconds{1.0}).value();
    for (double rtt = 0.02; rtt < 0.5; rtt *= 2.0) {
        const double r =
            pftk_throughput(k_flow, seconds{rtt}, probability{0.01}, seconds{1.0}).value();
        EXPECT_LT(r, prev) << "rtt=" << rtt;
        prev = r;
    }
}

// Out-of-range loss rates are unrepresentable at the type level: untrusted
// values go through probability::checked, which throws in every build mode.
TEST(pftk, rejects_out_of_range_loss_rate) {
    EXPECT_THROW((void)probability::checked(-0.1), std::invalid_argument);
    EXPECT_THROW((void)probability::checked(1.5), std::invalid_argument);
    EXPECT_THROW((void)probability::checked(std::nan("")), std::invalid_argument);
}

TEST(pftk, contract_rejects_nonpositive_rtt) {
#if TCPPRED_CHECKS
    EXPECT_THROW(
        (void)pftk_throughput(k_flow, seconds{0.0}, probability{0.01}, seconds{1.0}),
        contract_violation);
    EXPECT_THROW(
        (void)pftk_throughput(k_flow, seconds{-0.1}, probability{0.01}, seconds{1.0}),
        contract_violation);
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

// --- domain edges (satellite: formula domain guards) ---

TEST(domain_edges, zero_loss_hits_window_bound_in_every_model) {
    const double bound = k_flow.max_window.value() * 8.0 / 0.05;
    EXPECT_DOUBLE_EQ(
        square_root_throughput(k_flow, seconds{0.05}, probability{0.0}).value(), bound);
    EXPECT_DOUBLE_EQ(
        pftk_throughput(k_flow, seconds{0.05}, probability{0.0}, seconds{1.0}).value(),
        bound);
    EXPECT_DOUBLE_EQ(
        pftk_full_throughput(k_flow, seconds{0.05}, probability{0.0}, seconds{1.0})
            .value(),
        bound);
}

TEST(domain_edges, certain_loss_is_finite_and_nonnegative) {
    for (const double r :
         {square_root_throughput(k_flow, seconds{0.05}, probability{1.0}).value(),
          pftk_throughput(k_flow, seconds{0.05}, probability{1.0}, seconds{1.0}).value(),
          pftk_full_throughput(k_flow, seconds{0.05}, probability{1.0}, seconds{1.0})
              .value()}) {
        EXPECT_TRUE(std::isfinite(r));
        EXPECT_GE(r, 0.0);
    }
}

TEST(domain_edges, vanishing_rtt_stays_finite) {
    // rtt → 0 blows up the window bound but every prediction must remain a
    // finite, positive number right up to the boundary.
    for (const double rtt : {1e-3, 1e-6, 1e-9}) {
        const double r =
            pftk_throughput(k_flow, seconds{rtt}, probability{0.01}, seconds{1.0}).value();
        EXPECT_TRUE(std::isfinite(r)) << "rtt=" << rtt;
        EXPECT_GT(r, 0.0) << "rtt=" << rtt;
    }
}

TEST(pftk_full, close_to_approximate_in_moderate_regime) {
    // §4.2.9: the revised/full model differs little from Eq. 2 at moderate
    // loss rates.
    for (const double p : {0.005, 0.01, 0.02, 0.05}) {
        const double approx =
            pftk_throughput(k_flow, seconds{0.06}, probability{p}, seconds{1.0}).value();
        const double full =
            pftk_full_throughput(k_flow, seconds{0.06}, probability{p}, seconds{1.0})
                .value();
        EXPECT_NEAR(full / approx, 1.0, 0.45) << "p=" << p;
    }
}

TEST(pftk_full, window_limited_regime_near_window_bound) {
    tcp_flow_params f = k_flow;
    f.max_window = bytes{14.0 * 1460.0};  // ~ the 20 KB companion flow
    // Tiny loss: the flow spends nearly all time at W.
    const double bound = f.max_window.value() * 8.0 / 0.05;
    const double r =
        pftk_full_throughput(f, seconds{0.05}, probability{1e-4}, seconds{1.0}).value();
    EXPECT_GT(r, bound * 0.7);
    EXPECT_LE(r, bound);
}

TEST(pftk_full, monotone_decreasing_in_loss) {
    double prev =
        pftk_full_throughput(k_flow, seconds{0.08}, probability{1e-4}, seconds{1.0})
            .value();
    for (double p = 1e-3; p < 0.5; p *= 2.0) {
        const double r =
            pftk_full_throughput(k_flow, seconds{0.08}, probability{p}, seconds{1.0})
                .value();
        EXPECT_LT(r, prev) << "p=" << p;
        prev = r;
    }
}

TEST(slow_start, matches_formula) {
    // E[d_ss] = (1-(1-p)^d)(1-p)/p + 1.
    const double d = 1000;
    const double expected = (1.0 - std::pow(0.99, d)) * 0.99 / 0.01 + 1.0;
    EXPECT_NEAR(expected_slow_start_segments(probability{0.01}, d), expected, 1e-9);
}

TEST(slow_start, lossless_delivers_whole_transfer_in_slow_start) {
    EXPECT_DOUBLE_EQ(expected_slow_start_segments(probability{0.0}, 500.0), 501.0);
}

TEST(slow_start, high_loss_exits_quickly) {
    EXPECT_LT(expected_slow_start_segments(probability{0.5}, 1000.0), 3.0);
}

TEST(short_transfer, slow_start_penalizes_short_low_loss_transfers) {
    // At negligible loss the whole short transfer rides the exponential
    // ramp: throughput grows with transfer length in that regime.
    const probability p{1e-4};
    const double t20 =
        short_transfer_throughput(k_flow, seconds{0.05}, p, seconds{1.0}, 20).value();
    const double t100 =
        short_transfer_throughput(k_flow, seconds{0.05}, p, seconds{1.0}, 100).value();
    const double t500 =
        short_transfer_throughput(k_flow, seconds{0.05}, p, seconds{1.0}, 500).value();
    EXPECT_LT(t20, t100);
    EXPECT_LT(t100, t500);
}

TEST(short_transfer, converges_to_steady_state_for_long_flows) {
    const double steady =
        pftk_throughput(k_flow, seconds{0.05}, probability{0.02}, seconds{1.0}).value();
    const double long_flow =
        short_transfer_throughput(k_flow, seconds{0.05}, probability{0.02}, seconds{1.0},
                                  1e6)
            .value();
    EXPECT_NEAR(long_flow / steady, 1.0, 0.02);
}

TEST(implied_loss, inverts_pftk) {
    for (const double p : {0.001, 0.01, 0.05, 0.2}) {
        const bits_per_second r =
            pftk_throughput(k_flow, seconds{0.06}, probability{p}, seconds{1.0});
        EXPECT_NEAR(pftk_implied_loss(k_flow, seconds{0.06}, seconds{1.0}, r).value(), p,
                    p * 0.01);
    }
}

TEST(implied_loss, window_bound_throughput_means_no_loss) {
    const double bound = k_flow.max_window.value() * 8.0 / 0.05;
    EXPECT_DOUBLE_EQ(pftk_implied_loss(k_flow, seconds{0.05}, seconds{1.0},
                                       bits_per_second{bound * 1.1})
                         .value(),
                     0.0);
}

TEST(estimate_t0, floors_at_one_second) {
    EXPECT_DOUBLE_EQ(estimate_t0(seconds{0.050}).value(), 1.0);
    EXPECT_DOUBLE_EQ(estimate_t0(seconds{0.8}).value(), 1.6);
}

// Property sweep: for every (rtt, p) combination the PFTK prediction is
// positive and never exceeds the window bound.
class pftk_bounds : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(pftk_bounds, positive_and_window_capped) {
    const auto [rtt, p] = GetParam();
    const double bound = k_flow.max_window.value() * 8.0 / rtt;
    for (const double r :
         {pftk_throughput(k_flow, seconds{rtt}, probability{p}, seconds{1.0}).value(),
          pftk_full_throughput(k_flow, seconds{rtt}, probability{p}, seconds{1.0})
              .value(),
          square_root_throughput(k_flow, seconds{rtt}, probability{p}).value()}) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, bound + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    sweep, pftk_bounds,
    ::testing::Combine(::testing::Values(0.005, 0.02, 0.08, 0.2, 0.5),
                       ::testing::Values(0.0, 1e-5, 1e-3, 0.01, 0.1, 0.5, 1.0)));

}  // namespace
}  // namespace tcppred::core
