#include "core/fb_formulas.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tcppred::core {
namespace {

const tcp_flow_params k_flow{1460, 2, 1 << 20};

TEST(square_root, matches_hand_computation) {
    // E[R] = M / (T sqrt(2bp/3)), M=1460B, T=0.1s, b=2, p=0.01.
    const double expected = 1460.0 * 8.0 / (0.1 * std::sqrt(2.0 * 2.0 * 0.01 / 3.0));
    EXPECT_NEAR(square_root_throughput(k_flow, 0.1, 0.01), expected, 1.0);
}

TEST(square_root, lossless_returns_window_bound) {
    EXPECT_DOUBLE_EQ(square_root_throughput(k_flow, 0.1, 0.0),
                     k_flow.max_window_bytes * 8.0 / 0.1);
}

TEST(square_root, caps_at_window_bound) {
    // Tiny loss: raw formula would exceed W/T.
    tcp_flow_params f = k_flow;
    f.max_window_bytes = 10000;
    const double bound = f.max_window_bytes * 8.0 / 0.1;
    EXPECT_DOUBLE_EQ(square_root_throughput(f, 0.1, 1e-9), bound);
}

TEST(pftk, approaches_square_root_for_small_loss) {
    // With negligible timeout term the two models converge.
    const double p = 1e-4;
    const double sq = square_root_throughput(k_flow, 0.05, p);
    const double pf = pftk_throughput(k_flow, 0.05, p, 1.0);
    EXPECT_NEAR(pf / sq, 1.0, 0.05);
}

TEST(pftk, below_square_root_for_heavy_loss) {
    // Timeouts dominate at high p: PFTK must predict less.
    const double sq = square_root_throughput(k_flow, 0.05, 0.1);
    const double pf = pftk_throughput(k_flow, 0.05, 0.1, 1.0);
    EXPECT_LT(pf, sq * 0.7);
}

TEST(pftk, monotone_decreasing_in_loss) {
    double prev = pftk_throughput(k_flow, 0.08, 1e-4, 1.0);
    for (double p = 1e-3; p < 0.5; p *= 2.0) {
        const double r = pftk_throughput(k_flow, 0.08, p, 1.0);
        EXPECT_LT(r, prev) << "p=" << p;
        prev = r;
    }
}

TEST(pftk, monotone_decreasing_in_rtt) {
    double prev = pftk_throughput(k_flow, 0.01, 0.01, 1.0);
    for (double rtt = 0.02; rtt < 0.5; rtt *= 2.0) {
        const double r = pftk_throughput(k_flow, rtt, 0.01, 1.0);
        EXPECT_LT(r, prev) << "rtt=" << rtt;
        prev = r;
    }
}

TEST(pftk, rejects_invalid_inputs) {
    EXPECT_THROW((void)pftk_throughput(k_flow, 0.0, 0.01, 1.0), std::invalid_argument);
    EXPECT_THROW((void)pftk_throughput(k_flow, 0.1, -0.1, 1.0), std::invalid_argument);
    EXPECT_THROW((void)pftk_throughput(k_flow, 0.1, 1.5, 1.0), std::invalid_argument);
}

TEST(pftk_full, close_to_approximate_in_moderate_regime) {
    // §4.2.9: the revised/full model differs little from Eq. 2 at moderate
    // loss rates.
    for (const double p : {0.005, 0.01, 0.02, 0.05}) {
        const double approx = pftk_throughput(k_flow, 0.06, p, 1.0);
        const double full = pftk_full_throughput(k_flow, 0.06, p, 1.0);
        EXPECT_NEAR(full / approx, 1.0, 0.45) << "p=" << p;
    }
}

TEST(pftk_full, window_limited_regime_near_window_bound) {
    tcp_flow_params f = k_flow;
    f.max_window_bytes = 14 * 1460;  // ~ the 20 KB companion flow
    // Tiny loss: the flow spends nearly all time at W.
    const double bound = f.max_window_bytes * 8.0 / 0.05;
    const double r = pftk_full_throughput(f, 0.05, 1e-4, 1.0);
    EXPECT_GT(r, bound * 0.7);
    EXPECT_LE(r, bound);
}

TEST(pftk_full, monotone_decreasing_in_loss) {
    double prev = pftk_full_throughput(k_flow, 0.08, 1e-4, 1.0);
    for (double p = 1e-3; p < 0.5; p *= 2.0) {
        const double r = pftk_full_throughput(k_flow, 0.08, p, 1.0);
        EXPECT_LT(r, prev) << "p=" << p;
        prev = r;
    }
}

TEST(slow_start, matches_formula) {
    // E[d_ss] = (1-(1-p)^d)(1-p)/p + 1.
    const double p = 0.01, d = 1000;
    const double expected = (1.0 - std::pow(0.99, d)) * 0.99 / 0.01 + 1.0;
    EXPECT_NEAR(expected_slow_start_segments(p, d), expected, 1e-9);
}

TEST(slow_start, lossless_delivers_whole_transfer_in_slow_start) {
    EXPECT_DOUBLE_EQ(expected_slow_start_segments(0.0, 500.0), 501.0);
}

TEST(slow_start, high_loss_exits_quickly) {
    EXPECT_LT(expected_slow_start_segments(0.5, 1000.0), 3.0);
}

TEST(short_transfer, slow_start_penalizes_short_low_loss_transfers) {
    // At negligible loss the whole short transfer rides the exponential
    // ramp: throughput grows with transfer length in that regime.
    const double p = 1e-4;
    const double t20 = short_transfer_throughput(k_flow, 0.05, p, 1.0, 20);
    const double t100 = short_transfer_throughput(k_flow, 0.05, p, 1.0, 100);
    const double t500 = short_transfer_throughput(k_flow, 0.05, p, 1.0, 500);
    EXPECT_LT(t20, t100);
    EXPECT_LT(t100, t500);
}

TEST(short_transfer, converges_to_steady_state_for_long_flows) {
    const double steady = pftk_throughput(k_flow, 0.05, 0.02, 1.0);
    const double long_flow = short_transfer_throughput(k_flow, 0.05, 0.02, 1.0, 1e6);
    EXPECT_NEAR(long_flow / steady, 1.0, 0.02);
}

TEST(implied_loss, inverts_pftk) {
    for (const double p : {0.001, 0.01, 0.05, 0.2}) {
        const double r = pftk_throughput(k_flow, 0.06, p, 1.0);
        EXPECT_NEAR(pftk_implied_loss(k_flow, 0.06, 1.0, r), p, p * 0.01);
    }
}

TEST(implied_loss, window_bound_throughput_means_no_loss) {
    const double bound = k_flow.max_window_bytes * 8.0 / 0.05;
    EXPECT_DOUBLE_EQ(pftk_implied_loss(k_flow, 0.05, 1.0, bound * 1.1), 0.0);
}

TEST(estimate_t0, floors_at_one_second) {
    EXPECT_DOUBLE_EQ(estimate_t0(0.050), 1.0);
    EXPECT_DOUBLE_EQ(estimate_t0(0.8), 1.6);
}

// Property sweep: for every (rtt, p) combination the PFTK prediction is
// positive and never exceeds the window bound.
class pftk_bounds : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(pftk_bounds, positive_and_window_capped) {
    const auto [rtt, p] = GetParam();
    const double bound = k_flow.max_window_bytes * 8.0 / rtt;
    for (const double r : {pftk_throughput(k_flow, rtt, p, 1.0),
                           pftk_full_throughput(k_flow, rtt, p, 1.0),
                           square_root_throughput(k_flow, rtt, p)}) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, bound + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    sweep, pftk_bounds,
    ::testing::Combine(::testing::Values(0.005, 0.02, 0.08, 0.2, 0.5),
                       ::testing::Values(0.0, 1e-5, 1e-3, 0.01, 0.1, 0.5, 1.0)));

}  // namespace
}  // namespace tcppred::core
