// Checked knob parsing (core/checked_parse.hpp): whole-token decimal /
// unsigned / double parsing with typed rejection. These are the semantics
// every CLI flag, environment knob and daemon request field now shares —
// the "atoi returns 0" failure mode this layer replaces must stay dead.
#include "core/checked_parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

using namespace tcppred::core;

TEST(parse_checked_int, accepts_plain_decimals_in_range) {
    EXPECT_EQ(parse_checked_int("--paths", "35", 1, 1000), 35);
    EXPECT_EQ(parse_checked_int("--paths", "1", 1, 1000), 1);
    EXPECT_EQ(parse_checked_int("--paths", "1000", 1, 1000), 1000);
    EXPECT_EQ(parse_checked_int("--delta", "-7", -10, 10), -7);
    EXPECT_EQ(parse_checked_int("--big", "9223372036854775807",
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()),
              std::numeric_limits<std::int64_t>::max());
}

TEST(parse_checked_int, rejects_everything_atoi_accepted_silently) {
    // Each of these was a silent 0 (or a silent truncation) under atoi.
    EXPECT_THROW((void)parse_checked_int("--paths", "foo", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "12x", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", " 12", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "12 ", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "1 2", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "0x10", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "3.5", 1, 1000), parse_error);
}

TEST(parse_checked_int, range_and_overflow_are_errors_not_saturation) {
    EXPECT_THROW((void)parse_checked_int("--paths", "0", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "-3", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "1001", 1, 1000), parse_error);
    EXPECT_THROW((void)parse_checked_int("--paths", "99999999999999999999", 1, 1000),
                 parse_error);
}

TEST(parse_checked_int, error_names_the_knob_and_the_text) {
    try {
        (void)parse_checked_int("--paths", "foo", 1, 1000);
        FAIL() << "must throw";
    } catch (const parse_error& e) {
        EXPECT_EQ(e.knob(), "--paths");
        EXPECT_EQ(e.text(), "foo");
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--paths"), std::string::npos) << msg;
        EXPECT_NE(msg.find("\"foo\""), std::string::npos) << msg;
    }
}

TEST(parse_checked_u64, accepts_full_unsigned_range_and_rejects_sign) {
    EXPECT_EQ(parse_checked_u64("--seed", "0", 0,
                                std::numeric_limits<std::uint64_t>::max()),
              0u);
    EXPECT_EQ(parse_checked_u64("--seed", "18446744073709551615", 0,
                                std::numeric_limits<std::uint64_t>::max()),
              std::numeric_limits<std::uint64_t>::max());
    // strtoull would happily wrap "-1" around; the checked parser must not.
    EXPECT_THROW((void)parse_checked_u64("--seed", "-1", 0, 100), parse_error);
    EXPECT_THROW((void)parse_checked_u64("--seed", "18446744073709551616", 0,
                                         std::numeric_limits<std::uint64_t>::max()),
                 parse_error);
    EXPECT_THROW((void)parse_checked_u64("--seed", "12q", 0, 100), parse_error);
}

TEST(parse_checked_double, accepts_decimal_scientific_and_hexfloat) {
    EXPECT_DOUBLE_EQ(parse_checked_double("--transfer-s", "10", 0.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(parse_checked_double("--transfer-s", "2.5e1", 0.0, 100.0), 25.0);
    EXPECT_EQ(parse_checked_double("--x", "0x1.8p+1", 0.0, 100.0), 3.0);
}

TEST(parse_checked_double, rejects_nonfinite_partial_and_out_of_range) {
    EXPECT_THROW((void)parse_checked_double("--t", "inf", 0.0, 1e9), parse_error);
    EXPECT_THROW((void)parse_checked_double("--t", "nan", 0.0, 1e9), parse_error);
    EXPECT_THROW((void)parse_checked_double("--t", "1.5s", 0.0, 1e9), parse_error);
    EXPECT_THROW((void)parse_checked_double("--t", "", 0.0, 1e9), parse_error);
    EXPECT_THROW((void)parse_checked_double("--t", "-0.1", 0.0, 1e9), parse_error);
    EXPECT_THROW((void)parse_checked_double("--t", "1e10", 0.0, 1e9), parse_error);
}
