#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tcppred::net {
namespace {

packet make_packet(std::uint32_t size, std::uint64_t seq = 0) {
    packet p;
    p.flow = 1;
    p.kind = packet_kind::tcp_data;
    p.size_bytes = size;
    p.seq = seq;
    return p;
}

TEST(link, delivers_after_tx_plus_propagation) {
    sim::scheduler s;
    link l(s, 8e6, 0.010, 10);  // 8 Mbps: 1000 bytes = 1 ms tx
    double delivered_at = -1.0;
    l.set_sink([&](packet) { delivered_at = s.now(); });
    l.enqueue(make_packet(1000));
    s.run_all();
    EXPECT_NEAR(delivered_at, 0.001 + 0.010, 1e-12);
}

TEST(link, serializes_back_to_back_packets) {
    sim::scheduler s;
    link l(s, 8e6, 0.0, 10);
    std::vector<double> arrivals;
    l.set_sink([&](packet) { arrivals.push_back(s.now()); });
    for (int i = 0; i < 3; ++i) l.enqueue(make_packet(1000, static_cast<std::uint64_t>(i)));
    s.run_all();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_NEAR(arrivals[0], 0.001, 1e-12);
    EXPECT_NEAR(arrivals[1], 0.002, 1e-12);
    EXPECT_NEAR(arrivals[2], 0.003, 1e-12);
}

TEST(link, preserves_fifo_order) {
    sim::scheduler s;
    link l(s, 1e6, 0.005, 100);
    std::vector<std::uint64_t> seqs;
    l.set_sink([&](packet p) { seqs.push_back(p.seq); });
    for (std::uint64_t i = 0; i < 20; ++i) l.enqueue(make_packet(500, i));
    s.run_all();
    ASSERT_EQ(seqs.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(link, drops_when_buffer_full) {
    sim::scheduler s;
    link l(s, 8e6, 0.0, 2);  // 1 transmitting + 2 queued
    int delivered = 0;
    l.set_sink([&](packet) { ++delivered; });
    int accepted = 0;
    for (int i = 0; i < 10; ++i) accepted += l.enqueue(make_packet(1000)) ? 1 : 0;
    s.run_all();
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(delivered, 3);
    EXPECT_EQ(l.stats().dropped, 7u);
    EXPECT_EQ(l.stats().delivered, 3u);
}

TEST(link, buffer_frees_as_packets_depart) {
    sim::scheduler s;
    link l(s, 8e6, 0.0, 1);
    int delivered = 0;
    l.set_sink([&](packet) { ++delivered; });
    l.enqueue(make_packet(1000));
    l.enqueue(make_packet(1000));
    EXPECT_FALSE(l.enqueue(make_packet(1000)));  // full now
    s.run_until(0.0015);                          // first tx done at 1 ms
    EXPECT_TRUE(l.enqueue(make_packet(1000)));    // slot freed
    s.run_all();
    EXPECT_EQ(delivered, 3);
}

TEST(link, propagation_does_not_serialize) {
    // Two packets sent back-to-back on a long-propagation link must arrive
    // tx_time apart, not 2*prop apart.
    sim::scheduler s;
    link l(s, 8e6, 0.100, 10);
    std::vector<double> arrivals;
    l.set_sink([&](packet) { arrivals.push_back(s.now()); });
    l.enqueue(make_packet(1000));
    l.enqueue(make_packet(1000));
    s.run_all();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_NEAR(arrivals[1] - arrivals[0], 0.001, 1e-12);
}

TEST(link, utilization_tracks_busy_fraction) {
    sim::scheduler s;
    link l(s, 8e6, 0.0, 100);
    l.set_sink([](packet) {});
    // 10 packets x 1 ms tx = 10 ms busy.
    for (int i = 0; i < 10; ++i) l.enqueue(make_packet(1000));
    s.run_all();
    s.run_until(0.1);
    EXPECT_NEAR(l.utilization(), 0.1, 1e-9);
}

TEST(link, tx_time_matches_capacity) {
    sim::scheduler s;
    link l(s, 1e6, 0.0, 1);
    EXPECT_DOUBLE_EQ(l.tx_time(1250), 0.01);  // 10 kbit at 1 Mbps
}

TEST(link, bernoulli_random_loss_converges_to_rate) {
    sim::scheduler s;
    link l(s, 100e6, 0.0, 4096);
    l.set_random_loss(0.1, 42);
    int delivered = 0;
    l.set_sink([&](packet) { ++delivered; });
    const int offered = 20000;
    // Spread arrivals over time so the queue never overflows.
    for (int i = 0; i < offered; ++i) {
        s.schedule_at(i * 1e-4, [&] { l.enqueue(make_packet(500)); });
    }
    s.run_all();
    const double loss = 1.0 - static_cast<double>(delivered) / offered;
    EXPECT_NEAR(loss, 0.1, 0.01);
}

TEST(link, gilbert_loss_converges_and_is_bursty) {
    sim::scheduler s;
    link l(s, 100e6, 0.0, 4096);
    l.set_random_loss(0.05, 42, /*burst=*/0.050);
    std::vector<int> outcomes;
    l.set_sink([&](packet) { outcomes.push_back(1); });
    const int offered = 60000;
    for (int i = 0; i < offered; ++i) {
        s.schedule_at(i * 1e-3, [&, i] {
            if (!l.enqueue(make_packet(500))) outcomes.push_back(0);
        });
    }
    s.run_all();
    int lost = 0, runs = 0;
    bool in_run = false;
    for (const int o : outcomes) {
        if (o == 0) {
            ++lost;
            if (!in_run) {
                ++runs;
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    const double loss = static_cast<double>(lost) / offered;
    EXPECT_NEAR(loss, 0.05, 0.015);
    // Bursty: mean run length well above 1 (episodes of ~50 ms at 1 ms
    // arrival spacing should cover dozens of packets).
    EXPECT_GT(static_cast<double>(lost) / runs, 5.0);
}

TEST(link, counts_bytes_delivered) {
    sim::scheduler s;
    link l(s, 8e6, 0.0, 10);
    l.set_sink([](packet) {});
    l.enqueue(make_packet(700));
    l.enqueue(make_packet(300));
    s.run_all();
    EXPECT_EQ(l.stats().bytes_delivered, 1000u);
}

}  // namespace
}  // namespace tcppred::net
