#include "core/hb_evaluation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tcppred::core {
namespace {

TEST(evaluate_one_step, perfect_predictor_on_constant_series) {
    const std::vector<double> series(20, 5.0);
    const hb_evaluation e = evaluate_one_step(series, moving_average(5));
    EXPECT_DOUBLE_EQ(e.rmsre, 0.0);
    EXPECT_EQ(e.forecasts(), 19u);  // warmup skips index 0
}

TEST(evaluate_one_step, errors_align_with_indices) {
    const std::vector<double> series{10.0, 20.0, 20.0};
    const hb_evaluation e = evaluate_one_step(series, moving_average(1));
    ASSERT_EQ(e.errors.size(), 2u);
    EXPECT_EQ(e.indices[0], 1u);
    // Forecast 10 for actual 20: E = (10-20)/10 = -1.
    EXPECT_DOUBLE_EQ(e.errors[0], -1.0);
    EXPECT_DOUBLE_EQ(e.errors[1], 0.0);
}

TEST(evaluate_one_step, warmup_skips_initial_forecasts) {
    const std::vector<double> series{1.0, 1.0, 1.0, 1.0, 1.0};
    hb_evaluation_options opts;
    opts.warmup = 3;
    const hb_evaluation e = evaluate_one_step(series, moving_average(1), opts);
    EXPECT_EQ(e.forecasts(), 2u);
}

TEST(evaluate_one_step, excludes_outliers_when_requested) {
    std::vector<double> series(10, 10.0);
    series.push_back(100.0);  // outlier: a huge error for any predictor
    series.insert(series.end(), 5, 10.0);

    hb_evaluation_options keep;
    const hb_evaluation with = evaluate_one_step(series, moving_average(5), keep);

    hb_evaluation_options drop;
    drop.exclude_outliers = true;
    const hb_evaluation without = evaluate_one_step(series, moving_average(5), drop);

    EXPECT_GT(with.rmsre, without.rmsre * 2.0);
}

TEST(evaluate_one_step, lso_wrapper_beats_plain_on_shifted_series) {
    std::vector<double> series(15, 10.0);
    series.insert(series.end(), 15, 30.0);

    const hb_evaluation plain = evaluate_one_step(series, moving_average(10));
    const lso_predictor lso_proto(std::make_unique<moving_average>(10));
    const hb_evaluation lso = evaluate_one_step(series, lso_proto);
    EXPECT_LT(lso.rmsre, plain.rmsre);
}

TEST(downsample_fn, keeps_every_kth_sample) {
    const std::vector<double> s{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(downsample(s, 1), s);
    EXPECT_EQ(downsample(s, 3), (std::vector<double>{0, 3, 6, 9}));
    EXPECT_EQ(downsample(s, 15), (std::vector<double>{0}));
}

TEST(downsample_fn, rejects_factor_zero) {
    EXPECT_THROW(downsample({1.0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tcppred::core
