#include "core/hb_predictors.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tcppred::core {
namespace {

TEST(moving_average, predicts_nan_before_first_sample) {
    moving_average ma(5);
    EXPECT_TRUE(std::isnan(ma.predict()));
}

TEST(moving_average, averages_last_n) {
    moving_average ma(3);
    for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) ma.observe(x);
    EXPECT_DOUBLE_EQ(ma.predict(), 4.0);  // mean of {3,4,5}
}

TEST(moving_average, short_history_averages_what_exists) {
    moving_average ma(10);
    ma.observe(2.0);
    ma.observe(4.0);
    EXPECT_DOUBLE_EQ(ma.predict(), 3.0);
}

TEST(moving_average, order_one_is_last_value) {
    moving_average ma(1);
    for (const double x : {7.0, 3.0, 9.0}) ma.observe(x);
    EXPECT_DOUBLE_EQ(ma.predict(), 9.0);
}

TEST(moving_average, reset_clears_history) {
    moving_average ma(3);
    ma.observe(5.0);
    ma.reset();
    EXPECT_TRUE(std::isnan(ma.predict()));
    EXPECT_EQ(ma.history_size(), 0u);
}

TEST(moving_average, rejects_order_zero) {
    EXPECT_THROW(moving_average(0), std::invalid_argument);
}

TEST(moving_average, clone_empty_preserves_order) {
    moving_average ma(4);
    ma.observe(1.0);
    auto clone = ma.clone_empty();
    EXPECT_TRUE(std::isnan(clone->predict()));
    EXPECT_EQ(clone->name(), "4-MA");
}

TEST(ewma_predictor, first_observation_seeds_forecast) {
    ewma e(0.5);
    e.observe(10.0);
    EXPECT_DOUBLE_EQ(e.predict(), 10.0);
}

TEST(ewma_predictor, recurrence_matches_paper) {
    // X̂_{i+1} = α X_i + (1-α) X̂_i.
    ewma e(0.25);
    e.observe(10.0);
    e.observe(20.0);
    EXPECT_DOUBLE_EQ(e.predict(), 0.25 * 20.0 + 0.75 * 10.0);
    e.observe(0.0);
    EXPECT_DOUBLE_EQ(e.predict(), 0.75 * 12.5);
}

TEST(ewma_predictor, high_alpha_tracks_recent_values) {
    ewma fast(0.9), slow(0.1);
    for (const double x : {1.0, 1.0, 1.0, 10.0}) {
        fast.observe(x);
        slow.observe(x);
    }
    EXPECT_GT(fast.predict(), slow.predict());
}

TEST(ewma_predictor, rejects_alpha_outside_unit_interval) {
    EXPECT_THROW(ewma(0.0), std::invalid_argument);
    EXPECT_THROW(ewma(1.0), std::invalid_argument);
}

TEST(holt_winters_predictor, needs_two_samples_for_trend) {
    holt_winters hw(0.5, 0.2);
    EXPECT_TRUE(std::isnan(hw.predict()));
    hw.observe(10.0);
    EXPECT_DOUBLE_EQ(hw.predict(), 10.0);  // no trend yet
}

TEST(holt_winters_predictor, extrapolates_linear_trend) {
    // On a perfectly linear series HW with any (α, β) must converge to
    // one-step-ahead exactness.
    holt_winters hw(0.5, 0.5);
    for (int i = 0; i < 50; ++i) hw.observe(100.0 + 5.0 * i);
    EXPECT_NEAR(hw.predict(), 100.0 + 5.0 * 50, 0.5);
}

TEST(holt_winters_predictor, tracks_constant_series_exactly) {
    holt_winters hw(0.8, 0.2);
    for (int i = 0; i < 20; ++i) hw.observe(42.0);
    EXPECT_NEAR(hw.predict(), 42.0, 1e-9);
}

TEST(holt_winters_predictor, rejects_bad_parameters) {
    EXPECT_THROW(holt_winters(0.0, 0.2), std::invalid_argument);
    EXPECT_THROW(holt_winters(0.5, 1.0), std::invalid_argument);
}

TEST(holt_winters_predictor, name_includes_alpha) {
    holt_winters hw(0.8, 0.2);
    EXPECT_EQ(hw.name(), "0.8-HW");
}

// Property sweep: on a constant series every predictor forecasts the
// constant once seeded, for all parameterizations.
class constant_series
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(constant_series, all_predictors_learn_the_constant) {
    const auto [value, n] = GetParam();
    std::vector<std::unique_ptr<hb_predictor>> predictors;
    predictors.push_back(std::make_unique<moving_average>(n));
    predictors.push_back(std::make_unique<ewma>(0.3));
    predictors.push_back(std::make_unique<holt_winters>(0.5, 0.2));
    for (auto& p : predictors) {
        for (int i = 0; i < 30; ++i) p->observe(value);
        EXPECT_NEAR(p->predict(), value, std::abs(value) * 1e-9 + 1e-12) << p->name();
    }
}

INSTANTIATE_TEST_SUITE_P(sweep, constant_series,
                         ::testing::Combine(::testing::Values(0.5, 42.0, 3e6),
                                            ::testing::Values(1u, 5u, 10u, 20u)));

}  // namespace
}  // namespace tcppred::core
