// The observability layer in isolation: counter sharding/merging across
// threads, gauges, stage-timer statistics, the JSONL writer round-trip, and
// the canonicalization contract the determinism tests build on.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"

using namespace tcppred;

namespace {

// PID-suffixed: two instances of this binary (e.g. a sanitizer build
// running alongside the plain one) must not share files.
std::filesystem::path temp_file(const char* name) {
    return std::filesystem::temp_directory_path() /
           (std::string(name) + "." + std::to_string(::getpid()));
}

}  // namespace

TEST(obs_counters, add_and_snapshot) {
    obs::reset_counters();
    const obs::counter c = obs::counter::get("test.alpha");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    const auto snap = obs::counters_snapshot();
    EXPECT_EQ(snap.at("test.alpha"), 42u);
}

TEST(obs_counters, get_interns_one_id_per_name) {
    obs::reset_counters();
    const obs::counter a = obs::counter::get("test.same");
    const obs::counter b = obs::counter::get("test.same");
    a.add(2);
    b.add(3);
    EXPECT_EQ(a.value(), 5u);
    EXPECT_EQ(b.value(), 5u);
}

TEST(obs_counters, merges_live_shards_and_drains_exited_threads) {
    obs::reset_counters();
    const obs::counter c = obs::counter::get("test.threads");
    constexpr int k_threads = 8;
    constexpr int k_adds = 1000;
    {
        std::vector<std::thread> ts;
        ts.reserve(k_threads);
        for (int t = 0; t < k_threads; ++t) {
            ts.emplace_back([&c] {
                for (int i = 0; i < k_adds; ++i) c.add();
            });
        }
        for (auto& t : ts) t.join();
    }
    // All worker threads exited: their cells must have drained into the
    // residue without losing a single count.
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(k_threads) * k_adds);
    c.add();  // main thread's live shard still contributes on top
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(k_threads) * k_adds + 1);
}

TEST(obs_counters, reset_zeroes_but_keeps_names_registered) {
    const obs::counter c = obs::counter::get("test.reset");
    c.add(7);
    obs::reset_counters();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(obs::counters_snapshot().count("test.reset"), 1u);
}

TEST(obs_gauges, last_write_wins) {
    obs::reset_gauges();
    const obs::gauge g = obs::gauge::get("test.gauge");
    g.set(4);
    g.set(-2);
    EXPECT_EQ(g.value(), -2);
    EXPECT_EQ(obs::gauges_snapshot().at("test.gauge"), -2);
}

TEST(obs_timers, disabled_records_nothing) {
    obs::reset_timers();
    obs::set_metrics_enabled(false);
    obs::record_duration("test.stage", 1.0);
    {
        const obs::stage_timer t("test.stage");
    }
    EXPECT_TRUE(obs::timers_snapshot().empty());
}

TEST(obs_timers, stats_over_known_samples) {
    obs::reset_timers();
    obs::set_metrics_enabled(true);
    for (const double s : {0.1, 0.2, 0.3, 0.4, 1.0}) {
        obs::record_duration("test.known", s);
    }
    const auto snap = obs::timers_snapshot();
    obs::set_metrics_enabled(false);
    const obs::timer_stats& st = snap.at("test.known");
    EXPECT_EQ(st.count, 5u);
    EXPECT_NEAR(st.total_s, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(st.p50_s, 0.3);  // nearest-rank
    EXPECT_DOUBLE_EQ(st.p95_s, 1.0);
    EXPECT_DOUBLE_EQ(st.max_s, 1.0);
}

TEST(obs_trace, writer_round_trips_through_parser) {
    const auto file = temp_file("obs_test_roundtrip.jsonl");
    obs::trace_writer& w = obs::trace_writer::instance();
    ASSERT_FALSE(obs::trace_enabled());
    w.open(file);
    EXPECT_TRUE(obs::trace_enabled());
    obs::trace_emit(obs::json_line{}
                        .str("ev", "epoch")
                        .num("path", std::int64_t{3})
                        .num("dur_s", 0.25)
                        .str("note", "quote \" backslash \\ tab \t")
                        .done());
    obs::trace_emit(obs::json_line{}
                        .str("ev", "edge")
                        .num("nan_field", std::nan(""))
                        .num("big", std::uint64_t{1} << 53)
                        .done());
    w.close();
    EXPECT_FALSE(obs::trace_enabled());

    const auto events = obs::read_trace_file(file);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(std::get<std::string>(events[0].at("ev")), "epoch");
    EXPECT_DOUBLE_EQ(std::get<double>(events[0].at("path")), 3.0);
    EXPECT_DOUBLE_EQ(std::get<double>(events[0].at("dur_s")), 0.25);
    EXPECT_EQ(std::get<std::string>(events[0].at("note")),
              "quote \" backslash \\ tab \t");
    // NaN is stringified (JSON has no NaN literal).
    EXPECT_EQ(std::get<std::string>(events[1].at("nan_field")), "nan");
    EXPECT_DOUBLE_EQ(std::get<double>(events[1].at("big")),
                     static_cast<double>(std::uint64_t{1} << 53));
    std::filesystem::remove(file);
}

TEST(obs_trace, emit_is_dropped_when_disabled) {
    const auto file = temp_file("obs_test_drop.jsonl");
    ASSERT_FALSE(obs::trace_enabled());
    obs::trace_emit("{\"ev\":\"lost\"}");  // no open trace: silently dropped
    obs::trace_writer& w = obs::trace_writer::instance();
    w.open(file);
    w.close();
    EXPECT_TRUE(obs::read_trace_file(file).empty());
    std::filesystem::remove(file);
}

TEST(obs_trace, drains_many_producers_without_loss) {
    const auto file = temp_file("obs_test_many.jsonl");
    obs::trace_writer& w = obs::trace_writer::instance();
    w.open(file);
    constexpr int k_threads = 4;
    constexpr int k_events = 500;
    {
        std::vector<std::thread> ts;
        for (int t = 0; t < k_threads; ++t) {
            ts.emplace_back([t] {
                for (int i = 0; i < k_events; ++i) {
                    obs::trace_emit(obs::json_line{}
                                        .str("ev", "tick")
                                        .num("thread", std::int64_t{t})
                                        .num("i", std::int64_t{i})
                                        .done());
                }
            });
        }
        for (auto& t : ts) t.join();
    }
    w.close();
    EXPECT_EQ(obs::read_trace_file(file).size(),
              static_cast<std::size_t>(k_threads) * k_events);
    std::filesystem::remove(file);
}

TEST(obs_trace, second_open_throws) {
    const auto file = temp_file("obs_test_second.jsonl");
    obs::trace_writer& w = obs::trace_writer::instance();
    w.open(file);
    EXPECT_THROW(w.open(temp_file("obs_test_other.jsonl")), std::runtime_error);
    w.close();
    std::filesystem::remove(file);
}

TEST(obs_trace, parser_rejects_malformed_lines) {
    EXPECT_THROW((void)obs::parse_trace_line("not json"), std::runtime_error);
    EXPECT_THROW((void)obs::parse_trace_line("{\"ev\":\"x\"} junk"),
                 std::runtime_error);
    EXPECT_THROW((void)obs::parse_trace_line("{\"ev\":}"), std::runtime_error);
    EXPECT_THROW((void)obs::parse_trace_line("{\"no_ev_key\":1}"),
                 std::runtime_error);
    EXPECT_THROW((void)obs::parse_trace_line(""), std::runtime_error);
}

TEST(obs_trace, canonicalization_strips_volatile_keys_and_sorts) {
    EXPECT_TRUE(obs::is_volatile_trace_key("ts"));
    EXPECT_TRUE(obs::is_volatile_trace_key("dur_s"));
    EXPECT_TRUE(obs::is_volatile_trace_key("thread"));
    EXPECT_FALSE(obs::is_volatile_trace_key("seed"));

    const obs::trace_event ev = obs::parse_trace_line(
        "{\"zeta\":1,\"ev\":\"epoch\",\"dur_s\":0.5,\"thread\":7,\"alpha\":\"x\"}");
    // Keys sorted, dur_s/thread gone; identical content at any job count
    // therefore canonicalizes identically.
    EXPECT_EQ(obs::canonical_trace_line(ev), "{\"alpha\":\"x\",\"ev\":\"epoch\",\"zeta\":1}");
}

TEST(obs_trace, canonical_lines_sorted_independent_of_file_order) {
    const auto a = temp_file("obs_test_order_a.jsonl");
    const auto b = temp_file("obs_test_order_b.jsonl");
    {
        std::ofstream fa(a), fb(b);
        fa << "{\"ev\":\"e\",\"i\":1,\"ts\":0.1}\n{\"ev\":\"e\",\"i\":2,\"ts\":0.2}\n";
        fb << "{\"ev\":\"e\",\"i\":2,\"ts\":9.0}\n{\"ev\":\"e\",\"i\":1,\"ts\":8.5}\n";
    }
    EXPECT_EQ(obs::canonical_trace_lines(a), obs::canonical_trace_lines(b));
    std::filesystem::remove(a);
    std::filesystem::remove(b);
}
