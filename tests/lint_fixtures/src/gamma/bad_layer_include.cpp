// Fixture: must trigger layer-include (and nothing else). gamma's declared
// dependency set in fixtures.conf is empty, so including alpha is an edge
// outside the DAG.
#include "alpha/alpha.hpp"

int use_alpha() { return fixture::alpha::answer(); }
