// Fixture: must trigger units-boundary (and nothing else). A public header
// passing a dimensioned quantity as a bare, unsuffixed double.
#pragma once

namespace fixture::alpha {

double predict_throughput(double rtt, double loss);

}  // namespace fixture::alpha
