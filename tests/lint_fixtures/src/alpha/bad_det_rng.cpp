// Fixture: must trigger det-rng (and nothing else).
#include <random>

int nondeterministic_seed() {
    std::random_device rd;
    return static_cast<int>(rd());
}
