// Fixture: must trigger det-clock (and nothing else).
#include <chrono>

long wall_clock_read() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
