// Fixture: must trigger det-thread (and nothing else).
#include <thread>

void spawn_worker() {
    std::thread worker([] {});
    worker.join();
}
