// Fixture: must trigger det-env (and nothing else).
#include <cstdlib>

const char* read_environment() { return std::getenv("FIXTURE_VAR"); }
