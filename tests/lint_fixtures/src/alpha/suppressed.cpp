// Fixture: a real det-env violation silenced by an inline allow pragma —
// must lint clean, proving suppression works.
#include <cstdlib>

// tcppred-lint: allow(det-env): fixture exercising the suppression pragma
const char* suppressed_env_read() { return std::getenv("FIXTURE_VAR"); }
