// Clean header: included by the layer fixtures and linted directly as the
// "no findings" case.
#pragma once

namespace fixture::alpha {

int answer() noexcept;

}  // namespace fixture::alpha
