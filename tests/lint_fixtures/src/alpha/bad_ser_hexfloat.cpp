// Fixture: must trigger ser-hexfloat (and nothing else). Declared as a
// serialization TU in fixtures.conf, so streaming a bare double is illegal.
#include <ostream>

void write_record(std::ostream& out, double measured_rtt_s) {
    out << measured_rtt_s << '\n';
}
