// Fixture: must trigger det-unordered-iter (and nothing else).
#include <string>
#include <unordered_map>

int sum_values(const std::unordered_map<std::string, int>& histogram) {
    int total = 0;
    for (const auto& [key, value] : histogram) total += value;
    return total;
}
