// Clean TU: mentions every banned token *inside comments and strings* to
// prove the stripper keeps them from matching: std::random_device, getenv,
// std::thread, steady_clock.
#include "alpha/alpha.hpp"

namespace fixture::alpha {

namespace {
const char* const k_doc =
    "tokens in string literals must not fire: rand() time() getenv";
}  // namespace

int answer() noexcept { return k_doc[0] == 't' ? 42 : 0; }

}  // namespace fixture::alpha
