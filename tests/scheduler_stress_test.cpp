// Randomized equivalence test for the calendar-queue scheduler: drives the
// real scheduler and a trivially-correct reference queue with the same
// operation stream and requires identical firing order. This pins the
// dispatch contract (DESIGN.md §13.2) — strictly by (when, id), FIFO among
// simultaneous events, cancellation a safe no-op at any time — which is
// exactly the property that makes campaign CSVs byte-identical across
// scheduler implementations.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace tcppred::sim {
namespace {

/// Reference priority queue with the same semantics as any correct
/// implementation of the scheduler contract: min by (when, id) among
/// never-cancelled entries. O(n) pop by linear scan — obviously right.
class reference_queue {
public:
    void schedule(double when, std::uint64_t id) { entries_.push_back({when, id, true}); }

    /// Cancels a pending entry; returns false when it already fired or was
    /// already cancelled (the real scheduler must treat that as a no-op).
    bool cancel(std::uint64_t id) {
        for (entry& e : entries_) {
            if (e.id == id && e.alive) {
                e.alive = false;
                return true;
            }
        }
        return false;
    }

    /// Pops the (when, id)-minimum live entry; 0 when empty.
    std::uint64_t pop_min() {
        entry* best = nullptr;
        for (entry& e : entries_) {
            if (!e.alive) continue;
            if (best == nullptr || e.when < best->when ||
                (e.when == best->when && e.id < best->id)) {
                best = &e;
            }
        }
        if (best == nullptr) return 0;
        best->alive = false;
        return best->id;
    }

    [[nodiscard]] std::size_t live() const {
        return static_cast<std::size_t>(
            std::count_if(entries_.begin(), entries_.end(),
                          [](const entry& e) { return e.alive; }));
    }

private:
    struct entry {
        double when;
        std::uint64_t id;
        bool alive;
    };
    std::vector<entry> entries_;
};

TEST(scheduler_stress, randomized_firing_order_matches_reference) {
    // Mixed continuous and grid-quantized times: the grid forces many exact
    // timestamp collisions, stressing the FIFO tie-break and the sorted
    // intra-bucket insertion; the continuous part stresses bucket-width
    // adaptation across very different event horizons.
    std::mt19937_64 gen(20040501);
    std::uniform_real_distribution<double> u01(0.0, 1.0);

    scheduler s;
    reference_queue ref;
    std::vector<event_handle> live_handles;

    constexpr int k_ops = 60000;
    for (int i = 0; i < k_ops; ++i) {
        const double dice = u01(gen);
        if (dice < 0.55 || ref.live() == 0) {
            double dt = u01(gen) < 0.3
                            ? 0.001 * static_cast<double>(gen() % 50)  // grid: ties
                            : u01(gen) * 10.0;                         // continuous
            if (u01(gen) < 0.02) dt = 0.0;  // schedule exactly at now()
            const double when = s.now() + dt;
            const event_handle h = s.schedule_at(when, [] {});
            ref.schedule(when, h.id);
            live_handles.push_back(h);
        } else if (dice < 0.75 && !live_handles.empty()) {
            // Cancel a random handle: maybe pending, maybe already fired —
            // both must be safe, and only a pending one may change the order.
            const std::size_t pick = gen() % live_handles.size();
            const event_handle h = live_handles[pick];
            const bool was_live = ref.cancel(h.id);
            s.cancel(h);
            (void)was_live;
        } else {
            const std::uint64_t want = ref.pop_min();
            if (want == 0) {
                EXPECT_FALSE(s.step());
            } else {
                const std::uint64_t fired_before = s.fired();
                ASSERT_TRUE(s.step());
                EXPECT_EQ(s.fired(), fired_before + 1);
            }
        }
    }
    // Drain both queues completely and compare the tail order too.
    while (true) {
        const std::uint64_t want = ref.pop_min();
        if (want == 0) {
            EXPECT_FALSE(s.step());
            break;
        }
        ASSERT_TRUE(s.step());
    }
    EXPECT_EQ(s.pending(), 0u);
}

TEST(scheduler_stress, firing_order_is_tracked_per_event) {
    // The structural variant above checks pop-for-pop agreement; this one
    // checks the actual identity of every fired event against the reference,
    // with heavy same-timestamp collision and interleaved cancellation.
    std::mt19937_64 gen(19880315);  // calendar queues: Brown 1988
    std::uniform_real_distribution<double> u01(0.0, 1.0);

    scheduler s;
    reference_queue ref;
    std::vector<std::uint64_t> real_order;
    std::vector<std::uint64_t> ref_order;
    std::vector<event_handle> handles;

    constexpr int k_events = 20000;
    for (int i = 0; i < k_events; ++i) {
        // 16-slot grid => massive tie groups.
        const double when = 0.25 * static_cast<double>(gen() % 16);
        event_handle h{};
        h = s.schedule_at(when, [&real_order, &handles, slot = handles.size()] {
            real_order.push_back(handles[slot].id);
        });
        handles.push_back(h);
        ref.schedule(when, h.id);
        if (u01(gen) < 0.25 && !handles.empty()) {
            const std::size_t pick = gen() % handles.size();
            s.cancel(handles[pick]);
            ref.cancel(handles[pick].id);
        }
    }
    while (s.step()) {
    }
    for (std::uint64_t id = ref.pop_min(); id != 0; id = ref.pop_min()) {
        ref_order.push_back(id);
    }
    EXPECT_EQ(real_order, ref_order);
}

TEST(scheduler_stress, stale_handle_never_cancels_a_reused_node) {
    scheduler s;
    // Fill and cancel a batch so the pool has nodes to reuse.
    std::vector<event_handle> first;
    for (int i = 0; i < 512; ++i) {
        first.push_back(s.schedule_at(1.0, [] {}));
    }
    for (const event_handle& h : first) s.cancel(h);

    // New events very likely reuse the cancelled batch's nodes.
    int fired = 0;
    std::vector<event_handle> second;
    for (int i = 0; i < 512; ++i) {
        second.push_back(s.schedule_at(2.0, [&fired] { ++fired; }));
    }
    // Stale cancels against the FIRST batch's handles must not kill the
    // second batch's events, even where the node pointer was recycled.
    for (const event_handle& h : first) s.cancel(h);
    s.run_all();
    EXPECT_EQ(fired, 512);

    // And cancelling after firing is a no-op too (ids never match again).
    for (const event_handle& h : second) s.cancel(h);
    EXPECT_EQ(s.pending(), 0u);
}

TEST(scheduler_stress, pool_reuse_keeps_fifo_order_after_cancellations) {
    scheduler s;
    std::vector<int> order;
    std::vector<event_handle> doomed;
    // Interleave survivors and doomed events at the same timestamp.
    for (int i = 0; i < 100; ++i) {
        if (i % 2 == 0) {
            s.schedule_at(5.0, [&order, i] { order.push_back(i); });
        } else {
            doomed.push_back(s.schedule_at(5.0, [] { ADD_FAILURE(); }));
        }
    }
    for (const event_handle& h : doomed) s.cancel(h);
    // Reused nodes get fresh (higher) ids: they must fire after survivors.
    for (int i = 100; i < 150; ++i) {
        s.schedule_at(5.0, [&order, i] { order.push_back(i); });
    }
    s.run_all();
    ASSERT_EQ(order.size(), 100u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 149);
}

TEST(scheduler_stress, wide_horizon_mix_stays_ordered) {
    // Microsecond-spaced events against hour-scale timers: the calendar
    // queue's direct-min fallback must never return a later event first.
    scheduler s;
    std::vector<double> times;
    s.schedule_at(3600.0, [&times, &s] { times.push_back(s.now()); });
    s.schedule_at(7200.0, [&times, &s] { times.push_back(s.now()); });
    for (int i = 0; i < 1000; ++i) {
        s.schedule_at(1e-6 * static_cast<double>(i),
                      [&times, &s] { times.push_back(s.now()); });
    }
    s.run_all();
    ASSERT_EQ(times.size(), 1002u);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    EXPECT_DOUBLE_EQ(times.back(), 7200.0);
}

}  // namespace
}  // namespace tcppred::sim
