// Chunked columnar record store (testbed/record_store.hpp): lossless
// writer/reader round-trip, store→CSV conversion byte-identical to
// save_csv, the streamed campaign sweep reproducing run_campaign bitwise at
// any job count, the streaming shard merge, evaluate_stream equivalence
// with the in-memory engine (including fault-conditioned aggregation), and
// the reader's refusal of foreign-fingerprint / truncated / tampered input.
#include "testbed/record_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/evaluation.hpp"
#include "testbed/campaign.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/dataset.hpp"
#include "testbed/shard.hpp"

using namespace tcppred;

namespace {

/// Small but non-trivial campaign that runs in well under a second.
testbed::campaign_config quick_config() {
    testbed::campaign_config cfg;
    cfg.paths = 3;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 4;
    cfg.jobs = 1;
    cfg.epoch.warmup = core::seconds{0.5};
    cfg.epoch.prior_ping.count = 60;
    cfg.epoch.transfer = core::seconds{1.5};
    return cfg;
}

/// quick_config with every fault class enabled, so fault_flags, failed
/// measurements and the CSV's optional fault column are all exercised.
testbed::campaign_config faulty_config() {
    auto cfg = quick_config();
    cfg.epochs_per_trace = 6;
    cfg.faults = sim::fault_profile::parse("pathload=0.3,ping-timeout=0.2,abort=0.2");
    return cfg;
}

std::string read_file(const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Exact equality, except NaN compares equal to NaN (faulted epochs carry
/// NaN measurements; EXPECT_EQ rejects NaN == NaN). The CSV byte-identity
/// tests pin the exact serialization, so payload bits are not at issue here.
void expect_double_equal(double a, double b) {
    if (std::isnan(a) && std::isnan(b)) return;
    EXPECT_EQ(a, b);
}

void expect_records_equal(const testbed::epoch_record& a,
                          const testbed::epoch_record& b) {
    EXPECT_EQ(a.path_id, b.path_id);
    EXPECT_EQ(a.trace_id, b.trace_id);
    EXPECT_EQ(a.epoch_index, b.epoch_index);
    expect_double_equal(a.m.avail_bw_bps, b.m.avail_bw_bps);
    expect_double_equal(a.m.phat, b.m.phat);
    EXPECT_EQ(a.m.phat_events, b.m.phat_events);
    expect_double_equal(a.m.that_s, b.m.that_s);
    expect_double_equal(a.m.ptilde, b.m.ptilde);
    expect_double_equal(a.m.ttilde_s, b.m.ttilde_s);
    expect_double_equal(a.m.r_large_bps, b.m.r_large_bps);
    expect_double_equal(a.m.r_small_bps, b.m.r_small_bps);
    expect_double_equal(a.m.tcp_loss_rate, b.m.tcp_loss_rate);
    expect_double_equal(a.m.tcp_event_rate, b.m.tcp_event_rate);
    expect_double_equal(a.m.tcp_mean_rtt_s, b.m.tcp_mean_rtt_s);
    expect_double_equal(a.m.sim_time_s, b.m.sim_time_s);
    EXPECT_EQ(a.m.events, b.m.events);
    EXPECT_EQ(a.m.fault_flags, b.m.fault_flags);
    ASSERT_EQ(a.m.prefix_goodputs.size(), b.m.prefix_goodputs.size());
    for (std::size_t i = 0; i < a.m.prefix_goodputs.size(); ++i) {
        EXPECT_EQ(a.m.prefix_goodputs[i].first, b.m.prefix_goodputs[i].first);
        EXPECT_EQ(a.m.prefix_goodputs[i].second, b.m.prefix_goodputs[i].second);
    }
}

class record_store : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("tcppred_record_store_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->line()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    /// Write `data` to a store with the given chunk size; returns the path.
    std::filesystem::path write_store(const testbed::dataset& data,
                                      const std::string& fingerprint,
                                      std::size_t chunk_capacity,
                                      const char* name = "a.store") {
        const auto file = dir_ / name;
        testbed::record_writer w(file, fingerprint,
                                 testbed::csv_catalog_lines(data.paths),
                                 testbed::store_options{chunk_capacity});
        for (const auto& rec : data.records) w.append(rec);
        w.finish();
        return file;
    }

    std::filesystem::path dir_;
};

TEST_F(record_store, round_trip_is_lossless_across_chunk_sizes) {
    const auto cfg = faulty_config();
    const testbed::dataset data = testbed::run_campaign(cfg);
    // 1 (chunk per record), 7 (odd, multiple partial groups), and a chunk
    // larger than the dataset (single-chunk store).
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{512}}) {
        const auto file = write_store(data, testbed::campaign_fingerprint(cfg), chunk);
        testbed::record_reader r(file, testbed::campaign_fingerprint(cfg));
        EXPECT_EQ(r.total(), data.records.size());
        EXPECT_EQ(r.chunk_capacity(), chunk);
        EXPECT_EQ(r.catalog_lines().size(), data.paths.size());
        testbed::epoch_record rec;
        std::size_t i = 0;
        while (r.next(rec)) {
            ASSERT_LT(i, data.records.size());
            expect_records_equal(rec, data.records[i]);
            ++i;
        }
        EXPECT_EQ(i, data.records.size());
    }
}

TEST_F(record_store, footer_counts_match_dataset) {
    const auto cfg = faulty_config();
    const testbed::dataset data = testbed::run_campaign(cfg);
    std::size_t faulted = 0;
    for (const auto& rec : data.records) {
        faulted += rec.m.fault_flags != testbed::fault_none;
    }
    ASSERT_GT(faulted, 0u) << "faulty_config must actually fault some epochs";
    const auto file = write_store(data, testbed::campaign_fingerprint(cfg), 8);
    testbed::record_reader r(file);
    EXPECT_EQ(r.n_traces(), data.traces().size());
    EXPECT_EQ(r.n_faulted(), faulted);
    EXPECT_TRUE(r.any_faults());
}

TEST_F(record_store, store_to_csv_matches_save_csv_bytes) {
    // Both the fault-free shape (no fault_flags column) and the faulted one
    // (column present) must convert byte-identically.
    for (const bool faulted : {false, true}) {
        const auto cfg = faulted ? faulty_config() : quick_config();
        const testbed::dataset data = testbed::run_campaign(cfg);
        const auto ref_csv = dir_ / (faulted ? "ref_f.csv" : "ref.csv");
        testbed::save_csv(data, ref_csv);

        const auto store = write_store(data, testbed::campaign_fingerprint(cfg), 5,
                                       faulted ? "f.store" : "c.store");
        testbed::record_reader r(store);
        const auto out_csv = dir_ / (faulted ? "out_f.csv" : "out.csv");
        testbed::store_to_csv(r, out_csv);
        EXPECT_EQ(read_file(out_csv), read_file(ref_csv)) << "faulted=" << faulted;
    }
}

TEST_F(record_store, streamed_campaign_reproduces_run_campaign_at_any_jobs) {
    auto cfg = quick_config();
    const testbed::dataset ref = testbed::run_campaign(cfg);
    const auto ref_csv = dir_ / "ref.csv";
    testbed::save_csv(ref, ref_csv);

    for (const int jobs : {1, 4}) {
        cfg.jobs = jobs;
        const auto store = dir_ / ("s" + std::to_string(jobs) + ".store");
        testbed::streamed_campaign_options opts;
        opts.store.chunk_capacity = 4;  // force several chunks
        opts.reorder_capacity = 2;      // force reorder-window blocking
        const auto outcome = testbed::run_campaign_streamed(cfg, store, opts);
        EXPECT_TRUE(outcome.complete);
        EXPECT_EQ(outcome.epochs_completed,
                  static_cast<int>(testbed::campaign_total_epochs(cfg)));

        testbed::record_reader r(store, testbed::campaign_fingerprint(cfg));
        const auto csv = dir_ / ("s" + std::to_string(jobs) + ".csv");
        testbed::store_to_csv(r, csv);
        EXPECT_EQ(read_file(csv), read_file(ref_csv)) << "jobs=" << jobs;
    }
}

TEST_F(record_store, streamed_campaign_cancel_leaves_no_store) {
    const auto cfg = quick_config();
    const auto store = dir_ / "cancelled.store";
    testbed::streamed_campaign_options opts;
    opts.cancelled = [] { return true; };  // cancel before the first epoch
    const auto outcome = testbed::run_campaign_streamed(cfg, store, opts);
    EXPECT_FALSE(outcome.complete);
    EXPECT_FALSE(std::filesystem::exists(store));
    // No stray temp files either.
    EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(record_store, merge_shard_checkpoints_streams_to_store) {
    const auto cfg = quick_config();
    const std::size_t total = testbed::campaign_total_epochs(cfg);

    std::vector<std::filesystem::path> ckpts;
    for (int s = 0; s < 2; ++s) {
        testbed::campaign_run_options opts;
        opts.checkpoint = dir_ / ("shard" + std::to_string(s) + ".ckpt");
        opts.keep_checkpoint = true;
        opts.epoch_filter = testbed::shard_filter(testbed::shard_ref{s, 2});
        const auto outcome = testbed::run_campaign_resumable(cfg, opts);
        ASSERT_TRUE(outcome.complete);
        ckpts.push_back(opts.checkpoint);
    }

    const auto store = dir_ / "merged.store";
    EXPECT_EQ(testbed::merge_shard_checkpoints_to_store(cfg, ckpts, store,
                                                        testbed::store_options{4}),
              total);

    const testbed::dataset ref = testbed::run_campaign(cfg);
    const auto ref_csv = dir_ / "ref.csv";
    testbed::save_csv(ref, ref_csv);
    testbed::record_reader r(store, testbed::campaign_fingerprint(cfg));
    const auto csv = dir_ / "merged.csv";
    testbed::store_to_csv(r, csv);
    EXPECT_EQ(read_file(csv), read_file(ref_csv));
}

TEST_F(record_store, merge_rejects_missing_and_incomplete_shards) {
    const auto cfg = quick_config();
    EXPECT_THROW(testbed::merge_shard_checkpoints_to_store(
                     cfg, {dir_ / "nonexistent.ckpt"}, dir_ / "out.store"),
                 testbed::dataset_error);

    // One shard alone does not cover the grid.
    testbed::campaign_run_options opts;
    opts.checkpoint = dir_ / "shard0.ckpt";
    opts.keep_checkpoint = true;
    opts.epoch_filter = testbed::shard_filter(testbed::shard_ref{0, 2});
    ASSERT_TRUE(testbed::run_campaign_resumable(cfg, opts).complete);
    EXPECT_THROW(testbed::merge_shard_checkpoints_to_store(cfg, {opts.checkpoint},
                                                           dir_ / "out.store"),
                 testbed::dataset_error);
}

TEST_F(record_store, reader_rejects_foreign_fingerprint) {
    const auto cfg = quick_config();
    const testbed::dataset data = testbed::run_campaign(cfg);
    const auto file = write_store(data, testbed::campaign_fingerprint(cfg), 8);

    auto other = cfg;
    other.seed += 1;
    try {
        testbed::record_reader r(file, testbed::campaign_fingerprint(other));
        FAIL() << "foreign fingerprint must be rejected";
    } catch (const testbed::dataset_error& e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
                  std::string::npos);
    }
    // Empty expected fingerprint accepts any campaign.
    testbed::record_reader any(file);
    EXPECT_EQ(any.total(), data.records.size());
}

TEST_F(record_store, reader_rejects_truncated_and_tampered_stores) {
    const auto cfg = quick_config();
    const testbed::dataset data = testbed::run_campaign(cfg);
    const auto file = write_store(data, testbed::campaign_fingerprint(cfg), 4);
    const std::string whole = read_file(file);

    const auto write_variant = [&](const std::string& content) {
        const auto p = dir_ / "variant.store";
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out << content;
        return p;
    };

    // Truncations at several depths: mid-footer, mid-chunk, header-only.
    for (const double frac : {0.95, 0.5, 0.05}) {
        const auto p = write_variant(whole.substr(
            0, static_cast<std::size_t>(static_cast<double>(whole.size()) * frac)));
        EXPECT_THROW(testbed::record_reader r(p), testbed::dataset_error)
            << "frac=" << frac;
    }

    // A flipped count in the footer index must be caught, not trusted.
    const auto pos = whole.rfind("chunkoff,0,");
    ASSERT_NE(pos, std::string::npos);
    std::string tampered = whole;
    tampered.insert(pos + std::string("chunkoff,0,").size(), "9");
    EXPECT_THROW(
        {
            testbed::record_reader r(write_variant(tampered));
            testbed::epoch_record rec;
            while (r.next(rec)) {
            }
        },
        testbed::dataset_error);

    EXPECT_THROW(testbed::record_reader r(write_variant("not,a,store\n")),
                 testbed::dataset_error);
    EXPECT_THROW(testbed::record_reader r(dir_ / "missing.store"),
                 testbed::dataset_error);
}

TEST_F(record_store, empty_store_is_diagnosed_as_empty_not_unseekable) {
    // Regression: a 0-byte store (a writer that died before its first
    // flush) and a genuinely unseekable stream used to collapse into the
    // same baffling "store is not seekable" error. The empty file must name
    // its real problem.
    const auto p = dir_ / "empty.store";
    { std::ofstream out(p, std::ios::binary | std::ios::trunc); }
    try {
        testbed::record_reader r(p);
        FAIL() << "empty store must be rejected";
    } catch (const testbed::dataset_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("empty (0 bytes)"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("not seekable"), std::string::npos) << msg;
    }

    // A stream that truly cannot seek still gets the seekability diagnosis.
    struct unseekable_buf : std::streambuf {
        // default seekoff/seekpos return pos_type(-1): every seek fails
    } buf;
    std::istream unseekable(&buf);
    try {
        testbed::record_reader r(unseekable, "<pipe>", "");
        FAIL() << "unseekable stream must be rejected";
    } catch (const testbed::dataset_error& e) {
        EXPECT_NE(std::string(e.what()).find("not seekable"), std::string::npos)
            << e.what();
    }
}

TEST_F(record_store, csv_normalized_record_matches_csv_round_trip) {
    const auto cfg = faulty_config();
    const testbed::dataset data = testbed::run_campaign(cfg);
    const auto csv = dir_ / "a.csv";
    testbed::save_csv(data, csv);
    const testbed::dataset loaded = testbed::load_csv(csv);
    ASSERT_EQ(loaded.records.size(), data.records.size());
    for (std::size_t i = 0; i < data.records.size(); ++i) {
        testbed::epoch_record norm = testbed::csv_normalized_record(data.records[i]);
        expect_records_equal(norm, loaded.records[i]);
    }
}

TEST_F(record_store, evaluate_stream_matches_engine_bitwise) {
    // Faulted campaign: exercises unscored traces, the conditioned RMSRE
    // split, and stale-input scoring — everything the streamed aggregation
    // folds incrementally.
    const auto cfg = faulty_config();
    const testbed::dataset raw = testbed::run_campaign(cfg);
    const auto csv = dir_ / "a.csv";
    testbed::save_csv(raw, csv);
    const testbed::dataset data = testbed::load_csv(csv);

    const std::vector<std::string> specs{"fb:pftk", "10-MA-LSO", "0.8-HW-LSO"};
    const auto results = analysis::evaluation_engine{}.run(data, specs);

    std::vector<const testbed::epoch_record*> ordered;
    for (const auto& [key, recs] : data.traces()) {
        ordered.insert(ordered.end(), recs.begin(), recs.end());
    }
    std::size_t pos = 0;
    analysis::stream_eval_options sopts;
    sopts.keep_epoch_errors = {0, 1, 2};
    const auto streamed = analysis::evaluate_stream(
        [&](testbed::epoch_record& out) {
            if (pos >= ordered.size()) return false;
            out = *ordered[pos++];
            return true;
        },
        specs, sopts);

    ASSERT_EQ(streamed.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto expected = analysis::summarize(results[i], true);
        EXPECT_EQ(streamed[i].name, expected.name);
        EXPECT_EQ(streamed[i].traces_unscored, expected.traces_unscored);
        ASSERT_EQ(streamed[i].traces.size(), expected.traces.size());
        for (std::size_t t = 0; t < expected.traces.size(); ++t) {
            EXPECT_EQ(streamed[i].traces[t].path_id, expected.traces[t].path_id);
            EXPECT_EQ(streamed[i].traces[t].trace_id, expected.traces[t].trace_id);
            expect_double_equal(streamed[i].traces[t].rmsre, expected.traces[t].rmsre);
            EXPECT_EQ(streamed[i].traces[t].epochs, expected.traces[t].epochs);
        }
        ASSERT_EQ(streamed[i].epoch_errors.size(), expected.epoch_errors.size());
        for (std::size_t e = 0; e < expected.epoch_errors.size(); ++e) {
            expect_double_equal(streamed[i].epoch_errors[e], expected.epoch_errors[e]);
        }
        expect_double_equal(streamed[i].conditioned.rmsre_clean,
                            expected.conditioned.rmsre_clean);
        EXPECT_EQ(streamed[i].conditioned.n_clean, expected.conditioned.n_clean);
        expect_double_equal(streamed[i].conditioned.rmsre_faulty,
                            expected.conditioned.rmsre_faulty);
        EXPECT_EQ(streamed[i].conditioned.n_faulty, expected.conditioned.n_faulty);
        expect_double_equal(streamed[i].conditioned.rmsre_stale,
                            expected.conditioned.rmsre_stale);
        EXPECT_EQ(streamed[i].conditioned.n_stale, expected.conditioned.n_stale);
    }
}

TEST_F(record_store, writer_abort_never_touches_target) {
    const auto file = dir_ / "aborted.store";
    {
        testbed::record_writer w(file, "fp", {});
        w.append(testbed::epoch_record{});
        w.abort();
    }
    EXPECT_FALSE(std::filesystem::exists(file));
    EXPECT_TRUE(std::filesystem::is_empty(dir_));

    {
        // Destructor without finish() behaves like abort().
        testbed::record_writer w(file, "fp", {});
        w.append(testbed::epoch_record{});
    }
    EXPECT_FALSE(std::filesystem::exists(file));
    EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

}  // namespace
