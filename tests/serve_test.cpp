// The serve layer (src/serve/): the request parser's rejection of hostile
// input, the path table's bitwise equivalence with the offline
// evaluation_engine, snapshot round-trip/refusal, concurrent determinism
// over disjoint paths (run under TSan in CI), and the server's response
// grammar through handle_line.
#include "serve/path_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/evaluation.hpp"
#include "core/predictor_registry.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "testbed/campaign.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred;

namespace {

/// Small faulted campaign: fault flags, NaN measurement fields and gap
/// epochs all flow through the protocol / snapshot round-trips.
testbed::campaign_config tiny_config() {
    testbed::campaign_config cfg;
    cfg.paths = 3;
    cfg.traces_per_path = 2;
    cfg.epochs_per_trace = 8;
    cfg.jobs = 1;
    cfg.epoch.warmup = core::seconds{0.5};
    cfg.epoch.prior_ping.count = 60;
    cfg.epoch.transfer = core::seconds{1.5};
    cfg.faults = sim::fault_profile::parse("pathload=0.2,ping-timeout=0.1,abort=0.1");
    return cfg;
}

serve::observation obs_of(const testbed::epoch_record& rec) {
    serve::observation ev;
    ev.epoch = rec.epoch_index;
    ev.avail_bw_bps = rec.m.avail_bw_bps;
    ev.phat = rec.m.phat;
    ev.phat_events = rec.m.phat_events;
    ev.that_s = rec.m.that_s;
    ev.r_large_bps = rec.m.r_large_bps;
    ev.fault_flags = rec.m.fault_flags;
    return ev;
}

std::string key_of(int path_id, int trace_id) {
    return "p" + std::to_string(path_id) + ".t" + std::to_string(trace_id);
}

/// Bit-exact double equality (NaN == NaN) — the serve contract is bitwise.
void expect_bits_equal(double a, double b) {
    if (std::isnan(a) && std::isnan(b)) return;
    EXPECT_EQ(a, b);
}

class serve_fixture : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("tcppred_serve_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

}  // namespace

// --- protocol --------------------------------------------------------------

TEST(serve_protocol, parses_valid_requests) {
    const auto req = serve::parse_request_line(
        "OBSERVE p0.t1 7 0x1.8p+20 0.01 0.005 0.08 0x1.2p+20 3");
    EXPECT_EQ(req.kind, serve::request_kind::observe);
    EXPECT_EQ(req.path, "p0.t1");
    EXPECT_EQ(req.obs.epoch, 7);
    EXPECT_EQ(req.obs.avail_bw_bps, 1572864.0);
    EXPECT_EQ(req.obs.phat, 0.01);
    EXPECT_EQ(req.obs.fault_flags, 3u);

    const auto pr = serve::parse_request_line("PREDICT a/b:c fb:pftk");
    EXPECT_EQ(pr.kind, serve::request_kind::predict);
    EXPECT_EQ(pr.path, "a/b:c");
    EXPECT_EQ(pr.spec, "fb:pftk");

    EXPECT_EQ(serve::parse_request_line("STATS").kind, serve::request_kind::stats);
    EXPECT_EQ(serve::parse_request_line("SNAPSHOT").kind,
              serve::request_kind::snapshot);
}

TEST(serve_protocol, nan_marks_faulted_fields) {
    const auto req =
        serve::parse_request_line("OBSERVE p 0 nan nan nan nan nan 1");
    EXPECT_TRUE(std::isnan(req.obs.avail_bw_bps));
    EXPECT_TRUE(std::isnan(req.obs.phat));
    EXPECT_TRUE(std::isnan(req.obs.r_large_bps));
}

TEST(serve_protocol, rejects_malformed_lines) {
    const auto rejects = [](std::string_view line) {
        EXPECT_THROW((void)serve::parse_request_line(line), serve::protocol_error)
            << "line: " << line;
    };
    rejects("");
    rejects("   ");
    rejects("FROBNICATE p");
    rejects("observe p 0 1 0 0 1 1 0");  // verbs are case-sensitive
    rejects("OBSERVE");
    rejects("OBSERVE p 0 1 0 0 1 1");          // missing flags
    rejects("OBSERVE p 0 1 0 0 1 1 0 extra");  // trailing field
    rejects("OBSERVE p x 1 0 0 1 1 0");        // bad epoch
    rejects("OBSERVE p -1 1 0 0 1 1 0");       // negative epoch
    rejects("OBSERVE p 0 1 1.5 0 1 1 0");      // loss rate > 1
    rejects("OBSERVE p 0 1 -0.1 0 1 1 0");     // loss rate < 0
    rejects("OBSERVE p 0 inf 0 0 1 1 0");      // inf is not a measurement
    rejects("OBSERVE p 0 1 0 0 1 1 4294967296");  // flags past 32 bits
    rejects("OBSERVE p 0 1 0 0 1 1 banana");
    rejects("PREDICT p");
    rejects("PREDICT p fb:pftk extra");
    rejects("STATS extra");
    rejects("OBSERVE bad,path 0 1 0 0 1 1 0");  // ',' breaks snapshot lines
    rejects(std::string("OBSERVE ") + std::string(300, 'a') + " 0 1 0 0 1 1 0");
    rejects("OBSERVE p\x01q 0 1 0 0 1 1 0");  // control bytes
}

TEST(serve_protocol, rejects_oversized_lines) {
    std::string line = "PREDICT p ";
    line.append(serve::k_max_line_bytes, 'x');
    EXPECT_THROW((void)serve::parse_request_line(line), serve::protocol_error);
}

TEST(serve_protocol, format_observe_round_trips_bitwise) {
    serve::observation ev;
    ev.epoch = 41;
    ev.avail_bw_bps = 1234567.890123;
    ev.phat = 0.0123456789;
    ev.phat_events = std::nan("");
    ev.that_s = 0.0801234;
    ev.r_large_bps = 987654.321;
    ev.fault_flags = 0x13;
    const auto req = serve::parse_request_line(serve::format_observe("p1.t2", ev));
    EXPECT_EQ(req.path, "p1.t2");
    EXPECT_EQ(req.obs.epoch, ev.epoch);
    expect_bits_equal(req.obs.avail_bw_bps, ev.avail_bw_bps);
    expect_bits_equal(req.obs.phat, ev.phat);
    expect_bits_equal(req.obs.phat_events, ev.phat_events);
    expect_bits_equal(req.obs.that_s, ev.that_s);
    expect_bits_equal(req.obs.r_large_bps, ev.r_large_bps);
    EXPECT_EQ(req.obs.fault_flags, ev.fault_flags);
}

TEST(serve_protocol, validates_path_names) {
    EXPECT_TRUE(serve::valid_path_name("p0.t1"));
    EXPECT_TRUE(serve::valid_path_name("host-a:eth0/14"));
    EXPECT_FALSE(serve::valid_path_name(""));
    EXPECT_FALSE(serve::valid_path_name("has space"));
    EXPECT_FALSE(serve::valid_path_name("has,comma"));
    EXPECT_FALSE(serve::valid_path_name(std::string(257, 'a')));
}

// --- path table ------------------------------------------------------------

TEST(serve_path_table, rejects_bad_spec_up_front) {
    EXPECT_THROW(serve::path_table({"fb:pftk", "not-a-spec"}),
                 core::predictor_spec_error);
}

TEST(serve_path_table, predict_statuses) {
    serve::path_table table({"fb:pftk"});
    EXPECT_EQ(table.predict("nope", "fb:pftk").st,
              serve::predict_reply::status::unknown_path);
    serve::observation ev;
    ev.avail_bw_bps = 1e6;
    ev.phat = 0.01;
    ev.that_s = 0.08;
    ev.r_large_bps = 9e5;
    EXPECT_EQ(table.observe("p", ev), 1u);
    EXPECT_EQ(table.predict("p", "other").st,
              serve::predict_reply::status::unknown_spec);
    const auto ok = table.predict("p", "fb:pftk");
    EXPECT_EQ(ok.st, serve::predict_reply::status::ok);
    EXPECT_EQ(ok.epoch, 0);
}

TEST(serve_path_table, replay_is_bitwise_equal_to_offline_engine) {
    // The tentpole's correctness anchor, in-process: replaying a faulted
    // campaign observation-by-observation yields cached forecasts bitwise
    // identical to analysis::evaluation_engine over the same records —
    // across an FB and an HB predictor, at several shard counts.
    const testbed::dataset data = testbed::run_campaign(tiny_config());
    const std::vector<std::string> specs{"fb:pftk", "10-MA"};
    const analysis::evaluation_engine engine;
    const auto offline = engine.run(data, specs);

    for (const std::size_t shards : {1u, 8u}) {
        serve::path_table table(specs, {}, shards);
        // live[(path,trace)][spec] = forecast captured after each OBSERVE.
        std::map<std::pair<int, int>, std::vector<std::vector<double>>> live;
        for (const auto& [key, recs] : data.traces()) {
            const std::string path = key_of(key.first, key.second);
            auto& per_spec = live[key];
            per_spec.resize(specs.size());
            for (const testbed::epoch_record* rec : recs) {
                table.observe(path, obs_of(*rec));
                for (std::size_t j = 0; j < specs.size(); ++j) {
                    const auto reply = table.predict(path, specs[j]);
                    ASSERT_EQ(reply.st, serve::predict_reply::status::ok);
                    EXPECT_EQ(reply.epoch, rec->epoch_index);
                    per_spec[j].push_back(reply.value.value_bps);
                }
            }
        }
        EXPECT_EQ(table.observations(), data.records.size());
        std::size_t compared = 0;
        for (std::size_t j = 0; j < specs.size(); ++j) {
            for (const analysis::trace_result& tr : offline[j].traces) {
                const auto it = live.find({tr.path_id, tr.trace_id});
                ASSERT_NE(it, live.end());
                for (const analysis::epoch_score& sc : tr.epochs) {
                    ASSERT_LT(sc.index, it->second[j].size());
                    EXPECT_EQ(it->second[j][sc.index], sc.predicted_bps)
                        << offline[j].name << " trace (" << tr.path_id << ","
                        << tr.trace_id << ") epoch " << sc.index;
                    ++compared;
                }
            }
        }
        EXPECT_GT(compared, 0u) << "engine scored nothing — vacuous test";
    }
}

TEST(serve_path_table, predict_accepts_canonical_name_alias) {
    serve::path_table table({"fb:pftk"});
    serve::observation ev;
    ev.avail_bw_bps = 1e6;
    ev.phat = 0.01;
    ev.that_s = 0.08;
    ev.r_large_bps = 9e5;
    table.observe("p", ev);
    const auto by_spec = table.predict("p", "fb:pftk");
    const auto by_name = table.predict("p", table.spec_names()[0]);
    EXPECT_EQ(by_name.st, serve::predict_reply::status::ok);
    expect_bits_equal(by_spec.value.value_bps, by_name.value.value_bps);
}

// --- snapshots -------------------------------------------------------------

TEST_F(serve_fixture, snapshot_round_trip_is_bitwise) {
    const testbed::dataset data = testbed::run_campaign(tiny_config());
    const std::vector<std::string> specs{"fb:pftk", "10-MA"};
    serve::path_table a(specs);
    for (const auto& [key, recs] : data.traces()) {
        const std::string path = key_of(key.first, key.second);
        for (const testbed::epoch_record* rec : recs) a.observe(path, obs_of(*rec));
    }
    const std::string rendered = serve::render_snapshot(a);
    const auto file = dir_ / "snap.txt";
    serve::write_snapshot(a, file);

    serve::path_table b(specs);
    const auto st = serve::load_snapshot(b, file);
    EXPECT_EQ(st.events, a.observations());
    EXPECT_EQ(st.paths, a.path_count());
    // Re-rendering the restored table reproduces the file byte for byte,
    // and the cached forecasts carry over bitwise.
    EXPECT_EQ(serve::render_snapshot(b), rendered);
    for (const auto& [key, recs] : data.traces()) {
        const std::string path = key_of(key.first, key.second);
        for (const std::string& spec : specs) {
            const auto ra = a.predict(path, spec);
            const auto rb = b.predict(path, spec);
            ASSERT_EQ(ra.st, serve::predict_reply::status::ok);
            ASSERT_EQ(rb.st, serve::predict_reply::status::ok);
            EXPECT_EQ(ra.epoch, rb.epoch);
            expect_bits_equal(ra.value.value_bps, rb.value.value_bps);
        }
    }
}

TEST_F(serve_fixture, snapshot_refuses_mismatched_specs_and_garbage) {
    const std::vector<std::string> specs{"fb:pftk"};
    serve::path_table a(specs);
    serve::observation ev;
    ev.avail_bw_bps = 1e6;
    ev.phat = 0.01;
    ev.that_s = 0.08;
    ev.r_large_bps = 9e5;
    a.observe("p", ev);
    const auto file = dir_ / "snap.txt";
    serve::write_snapshot(a, file);

    serve::path_table other({"fb:pftk", "10-MA"});
    EXPECT_THROW((void)serve::load_snapshot(other, file), testbed::dataset_error);

    const auto variant = [&](const std::string& content) {
        const auto p = dir_ / "variant.txt";
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out << content;
        return p;
    };
    std::ifstream in(file, std::ios::binary);
    const std::string whole((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    // Truncations at several depths — all refused, never half-applied.
    for (const double frac : {0.8, 0.3}) {
        serve::path_table t(specs);
        EXPECT_THROW(
            (void)serve::load_snapshot(
                t, variant(whole.substr(
                       0, static_cast<std::size_t>(
                              static_cast<double>(whole.size()) * frac)))),
            testbed::dataset_error)
            << "frac=" << frac;
    }
    serve::path_table t2(specs);
    EXPECT_THROW((void)serve::load_snapshot(t2, variant("not a snapshot\n")),
                 testbed::dataset_error);
    serve::path_table t3(specs);
    EXPECT_THROW((void)serve::load_snapshot(t3, dir_ / "missing.txt"),
                 testbed::dataset_error);
}

// --- concurrency -----------------------------------------------------------

TEST(serve_path_table, concurrent_disjoint_paths_match_serial_replay) {
    // Per-path state depends only on that path's observation order, so any
    // thread interleaving over disjoint paths must reach the same table
    // state as a serial replay. Run under TSan in CI; also pins that the
    // striped locking actually serializes per-path work.
    const testbed::dataset data = testbed::run_campaign(tiny_config());
    const std::vector<std::string> specs{"fb:pftk", "10-MA"};
    const auto traces = data.traces();

    serve::path_table serial(specs);
    for (const auto& [key, recs] : traces) {
        const std::string path = key_of(key.first, key.second);
        for (const testbed::epoch_record* rec : recs) {
            serial.observe(path, obs_of(*rec));
        }
    }

    for (int round = 0; round < 4; ++round) {
        serve::path_table table(specs, {}, 2);  // fewer shards than threads
        std::vector<std::thread> threads;
        threads.reserve(traces.size());
        for (const auto& [key, recs] : traces) {
            threads.emplace_back([&table, key = key, recs = recs] {
                const std::string path = key_of(key.first, key.second);
                for (const testbed::epoch_record* rec : recs) {
                    table.observe(path, obs_of(*rec));
                }
            });
        }
        for (auto& t : threads) t.join();
        EXPECT_EQ(serve::render_snapshot(table), serve::render_snapshot(serial));
    }
}

// --- server response grammar ----------------------------------------------

TEST_F(serve_fixture, server_handle_line_grammar) {
    const std::vector<std::string> specs{"fb:pftk"};
    serve::path_table table(specs);
    serve::server_config cfg;
    cfg.unix_socket = (dir_ / "t.sock").string();
    cfg.snapshot_file = dir_ / "snap.txt";
    serve::server srv(table, cfg);

    EXPECT_EQ(srv.handle_line("OBSERVE p 0 0x1.8p+20 0.01 0.005 0.08 0x1.2p+20 0"),
              "OK");
    const std::string reply = srv.handle_line("PREDICT p fb:pftk");
    EXPECT_EQ(reply.substr(0, 3), "OK ");
    // OK <hexfloat> <status> <source> <staleness> <epoch>
    EXPECT_NE(reply.find(" ok "), std::string::npos) << reply;
    EXPECT_EQ(reply.substr(reply.size() - 2), " 0") << reply;

    EXPECT_EQ(srv.handle_line("PREDICT q fb:pftk"), "ERR unknown path");
    EXPECT_EQ(srv.handle_line("PREDICT p 9-EWMA"),
              "ERR unknown spec (not in this daemon's --specs)");
    const std::string stats = srv.handle_line("STATS");
    EXPECT_EQ(stats.substr(0, 3), "OK ");
    EXPECT_NE(stats.find("paths=1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("observations=1"), std::string::npos) << stats;

    EXPECT_EQ(srv.handle_line("SNAPSHOT"), "OK");
    EXPECT_TRUE(std::filesystem::exists(cfg.snapshot_file));

    const std::string err = srv.handle_line("OBSERVE p not-an-epoch 1 0 0 1 1 0");
    EXPECT_EQ(err.substr(0, 4), "ERR ");
    EXPECT_NE(err.find("epoch"), std::string::npos) << err;
}

TEST_F(serve_fixture, server_snapshot_without_file_is_an_error) {
    serve::path_table table({"fb:pftk"});
    serve::server_config cfg;
    cfg.unix_socket = (dir_ / "t.sock").string();
    serve::server srv(table, cfg);
    EXPECT_EQ(srv.handle_line("SNAPSHOT"),
              "ERR no snapshot file configured (--snapshot)");
}
