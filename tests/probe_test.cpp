#include <gtest/gtest.h>

#include <memory>

#include "core/units.hpp"
#include "net/cross_traffic.hpp"
#include "probe/pathload.hpp"
#include "probe/ping_prober.hpp"

namespace tcppred::probe {
namespace {

struct world {
    sim::scheduler sched;
    std::unique_ptr<net::duplex_path> path;

    world(double cap_bps, double rtt_s, std::size_t buffer) {
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{cap_bps}, core::seconds{rtt_s / 2.0}, buffer}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtt_s / 2.0}, 512}};
        path = std::make_unique<net::duplex_path>(sched, fwd, rev);
    }
};

TEST(ping_prober, measures_base_rtt_on_idle_path) {
    world w(10e6, 0.050, 64);
    ping_config cfg;
    cfg.count = 100;
    ping_prober prober(w.sched, *w.path, 1, cfg);
    prober.start();
    w.sched.run_until(10.0);
    ASSERT_TRUE(prober.done());
    const auto& r = prober.result();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->sent, 100u);
    EXPECT_EQ(r->received, 100u);
    EXPECT_DOUBLE_EQ(r->loss_rate().value(), 0.0);
    EXPECT_NEAR(r->mean_rtt().value(), 0.050, 0.002);
}

TEST(ping_prober, sees_queueing_delay_under_load) {
    world w(2e6, 0.040, 60);
    net::poisson_source cross(w.sched, *w.path, 0, 99, 7, 1.7e6);  // 85% load
    cross.start();
    ping_config cfg;
    cfg.count = 300;
    ping_prober prober(w.sched, *w.path, 1, cfg);
    w.sched.run_until(1.0);  // warm the queue
    prober.start();
    w.sched.run_until(20.0);
    ASSERT_TRUE(prober.done());
    EXPECT_GT(prober.result()->mean_rtt().value(), 0.045);
}

TEST(ping_prober, counts_losses_on_saturated_path) {
    world w(1e6, 0.030, 10);
    net::poisson_source cross(w.sched, *w.path, 0, 99, 7, 1.3e6);  // >100% load
    cross.start();
    ping_config cfg;
    cfg.count = 300;
    ping_prober prober(w.sched, *w.path, 1, cfg);
    w.sched.run_until(1.0);
    prober.start();
    w.sched.run_until(30.0);
    ASSERT_TRUE(prober.done());
    EXPECT_GT(prober.result()->loss_rate().value(), 0.05);
    EXPECT_LT(prober.result()->loss_rate().value(), 1.0);
}

TEST(ping_prober, completion_callback_fires_once) {
    world w(10e6, 0.020, 64);
    ping_config cfg;
    cfg.count = 10;
    ping_prober prober(w.sched, *w.path, 1, cfg);
    int called = 0;
    prober.start([&](const probe_result<ping_result>&) { ++called; });
    w.sched.run_until(5.0);
    EXPECT_EQ(called, 1);
}

TEST(classify_trend, detects_increasing_delays) {
    std::vector<double> owds;
    for (int i = 0; i < 60; ++i) owds.push_back(0.010 + i * 0.0005);
    EXPECT_EQ(classify_trend(owds), owd_trend::increasing);
}

TEST(classify_trend, flat_delays_are_non_increasing) {
    std::vector<double> owds(60, 0.010);
    // Alternate tiny jitter around the constant.
    for (std::size_t i = 0; i < owds.size(); ++i) {
        owds[i] += (i % 2 == 0 ? 1 : -1) * 1e-6;
    }
    EXPECT_EQ(classify_trend(owds), owd_trend::non_increasing);
}

TEST(classify_trend, too_few_samples_is_ambiguous) {
    EXPECT_EQ(classify_trend({0.01, 0.02, 0.03}), owd_trend::ambiguous);
}

TEST(pathload, estimates_capacity_on_idle_path) {
    world w(10e6, 0.040, 100);
    pathload_config cfg;
    cfg.max_rate = core::bits_per_second{13e6};
    pathload pl(w.sched, *w.path, 1, cfg);
    pl.start();
    w.sched.run_until(30.0);
    ASSERT_TRUE(pl.done());
    // Idle path: avail-bw ~ capacity (10 Mbps). Allow generous tolerance
    // for the binary-search bracket.
    EXPECT_GT(pl.result()->estimate().value(), 7e6);
    EXPECT_LT(pl.result()->estimate().value(), 13e6);
}

TEST(pathload, estimates_leftover_bandwidth_under_load) {
    world w(10e6, 0.040, 100);
    net::poisson_source cross(w.sched, *w.path, 0, 99, 7, 6e6);  // 60% load
    cross.start();
    pathload_config cfg;
    cfg.max_rate = core::bits_per_second{13e6};
    pathload pl(w.sched, *w.path, 1, cfg);
    w.sched.run_until(1.0);
    pl.start();
    w.sched.run_until(60.0);
    ASSERT_TRUE(pl.done());
    // Avail-bw ~ 4 Mbps; accept the bracket being within a factor ~2.
    EXPECT_GT(pl.result()->estimate().value(), 1.5e6);
    EXPECT_LT(pl.result()->estimate().value(), 8e6);
}

TEST(pathload, respects_stream_budget) {
    world w(10e6, 0.040, 100);
    pathload_config cfg;
    cfg.max_streams = 4;
    pathload pl(w.sched, *w.path, 1, cfg);
    pl.start();
    w.sched.run_until(30.0);
    ASSERT_TRUE(pl.done());
    EXPECT_LE(pl.result()->streams_used, 4);
}

TEST(cross_traffic, poisson_rate_converges) {
    world w(100e6, 0.010, 512);
    net::poisson_source src(w.sched, *w.path, 0, 5, 11, 5e6);
    std::uint64_t bytes = 0;
    w.path->on_cross_exit(5, [&](net::packet p) { bytes += p.size_bytes; });
    src.start();
    w.sched.run_until(50.0);
    src.stop();
    const double rate = static_cast<double>(bytes) * 8.0 / 50.0;
    EXPECT_NEAR(rate, 5e6, 0.6e6);
}

TEST(cross_traffic, pareto_mean_rate_approximates_target) {
    world w(100e6, 0.010, 512);
    net::pareto_onoff_source src(w.sched, *w.path, 0, 5, 11, net::pareto_onoff_config{});
    src.set_mean_rate(2e6);
    std::uint64_t bytes = 0;
    w.path->on_cross_exit(5, [&](net::packet p) { bytes += p.size_bytes; });
    src.start();
    w.sched.run_until(300.0);
    src.stop();
    const double rate = static_cast<double>(bytes) * 8.0 / 300.0;
    // Heavy-tailed ON periods converge slowly; just require the right scale.
    EXPECT_GT(rate, 0.8e6);
    EXPECT_LT(rate, 4.0e6);
}

}  // namespace
}  // namespace tcppred::probe
