#include "net/path.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/units.hpp"

namespace tcppred::net {
namespace {

std::vector<hop_config> two_hops() {
    return {hop_config{core::bits_per_second{100e6}, core::seconds{0.005}, 64},
            hop_config{core::bits_per_second{10e6}, core::seconds{0.010}, 32}};
}

std::vector<hop_config> one_hop() {
    return {hop_config{core::bits_per_second{100e6}, core::seconds{0.015}, 64}};
}

packet data_packet(flow_id flow, std::uint64_t seq = 0, std::uint32_t size = 1500) {
    packet p;
    p.flow = flow;
    p.kind = packet_kind::tcp_data;
    p.size_bytes = size;
    p.seq = seq;
    return p;
}

TEST(duplex_path, forward_delivery_reaches_registered_flow) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);

    std::vector<std::uint64_t> got;
    path.on_deliver_forward(7, [&](packet p) { got.push_back(p.seq); });
    path.send_forward(data_packet(7, 42));
    s.run_all();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42u);
}

TEST(duplex_path, unregistered_flow_is_dropped_silently) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    path.send_forward(data_packet(99));
    s.run_all();  // must not crash
    EXPECT_EQ(path.forward_link(0).stats().delivered, 1u);
}

TEST(duplex_path, reverse_direction_is_independent) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    int fwd_got = 0, rev_got = 0;
    path.on_deliver_forward(1, [&](packet) { ++fwd_got; });
    path.on_deliver_reverse(1, [&](packet) { ++rev_got; });
    path.send_reverse(data_packet(1));
    s.run_all();
    EXPECT_EQ(fwd_got, 0);
    EXPECT_EQ(rev_got, 1);
}

TEST(duplex_path, end_to_end_latency_sums_hops) {
    sim::scheduler s;
    const auto fwd = two_hops();  // prop 5 ms + 10 ms
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    double arrived = -1.0;
    path.on_deliver_forward(1, [&](packet) { arrived = s.now(); });
    path.send_forward(data_packet(1, 0, 1500));
    s.run_all();
    // tx: 1500B at 100 Mbps = 0.12 ms, at 10 Mbps = 1.2 ms; prop 15 ms.
    EXPECT_NEAR(arrived, 0.00012 + 0.0012 + 0.015, 1e-9);
}

TEST(duplex_path, bottleneck_is_minimum_capacity_link) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    EXPECT_EQ(path.bottleneck_index(), 1u);
    EXPECT_DOUBLE_EQ(path.bottleneck().capacity_bps(), 10e6);
}

TEST(duplex_path, base_rtt_sums_both_directions) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    EXPECT_NEAR(path.base_rtt().value(), 0.005 + 0.010 + 0.015, 1e-12);
}

TEST(duplex_path, cross_traffic_exits_after_its_link) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);

    int exited = 0, delivered_end = 0;
    path.on_cross_exit(50, [&](packet) { ++exited; });
    path.on_deliver_forward(50, [&](packet) { ++delivered_end; });
    packet p = data_packet(50);
    p.kind = packet_kind::cross;
    path.inject_forward(1, p);
    s.run_all();
    EXPECT_EQ(exited, 1);
    EXPECT_EQ(delivered_end, 0);  // never traverses the rest of the path
}

TEST(duplex_path, cross_and_end_to_end_share_the_bottleneck_queue) {
    sim::scheduler s;
    std::vector<hop_config> fwd{
        hop_config{core::bits_per_second{1e6}, core::seconds{0.0}, 1}};  // tiny buffer
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    int delivered = 0;
    path.on_deliver_forward(1, [&](packet) { ++delivered; });
    // Fill the bottleneck with cross traffic, then offer an end-to-end
    // packet: it must be dropped.
    packet cross = data_packet(50);
    cross.kind = packet_kind::cross;
    path.inject_forward(0, cross);
    path.inject_forward(0, cross);
    path.send_forward(data_packet(1));
    s.run_all();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(path.forward_link(0).stats().dropped, 1u);
}

TEST(duplex_path, requires_at_least_one_hop) {
    sim::scheduler s;
    const std::vector<hop_config> none;
    const auto rev = one_hop();
    EXPECT_THROW(duplex_path(s, none, rev), std::invalid_argument);
}

TEST(shared_link_conduit, round_trip_covers_all_delays) {
    sim::scheduler s;
    const auto fwd = two_hops();
    const auto rev = one_hop();
    duplex_path path(s, fwd, rev);
    shared_link_conduit conduit(s, path, 1, 60, core::seconds{0.010},
                                core::seconds{0.010}, core::seconds{0.020});
    EXPECT_NEAR(conduit.round_trip_floor().value(), 0.040, 1e-12);

    double data_at = -1.0, ack_at = -1.0;
    conduit.on_deliver_data(60, [&](packet) { data_at = s.now(); });
    conduit.on_deliver_ack(60, [&](packet) { ack_at = s.now(); });
    conduit.send_data(data_packet(60, 0, 1500));
    s.run_all();
    // access 10 ms + tx 1.2 ms + prop 10 ms + egress 10 ms.
    EXPECT_NEAR(data_at, 0.010 + 0.0012 + 0.010 + 0.010, 1e-9);
    packet ack;
    ack.flow = 60;
    ack.kind = packet_kind::tcp_ack;
    ack.size_bytes = 40;
    conduit.send_ack(ack);
    s.run_all();
    EXPECT_NEAR(ack_at - data_at, 0.020, 1e-9);
}

}  // namespace
}  // namespace tcppred::net
