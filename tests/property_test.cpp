// Property-based suites: invariants that must hold across randomized
// scenarios of the simulator and the prediction library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/units.hpp"
#include "core/lso.hpp"
#include "core/metrics.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "probe/pathload.hpp"
#include "probe/ping_prober.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

namespace tcppred {
namespace {

// --- scheduler: events always fire in nondecreasing time order, whatever
//     the insertion pattern.
class scheduler_order : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(scheduler_order, random_insertions_fire_in_order) {
    sim::scheduler s;
    sim::rng r(GetParam());
    std::vector<double> fired;
    // Seed events that themselves schedule more events.
    std::function<void()> spawn = [&] {
        fired.push_back(s.now());
        if (fired.size() < 500) {
            s.schedule_in(r.uniform(0.0, 2.0), spawn);
            if (r.chance(0.5)) s.schedule_in(r.uniform(0.0, 0.5), spawn);
        }
    };
    for (int i = 0; i < 5; ++i) s.schedule_at(r.uniform(0.0, 1.0), spawn);
    s.run_all();
    ASSERT_GE(fired.size(), 5u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(seeds, scheduler_order, ::testing::Values(1, 7, 42, 1234));

// --- link: packet conservation (enqueued = delivered + dropped + queued)
//     under random offered load.
class link_conservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(link_conservation, packets_are_conserved) {
    sim::scheduler s;
    sim::rng r(GetParam());
    net::link l(s, r.uniform(1e6, 20e6), r.uniform(0.001, 0.05),
                static_cast<std::size_t>(r.uniform_int(2, 64)));
    std::uint64_t delivered = 0;
    l.set_sink([&](net::packet) { ++delivered; });

    std::uint64_t offered = 0;
    for (int burst = 0; burst < 20; ++burst) {
        s.schedule_at(r.uniform(0.0, 1.0), [&] {
            for (int i = 0; i < 30; ++i) {
                net::packet p;
                p.flow = 1;
                p.size_bytes = static_cast<std::uint32_t>(r.uniform_int(40, 1500));
                l.enqueue(p);
                ++offered;
            }
        });
    }
    s.run_all();
    EXPECT_EQ(offered, delivered + l.stats().dropped);
    EXPECT_EQ(delivered, l.stats().delivered);
    EXPECT_EQ(l.queue_length(), 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, link_conservation, ::testing::Values(3, 9, 77, 2024));

// --- TCP: across random path conditions, accounting invariants hold and
//     delivered data never exceeds sent data.
class tcp_invariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(tcp_invariants, accounting_is_consistent) {
    sim::rng r(GetParam());
    sim::scheduler sched;
    const double cap = r.uniform(1e6, 15e6);
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{cap}, core::seconds{r.uniform(0.005, 0.08)},
        static_cast<std::size_t>(r.uniform_int(8, 120))}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{r.uniform(0.005, 0.08)}, 512}};
    net::duplex_path path(sched, fwd, rev);
    if (r.chance(0.5)) path.forward_link(0).set_random_loss(r.uniform(0.0, 0.02), 5);
    net::poisson_source cross(sched, path, 0, 99, r.uniform_int(1, 1 << 30),
                              r.uniform(0.0, 0.8) * cap);
    cross.start();

    net::path_conduit conduit(path);
    tcp::tcp_config cfg;
    cfg.max_window_bytes = static_cast<std::uint64_t>(r.uniform_int(8, 1024)) * 1024;
    tcp::tcp_connection conn(sched, conduit, 1, cfg);
    conn.start();
    sched.run_until(8.0);
    conn.quiesce();
    cross.stop();
    sched.run_all();

    const auto& st = conn.sender().stats();
    EXPECT_LE(st.segments_delivered, st.segments_sent);
    EXPECT_LE(st.retransmits, st.segments_sent);
    EXPECT_LE(st.fast_recoveries + st.timeouts, st.segments_sent);
    EXPECT_EQ(conn.sender().acked_bytes(), st.segments_delivered * cfg.mss_bytes);
    // The receiver's cumulative progress can only run AHEAD of the sender's
    // ACKed view (final ACKs may be lost or arrive after quiesce), never
    // behind it.
    EXPECT_GE(conn.receiver().next_expected(), st.segments_delivered);
    // Goodput can never exceed the bottleneck capacity.
    EXPECT_LE(static_cast<double>(conn.sender().acked_bytes()) * 8.0 / 8.0, cap * 1.01);
    for (const double sample : st.rtt_samples) EXPECT_GT(sample, 0.0);
}

INSTANTIATE_TEST_SUITE_P(seeds, tcp_invariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- ping prober: loss rate in [0,1], RTTs at least the propagation floor,
//     sent == configured count, under random load.
class prober_bounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(prober_bounds, results_within_physical_bounds) {
    sim::rng r(GetParam());
    sim::scheduler sched;
    const double rtt = r.uniform(0.01, 0.2);
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{r.uniform(1e6, 10e6)}, core::seconds{rtt / 2},
        static_cast<std::size_t>(r.uniform_int(4, 64))}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{rtt / 2}, 512}};
    net::duplex_path path(sched, fwd, rev);
    net::poisson_source cross(sched, path, 0, 99, 11, r.uniform(0.3, 1.1) * 5e6);
    cross.start();

    probe::ping_config cfg;
    cfg.count = 150;
    probe::ping_prober prober(sched, path, 1, cfg);
    prober.start();
    sched.run_until(60.0);
    cross.stop();
    sched.run_all();

    ASSERT_TRUE(prober.done());
    const auto& res = prober.result();
    EXPECT_EQ(res->sent, 150u);
    EXPECT_GE(res->loss_rate().value(), 0.0);
    EXPECT_LE(res->loss_rate().value(), 1.0);
    EXPECT_EQ(res->rtts.size(), res->received);
    for (const double sample : res->rtts) EXPECT_GE(sample, rtt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(seeds, prober_bounds, ::testing::Values(4, 19, 100, 555));

// --- pathload: the final bracket is ordered and inside the search range.
class pathload_bracket : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(pathload_bracket, bracket_invariants) {
    sim::rng r(GetParam());
    sim::scheduler sched;
    const double cap = r.uniform(2e6, 12e6);
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{cap}, core::seconds{0.02}, 100}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{0.02}, 512}};
    net::duplex_path path(sched, fwd, rev);
    net::poisson_source cross(sched, path, 0, 99, 3, r.uniform(0.0, 0.7) * cap);
    cross.start();

    probe::pathload_config cfg;
    cfg.max_rate = core::bits_per_second{cap * 1.3};
    probe::pathload pl(sched, path, 1, cfg);
    sched.run_until(1.0);
    pl.start();
    sched.run_until(120.0);
    ASSERT_TRUE(pl.done());
    const auto& res = pl.result();
    EXPECT_LE(res->low_bps, res->high_bps);
    EXPECT_GE(res->low_bps, cfg.min_rate.value() - 1.0);
    EXPECT_LE(res->high_bps, cfg.max_rate.value() + 1.0);
    EXPECT_GE(res->streams_used, 1);
    EXPECT_LE(res->streams_used, cfg.max_streams);
}

INSTANTIATE_TEST_SUITE_P(seeds, pathload_bracket, ::testing::Values(6, 28, 303));

// --- relative error: algebraic properties for arbitrary positive pairs.
class error_properties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(error_properties, symmetry_scale_invariance_and_sign) {
    sim::rng r(GetParam());
    for (int i = 0; i < 200; ++i) {
        const double actual = r.uniform(1e3, 1e8);
        const double w = r.uniform(1.01, 50.0);
        // |E| identical for w-times over- and underestimation.
        EXPECT_NEAR(core::relative_error(actual * w, actual),
                    -core::relative_error(actual / w, actual), 1e-6);
        // Scale invariance: scaling both by a constant keeps E.
        const double k = r.uniform(0.1, 1000.0);
        EXPECT_NEAR(core::relative_error(actual * w, actual),
                    core::relative_error(actual * w * k, actual * k), 1e-6);
        // E is zero iff prediction equals actual.
        EXPECT_DOUBLE_EQ(core::relative_error(actual, actual), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, error_properties, ::testing::Values(17, 23));

// --- LSO predictor never forecasts NaN once it has seen a sample, and its
//     forecast stays within the range of the cleaned history (for MA inner).
class lso_forecast_bounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(lso_forecast_bounds, forecast_within_cleaned_history_range) {
    sim::rng r(GetParam());
    core::lso_predictor pred(std::make_unique<core::moving_average>(10));
    double level = r.uniform(1e6, 1e7);
    for (int i = 0; i < 120; ++i) {
        if (r.chance(0.03)) level *= r.chance(0.5) ? 2.5 : 0.4;  // level shifts
        double x = level * (1.0 + r.normal(0.0, 0.1));
        if (r.chance(0.02)) x *= 4.0;  // outliers
        x = std::max(x, 1.0);
        pred.observe(x);
        const double f = pred.predict();
        ASSERT_FALSE(std::isnan(f));
        double lo = 1e300, hi = 0;
        for (const auto& s : pred.filter().cleaned()) {
            lo = std::min(lo, s.value);
            hi = std::max(hi, s.value);
        }
        EXPECT_GE(f, lo - 1e-6);
        EXPECT_LE(f, hi + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, lso_forecast_bounds, ::testing::Values(5, 50, 500));

// --- destruction safety: probers/transfers/connections destroyed while the
//     simulation keeps running must not corrupt anything (regression test
//     for the dangling-callback class of bugs).
TEST(lifetime_safety, components_can_die_mid_simulation) {
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{net::hop_config{
        core::bits_per_second{5e6}, core::seconds{0.02}, 30}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{0.02}, 512}};
    net::duplex_path path(sched, fwd, rev);
    net::poisson_source cross(sched, path, 0, 99, 1, 3e6);
    cross.start();

    for (int round = 0; round < 5; ++round) {
        {
            net::path_conduit conduit(path);
            tcp::tcp_connection conn(sched, conduit,
                                     static_cast<net::flow_id>(100 + round));
            conn.start();
            sched.run_until(sched.now() + 1.0);
            // Destroyed WITHOUT quiesce, with packets in flight and timers
            // armed.
        }
        {
            probe::ping_config pc;
            pc.count = 30;
            probe::ping_prober prober(sched, path,
                                      static_cast<net::flow_id>(200 + round), pc);
            prober.start();
            sched.run_until(sched.now() + 0.2);
            // Destroyed mid-probing: timeouts pending.
        }
        sched.run_until(sched.now() + 3.0);  // stale events must be harmless
    }
    SUCCEED();
}

}  // namespace
}  // namespace tcppred
