#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "core/units.hpp"
#include "testbed/campaign.hpp"

namespace tcppred::analysis {
namespace {

using testbed::dataset;
using testbed::epoch_record;

/// Hand-built dataset: 2 paths x 1 trace x 6 epochs with controlled values.
dataset synthetic_dataset() {
    dataset data;
    for (int path = 0; path < 2; ++path) {
        testbed::path_profile p;
        p.id = path;
        // Built up in two steps: GCC 12's -Wrestrict false-fires on
        // `const char* + std::string&&` at -O2.
        p.name = "p";
        p.name += std::to_string(path);
        p.forward = {net::hop_config{core::bits_per_second{10e6}, core::seconds{0.02}, 64}};
        p.reverse = {net::hop_config{core::bits_per_second{100e6}, core::seconds{0.02}, 64}};
        data.paths.push_back(p);
        for (int e = 0; e < 6; ++e) {
            epoch_record r;
            r.path_id = path;
            r.trace_id = 0;
            r.epoch_index = e;
            r.m.phat = path == 0 ? 0.01 : 0.0;  // path 0 lossy, path 1 lossless
            r.m.that_s = 0.05;
            r.m.avail_bw_bps = 5e6;
            r.m.ptilde = r.m.phat * 2;
            r.m.ttilde_s = 0.06;
            r.m.r_large_bps = 2e6 + 1e5 * e;
            r.m.r_small_bps = 1e6;
            data.records.push_back(r);
        }
    }
    return data;
}

TEST(engine_fb, branches_follow_loss_state) {
    const auto data = synthetic_dataset();
    const auto fb = evaluation_engine{}.run_one(data, "fb:pftk");
    const auto evals = fb.all_epochs();
    ASSERT_EQ(evals.size(), 12u);
    for (const auto& e : evals) {
        if (e.rec->path_id == 0) {
            EXPECT_EQ(e.source, core::prediction_source::model_based);
        } else {
            EXPECT_EQ(e.source, core::prediction_source::avail_bw);
        }
    }
}

TEST(engine_fb, error_sign_matches_prediction_direction) {
    const auto data = synthetic_dataset();
    for (const auto& e : evaluation_engine{}.run_one(data, "fb:pftk").all_epochs()) {
        if (e.predicted_bps > e.actual_bps) {
            EXPECT_GT(e.error, 0.0);
        } else if (e.predicted_bps < e.actual_bps) {
            EXPECT_LT(e.error, 0.0);
        }
    }
}

TEST(engine_fb, during_flow_option_changes_inputs) {
    const auto data = synthetic_dataset();
    engine_options during;
    during.use_during_flow = true;
    const auto prior_evals = evaluation_engine{}.run_one(data, "fb:pftk").all_epochs();
    const auto during_evals =
        evaluation_engine{during}.run_one(data, "fb:pftk").all_epochs();
    // Lossy path: double loss rate and higher RTT => lower prediction.
    EXPECT_LT(during_evals[0].predicted_bps, prior_evals[0].predicted_bps);
}

TEST(engine_fb, small_window_option_scores_companion_flow) {
    const auto data = synthetic_dataset();
    engine_options small;
    small.small_window = true;
    small.predictor.window_bytes = 20 * 1024;
    for (const auto& e : evaluation_engine{small}.run_one(data, "fb:pftk").all_epochs()) {
        EXPECT_DOUBLE_EQ(e.actual_bps, 1e6);
        // W/T = 20KB*8/0.05 = 3.27 Mbps bounds every branch.
        EXPECT_LE(e.predicted_bps, 20 * 1024 * 8 / 0.05 + 1);
    }
}

TEST(engine_fb, smoothing_uses_previous_epochs_only) {
    dataset data = synthetic_dataset();
    // Give path 0 a spiky loss sequence; with smoothing, epoch 1's input is
    // exactly epoch 0's measurement.
    for (auto& r : data.records) {
        if (r.path_id == 0) r.m.phat = r.epoch_index == 0 ? 0.04 : 0.0001;
    }
    engine_options opts;
    opts.smooth_inputs = true;
    const auto evals = evaluation_engine{opts}.run_one(data, "fb:pftk").all_epochs();
    const auto raw = evaluation_engine{}.run_one(data, "fb:pftk").all_epochs();
    // Epoch 1 smoothed input = history {0.04} -> much lower prediction than
    // the raw 0.0001-based one.
    const auto find = [&](const std::vector<epoch_score>& v, int epoch) {
        for (const auto& e : v) {
            if (e.rec->path_id == 0 && e.rec->epoch_index == epoch) return e;
        }
        throw std::runtime_error("missing epoch");
    };
    EXPECT_LT(find(evals, 1).predicted_bps, find(raw, 1).predicted_bps);
}

TEST(engine_fb, per_trace_rmsre_groups_correctly) {
    const auto data = synthetic_dataset();
    const auto fb = evaluation_engine{}.run_one(data, "fb:pftk");
    ASSERT_EQ(fb.traces.size(), 2u);
    for (const auto& t : fb.traces) EXPECT_EQ(t.forecasts(), 6u);
}

TEST(engine_fb, per_path_summary_quantiles_ordered) {
    const auto data = synthetic_dataset();
    for (const auto& s : error_per_path(evaluation_engine{}.run_one(data, "fb:pftk"))) {
        EXPECT_LE(s.p10, s.median);
        EXPECT_LE(s.median, s.p90);
    }
}

TEST(engine_hb, per_trace_rmsre_zero_on_constant_series) {
    dataset data = synthetic_dataset();
    for (auto& r : data.records) r.m.r_large_bps = 4e6;
    for (const auto& t : evaluation_engine{}.run_one(data, "10-MA").traces) {
        EXPECT_DOUBLE_EQ(t.rmsre, 0.0);
    }
}

TEST(engine_hb, downsample_reduces_forecast_count) {
    const auto data = synthetic_dataset();
    engine_options sparse;
    sparse.downsample = 2;
    const auto a = evaluation_engine{}.run_one(data, "1-MA").traces;
    const auto b = evaluation_engine{sparse}.run_one(data, "1-MA").traces;
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_GT(a[0].forecasts(), b[0].forecasts());
}

TEST(engine_hb, small_window_option_switches_series) {
    dataset data = synthetic_dataset();
    for (auto& r : data.records) {
        r.m.r_large_bps = 4e6;            // constant: RMSRE 0
        r.m.r_small_bps = r.epoch_index % 2 == 0 ? 1e6 : 3e6;  // oscillating
    }
    engine_options small;
    small.small_window = true;
    EXPECT_DOUBLE_EQ(evaluation_engine{}.run_one(data, "1-MA").traces[0].rmsre, 0.0);
    EXPECT_GT(evaluation_engine{small}.run_one(data, "1-MA").traces[0].rmsre, 1.0);
}

TEST(engine_hb, cov_vs_rmsre_produces_point_per_trace) {
    const auto data = synthetic_dataset();
    const auto pts = cov_vs_rmsre(data, "0.8-HW-LSO");
    EXPECT_EQ(pts.size(), 2u);
    for (const auto& p : pts) {
        EXPECT_GE(p.cov, 0.0);
        EXPECT_GE(p.rmsre, 0.0);
    }
}

}  // namespace
}  // namespace tcppred::analysis
