#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "analysis/fb_analysis.hpp"
#include "analysis/hb_analysis.hpp"
#include "analysis/stats.hpp"
#include "testbed/campaign.hpp"

namespace tcppred::analysis {
namespace {

using testbed::dataset;
using testbed::epoch_record;

/// Hand-built dataset: 2 paths x 1 trace x 6 epochs with controlled values.
dataset synthetic_dataset() {
    dataset data;
    for (int path = 0; path < 2; ++path) {
        testbed::path_profile p;
        p.id = path;
        // Built up in two steps: GCC 12's -Wrestrict false-fires on
        // `const char* + std::string&&` at -O2.
        p.name = "p";
        p.name += std::to_string(path);
        p.forward = {net::hop_config{core::bits_per_second{10e6}, core::seconds{0.02}, 64}};
        p.reverse = {net::hop_config{core::bits_per_second{100e6}, core::seconds{0.02}, 64}};
        data.paths.push_back(p);
        for (int e = 0; e < 6; ++e) {
            epoch_record r;
            r.path_id = path;
            r.trace_id = 0;
            r.epoch_index = e;
            r.m.phat = path == 0 ? 0.01 : 0.0;  // path 0 lossy, path 1 lossless
            r.m.that_s = 0.05;
            r.m.avail_bw_bps = 5e6;
            r.m.ptilde = r.m.phat * 2;
            r.m.ttilde_s = 0.06;
            r.m.r_large_bps = 2e6 + 1e5 * e;
            r.m.r_small_bps = 1e6;
            data.records.push_back(r);
        }
    }
    return data;
}

TEST(fb_analysis, branches_follow_loss_state) {
    const auto data = synthetic_dataset();
    const auto evals = evaluate_fb(data);
    ASSERT_EQ(evals.size(), 12u);
    for (const auto& e : evals) {
        if (e.rec->path_id == 0) {
            EXPECT_EQ(e.pred.branch, core::fb_branch::model_based);
        } else {
            EXPECT_EQ(e.pred.branch, core::fb_branch::avail_bw);
        }
    }
}

TEST(fb_analysis, error_sign_matches_prediction_direction) {
    const auto data = synthetic_dataset();
    for (const auto& e : evaluate_fb(data)) {
        if (e.pred.throughput.value() > e.actual_bps) {
            EXPECT_GT(e.error, 0.0);
        } else if (e.pred.throughput.value() < e.actual_bps) {
            EXPECT_LT(e.error, 0.0);
        }
    }
}

TEST(fb_analysis, during_flow_option_changes_inputs) {
    const auto data = synthetic_dataset();
    fb_options during;
    during.use_during_flow = true;
    const auto prior_evals = evaluate_fb(data);
    const auto during_evals = evaluate_fb(data, during);
    // Lossy path: double loss rate and higher RTT => lower prediction.
    EXPECT_LT(during_evals[0].pred.throughput.value(),
              prior_evals[0].pred.throughput.value());
}

TEST(fb_analysis, small_window_option_scores_companion_flow) {
    const auto data = synthetic_dataset();
    fb_options small;
    small.small_window = true;
    small.window_bytes = 20 * 1024;
    for (const auto& e : evaluate_fb(data, small)) {
        EXPECT_DOUBLE_EQ(e.actual_bps, 1e6);
        // W/T = 20KB*8/0.05 = 3.27 Mbps bounds every branch.
        EXPECT_LE(e.pred.throughput.value(), 20 * 1024 * 8 / 0.05 + 1);
    }
}

TEST(fb_analysis, smoothing_uses_previous_epochs_only) {
    dataset data = synthetic_dataset();
    // Give path 0 a spiky loss sequence; with smoothing, epoch 1's input is
    // exactly epoch 0's measurement.
    for (auto& r : data.records) {
        if (r.path_id == 0) r.m.phat = r.epoch_index == 0 ? 0.04 : 0.0001;
    }
    fb_options opts;
    opts.smooth_inputs = true;
    const auto evals = evaluate_fb(data, opts);
    const auto raw = evaluate_fb(data);
    // Epoch 1 smoothed input = history {0.04} -> much lower prediction than
    // the raw 0.0001-based one.
    const auto find = [&](const std::vector<fb_epoch_eval>& v, int epoch) {
        for (const auto& e : v) {
            if (e.rec->path_id == 0 && e.rec->epoch_index == epoch) return e;
        }
        throw std::runtime_error("missing epoch");
    };
    EXPECT_LT(find(evals, 1).pred.throughput.value(),
              find(raw, 1).pred.throughput.value());
}

TEST(fb_analysis, per_trace_rmsre_groups_correctly) {
    const auto data = synthetic_dataset();
    const auto groups = fb_rmsre_per_trace(evaluate_fb(data));
    ASSERT_EQ(groups.size(), 2u);
    for (const auto& g : groups) EXPECT_EQ(g.samples, 6u);
}

TEST(fb_analysis, per_path_summary_quantiles_ordered) {
    const auto data = synthetic_dataset();
    for (const auto& s : fb_error_per_path(evaluate_fb(data))) {
        EXPECT_LE(s.p10, s.median);
        EXPECT_LE(s.median, s.p90);
    }
}

TEST(make_predictor_factory, parses_all_specs) {
    EXPECT_EQ(make_predictor("1-MA")->name(), "1-MA");
    EXPECT_EQ(make_predictor("10-MA")->name(), "10-MA");
    EXPECT_EQ(make_predictor("0.8-EWMA")->name(), "0.8-EWMA");
    EXPECT_EQ(make_predictor("0.5-HW")->name(), "0.5-HW");
    EXPECT_EQ(make_predictor("10-MA-LSO")->name(), "10-MA-LSO");
    EXPECT_EQ(make_predictor("0.8-HW-LSO")->name(), "0.8-HW-LSO");
}

TEST(make_predictor_factory, rejects_malformed_specs) {
    EXPECT_THROW(make_predictor("MA"), std::invalid_argument);
    EXPECT_THROW(make_predictor("10-XX"), std::invalid_argument);
    EXPECT_THROW(make_predictor(""), std::invalid_argument);
}

TEST(hb_analysis_suite, per_trace_rmsre_zero_on_constant_series) {
    dataset data = synthetic_dataset();
    for (auto& r : data.records) r.m.r_large_bps = 4e6;
    const auto pred = make_predictor("10-MA");
    for (const auto& t : hb_rmsre_per_trace(data, *pred)) {
        EXPECT_DOUBLE_EQ(t.rmsre, 0.0);
    }
}

TEST(hb_analysis_suite, downsample_reduces_forecast_count) {
    const auto data = synthetic_dataset();
    const auto pred = make_predictor("1-MA");
    hb_options full, sparse;
    sparse.downsample = 2;
    const auto a = hb_rmsre_per_trace(data, *pred, full);
    const auto b = hb_rmsre_per_trace(data, *pred, sparse);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_GT(a[0].forecasts, b[0].forecasts);
}

TEST(hb_analysis_suite, small_window_option_switches_series) {
    dataset data = synthetic_dataset();
    for (auto& r : data.records) {
        r.m.r_large_bps = 4e6;            // constant: RMSRE 0
        r.m.r_small_bps = r.epoch_index % 2 == 0 ? 1e6 : 3e6;  // oscillating
    }
    const auto pred = make_predictor("1-MA");
    hb_options small;
    small.small_window = true;
    EXPECT_DOUBLE_EQ(hb_rmsre_per_trace(data, *pred)[0].rmsre, 0.0);
    EXPECT_GT(hb_rmsre_per_trace(data, *pred, small)[0].rmsre, 1.0);
}

TEST(hb_analysis_suite, cov_vs_rmsre_produces_point_per_trace) {
    const auto data = synthetic_dataset();
    const auto pred = make_predictor("0.8-HW-LSO");
    const auto pts = cov_vs_rmsre(data, *pred);
    EXPECT_EQ(pts.size(), 2u);
    for (const auto& p : pts) {
        EXPECT_GE(p.cov, 0.0);
        EXPECT_GE(p.rmsre, 0.0);
    }
}

}  // namespace
}  // namespace tcppred::analysis
