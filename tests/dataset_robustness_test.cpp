// Loader robustness: malformed campaign CSVs must fail with a dataset_error
// that pinpoints file, line and column — and NaN measurement fields (the
// fault layer's "missing" marker) must load cleanly, not throw.
#include "testbed/dataset.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

using namespace tcppred::testbed;

namespace {

constexpr const char* k_catalogue =
    "#path,0,test-path,us,10000000,0.05,64,0.3,2\n";
constexpr const char* k_header =
    "path,trace,epoch,availbw_bps,phat,phat_events,that_s,ptilde,ttilde_s,"
    "r_large_bps,r_small_bps,tcp_loss,tcp_event_rate,tcp_rtt_s,"
    "prefix0_s,prefix0_bps,prefix1_s,prefix1_bps,prefix2_s,prefix2_bps\n";
constexpr const char* k_good_row =
    "0,0,0,5e6,0.01,0.008,0.05,0.012,0.06,4e6,2e6,0.01,0.008,0.055,0,0,0,0,0,0\n";

class dataset_robustness : public ::testing::Test {
protected:
    std::filesystem::path file_;

    void SetUp() override {
        file_ = std::filesystem::temp_directory_path() /
                ("tcppred_robust_" + std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".csv");
    }
    void TearDown() override { std::filesystem::remove(file_); }

    void write(const std::string& content) const {
        std::ofstream out(file_);
        out << content;
    }
};

}  // namespace

TEST_F(dataset_robustness, well_formed_file_loads) {
    write(std::string(k_catalogue) + k_header + k_good_row);
    const dataset d = load_csv(file_);
    ASSERT_EQ(d.records.size(), 1u);
    ASSERT_EQ(d.paths.size(), 1u);
    EXPECT_DOUBLE_EQ(d.records[0].m.avail_bw_bps, 5e6);
    EXPECT_EQ(d.records[0].m.fault_flags, fault_none);
}

TEST_F(dataset_robustness, missing_file_reports_path) {
    try {
        static_cast<void>(load_csv("/nonexistent/never.csv"));
        FAIL() << "expected dataset_error";
    } catch (const dataset_error& e) {
        EXPECT_EQ(e.file(), std::filesystem::path("/nonexistent/never.csv"));
        EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
    }
}

TEST_F(dataset_robustness, truncated_record_line_pinpoints_line) {
    write(std::string(k_catalogue) + k_header + k_good_row + "0,0,1,5e6,0.01\n");
    try {
        static_cast<void>(load_csv(file_));
        FAIL() << "expected dataset_error";
    } catch (const dataset_error& e) {
        EXPECT_EQ(e.line(), 4u);  // catalogue, header, good row, bad row
        EXPECT_NE(std::string(e.what()).find("14 fields"), std::string::npos);
    }
}

TEST_F(dataset_robustness, garbage_numeric_field_pinpoints_column) {
    write(std::string(k_catalogue) + k_header +
          "0,0,0,banana,0.01,0.008,0.05,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0\n");
    try {
        static_cast<void>(load_csv(file_));
        FAIL() << "expected dataset_error";
    } catch (const dataset_error& e) {
        EXPECT_EQ(e.line(), 3u);
        EXPECT_EQ(e.column(), 4u);  // availbw_bps is the 4th field
        EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
    }
}

TEST_F(dataset_robustness, trailing_junk_in_number_is_rejected) {
    write(std::string(k_catalogue) + k_header +
          "0,0,0,5e6,0.01,0.008,0.05x,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0\n");
    EXPECT_THROW(static_cast<void>(load_csv(file_)), dataset_error);
}

TEST_F(dataset_robustness, out_of_range_probability_is_rejected_with_column) {
    write(std::string(k_catalogue) + k_header +
          "0,0,0,5e6,1.5,0.008,0.05,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0\n");
    try {
        static_cast<void>(load_csv(file_));
        FAIL() << "expected dataset_error";
    } catch (const dataset_error& e) {
        EXPECT_EQ(e.column(), 5u);  // phat
        EXPECT_NE(std::string(e.what()).find("[0,1]"), std::string::npos);
    }
}

TEST_F(dataset_robustness, nan_measurement_fields_load_as_missing) {
    // NaN in probability/RTT/avail-bw columns is the fault layer's "missing
    // measurement" marker and must pass validation.
    write(std::string(k_catalogue) + k_header +
          "0,0,0,nan,nan,nan,nan,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0\n");
    const dataset d = load_csv(file_);
    ASSERT_EQ(d.records.size(), 1u);
    EXPECT_TRUE(std::isnan(d.records[0].m.avail_bw_bps));
    EXPECT_TRUE(std::isnan(d.records[0].m.phat));
    EXPECT_TRUE(std::isnan(d.records[0].m.that_s));
    EXPECT_DOUBLE_EQ(d.records[0].m.ptilde, 0.012);
}

TEST_F(dataset_robustness, malformed_catalogue_line_pinpoints_line) {
    write("#path,0,short\n" + std::string(k_header) + k_good_row);
    try {
        static_cast<void>(load_csv(file_));
        FAIL() << "expected dataset_error";
    } catch (const dataset_error& e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_NE(std::string(e.what()).find("catalogue"), std::string::npos);
    }
}

TEST_F(dataset_robustness, nonpositive_catalogue_capacity_is_rejected) {
    write("#path,0,test-path,us,0,0.05,64,0.3,2\n" + std::string(k_header) +
          k_good_row);
    EXPECT_THROW(static_cast<void>(load_csv(file_)), dataset_error);
}

TEST_F(dataset_robustness, fault_flags_column_is_detected_from_header) {
    const std::string header_with_faults =
        std::string(k_header).substr(0, std::string(k_header).size() - 1) +
        ",fault_flags\n";
    write(std::string(k_catalogue) + header_with_faults +
          "0,0,0,5e6,0.01,0.008,0.05,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0,9\n");
    const dataset d = load_csv(file_);
    ASSERT_EQ(d.records.size(), 1u);
    EXPECT_EQ(d.records[0].m.fault_flags, 9u);
    EXPECT_TRUE(apriori_faulty(d.records[0].m.fault_flags));
    EXPECT_TRUE(actual_faulty(d.records[0].m.fault_flags));
}

TEST_F(dataset_robustness, negative_fault_flags_are_rejected) {
    const std::string header_with_faults =
        std::string(k_header).substr(0, std::string(k_header).size() - 1) +
        ",fault_flags\n";
    write(std::string(k_catalogue) + header_with_faults +
          "0,0,0,5e6,0.01,0.008,0.05,0.012,0.06,4e6,2e6,0.01,0.008,0.055,"
          "0,0,0,0,0,0,-3\n");
    EXPECT_THROW(static_cast<void>(load_csv(file_)), dataset_error);
}
