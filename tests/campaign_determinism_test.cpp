// Cross-thread-count determinism of the campaign engine: the dataset (and
// its CSV serialization) must be byte-identical for any number of worker
// threads, because every epoch is independently seeded and records land in
// pre-sized (path, trace, epoch)-ordered slots (DESIGN.md §6). This test is
// the acceptance bar for the parallel engine and runs under TSan in CI.
#include "testbed/campaign.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "net/cross_traffic.hpp"
#include "sim/fault_injector.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred::testbed;

namespace {

campaign_config tiny_config() {
    campaign_config cfg;
    cfg.paths = 3;
    cfg.traces_per_path = 2;
    cfg.epochs_per_trace = 3;
    cfg.epoch.warmup = tcppred::core::seconds{0.5};
    cfg.epoch.prior_ping.count = 80;
    cfg.epoch.transfer = tcppred::core::seconds{1.5};
    return cfg;
}

std::string csv_bytes(const dataset& data) {
    const auto file = std::filesystem::temp_directory_path() /
                      ("tcppred_determinism_" + std::to_string(::getpid()) + ".csv");
    save_csv(data, file);
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::filesystem::remove(file);
    return buf.str();
}

/// Bit pattern of a double: operator== is the wrong equality here because a
/// faulty epoch's NaN (missing measurement) must compare equal to itself.
std::uint64_t bits(double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
}

void expect_identical(const dataset& a, const dataset& b, const char* label) {
    ASSERT_EQ(a.records.size(), b.records.size()) << label;
    ASSERT_EQ(a.paths.size(), b.paths.size()) << label;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const auto& ra = a.records[i];
        const auto& rb = b.records[i];
        EXPECT_EQ(ra.path_id, rb.path_id) << label << " record " << i;
        EXPECT_EQ(ra.trace_id, rb.trace_id) << label << " record " << i;
        EXPECT_EQ(ra.epoch_index, rb.epoch_index) << label << " record " << i;
        // Bitwise equality: identical seeds must give identical simulations,
        // independent of which thread ran the epoch.
        EXPECT_EQ(bits(ra.m.r_large_bps), bits(rb.m.r_large_bps))
            << label << " record " << i;
        EXPECT_EQ(bits(ra.m.r_small_bps), bits(rb.m.r_small_bps))
            << label << " record " << i;
        EXPECT_EQ(bits(ra.m.avail_bw_bps), bits(rb.m.avail_bw_bps))
            << label << " record " << i;
        EXPECT_EQ(bits(ra.m.phat), bits(rb.m.phat)) << label << " record " << i;
        EXPECT_EQ(bits(ra.m.that_s), bits(rb.m.that_s)) << label << " record " << i;
        EXPECT_EQ(bits(ra.m.ptilde), bits(rb.m.ptilde)) << label << " record " << i;
        EXPECT_EQ(bits(ra.m.ttilde_s), bits(rb.m.ttilde_s))
            << label << " record " << i;
        EXPECT_EQ(ra.m.events, rb.m.events) << label << " record " << i;
        EXPECT_EQ(ra.m.fault_flags, rb.m.fault_flags) << label << " record " << i;
    }
}

}  // namespace

TEST(campaign_determinism, identical_dataset_for_1_2_and_4_jobs) {
    campaign_config cfg = tiny_config();

    cfg.jobs = 1;
    const dataset serial = run_campaign(cfg);
    cfg.jobs = 2;
    const dataset two = run_campaign(cfg);
    cfg.jobs = 4;
    const dataset four = run_campaign(cfg);

    ASSERT_EQ(serial.records.size(),
              static_cast<std::size_t>(cfg.paths * cfg.traces_per_path *
                                       cfg.epochs_per_trace));
    expect_identical(serial, two, "jobs=2 vs jobs=1");
    expect_identical(serial, four, "jobs=4 vs jobs=1");

    const std::string csv1 = csv_bytes(serial);
    EXPECT_EQ(csv1, csv_bytes(two)) << "CSV differs between 1 and 2 jobs";
    EXPECT_EQ(csv1, csv_bytes(four)) << "CSV differs between 1 and 4 jobs";
}

TEST(campaign_determinism, fluid_cross_model_identical_across_jobs) {
    // The fluid cross-traffic model (DESIGN.md §13.5) integrates a
    // continuous backlog alongside discrete packets; its state is still
    // wholly per-epoch, so the same jobs-independence contract applies.
    campaign_config cfg = tiny_config();
    cfg.epoch.cross = tcppred::net::cross_model::fluid;

    cfg.jobs = 1;
    const dataset serial = run_campaign(cfg);
    cfg.jobs = 2;
    const dataset two = run_campaign(cfg);
    cfg.jobs = 4;
    const dataset four = run_campaign(cfg);

    expect_identical(serial, two, "fluid jobs=2 vs jobs=1");
    expect_identical(serial, four, "fluid jobs=4 vs jobs=1");

    const std::string csv1 = csv_bytes(serial);
    EXPECT_EQ(csv1, csv_bytes(two)) << "fluid CSV differs between 1 and 2 jobs";
    EXPECT_EQ(csv1, csv_bytes(four)) << "fluid CSV differs between 1 and 4 jobs";
}

TEST(campaign_determinism, records_are_in_serial_iteration_order) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 4;
    const dataset data = run_campaign(cfg);
    std::size_t i = 0;
    for (const auto& profile : data.paths) {
        for (int trace = 0; trace < cfg.traces_per_path; ++trace) {
            for (int epoch = 0; epoch < cfg.epochs_per_trace; ++epoch, ++i) {
                ASSERT_LT(i, data.records.size());
                EXPECT_EQ(data.records[i].path_id, profile.id);
                EXPECT_EQ(data.records[i].trace_id, trace);
                EXPECT_EQ(data.records[i].epoch_index, epoch);
            }
        }
    }
    EXPECT_EQ(i, data.records.size());
}

TEST(campaign_determinism, progress_is_serialized_and_strictly_increasing) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 4;
    const int total = cfg.paths * cfg.traces_per_path * cfg.epochs_per_trace;
    // The documented contract (campaign.hpp): invocations never overlap, so
    // an unsynchronized vector is safe to mutate from the callback.
    std::vector<int> seen;
    const dataset data = run_campaign(cfg, [&](int done, int t) {
        EXPECT_EQ(t, total);
        seen.push_back(done);
    });
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
    EXPECT_EQ(data.records.size(), static_cast<std::size_t>(total));
}

TEST(campaign_determinism, repro_jobs_env_matches_explicit_jobs) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.traces_per_path = 1;

    cfg.jobs = 1;
    const dataset serial = run_campaign(cfg);

    ::setenv("REPRO_JOBS", "4", 1);
    cfg.jobs = 0;  // auto: pick up the environment
    const dataset from_env = run_campaign(cfg);
    ::unsetenv("REPRO_JOBS");

    expect_identical(serial, from_env, "REPRO_JOBS=4 vs jobs=1");
    EXPECT_EQ(csv_bytes(serial), csv_bytes(from_env));
}

namespace {

/// Unique per-test checkpoint path, removed by the guard's destructor.
struct scoped_checkpoint {
    std::filesystem::path file;
    explicit scoped_checkpoint(const char* tag)
        : file(std::filesystem::temp_directory_path() /
               ("tcppred_ckpt_" + std::string(tag) + "_" + std::to_string(::getpid()) +
                ".ckpt")) {
        std::filesystem::remove(file);
    }
    ~scoped_checkpoint() { std::filesystem::remove(file); }
};

}  // namespace

TEST(campaign_resume, interrupted_then_resumed_is_byte_identical) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 2;
    const dataset uninterrupted = run_campaign(cfg);

    const scoped_checkpoint ckpt("resume");
    campaign_run_options opts;
    opts.checkpoint = ckpt.file;
    opts.checkpoint_every = 2;

    // Phase 1: cancel after a handful of completions (the cancellation flag
    // flips mid-run, exactly like the SIGINT path in tcppred_campaign).
    std::atomic<int> seen{0};
    opts.cancelled = [&] { return seen.load() >= 5; };
    const campaign_outcome first =
        run_campaign_resumable(cfg, opts, [&](int, int) { ++seen; });
    ASSERT_FALSE(first.complete);
    ASSERT_GT(first.epochs_completed, 0);
    ASSERT_LT(first.epochs_completed,
              cfg.paths * cfg.traces_per_path * cfg.epochs_per_trace);
    ASSERT_TRUE(std::filesystem::exists(ckpt.file)) << "interrupt must checkpoint";

    // Phase 2: resume at a different job count; must complete and match the
    // uninterrupted run bit for bit.
    opts.cancelled = nullptr;
    opts.resume = true;
    cfg.jobs = 3;
    const campaign_outcome second = run_campaign_resumable(cfg, opts);
    ASSERT_TRUE(second.complete);
    EXPECT_EQ(second.epochs_resumed, first.epochs_completed);
    expect_identical(uninterrupted, second.data, "resumed vs uninterrupted");
    EXPECT_EQ(csv_bytes(uninterrupted), csv_bytes(second.data));
    EXPECT_FALSE(std::filesystem::exists(ckpt.file))
        << "completed run must remove its checkpoint";
}

TEST(campaign_resume, checkpoint_from_other_config_is_refused) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 1;
    const scoped_checkpoint ckpt("refuse");
    campaign_run_options opts;
    opts.checkpoint = ckpt.file;
    opts.checkpoint_every = 1;
    std::atomic<int> seen{0};
    opts.cancelled = [&] { return seen.load() >= 2; };
    const campaign_outcome first =
        run_campaign_resumable(cfg, opts, [&](int, int) { ++seen; });
    ASSERT_FALSE(first.complete);

    opts.cancelled = nullptr;
    opts.resume = true;
    cfg.seed += 1;  // different campaign: the checkpoint must not be trusted
    EXPECT_THROW(static_cast<void>(run_campaign_resumable(cfg, opts)), dataset_error);
}

TEST(campaign_resume, worker_exception_checkpoints_completed_epochs) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.jobs = 2;
    const dataset uninterrupted = run_campaign(cfg);

    const scoped_checkpoint ckpt("throw");
    campaign_run_options opts;
    opts.checkpoint = ckpt.file;
    opts.checkpoint_every = 1000;  // only the exception path may flush
    const std::size_t poison =
        static_cast<std::size_t>(cfg.paths * cfg.traces_per_path *
                                 cfg.epochs_per_trace) /
        2;
    opts.epoch_hook = [&](std::size_t idx) {
        if (idx == poison) throw std::runtime_error("injected epoch failure");
    };
    // The first worker error propagates exactly once...
    EXPECT_THROW(static_cast<void>(run_campaign_resumable(cfg, opts)),
                 std::runtime_error);
    // ...and everything that completed before the abort was persisted.
    ASSERT_TRUE(std::filesystem::exists(ckpt.file));
    opts.epoch_hook = nullptr;
    opts.resume = true;
    const campaign_outcome resumed = run_campaign_resumable(cfg, opts);
    ASSERT_TRUE(resumed.complete);
    EXPECT_GT(resumed.epochs_resumed, 0);
    expect_identical(uninterrupted, resumed.data, "resume after worker exception");
    EXPECT_EQ(csv_bytes(uninterrupted), csv_bytes(resumed.data));
}

TEST(campaign_faults, fixed_fault_seed_replays_byte_identically) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.jobs = 2;
    cfg.faults = tcppred::sim::fault_profile::parse(
        "pathload=0.3,ping-timeout=0.05,ping-truncate=0.2,abort=0.3,outage=0.2");

    const dataset a = run_campaign(cfg);
    cfg.jobs = 1;
    const dataset b = run_campaign(cfg);
    expect_identical(a, b, "faulty jobs=2 vs jobs=1");
    EXPECT_EQ(csv_bytes(a), csv_bytes(b));

    // Faults actually fired (rates this high over 12 epochs make a miss
    // astronomically unlikely), and none of them aborted the campaign.
    std::size_t flagged = 0;
    for (const auto& r : a.records) flagged += r.m.fault_flags != fault_none;
    EXPECT_GT(flagged, 0u);
    EXPECT_EQ(a.records.size(),
              static_cast<std::size_t>(cfg.paths * cfg.traces_per_path *
                                       cfg.epochs_per_trace));
}

TEST(campaign_faults, disabled_profile_matches_legacy_run_exactly) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.traces_per_path = 1;
    cfg.jobs = 2;

    const dataset legacy = run_campaign(cfg);  // cfg.faults default: disabled
    cfg.faults = tcppred::sim::fault_profile::parse("pathload=0,abort=0");
    ASSERT_FALSE(cfg.faults.enabled());
    const dataset zeroed = run_campaign(cfg);
    expect_identical(legacy, zeroed, "explicit zero rates vs default");
    const std::string bytes = csv_bytes(legacy);
    EXPECT_EQ(bytes, csv_bytes(zeroed));
    // No fault ever fired, so the CSV must not even contain the column.
    EXPECT_EQ(bytes.find("fault_flags"), std::string::npos);
}

TEST(campaign_faults, faulty_dataset_roundtrips_through_csv) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.traces_per_path = 1;
    cfg.jobs = 2;
    cfg.faults = tcppred::sim::fault_profile::parse("pathload=0.5,abort=0.4");
    const dataset data = run_campaign(cfg);

    const auto file = std::filesystem::temp_directory_path() /
                      ("tcppred_fault_rt_" + std::to_string(::getpid()) + ".csv");
    save_csv(data, file);
    const dataset back = load_csv(file);
    std::filesystem::remove(file);

    ASSERT_EQ(back.records.size(), data.records.size());
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < data.records.size(); ++i) {
        EXPECT_EQ(back.records[i].m.fault_flags, data.records[i].m.fault_flags)
            << "record " << i;
        flagged += data.records[i].m.fault_flags != fault_none;
    }
    EXPECT_GT(flagged, 0u);
}
