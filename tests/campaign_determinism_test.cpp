// Cross-thread-count determinism of the campaign engine: the dataset (and
// its CSV serialization) must be byte-identical for any number of worker
// threads, because every epoch is independently seeded and records land in
// pre-sized (path, trace, epoch)-ordered slots (DESIGN.md §6). This test is
// the acceptance bar for the parallel engine and runs under TSan in CI.
#include "testbed/campaign.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred::testbed;

namespace {

campaign_config tiny_config() {
    campaign_config cfg;
    cfg.paths = 3;
    cfg.traces_per_path = 2;
    cfg.epochs_per_trace = 3;
    cfg.epoch.warmup = tcppred::core::seconds{0.5};
    cfg.epoch.prior_ping.count = 80;
    cfg.epoch.transfer = tcppred::core::seconds{1.5};
    return cfg;
}

std::string csv_bytes(const dataset& data) {
    const auto file = std::filesystem::temp_directory_path() /
                      ("tcppred_determinism_" + std::to_string(::getpid()) + ".csv");
    save_csv(data, file);
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::filesystem::remove(file);
    return buf.str();
}

void expect_identical(const dataset& a, const dataset& b, const char* label) {
    ASSERT_EQ(a.records.size(), b.records.size()) << label;
    ASSERT_EQ(a.paths.size(), b.paths.size()) << label;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const auto& ra = a.records[i];
        const auto& rb = b.records[i];
        EXPECT_EQ(ra.path_id, rb.path_id) << label << " record " << i;
        EXPECT_EQ(ra.trace_id, rb.trace_id) << label << " record " << i;
        EXPECT_EQ(ra.epoch_index, rb.epoch_index) << label << " record " << i;
        // Bitwise equality: identical seeds must give identical simulations,
        // independent of which thread ran the epoch.
        EXPECT_EQ(ra.m.r_large_bps, rb.m.r_large_bps) << label << " record " << i;
        EXPECT_EQ(ra.m.r_small_bps, rb.m.r_small_bps) << label << " record " << i;
        EXPECT_EQ(ra.m.avail_bw_bps, rb.m.avail_bw_bps) << label << " record " << i;
        EXPECT_EQ(ra.m.phat, rb.m.phat) << label << " record " << i;
        EXPECT_EQ(ra.m.that_s, rb.m.that_s) << label << " record " << i;
        EXPECT_EQ(ra.m.ptilde, rb.m.ptilde) << label << " record " << i;
        EXPECT_EQ(ra.m.ttilde_s, rb.m.ttilde_s) << label << " record " << i;
        EXPECT_EQ(ra.m.events, rb.m.events) << label << " record " << i;
    }
}

}  // namespace

TEST(campaign_determinism, identical_dataset_for_1_2_and_4_jobs) {
    campaign_config cfg = tiny_config();

    cfg.jobs = 1;
    const dataset serial = run_campaign(cfg);
    cfg.jobs = 2;
    const dataset two = run_campaign(cfg);
    cfg.jobs = 4;
    const dataset four = run_campaign(cfg);

    ASSERT_EQ(serial.records.size(),
              static_cast<std::size_t>(cfg.paths * cfg.traces_per_path *
                                       cfg.epochs_per_trace));
    expect_identical(serial, two, "jobs=2 vs jobs=1");
    expect_identical(serial, four, "jobs=4 vs jobs=1");

    const std::string csv1 = csv_bytes(serial);
    EXPECT_EQ(csv1, csv_bytes(two)) << "CSV differs between 1 and 2 jobs";
    EXPECT_EQ(csv1, csv_bytes(four)) << "CSV differs between 1 and 4 jobs";
}

TEST(campaign_determinism, records_are_in_serial_iteration_order) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 4;
    const dataset data = run_campaign(cfg);
    std::size_t i = 0;
    for (const auto& profile : data.paths) {
        for (int trace = 0; trace < cfg.traces_per_path; ++trace) {
            for (int epoch = 0; epoch < cfg.epochs_per_trace; ++epoch, ++i) {
                ASSERT_LT(i, data.records.size());
                EXPECT_EQ(data.records[i].path_id, profile.id);
                EXPECT_EQ(data.records[i].trace_id, trace);
                EXPECT_EQ(data.records[i].epoch_index, epoch);
            }
        }
    }
    EXPECT_EQ(i, data.records.size());
}

TEST(campaign_determinism, progress_is_serialized_and_strictly_increasing) {
    campaign_config cfg = tiny_config();
    cfg.jobs = 4;
    const int total = cfg.paths * cfg.traces_per_path * cfg.epochs_per_trace;
    // The documented contract (campaign.hpp): invocations never overlap, so
    // an unsynchronized vector is safe to mutate from the callback.
    std::vector<int> seen;
    const dataset data = run_campaign(cfg, [&](int done, int t) {
        EXPECT_EQ(t, total);
        seen.push_back(done);
    });
    ASSERT_EQ(seen.size(), static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 1);
    EXPECT_EQ(data.records.size(), static_cast<std::size_t>(total));
}

TEST(campaign_determinism, repro_jobs_env_matches_explicit_jobs) {
    campaign_config cfg = tiny_config();
    cfg.paths = 2;
    cfg.traces_per_path = 1;

    cfg.jobs = 1;
    const dataset serial = run_campaign(cfg);

    ::setenv("REPRO_JOBS", "4", 1);
    cfg.jobs = 0;  // auto: pick up the environment
    const dataset from_env = run_campaign(cfg);
    ::unsetenv("REPRO_JOBS");

    expect_identical(serial, from_env, "REPRO_JOBS=4 vs jobs=1");
    EXPECT_EQ(csv_bytes(serial), csv_bytes(from_env));
}
