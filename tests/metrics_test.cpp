#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/contracts.hpp"

namespace tcppred::core {
namespace {

// Eq. 4's design property: over-predicting by a factor w and
// under-predicting by the same factor score the same magnitude.
TEST(relative_error_metric, overprediction_and_underprediction_score_equal) {
    const double r = 7.5e6;
    for (const double w : {1.01, 1.5, 2.0, 3.0, 10.0, 100.0}) {
        const double over = relative_error(w * r, r);
        const double under = relative_error(r / w, r);
        EXPECT_NEAR(over, w - 1.0, 1e-9) << "w=" << w;
        EXPECT_NEAR(std::abs(under), std::abs(over), 1e-9) << "w=" << w;
        EXPECT_LT(under, 0.0) << "w=" << w;
    }
}

TEST(relative_error_metric, typed_overload_matches_raw) {
    EXPECT_DOUBLE_EQ(relative_error(bits_per_second{3e6}, bits_per_second{2e6}),
                     relative_error(3e6, 2e6));
}

TEST(relative_error_metric, zero_measurement_floor_keeps_error_finite) {
    // A dead transfer (R = 0) against any finite prediction must produce a
    // large-but-finite error, not a division by zero.
    const double e = relative_error(1e6, 0.0);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GT(e, 0.0);
    // Both-zero is exactly zero error.
    EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

TEST(relative_error_metric, contract_rejects_negative_arguments) {
#if TCPPRED_CHECKS
    EXPECT_THROW((void)relative_error(-1.0, 2e6), contract_violation);
    EXPECT_THROW((void)relative_error(2e6, -1.0), contract_violation);
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

TEST(rmsre_metric, empty_series_is_zero_by_convention) {
    EXPECT_DOUBLE_EQ(rmsre(std::vector<double>{}), 0.0);
}

TEST(rmsre_metric, single_element_is_its_magnitude) {
    EXPECT_DOUBLE_EQ(rmsre(std::vector<double>{2.5}), 2.5);
    EXPECT_DOUBLE_EQ(rmsre(std::vector<double>{-2.5}), 2.5);
}

TEST(rmsre_metric, is_the_root_mean_square) {
    const std::vector<double> errors{0.5, -0.5, 1.0, -2.0};
    EXPECT_NEAR(rmsre(errors), std::sqrt((0.25 + 0.25 + 1.0 + 4.0) / 4.0), 1e-12);
}

}  // namespace
}  // namespace tcppred::core
