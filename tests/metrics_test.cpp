#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/contracts.hpp"

namespace tcppred::core {
namespace {

// Eq. 4's design property: over-predicting by a factor w and
// under-predicting by the same factor score the same magnitude.
TEST(relative_error_metric, overprediction_and_underprediction_score_equal) {
    const double r = 7.5e6;
    for (const double w : {1.01, 1.5, 2.0, 3.0, 10.0, 100.0}) {
        const double over = relative_error(w * r, r);
        const double under = relative_error(r / w, r);
        EXPECT_NEAR(over, w - 1.0, 1e-9) << "w=" << w;
        EXPECT_NEAR(std::abs(under), std::abs(over), 1e-9) << "w=" << w;
        EXPECT_LT(under, 0.0) << "w=" << w;
    }
}

TEST(relative_error_metric, typed_overload_matches_raw) {
    EXPECT_DOUBLE_EQ(relative_error(bits_per_second{3e6}, bits_per_second{2e6}),
                     relative_error(3e6, 2e6));
}

TEST(relative_error_metric, zero_measurement_floor_keeps_error_finite) {
    // A dead transfer (R = 0) against any finite prediction must produce a
    // large-but-finite error, not a division by zero.
    const double e = relative_error(1e6, 0.0);
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GT(e, 0.0);
    // Both-zero is exactly zero error.
    EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
}

// Regression for the metrics-edge sweep: the old floor was 1e-12, sized for
// unit-scale values — at bps scale a true-zero measurement made E blow up
// to ~R/1e-12 ≈ 1e18 and one such epoch dominated any squared aggregate.
// The denominator is now clamped at k_min_error_denominator_bps (1 kbit/s).
TEST(relative_error_metric, zero_actual_is_bounded_by_the_bps_floor) {
    EXPECT_DOUBLE_EQ(relative_error(1e6, 0.0), 1e6 / k_min_error_denominator_bps);
    EXPECT_LT(relative_error(1e9, 0.0), 1e7);  // bounded even at Gbit scale
}

TEST(relative_error_metric, zero_predicted_is_bounded_by_the_bps_floor) {
    EXPECT_DOUBLE_EQ(relative_error(0.0, 1e6), -1e6 / k_min_error_denominator_bps);
}

TEST(relative_error_metric, floor_is_inert_above_bps_scale) {
    // Any real throughput pair (both ≥ the floor) must be untouched by the
    // clamp: the paper's weakest paths run at hundreds of kbit/s.
    EXPECT_DOUBLE_EQ(relative_error(2e5, 1e5), 1.0);
    EXPECT_DOUBLE_EQ(relative_error(1e3, 2e3), -1.0);  // exactly at the floor
}

TEST(relative_error_metric, documented_floor_value) {
    // The epsilon is part of the metric's contract (DESIGN.md, README);
    // changing it rescales every degenerate-epoch error in every dataset.
    EXPECT_DOUBLE_EQ(k_min_error_denominator_bps, 1e3);
}

TEST(relative_error_metric, contract_rejects_negative_arguments) {
#if TCPPRED_CHECKS
    EXPECT_THROW((void)relative_error(-1.0, 2e6), contract_violation);
    EXPECT_THROW((void)relative_error(2e6, -1.0), contract_violation);
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

TEST(rmsre_metric, empty_series_is_nan_not_perfect) {
    // Zero error for zero evidence scored an all-faulty trace as a perfect
    // forecast; NaN makes the absence propagate visibly ("n/a" in tables).
    EXPECT_TRUE(std::isnan(rmsre(std::vector<double>{})));
}

TEST(rmsre_metric, single_element_is_its_magnitude) {
    EXPECT_DOUBLE_EQ(rmsre(std::vector<double>{2.5}), 2.5);
    EXPECT_DOUBLE_EQ(rmsre(std::vector<double>{-2.5}), 2.5);
}

TEST(rmsre_metric, is_the_root_mean_square) {
    const std::vector<double> errors{0.5, -0.5, 1.0, -2.0};
    EXPECT_NEAR(rmsre(errors), std::sqrt((0.25 + 0.25 + 1.0 + 4.0) / 4.0), 1e-12);
}

}  // namespace
}  // namespace tcppred::core
