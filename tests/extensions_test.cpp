// Tests for the extension layer: AR(p) forecasting, the hybrid FB+HB
// predictor, seasonal Holt-Winters, the NWS-style adaptive selector, and
// loss-event collapsing.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/adaptive_selector.hpp"
#include "core/ar_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/loss_events.hpp"
#include "core/lso.hpp"
#include "core/predictor.hpp"
#include "core/seasonal_hw.hpp"
#include "sim/rng.hpp"

#include "analysis/evaluation.hpp"

namespace tcppred::core {
namespace {

// ---------- AR(p) ----------

TEST(ar_fit, recovers_ar1_coefficient) {
    // x_t = 0.7 x_{t-1} + e_t
    sim::rng r(5);
    std::vector<double> series{0.0};
    for (int i = 0; i < 5000; ++i) {
        series.push_back(0.7 * series.back() + r.normal(0.0, 1.0));
    }
    const auto coeffs = fit_ar_coefficients(series, 1);
    ASSERT_EQ(coeffs.size(), 1u);
    EXPECT_NEAR(coeffs[0], 0.7, 0.05);
}

TEST(ar_fit, recovers_ar2_coefficients) {
    sim::rng r(9);
    std::vector<double> series{0.0, 0.0};
    for (int i = 0; i < 8000; ++i) {
        const std::size_t n = series.size();
        series.push_back(0.5 * series[n - 1] - 0.3 * series[n - 2] + r.normal(0.0, 1.0));
    }
    const auto coeffs = fit_ar_coefficients(series, 2);
    ASSERT_EQ(coeffs.size(), 2u);
    EXPECT_NEAR(coeffs[0], 0.5, 0.05);
    EXPECT_NEAR(coeffs[1], -0.3, 0.05);
}

TEST(ar_fit, degenerate_series_yields_no_fit) {
    EXPECT_TRUE(fit_ar_coefficients({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 2).empty());
    EXPECT_TRUE(fit_ar_coefficients({1.0, 2.0}, 3).empty());
}

TEST(ar_predictor_class, falls_back_to_mean_with_short_history) {
    ar_predictor ar(2);
    ar.observe(10.0);
    ar.observe(20.0);
    EXPECT_DOUBLE_EQ(ar.predict(), 15.0);
}

TEST(ar_predictor_class, learns_constant_series) {
    ar_predictor ar(3);
    for (int i = 0; i < 40; ++i) ar.observe(7e6);
    EXPECT_NEAR(ar.predict(), 7e6, 7e6 * 1e-6);
}

TEST(ar_predictor_class, tracks_persistent_series_better_than_mean) {
    // Strongly autocorrelated series: AR should beat the plain window mean.
    sim::rng r(11);
    std::vector<double> series;
    double x = 5e6;
    for (int i = 0; i < 200; ++i) {
        x = 4e6 + 0.85 * (x - 4e6) + r.normal(0.0, 2e5);
        series.push_back(std::max(x, 1e5));
    }
    const auto ar_eval = analysis::evaluate_series(
        series, history_predictor(std::make_unique<ar_predictor>(2)));
    const auto ma_eval = analysis::evaluate_series(
        series, history_predictor(std::make_unique<moving_average>(20)));
    EXPECT_LT(ar_eval.rmsre, ma_eval.rmsre);
}

TEST(ar_predictor_class, respects_window_and_rejects_bad_args) {
    EXPECT_THROW(ar_predictor(0), std::invalid_argument);
    EXPECT_THROW(ar_predictor(4, 3), std::invalid_argument);
    ar_predictor windowed(1, 10);
    for (int i = 0; i < 50; ++i) windowed.observe(static_cast<double>(i));
    EXPECT_EQ(windowed.history_size(), 10u);
}

TEST(ar_predictor_class, forecast_is_never_negative) {
    ar_predictor ar(2);
    // Steeply decreasing series would extrapolate below zero.
    for (double x = 100.0; x > 1.0; x -= 12.0) ar.observe(x);
    EXPECT_GT(ar.predict(), 0.0);
}

// ---------- hybrid FB+HB ----------

TEST(hybrid, uses_fb_when_no_history) {
    hybrid_predictor h(std::make_unique<moving_average>(10));
    EXPECT_TRUE(std::isnan(h.predict()));
    h.set_formula_prediction(5e6);
    EXPECT_DOUBLE_EQ(h.predict(), 5e6);
    EXPECT_DOUBLE_EQ(h.history_weight(), 0.0);
}

TEST(hybrid, converges_to_hb_with_history) {
    hybrid_predictor h(std::make_unique<moving_average>(10), 2.0);
    h.set_formula_prediction(10e6);
    for (int i = 0; i < 50; ++i) h.observe(2e6);
    // weight = n/(n+k) with n = 50 observations: w = 50/52.
    EXPECT_NEAR(h.predict(), 50.0 / 52.0 * 2e6 + 2.0 / 52.0 * 10e6, 1.0);
    EXPECT_GT(h.history_weight(), 0.9);
}

TEST(hybrid, works_without_fb_input) {
    hybrid_predictor h(std::make_unique<moving_average>(5));
    h.observe(3e6);
    EXPECT_DOUBLE_EQ(h.predict(), 3e6);
}

TEST(hybrid, blends_between_the_two) {
    hybrid_predictor h(std::make_unique<moving_average>(10), 3.0);
    h.set_formula_prediction(8e6);
    h.observe(2e6);  // w = 1/4
    EXPECT_NEAR(h.predict(), 0.25 * 2e6 + 0.75 * 8e6, 1.0);
}

TEST(hybrid, reset_forgets_history_keeps_fb) {
    hybrid_predictor h(std::make_unique<moving_average>(5));
    h.set_formula_prediction(6e6);
    h.observe(1e6);
    h.reset();
    EXPECT_DOUBLE_EQ(h.predict(), 6e6);
}

TEST(hybrid, rejects_bad_construction) {
    EXPECT_THROW(hybrid_predictor(nullptr), std::invalid_argument);
    EXPECT_THROW(hybrid_predictor(std::make_unique<moving_average>(5), 0.0),
                 std::invalid_argument);
}

// ---------- seasonal Holt-Winters ----------

TEST(seasonal_hw, learns_periodic_series) {
    // Period-4 pattern plus small noise: after a few seasons the forecast
    // must anticipate the pattern.
    const std::vector<double> pattern{10e6, 4e6, 6e6, 12e6};
    seasonal_holt_winters shw(0.3, 0.1, 0.3, 4);
    for (int rep = 0; rep < 12; ++rep) {
        for (const double v : pattern) shw.observe(v);
    }
    // Next sample would be pattern[0].
    EXPECT_NEAR(shw.predict(), 10e6, 1.5e6);
    EXPECT_TRUE(shw.seasonal_active());
}

TEST(seasonal_hw, beats_nonseasonal_on_seasonal_series) {
    sim::rng r(3);
    std::vector<double> series;
    for (int i = 0; i < 120; ++i) {
        const double base = (i % 6 < 3) ? 9e6 : 3e6;  // square-wave "diurnal" load
        series.push_back(base * (1.0 + r.normal(0.0, 0.05)));
    }
    const auto seasonal = analysis::evaluate_series(
        series, history_predictor(
                    std::make_unique<seasonal_holt_winters>(0.3, 0.1, 0.4, 6)));
    const auto plain = analysis::evaluate_series(
        series, history_predictor(std::make_unique<holt_winters>(0.8, 0.2)));
    EXPECT_LT(seasonal.rmsre, plain.rmsre);
}

TEST(seasonal_hw, forecasts_running_mean_before_first_season) {
    seasonal_holt_winters shw(0.3, 0.1, 0.3, 8);
    shw.observe(4.0);
    shw.observe(6.0);
    EXPECT_DOUBLE_EQ(shw.predict(), 5.0);
    EXPECT_FALSE(shw.seasonal_active());
}

TEST(seasonal_hw, rejects_bad_parameters) {
    EXPECT_THROW(seasonal_holt_winters(0.0, 0.1, 0.1, 4), std::invalid_argument);
    EXPECT_THROW(seasonal_holt_winters(0.3, 0.1, 0.1, 1), std::invalid_argument);
}

TEST(seasonal_hw, clone_and_reset_behave) {
    seasonal_holt_winters shw(0.3, 0.1, 0.3, 4);
    for (int i = 0; i < 10; ++i) shw.observe(1e6);
    auto clone = shw.clone_empty();
    EXPECT_TRUE(std::isnan(clone->predict()));
    shw.reset();
    EXPECT_TRUE(std::isnan(shw.predict()));
}

// ---------- adaptive selector (NWS-style) ----------

TEST(adaptive_selector_class, picks_the_better_candidate) {
    // On a strong linear trend HW beats MA decisively; the selector must
    // converge to the HW candidate.
    std::vector<std::unique_ptr<hb_predictor>> set;
    set.push_back(std::make_unique<moving_average>(10));
    set.push_back(std::make_unique<holt_winters>(0.8, 0.2));
    adaptive_selector sel(std::move(set), 0.9);
    for (int i = 0; i < 60; ++i) sel.observe(1e6 + 2e5 * i);
    EXPECT_EQ(sel.best_name(), "0.8-HW");
    // And its forecast continues the trend rather than lagging it.
    EXPECT_GT(sel.predict(), 1e6 + 2e5 * 58);
}

TEST(adaptive_selector_class, tracks_regime_change_in_best_predictor) {
    std::vector<std::unique_ptr<hb_predictor>> set;
    set.push_back(std::make_unique<moving_average>(1));
    set.push_back(std::make_unique<moving_average>(20));
    adaptive_selector sel(std::move(set), 0.7);  // fast discount
    // Alternating series: 20-MA (predicting the mean) wins over 1-MA
    // (always predicting the previous, i.e. the wrong, extreme).
    for (int i = 0; i < 60; ++i) sel.observe(i % 2 == 0 ? 2e6 : 4e6);
    EXPECT_EQ(sel.best_name(), "20-MA");
}

TEST(adaptive_selector_class, standard_set_runs_end_to_end) {
    auto sel = adaptive_selector::standard();
    sim::rng r(8);
    for (int i = 0; i < 80; ++i) sel->observe(5e6 * (1.0 + r.normal(0.0, 0.1)));
    EXPECT_FALSE(std::isnan(sel->predict()));
    EXPECT_NEAR(sel->predict(), 5e6, 1.5e6);
}

TEST(adaptive_selector_class, clone_empty_preserves_candidates) {
    auto sel = adaptive_selector::standard();
    auto clone = sel->clone_empty();
    EXPECT_EQ(clone->name(), sel->name());
    EXPECT_TRUE(std::isnan(clone->predict()));
}

TEST(adaptive_selector_class, rejects_bad_construction) {
    EXPECT_THROW(adaptive_selector({}, 0.9), std::invalid_argument);
    std::vector<std::unique_ptr<hb_predictor>> one;
    one.push_back(std::make_unique<moving_average>(5));
    EXPECT_THROW(adaptive_selector(std::move(one), 0.0), std::invalid_argument);
}

// ---------- loss events ----------

TEST(loss_events, rates_on_simple_patterns) {
    const std::vector<std::uint8_t> isolated{1, 1, 0, 1, 1, 0, 1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(packet_loss_rate(isolated), 0.2);
    EXPECT_DOUBLE_EQ(loss_event_rate(isolated), 0.2);  // isolated: same
    EXPECT_DOUBLE_EQ(mean_loss_burst_length(isolated), 1.0);

    const std::vector<std::uint8_t> bursty{1, 0, 0, 0, 1, 1, 0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(packet_loss_rate(bursty), 0.5);
    EXPECT_DOUBLE_EQ(loss_event_rate(bursty), 0.2);  // 2 bursts / 10
    EXPECT_DOUBLE_EQ(mean_loss_burst_length(bursty), 2.5);
}

TEST(loss_events, lossless_and_empty_sequences) {
    const std::vector<std::uint8_t> clean{1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(packet_loss_rate(clean), 0.0);
    EXPECT_DOUBLE_EQ(loss_event_rate(clean), 0.0);
    EXPECT_DOUBLE_EQ(mean_loss_burst_length(clean), 0.0);
    EXPECT_DOUBLE_EQ(loss_event_rate(std::vector<std::uint8_t>{}), 0.0);
}

TEST(loss_events, event_rate_never_exceeds_packet_rate) {
    sim::rng r(13);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> seq;
        for (int i = 0; i < 200; ++i) seq.push_back(r.chance(0.15) ? 0 : 1);
        EXPECT_LE(loss_event_rate(seq), packet_loss_rate(seq) + 1e-12);
    }
}

}  // namespace
}  // namespace tcppred::core
