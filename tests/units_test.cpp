#include "core/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/contracts.hpp"

namespace tcppred::core {
namespace {

TEST(quantity, same_unit_arithmetic_and_comparison) {
    const seconds a{0.5}, b{0.25};
    EXPECT_DOUBLE_EQ((a + b).value(), 0.75);
    EXPECT_DOUBLE_EQ((a - b).value(), 0.25);
    EXPECT_DOUBLE_EQ((a * 4.0).value(), 2.0);
    EXPECT_DOUBLE_EQ((4.0 * a).value(), 2.0);
    EXPECT_DOUBLE_EQ((a / 2.0).value(), 0.25);
    EXPECT_DOUBLE_EQ(a / b, 2.0);  // same-unit ratio is dimensionless
    EXPECT_LT(b, a);
    EXPECT_EQ(a, seconds{0.5});
}

TEST(quantity, default_constructs_to_zero) {
    EXPECT_DOUBLE_EQ(bits_per_second{}.value(), 0.0);
    EXPECT_DOUBLE_EQ(seconds{}.value(), 0.0);
    EXPECT_DOUBLE_EQ(bytes{}.value(), 0.0);
}

TEST(unit_helpers, rate_of_is_the_only_bytes_to_bits_conversion) {
    // 1 MB in 8 s = 1 Mbit/s.
    EXPECT_DOUBLE_EQ(rate_of(bytes{1e6}, seconds{8.0}).value(), 1e6);
}

TEST(unit_helpers, transfer_time_inverts_rate_of) {
    const bytes amount{2.5e6};
    const seconds elapsed{3.0};
    const bits_per_second r = rate_of(amount, elapsed);
    EXPECT_NEAR(transfer_time(amount, r).value(), elapsed.value(), 1e-12);
}

TEST(probability_type, accepts_the_closed_unit_interval) {
    EXPECT_DOUBLE_EQ(probability{0.0}.value(), 0.0);
    EXPECT_DOUBLE_EQ(probability{1.0}.value(), 1.0);
    EXPECT_DOUBLE_EQ(probability{0.37}.value(), 0.37);
}

TEST(probability_type, checked_throws_on_untrusted_out_of_range_input) {
    EXPECT_THROW((void)probability::checked(-1e-9), std::invalid_argument);
    EXPECT_THROW((void)probability::checked(1.0 + 1e-9), std::invalid_argument);
    EXPECT_THROW((void)probability::checked(std::nan("")), std::invalid_argument);
    EXPECT_DOUBLE_EQ(probability::checked(0.5).value(), 0.5);
}

TEST(probability_type, contract_fires_on_out_of_range_construction) {
#if TCPPRED_CHECKS
    EXPECT_THROW((void)probability{-0.5}, contract_violation);
    EXPECT_THROW((void)probability{1.5}, contract_violation);
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

TEST(contracts, violation_message_names_kind_and_expression) {
#if TCPPRED_CHECKS
    try {
        TCPPRED_EXPECTS(1 < 0);
        FAIL() << "contract did not fire";
    } catch (const contract_violation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("precondition"), std::string::npos);
        EXPECT_NE(what.find("1 < 0"), std::string::npos);
    }
#else
    GTEST_SKIP() << "contract checks compiled out (Release without REPRO_CHECKS)";
#endif
}

TEST(contracts, disabled_or_enabled_never_alters_values) {
    // The checks only observe: a passing contract has no effect on the
    // computation around it (determinism contract, DESIGN.md §6).
    double x = 0.25;
    TCPPRED_ASSERT(x > 0.0);
    TCPPRED_ENSURES(x < 1.0);
    EXPECT_DOUBLE_EQ(x, 0.25);
}

}  // namespace
}  // namespace tcppred::core
