// The observability half of the determinism contract (DESIGN.md §6, §12):
// for a fixed seed, counters and canonicalized trace events are identical at
// any job count, and enabling tracing never changes the dataset itself.
#include "testbed/campaign.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/evaluation.hpp"
#include "obs/counters.hpp"
#include "obs/trace_writer.hpp"

using namespace tcppred;

namespace {

// Temp paths are suffixed with the PID: two instances of this binary (e.g.
// a sanitizer build running alongside the plain one) must not share files.
std::filesystem::path temp_path(const std::string& stem) {
    return std::filesystem::temp_directory_path() /
           (stem + "." + std::to_string(::getpid()));
}

// Small but fault-heavy: every fault kind fires at least once, so the
// counters and trace events under comparison are non-trivial.
testbed::campaign_config faulted_config() {
    testbed::campaign_config cfg = testbed::campaign1_config(testbed::campaign_scale::tiny);
    cfg.paths = 3;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 6;
    cfg.faults = sim::fault_profile::parse(
        "pathload=0.3,ping-timeout=0.05,ping-truncate=0.2,abort=0.25,outage=0.2");
    return cfg;
}

std::string csv_of(const testbed::dataset& data) {
    const std::filesystem::path tmp =
        temp_path("trace_det_test.csv");
    testbed::save_csv(data, tmp);
    std::ifstream in(tmp);
    std::stringstream ss;
    ss << in.rdbuf();
    std::filesystem::remove(tmp);
    return ss.str();
}

/// Run the faulted campaign (+ an engine pass over its dataset, so predict
/// events and engine counters are exercised too) at `jobs` workers with
/// tracing into `trace_file`, returning the dataset CSV bytes and the
/// counter snapshot taken right after.
std::pair<std::string, std::map<std::string, std::uint64_t>> run_traced(
    int jobs, const std::filesystem::path& trace_file) {
    testbed::campaign_config cfg = faulted_config();
    cfg.jobs = jobs;
    obs::reset_counters();
    obs::trace_writer::instance().open(trace_file);
    const testbed::dataset data = testbed::run_campaign(cfg);
    analysis::engine_options eo;
    eo.jobs = jobs;
    (void)analysis::evaluation_engine{eo}.run(
        data, std::vector<std::string>{"fb:pftk", "10-MA"});
    obs::trace_writer::instance().close();
    return {csv_of(data), obs::counters_snapshot()};
}

}  // namespace

TEST(trace_determinism, counters_and_canonical_events_identical_across_jobs) {
    const auto t1 = temp_path("trace_det_j1.jsonl");
    const auto t4 = temp_path("trace_det_j4.jsonl");

    const auto [csv1, counters1] = run_traced(1, t1);
    const auto [csv4, counters4] = run_traced(4, t4);

    // The dataset itself: byte-identical (the pre-existing §6 contract).
    EXPECT_EQ(csv1, csv4);

    // Counter snapshots: every counter counts logical workload events, so
    // serial and pooled runs must agree exactly, name for name.
    EXPECT_EQ(counters1, counters4);
    EXPECT_GT(counters1.at("campaign.epochs_run"), 0u);
    EXPECT_GT(counters1.at("fault.abort_planned"), 0u);
    EXPECT_GT(counters1.at("engine.epochs_scored"), 0u);

    // Trace events: after canonicalization (volatile keys stripped, lines
    // sorted) the two runs describe the same work, byte for byte.
    const auto ev1 = obs::canonical_trace_lines(t1);
    const auto ev4 = obs::canonical_trace_lines(t4);
    EXPECT_FALSE(ev1.empty());
    EXPECT_EQ(ev1, ev4);

    std::filesystem::remove(t1);
    std::filesystem::remove(t4);
}

TEST(trace_determinism, tracing_does_not_change_the_dataset) {
    testbed::campaign_config cfg = faulted_config();
    cfg.jobs = 1;

    obs::reset_counters();
    const std::string plain = csv_of(testbed::run_campaign(cfg));

    const auto tf = temp_path("trace_det_onoff.jsonl");
    obs::trace_writer::instance().open(tf);
    const std::string traced = csv_of(testbed::run_campaign(cfg));
    obs::trace_writer::instance().close();

    EXPECT_EQ(plain, traced);
    // And the trace actually recorded the campaign it rode along with.
    std::size_t epoch_events = 0;
    for (const auto& ev : obs::read_trace_file(tf)) {
        epoch_events += std::get<std::string>(ev.at("ev")) == "epoch";
    }
    EXPECT_EQ(epoch_events, static_cast<std::size_t>(cfg.paths) *
                                static_cast<std::size_t>(cfg.traces_per_path) *
                                static_cast<std::size_t>(cfg.epochs_per_trace));
    std::filesystem::remove(tf);
}

TEST(trace_determinism, epoch_events_carry_the_schema_fields) {
    testbed::campaign_config cfg = faulted_config();
    cfg.paths = 1;
    cfg.epochs_per_trace = 2;
    cfg.jobs = 1;

    const auto tf = temp_path("trace_det_schema.jsonl");
    obs::trace_writer::instance().open(tf);
    (void)testbed::run_campaign(cfg);
    obs::trace_writer::instance().close();

    bool saw_start = false;
    for (const auto& ev : obs::read_trace_file(tf)) {
        const std::string kind = std::get<std::string>(ev.at("ev"));
        if (kind == "campaign_start") {
            saw_start = true;
            EXPECT_TRUE(ev.count("seed"));
            EXPECT_TRUE(ev.count("faults"));
        } else if (kind == "epoch") {
            for (const char* key :
                 {"path", "trace", "epoch", "seed", "fault_flags", "sim_events",
                  "dur_s", "thread"}) {
                EXPECT_TRUE(ev.count(key)) << "epoch event missing " << key;
            }
        }
    }
    EXPECT_TRUE(saw_start);
    std::filesystem::remove(tf);
}
