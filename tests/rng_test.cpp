#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tcppred::sim {
namespace {

TEST(rng, deterministic_for_same_seed) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(rng, different_seeds_differ) {
    rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform()) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(rng, uniform_respects_bounds) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(3.0, 5.0);
        EXPECT_GE(x, 3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(rng, uniform_int_inclusive) {
    rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto x = r.uniform_int(1, 4);
        EXPECT_GE(x, 1);
        EXPECT_LE(x, 4);
        saw_lo |= (x == 1);
        saw_hi |= (x == 4);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(rng, exponential_mean_converges) {
    rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(rng, pareto_respects_minimum) {
    rng r(13);
    for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(1.5, 0.4), 0.4);
}

TEST(rng, pareto_mean_converges_for_shape_above_one) {
    // mean = alpha * xmin / (alpha - 1); use a tame shape for convergence.
    rng r(17);
    const double alpha = 3.0, xmin = 1.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += r.pareto(alpha, xmin);
    EXPECT_NEAR(sum / n, alpha * xmin / (alpha - 1.0), 0.03);
}

TEST(rng, chance_probability_converges) {
    rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(rng, derive_seed_varies_with_every_input) {
    const std::uint64_t base = derive_seed(1, "x", 0, 0, 0);
    EXPECT_NE(base, derive_seed(2, "x", 0, 0, 0));
    EXPECT_NE(base, derive_seed(1, "y", 0, 0, 0));
    EXPECT_NE(base, derive_seed(1, "x", 1, 0, 0));
    EXPECT_NE(base, derive_seed(1, "x", 0, 1, 0));
    EXPECT_NE(base, derive_seed(1, "x", 0, 0, 1));
}

TEST(rng, derive_seed_is_pure) {
    EXPECT_EQ(derive_seed(99, "tag", 1, 2, 3), derive_seed(99, "tag", 1, 2, 3));
}

TEST(rng, normal_moments) {
    rng r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal(1.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0, 0.03);
    EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.03);
}

}  // namespace
}  // namespace tcppred::sim
