#!/usr/bin/env bash
# Self-test for tcppred_lint against the fixture tree in tests/lint_fixtures/.
#
# Asserts the full CLI contract:
#   exit 0  clean fixtures and suppressed violations produce no findings
#   exit 1  each bad_<rule> fixture fires exactly its named rule
#   exit 2  usage errors, unknown paths, malformed configs
#
# Usage: lint_test.sh /path/to/tcppred_lint
set -u

if [ $# -ne 1 ]; then
    echo "usage: $0 TCPPRED_LINT_BINARY" >&2
    exit 2
fi
LINT=$1
HERE="$(cd "$(dirname "$0")" && pwd)"
ROOT="$HERE/lint_fixtures"
CONF="$ROOT/fixtures.conf"
failures=0

note_fail() {
    echo "FAIL $1"
    shift
    printf '%s\n' "$@" | sed 's/^/    /'
    failures=$((failures + 1))
}

# run <desc> <want_rc> <cmd...>; captures stdout into $out for callers.
run() {
    local desc=$1 want_rc=$2
    shift 2
    out=$("$@" 2>/dev/null)
    local rc=$?
    if [ "$rc" -ne "$want_rc" ]; then
        note_fail "$desc: exit $rc, want $want_rc" "$out"
        return 1
    fi
    echo "ok   $desc (exit $rc)"
}

# Every bad fixture must exit 1 and every reported finding must carry the
# expected rule id — a stray second rule firing is a self-test failure.
for rule in det-rng det-clock det-env det-thread det-unordered-iter \
            ser-hexfloat units-boundary layer-include; do
    stem=bad_$(printf '%s' "$rule" | tr - _)
    fixture=$(find "$ROOT/src" -name "$stem.*" | head -1)
    if [ -z "$fixture" ]; then
        note_fail "$rule: fixture $stem.* not found"
        continue
    fi
    rel=${fixture#"$ROOT"/}
    if run "$rule fires on $rel" 1 \
           "$LINT" --root "$ROOT" --config "$CONF" "$rel"; then
        if [ -z "$out" ]; then
            note_fail "$rule: exit 1 but no findings printed"
        elif printf '%s\n' "$out" | grep -qv "\[$rule\]"; then
            note_fail "$rule: a finding carries the wrong rule id" "$out"
        fi
    fi
done

# Clean and suppressed fixtures: no findings, exit 0.
for rel in src/alpha/alpha.hpp src/alpha/clean.cpp src/alpha/suppressed.cpp; do
    run "clean: $rel" 0 "$LINT" --root "$ROOT" --config "$CONF" "$rel" || true
done

# Usage/config errors: exit 2.
run "unknown option" 2 "$LINT" --bogus || true
run "missing path" 2 \
    "$LINT" --root "$ROOT" --config "$CONF" src/no/such/file.cpp || true
run "malformed config" 2 \
    "$LINT" --root "$ROOT" --config "$ROOT/bad.conf" src/alpha/clean.cpp || true

# --list-rules prints the whole catalogue.
if run "--list-rules" 0 "$LINT" --list-rules; then
    for rule in det-rng det-clock det-env det-thread det-unordered-iter \
                ser-hexfloat units-boundary layer-include; do
        if ! printf '%s\n' "$out" | grep -q "^$rule "; then
            note_fail "--list-rules: missing $rule" "$out"
        fi
    done
fi

if [ "$failures" -ne 0 ]; then
    echo "lint_test: $failures failure(s)" >&2
    exit 1
fi
echo "lint_test: all checks passed"
