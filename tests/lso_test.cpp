#include "core/lso.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>


namespace tcppred::core {
namespace {

std::vector<double> with_level_shift() {
    std::vector<double> s(10, 10.0);
    s.insert(s.end(), 10, 20.0);  // +100% shift at index 10
    return s;
}

TEST(lso_filter, detects_increasing_level_shift) {
    lso_filter f;
    for (const double x : with_level_shift()) f.observe(x);
    ASSERT_EQ(f.shift_indices().size(), 1u);
    EXPECT_EQ(f.shift_indices()[0], 10u);
    // Cleaned history only contains post-shift samples.
    for (const auto& s : f.cleaned()) EXPECT_DOUBLE_EQ(s.value, 20.0);
}

TEST(lso_filter, detects_decreasing_level_shift) {
    lso_filter f;
    for (int i = 0; i < 10; ++i) f.observe(30.0);
    for (int i = 0; i < 10; ++i) f.observe(15.0);
    ASSERT_EQ(f.shift_indices().size(), 1u);
    EXPECT_EQ(f.shift_indices()[0], 10u);
}

TEST(lso_filter, small_shift_below_gamma_is_ignored) {
    lso_filter f(lso_config{0.3, 0.4, 3});
    for (int i = 0; i < 10; ++i) f.observe(10.0);
    for (int i = 0; i < 10; ++i) f.observe(11.0);  // +10% < gamma
    EXPECT_TRUE(f.shift_indices().empty());
}

TEST(lso_filter, isolated_spike_is_outlier_not_shift) {
    lso_filter f;
    std::vector<double> s(10, 10.0);
    s.push_back(30.0);  // spike
    s.insert(s.end(), 5, 10.0);
    for (const double x : s) f.observe(x);
    EXPECT_TRUE(f.shift_indices().empty());
    ASSERT_EQ(f.outlier_indices().size(), 1u);
    EXPECT_EQ(f.outlier_indices()[0], 10u);
}

TEST(lso_filter, shift_needs_confirmation_samples) {
    // Immediately after a jump there are too few new-level samples: the
    // paper's condition 3 (k + 2 <= n) defers the shift decision.
    lso_filter f;
    for (int i = 0; i < 10; ++i) f.observe(10.0);
    f.observe(20.0);
    EXPECT_TRUE(f.shift_indices().empty());
    f.observe(20.0);
    f.observe(20.0);
    EXPECT_EQ(f.shift_indices().size(), 1u);
}

TEST(lso_filter, noisy_stationary_series_has_no_detections) {
    lso_filter f;
    // +/-5% alternation around 100: well below both thresholds.
    for (int i = 0; i < 50; ++i) f.observe(100.0 + (i % 2 == 0 ? 5.0 : -5.0));
    EXPECT_TRUE(f.shift_indices().empty());
    EXPECT_TRUE(f.outlier_indices().empty());
}

TEST(lso_filter, multiple_shifts_all_detected) {
    lso_filter f;
    for (int i = 0; i < 8; ++i) f.observe(10.0);
    for (int i = 0; i < 8; ++i) f.observe(20.0);
    for (int i = 0; i < 8; ++i) f.observe(8.0);
    EXPECT_EQ(f.shift_indices().size(), 2u);
}

TEST(lso_filter, scale_invariance) {
    // Detections depend only on relative differences: scaling the whole
    // series must not change them.
    std::vector<double> base = with_level_shift();
    base[5] = 25.0;  // an outlier in the low segment
    lso_filter a, b;
    for (const double x : base) a.observe(x);
    for (const double x : base) b.observe(x * 1e6);
    EXPECT_EQ(a.shift_indices(), b.shift_indices());
    EXPECT_EQ(a.outlier_indices(), b.outlier_indices());
}

TEST(lso_predictor, recovers_fast_after_level_shift) {
    // 10 samples at the old level, then only 4 at the new one: a plain
    // 10-MA still averages across the shift, the LSO wrapper has restarted.
    std::vector<double> series(10, 10.0);
    series.insert(series.end(), 4, 20.0);

    lso_predictor with_lso(std::make_unique<moving_average>(10));
    moving_average no_lso(10);
    for (const double x : series) {
        with_lso.observe(x);
        no_lso.observe(x);
    }
    EXPECT_NEAR(with_lso.predict(), 20.0, 1e-9);
    EXPECT_LT(no_lso.predict(), 16.0);
}

TEST(lso_predictor, ignores_outliers_in_forecast) {
    lso_predictor p(std::make_unique<moving_average>(5));
    std::vector<double> s(8, 10.0);
    s.push_back(100.0);
    s.insert(s.end(), 4, 10.0);
    for (const double x : s) p.observe(x);
    EXPECT_NEAR(p.predict(), 10.0, 1e-9);
}

TEST(lso_predictor, name_appends_suffix) {
    lso_predictor p(std::make_unique<holt_winters>(0.8, 0.2));
    EXPECT_EQ(p.name(), "0.8-HW-LSO");
}

TEST(lso_predictor, clone_empty_preserves_structure) {
    lso_predictor p(std::make_unique<moving_average>(7), lso_config{0.2, 0.3, 3});
    auto clone = p.clone_empty();
    EXPECT_EQ(clone->name(), "7-MA-LSO");
    EXPECT_TRUE(std::isnan(clone->predict()));
}

TEST(lso_scan_fn, reports_segments_and_outliers) {
    std::vector<double> s(10, 10.0);
    s.push_back(40.0);  // outlier
    s.insert(s.end(), 9, 10.0);
    s.insert(s.end(), 10, 25.0);  // shift
    const lso_scan_result r = lso_scan(s);
    EXPECT_TRUE(r.is_outlier[10]);
    ASSERT_EQ(r.segment_starts.size(), 2u);
    EXPECT_EQ(r.segment_starts[0], 0u);
    EXPECT_EQ(r.segment_starts[1], 20u);
}

// Parameter sweep: higher psi tolerates bigger spikes.
class psi_sweep : public ::testing::TestWithParam<double> {};

TEST_P(psi_sweep, spike_detection_threshold_scales_with_psi) {
    const double psi = GetParam();
    lso_filter f(lso_config{0.3, psi, 3});
    for (int i = 0; i < 10; ++i) f.observe(10.0);
    f.observe(10.0 * (1.0 + psi + 0.2));  // just above threshold
    for (int i = 0; i < 5; ++i) f.observe(10.0);
    EXPECT_EQ(f.outlier_indices().size(), 1u) << "psi=" << psi;

    lso_filter g(lso_config{0.3, psi, 3});
    for (int i = 0; i < 10; ++i) g.observe(10.0);
    g.observe(10.0 * (1.0 + psi * 0.5));  // below threshold
    for (int i = 0; i < 5; ++i) g.observe(10.0);
    EXPECT_TRUE(g.outlier_indices().empty()) << "psi=" << psi;
}

INSTANTIATE_TEST_SUITE_P(sweep, psi_sweep, ::testing::Values(0.3, 0.4, 0.6, 1.0));

}  // namespace
}  // namespace tcppred::core
