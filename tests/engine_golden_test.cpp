// Golden regression test for the streaming evaluation engine: the Fig. 19
// headline numbers (FB per-trace RMSRE quantiles, HB P(RMSRE < 0.4)) on the
// two tiny campaigns, pinned BIT-EXACTLY as hex float literals. The values
// were captured from the legacy per-family evaluation loops the engine
// replaced, so this test is the permanent engine-vs-legacy equivalence
// check; the campaign generator's determinism contract (same config + seed
// -> byte-identical dataset) makes in-test regeneration safe.
//
// If a legitimate numerical change lands (e.g. a formula fix), re-capture
// with: build the repo, run `bench/fig19_fb_vs_hb` per campaign, and print
// the quantities below with %a.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "net/cross_traffic.hpp"
#include "testbed/campaign.hpp"

namespace tcppred::analysis {
namespace {

struct golden {
    double fb_median;    ///< ecdf::quantile(0.5) of FB per-trace RMSREs
    double fb_p90;       ///< ecdf::quantile(0.9) of FB per-trace RMSREs
    double ma_p_lt_04;   ///< ecdf.at(0.4) of 10-MA-LSO per-trace RMSREs
    double hw_p_lt_04;   ///< ecdf.at(0.4) of 0.8-HW-LSO per-trace RMSREs
    std::size_t traces;  ///< per-trace sample count behind the CDFs
};

/// The goldens were captured on datasets LOADED from the cached campaign
/// CSVs, whose serialized doubles differ from the in-memory campaign output
/// in the last bits — round-trip through the same format before evaluating.
testbed::dataset csv_round_trip(const testbed::dataset& data, const char* name) {
    const auto file = std::filesystem::temp_directory_path() / name;
    testbed::save_csv(data, file);
    const testbed::dataset loaded = testbed::load_csv(file);
    std::filesystem::remove(file);
    return loaded;
}

void check_campaign(const testbed::dataset& data, const golden& g) {
    // The scale is pinned in the config, NOT read from $REPRO_SCALE: the
    // goldens are only valid for the tiny campaigns.
    const std::vector<std::string> specs{"fb:pftk", "10-MA-LSO", "0.8-HW-LSO"};
    const auto results = evaluation_engine{}.run(data, specs);

    const auto fb_rmsres = results[0].trace_rmsres();
    ASSERT_EQ(fb_rmsres.size(), g.traces);
    const ecdf fb_cdf{std::vector<double>(fb_rmsres)};
    EXPECT_EQ(fb_cdf.quantile(0.5), g.fb_median);
    EXPECT_EQ(fb_cdf.quantile(0.9), g.fb_p90);

    const auto ma_rmsres = results[1].trace_rmsres();
    ASSERT_EQ(ma_rmsres.size(), g.traces);
    EXPECT_EQ(ecdf{std::vector<double>(ma_rmsres)}.at(0.4), g.ma_p_lt_04);

    const auto hw_rmsres = results[2].trace_rmsres();
    ASSERT_EQ(hw_rmsres.size(), g.traces);
    EXPECT_EQ(ecdf{std::vector<double>(hw_rmsres)}.at(0.4), g.hw_p_lt_04);

    // The parallel engine must reproduce the serial numbers bitwise
    // (determinism contract, DESIGN.md §6).
    for (const int jobs : {2, 4}) {
        engine_options par;
        par.jobs = jobs;
        const auto pr = evaluation_engine{par}.run(data, specs);
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(pr[i].traces.size(), results[i].traces.size()) << jobs;
            for (std::size_t t = 0; t < results[i].traces.size(); ++t) {
                EXPECT_EQ(pr[i].traces[t].rmsre, results[i].traces[t].rmsre) << jobs;
            }
        }
    }

    // The one-pass streamed evaluation (evaluate_stream) must also hit the
    // goldens bitwise when fed the same records in traces() order — the
    // equivalence the past-RAM analysis path rests on.
    std::vector<const testbed::epoch_record*> ordered;
    for (const auto& [key, recs] : data.traces()) {
        ordered.insert(ordered.end(), recs.begin(), recs.end());
    }
    std::size_t pos = 0;
    const auto streamed = evaluate_stream(
        [&](testbed::epoch_record& out) {
            if (pos >= ordered.size()) return false;
            out = *ordered[pos++];
            return true;
        },
        specs);
    ASSERT_EQ(streamed.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(streamed[i].traces.size(), results[i].traces.size());
        for (std::size_t t = 0; t < results[i].traces.size(); ++t) {
            EXPECT_EQ(streamed[i].traces[t].rmsre, results[i].traces[t].rmsre);
        }
    }
    const auto s_fb = streamed[0].trace_rmsres();
    const ecdf s_fb_cdf{std::vector<double>(s_fb)};
    EXPECT_EQ(s_fb_cdf.quantile(0.5), g.fb_median);
    EXPECT_EQ(s_fb_cdf.quantile(0.9), g.fb_p90);
    EXPECT_EQ(ecdf{std::vector<double>(streamed[1].trace_rmsres())}.at(0.4),
              g.ma_p_lt_04);
    EXPECT_EQ(ecdf{std::vector<double>(streamed[2].trace_rmsres())}.at(0.4),
              g.hw_p_lt_04);
}

TEST(engine_golden, campaign1_tiny_headline_numbers) {
    const auto data = csv_round_trip(
        testbed::run_campaign(testbed::campaign1_config(testbed::campaign_scale::tiny)),
        "engine_golden_c1.csv");
    check_campaign(data, golden{0x1.63fa5d235cb4ep+0,  // FB median RMSRE 1.3905
                                0x1.e66bc32cafe19p+1,  // FB p90 RMSRE 3.8002
                                0x1.cp-1,              // P(10-MA-LSO < 0.4) = 0.875
                                0x1.8p-1,              // P(0.8-HW-LSO < 0.4) = 0.75
                                8});
}

TEST(engine_golden, campaign2_tiny_headline_numbers) {
    const auto data = csv_round_trip(
        testbed::run_campaign(testbed::campaign2_config(testbed::campaign_scale::tiny)),
        "engine_golden_c2.csv");
    check_campaign(data, golden{0x1.4b2642668b93bp+0,  // FB median RMSRE 1.2936
                                0x1.a51a66be21467p+0,  // FB p90 RMSRE 1.6449
                                0x1.8p-1,              // P(10-MA-LSO < 0.4) = 0.75
                                0x1p+0,                // P(0.8-HW-LSO < 0.4) = 1.0
                                4});
}

// Fluid-cross-traffic goldens (DESIGN.md §13.5). The fluid model replaces
// open-loop cross packets with an aggregate rate at the link, so its epochs
// are legitimately different simulations — these goldens are pinned from
// the first fluid implementation, not carried over from packet mode. The
// packet-mode goldens above are untouched: fluid mode is opt-in and the
// headline numbers stay in family (medians within ~10% of packet mode),
// which is the regression signal these pins protect.

TEST(engine_golden, campaign1_tiny_fluid_headline_numbers) {
    auto cfg = testbed::campaign1_config(testbed::campaign_scale::tiny);
    cfg.epoch.cross = net::cross_model::fluid;
    const auto data =
        csv_round_trip(testbed::run_campaign(cfg), "engine_golden_c1_fluid.csv");
    check_campaign(data, golden{0x1.304929ee0e518p+0,  // FB median RMSRE 1.1886
                                0x1.18d2a3953faeep+2,  // FB p90 RMSRE 4.3879
                                0x1.cp-1,              // P(10-MA-LSO < 0.4) = 0.875
                                0x1.cp-1,              // P(0.8-HW-LSO < 0.4) = 0.875
                                8});
}

TEST(engine_golden, campaign2_tiny_fluid_headline_numbers) {
    auto cfg = testbed::campaign2_config(testbed::campaign_scale::tiny);
    cfg.epoch.cross = net::cross_model::fluid;
    const auto data =
        csv_round_trip(testbed::run_campaign(cfg), "engine_golden_c2_fluid.csv");
    check_campaign(data, golden{0x1.200452bca2855p+0,  // FB median RMSRE 1.1251
                                0x1.b0d43a12f381dp+0,  // FB p90 RMSRE 1.6907
                                0x1.8p-1,              // P(10-MA-LSO < 0.4) = 0.75
                                0x1.8p-1,              // P(0.8-HW-LSO < 0.4) = 0.75
                                4});
}

}  // namespace
}  // namespace tcppred::analysis
