// tcppred_campaign — run a measurement campaign from the command line and
// write the dataset CSV. The operational entry point for producing new
// datasets without writing C++.
//
//   tcppred_campaign --out data/my.csv [--paths N] [--traces N]
//                    [--epochs N] [--seed S] [--transfer-s T] [--second-set]
//                    [--jobs N] [--faults SPEC] [--checkpoint-every N]
//                    [--resume] [--trace FILE] [--metrics-summary]
//
// Exit codes: 0 success, 1 bad arguments, 2 runtime failure,
// 130 interrupted (SIGINT; progress is checkpointed when enabled).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "sim/fault_injector.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred::testbed;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --out FILE [options]\n"
                 "  --out FILE        output CSV (required)\n"
                 "  --paths N         number of paths        (default 35)\n"
                 "  --traces N        traces per path        (default 2)\n"
                 "  --epochs N        epochs per trace       (default 120)\n"
                 "  --seed S          campaign seed          (default 20040501)\n"
                 "  --transfer-s T    target transfer length (default 10)\n"
                 "  --second-set      use the campaign-2 catalogue & plan\n"
                 "  --cross-model M   open-loop cross-traffic model: packet (exact,\n"
                 "                    default) or fluid (aggregate rate, far fewer\n"
                 "                    events; also $REPRO_CROSS_MODEL)\n"
                 "  --jobs N          worker threads; 1 = serial\n"
                 "                    (default $REPRO_JOBS, else all cores)\n"
                 "  --faults SPEC     measurement-fault rates, e.g.\n"
                 "                    pathload=0.1,ping-timeout=0.02,abort=0.05\n"
                 "                    (keys: pathload, ping-timeout, ping-truncate,\n"
                 "                    abort, outage, seed; default $REPRO_FAULTS)\n"
                 "  --checkpoint-every N  flush a resume checkpoint (FILE.ckpt)\n"
                 "                    every N completed epochs (default 32 once\n"
                 "                    checkpointing is on; SIGINT also flushes)\n"
                 "  --resume          resume from FILE.ckpt if present\n"
                 "  --trace FILE      write a JSONL run trace (also $REPRO_TRACE;\n"
                 "                    off by default, zero hot-path cost when off)\n"
                 "  --metrics-summary print counters and stage timings to stderr\n"
                 "                    on exit (also $REPRO_METRICS=1)\n",
                 argv0);
}

// SIGINT: stop claiming epochs; the campaign loop flushes a checkpoint and
// the tool exits 130. sig_atomic_t keeps the handler async-signal-safe.
volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
    campaign_config cfg;
    campaign_run_options run_opts;
    std::string out;
    int jobs = 0;  // applied after parsing so --second-set cannot reset it
    // Applied after parsing for the same reason: --second-set replaces cfg.
    std::string cross_model_name;
    if (const char* env = std::getenv("REPRO_CROSS_MODEL")) cross_model_name = env;  // NOLINT(concurrency-mt-unsafe)
    bool checkpointing = false;
    bool metrics_summary = false;
    std::string trace_file;
    tcppred::sim::fault_profile faults;
    try {
        faults = tcppred::sim::fault_profile::from_env();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bad fault environment: %s\n", e.what());
        return 1;
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out = next();
        } else if (arg == "--paths") {
            cfg.paths = std::atoi(next());
        } else if (arg == "--traces") {
            cfg.traces_per_path = std::atoi(next());
        } else if (arg == "--epochs") {
            cfg.epochs_per_trace = std::atoi(next());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--transfer-s") {
            cfg.epoch.transfer = tcppred::core::seconds{std::atof(next())};
        } else if (arg == "--second-set") {
            cfg = campaign2_config(campaign_scale::normal);
        } else if (arg == "--cross-model") {
            cross_model_name = next();
        } else if (arg == "--jobs") {
            jobs = std::atoi(next());
        } else if (arg == "--faults") {
            try {
                faults = tcppred::sim::fault_profile::parse(next());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
                return 1;
            }
        } else if (arg == "--checkpoint-every") {
            run_opts.checkpoint_every = std::atoi(next());
            checkpointing = true;
            if (run_opts.checkpoint_every <= 0) {
                std::fprintf(stderr, "--checkpoint-every needs a positive count\n");
                return 1;
            }
        } else if (arg == "--resume") {
            run_opts.resume = true;
            checkpointing = true;
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--metrics-summary") {
            metrics_summary = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (out.empty() || cfg.paths <= 0 || cfg.traces_per_path <= 0 ||
        cfg.epochs_per_trace <= 0) {
        usage(argv[0]);
        return 1;
    }
    cfg.jobs = jobs;
    cfg.faults = faults;
    if (!cross_model_name.empty()) {
        if (cross_model_name == "packet") {
            cfg.epoch.cross = tcppred::net::cross_model::packet;
        } else if (cross_model_name == "fluid") {
            cfg.epoch.cross = tcppred::net::cross_model::fluid;
        } else {
            std::fprintf(stderr, "bad --cross-model: %s (want packet or fluid)\n",
                         cross_model_name.c_str());
            return 1;
        }
    }
    if (checkpointing) run_opts.checkpoint = out + ".ckpt";
    run_opts.cancelled = [] { return g_interrupted != 0; };
    std::signal(SIGINT, on_sigint);

    // --trace opens first so init_from_env() skips $REPRO_TRACE (the flag
    // overrides the environment, with no stray env-named file).
    if (!trace_file.empty()) {
        try {
            tcppred::obs::trace_writer::instance().open(trace_file);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    tcppred::obs::init_from_env();
    if (metrics_summary) tcppred::obs::set_metrics_enabled(true);
    // Runs on every exit path (success, SIGINT, runtime failure): the
    // summary covers whatever work completed, and close() surfaces drain
    // write errors that would otherwise vanish with the process.
    const auto finish_observability = [&]() -> int {
        if (metrics_summary) tcppred::obs::write_metrics_summary(std::cerr);
        if (!trace_file.empty()) {
            try {
                tcppred::obs::trace_writer::instance().close();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
        }
        return 0;
    };

    try {
        std::fprintf(stderr, "running %d paths x %d traces x %d epochs (seed %llu%s)...\n",
                     cfg.paths, cfg.traces_per_path, cfg.epochs_per_trace,
                     static_cast<unsigned long long>(cfg.seed),
                     cfg.faults.enabled()
                         ? (", faults " + cfg.faults.spec()).c_str()
                         : "");
        int last = -1;
        const tcppred::obs::stopwatch watch;
        const campaign_outcome outcome =
            run_campaign_resumable(cfg, run_opts, [&](int done, int total) {
                const int pct = done * 100 / total;
                if (pct / 10 != last / 10) {
                    std::fprintf(stderr, "  %d%%\n", pct);
                    last = pct;
                }
            });
        const double wall_s = watch.elapsed_s();
        if (outcome.epochs_resumed > 0) {
            std::fprintf(stderr, "resumed %d completed epoch(s) from %s\n",
                         outcome.epochs_resumed, run_opts.checkpoint.string().c_str());
        }
        if (!outcome.complete) {
            std::fprintf(stderr,
                         "interrupted after %d epoch(s)%s%s; rerun with --resume\n",
                         outcome.epochs_completed,
                         checkpointing ? "; progress saved to " : "",
                         checkpointing ? run_opts.checkpoint.string().c_str() : "");
            finish_observability();  // partial summary/trace is still useful
            return 130;
        }
        save_csv(outcome.data, out);
        std::fprintf(stderr, "wrote %zu epoch records to %s\n",
                     outcome.data.records.size(), out.c_str());
        std::fprintf(stderr, "%zu epochs in %.2f s (%.1f epochs/s)\n",
                     outcome.data.records.size(), wall_s,
                     wall_s > 0
                         ? static_cast<double>(outcome.data.records.size()) / wall_s
                         : 0.0);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        finish_observability();
        return 2;
    }
    return finish_observability();
}
