// tcppred_campaign — run a measurement campaign from the command line and
// write the dataset CSV. The operational entry point for producing new
// datasets without writing C++.
//
//   tcppred_campaign --out data/my.csv [--paths N] [--traces N]
//                    [--epochs N] [--seed S] [--transfer-s T] [--second-set]
//                    [--jobs N] [--faults SPEC] [--checkpoint-every N]
//                    [--resume] [--trace FILE] [--metrics-summary]
//
// Multi-process modes (DESIGN.md §15): --workers N supervises N worker
// processes (one shard each) and merges their checkpoints into the CSV;
// --shard i/N runs one shard (what a worker does; its product is the shard
// checkpoint, not a CSV); --merge N merges existing shard checkpoints.
// $REPRO_CHAOS (e.g. kill=0.05,hang=0.01) makes workers crash/wedge on a
// seeded schedule so supervision is testable.
//
// Exit codes: 0 success, 1 bad arguments, 2 runtime failure,
// 130 interrupted (SIGINT; progress is checkpointed when enabled).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/checked_parse.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_injector.hpp"
#include "testbed/campaign.hpp"
#include "testbed/record_store.hpp"
#include "testbed/shard.hpp"
#include "testbed/supervisor.hpp"

using namespace tcppred::testbed;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --out FILE [options]\n"
                 "  --out FILE        output CSV (required)\n"
                 "  --paths N         number of paths        (default 35)\n"
                 "  --traces N        traces per path        (default 2)\n"
                 "  --epochs N        epochs per trace       (default 120)\n"
                 "  --seed S          campaign seed          (default 20040501)\n"
                 "  --transfer-s T    target transfer length (default 10)\n"
                 "  --second-set      use the campaign-2 catalogue & plan\n"
                 "  --cross-model M   open-loop cross-traffic model: packet (exact,\n"
                 "                    default) or fluid (aggregate rate, far fewer\n"
                 "                    events; also $REPRO_CROSS_MODEL)\n"
                 "  --jobs N          worker threads; 1 = serial\n"
                 "                    (default $REPRO_JOBS, else all cores)\n"
                 "  --faults SPEC     measurement-fault rates, e.g.\n"
                 "                    pathload=0.1,ping-timeout=0.02,abort=0.05\n"
                 "                    (keys: pathload, ping-timeout, ping-truncate,\n"
                 "                    abort, outage, seed; default $REPRO_FAULTS)\n"
                 "  --checkpoint-every N  flush a resume checkpoint (FILE.ckpt)\n"
                 "                    every N completed epochs (default 32 once\n"
                 "                    checkpointing is on; SIGINT also flushes)\n"
                 "  --resume          resume from FILE.ckpt if present\n"
                 "  --workers N       supervise N worker processes (one shard\n"
                 "                    each), restart crashed/hung ones, then merge\n"
                 "                    shard checkpoints into FILE\n"
                 "  --worker-jobs N   threads per worker process  (default 1)\n"
                 "  --hang-timeout-s T  SIGKILL a worker whose heartbeat stalls\n"
                 "                    this long (default 30)\n"
                 "  --max-attempts N  launch attempts per shard   (default 50)\n"
                 "  --shard i/N       run only shard i of N; writes the shard\n"
                 "                    checkpoint FILE.shard-i-of-N.ckpt, no CSV\n"
                 "                    (chaos via $REPRO_CHAOS=kill=P,hang=P,\n"
                 "                    hang-s=T,seed=S applies here)\n"
                 "  --merge N         merge shard checkpoints 0..N-1 into FILE\n"
                 "  --format F        output format: csv (default) or store (the\n"
                 "                    chunked columnar record store, DESIGN.md §16;\n"
                 "                    epochs stream to disk instead of being held\n"
                 "                    in RAM — convert to CSV with --convert)\n"
                 "  --convert STORE   convert an existing record store to the CSV\n"
                 "                    at --out (streaming; byte-identical to a CSV\n"
                 "                    run of the same config; no campaign is run)\n"
                 "  --trace FILE      write a JSONL run trace (also $REPRO_TRACE;\n"
                 "                    off by default, zero hot-path cost when off)\n"
                 "  --metrics-summary print counters and stage timings to stderr\n"
                 "                    on exit (also $REPRO_METRICS=1)\n",
                 argv0);
}

// SIGINT: stop claiming epochs; the campaign loop flushes a checkpoint and
// the tool exits 130. sig_atomic_t keeps the handler async-signal-safe.
volatile std::sig_atomic_t g_interrupted = 0;
void on_sigint(int) { g_interrupted = 1; }

}  // namespace

int main(int argc, char** argv) {
    campaign_config cfg;
    campaign_run_options run_opts;
    std::string out;
    int jobs = 0;  // applied after parsing so --second-set cannot reset it
    // Applied after parsing for the same reason: --second-set replaces cfg.
    std::string cross_model_name;
    if (const char* env = std::getenv("REPRO_CROSS_MODEL")) cross_model_name = env;  // NOLINT(concurrency-mt-unsafe)
    bool checkpointing = false;
    bool metrics_summary = false;
    std::string trace_file;
    int workers = 0;             // > 0 = supervisor mode
    int worker_jobs = 1;
    double hang_timeout_s = 30.0;
    int max_attempts = 50;
    int merge_n = 0;             // > 0 = merge mode
    std::string format = "csv";
    std::string convert_from;    // non-empty = convert mode
    std::optional<shard_ref> shard;  // set = worker mode
    tcppred::sim::fault_profile faults;
    tcppred::sim::chaos_profile chaos;
    int chaos_attempt = 0;
    try {
        faults = tcppred::sim::fault_profile::from_env();
        chaos = tcppred::sim::chaos_profile::from_env();
        // Read eagerly: a garbled $REPRO_CHAOS_ATTEMPT must fail here with
        // the other environment knobs, not throw mid-campaign.
        chaos_attempt = tcppred::sim::chaos_attempt_from_env();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bad fault/chaos environment: %s\n", e.what());
        return 1;
    }

    // Numeric flag values go through core::parse_checked_* (one shared
    // strict parser): "--paths foo" or "--epochs 12x" is a typed
    // parse_error naming the flag, mapped to exit 2 below — the same
    // contract as a bad predictor spec — never a silent atoi() zero.
    try {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        const auto checked_int = [&](std::int64_t min, std::int64_t max) {
            return tcppred::core::parse_checked_int(arg, next(), min, max);
        };
        if (arg == "--out") {
            out = next();
        } else if (arg == "--paths") {
            cfg.paths = static_cast<int>(checked_int(1, 1000000));
        } else if (arg == "--traces") {
            cfg.traces_per_path = static_cast<int>(checked_int(1, 1000000));
        } else if (arg == "--epochs") {
            cfg.epochs_per_trace = static_cast<int>(checked_int(1, 1000000000));
        } else if (arg == "--seed") {
            cfg.seed = tcppred::core::parse_checked_u64(arg, next(), 0, UINT64_MAX);
        } else if (arg == "--transfer-s") {
            cfg.epoch.transfer = tcppred::core::seconds{
                tcppred::core::parse_checked_double(arg, next(), 1e-9, 1e9)};
        } else if (arg == "--second-set") {
            cfg = campaign2_config(campaign_scale::normal);
        } else if (arg == "--cross-model") {
            cross_model_name = next();
        } else if (arg == "--jobs") {
            jobs = static_cast<int>(checked_int(0, 4096));  // 0 = auto
        } else if (arg == "--faults") {
            try {
                faults = tcppred::sim::fault_profile::parse(next());
            } catch (const std::exception& e) {
                std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
                return 1;
            }
        } else if (arg == "--checkpoint-every") {
            run_opts.checkpoint_every = static_cast<int>(checked_int(1, 1000000000));
            checkpointing = true;
        } else if (arg == "--resume") {
            run_opts.resume = true;
            checkpointing = true;
        } else if (arg == "--workers") {
            workers = static_cast<int>(checked_int(1, 4096));
        } else if (arg == "--worker-jobs") {
            worker_jobs = static_cast<int>(checked_int(1, 4096));
        } else if (arg == "--hang-timeout-s") {
            hang_timeout_s =
                tcppred::core::parse_checked_double(arg, next(), 1e-3, 1e9);
        } else if (arg == "--max-attempts") {
            max_attempts = static_cast<int>(checked_int(1, 1000000000));
        } else if (arg == "--shard") {
            const char* spec = next();
            shard = parse_shard(spec);
            if (!shard) {
                std::fprintf(stderr, "bad --shard spec: %s (want i/N with 0 <= i < N)\n",
                             spec);
                return 1;
            }
        } else if (arg == "--merge") {
            merge_n = static_cast<int>(checked_int(1, 1000000));
        } else if (arg == "--format") {
            format = next();
        } else if (arg == "--convert") {
            convert_from = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--metrics-summary") {
            metrics_summary = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    } catch (const tcppred::core::parse_error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
        return 2;
    }
    if (out.empty() || cfg.paths <= 0 || cfg.traces_per_path <= 0 ||
        cfg.epochs_per_trace <= 0) {
        usage(argv[0]);
        return 1;
    }
    cfg.jobs = jobs;
    cfg.faults = faults;
    if (!cross_model_name.empty()) {
        if (cross_model_name == "packet") {
            cfg.epoch.cross = tcppred::net::cross_model::packet;
        } else if (cross_model_name == "fluid") {
            cfg.epoch.cross = tcppred::net::cross_model::fluid;
        } else {
            std::fprintf(stderr, "bad --cross-model: %s (want packet or fluid)\n",
                         cross_model_name.c_str());
            return 1;
        }
    }
    if ((workers > 0) + (merge_n > 0) + (shard ? 1 : 0) > 1) {
        std::fprintf(stderr, "--workers, --shard and --merge are mutually exclusive\n");
        return 1;
    }
    if (format != "csv" && format != "store") {
        std::fprintf(stderr, "bad --format: %s (want csv or store)\n", format.c_str());
        return 1;
    }
    const bool store_mode = format == "store";
    if (!convert_from.empty() &&
        (workers > 0 || merge_n > 0 || shard || checkpointing)) {
        std::fprintf(stderr,
                     "--convert is a standalone mode (no campaign/shard/merge flags)\n");
        return 1;
    }
    if (store_mode && checkpointing) {
        std::fprintf(stderr,
                     "--format store does not checkpoint (--resume/--checkpoint-every);"
                     " use --workers for crash tolerance\n");
        return 1;
    }
    if (store_mode && shard) {
        std::fprintf(stderr,
                     "--shard writes a shard checkpoint, not a store; use --format "
                     "store on the --workers or --merge side\n");
        return 1;
    }
    if (checkpointing) run_opts.checkpoint = out + ".ckpt";
    if (shard) {
        // Worker mode: claim only our slice; the shard checkpoint is the
        // product (the merge step consumes it), so keep it on completion.
        run_opts.epoch_filter = shard_filter(*shard);
        run_opts.keep_checkpoint = true;
        run_opts.checkpoint = shard_checkpoint_path(out, *shard);
        checkpointing = true;
    }
    if (chaos.enabled() && workers == 0 && merge_n == 0) {
        // Process-level chaos (sim/chaos.hpp): SIGKILL or wedge ourselves
        // just before a planned epoch. Checkpoint every epoch so each
        // attempt's progress survives its planned crash — that is what makes
        // chaos runs converge instead of looping.
        if (checkpointing) run_opts.checkpoint_every = 1;
        const int attempt = chaos_attempt;
        const std::uint64_t chaos_campaign_seed = cfg.seed;
        run_opts.epoch_hook = [chaos, chaos_campaign_seed, attempt](std::size_t idx) {
            switch (tcppred::sim::plan_chaos(chaos, chaos_campaign_seed, attempt, idx)) {
                case tcppred::sim::chaos_action::kill:
                    std::raise(SIGKILL);
                    break;
                case tcppred::sim::chaos_action::hang:
                    // Wedge without exiting: heartbeats stop, the supervisor
                    // must notice and SIGKILL us.
                    for (double t = 0.0; t < chaos.hang_s; t += 0.1) {
                        ::usleep(100000);
                    }
                    break;
                case tcppred::sim::chaos_action::none:
                    break;
            }
        };
    }
    run_opts.cancelled = [] { return g_interrupted != 0; };
    std::signal(SIGINT, on_sigint);

    // --trace opens first so init_from_env() skips $REPRO_TRACE (the flag
    // overrides the environment, with no stray env-named file).
    if (!trace_file.empty()) {
        try {
            tcppred::obs::trace_writer::instance().open(trace_file);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    tcppred::obs::init_from_env();
    if (metrics_summary) tcppred::obs::set_metrics_enabled(true);
    // Runs on every exit path (success, SIGINT, runtime failure): the
    // summary covers whatever work completed, and close() surfaces drain
    // write errors that would otherwise vanish with the process.
    const auto finish_observability = [&]() -> int {
        if (metrics_summary) tcppred::obs::write_metrics_summary(std::cerr);
        if (!trace_file.empty()) {
            try {
                tcppred::obs::trace_writer::instance().close();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
        }
        return 0;
    };

    try {
        if (!convert_from.empty()) {
            record_reader reader(convert_from);
            const std::size_t n = reader.total();
            store_to_csv(reader, out);
            std::fprintf(stderr, "converted %zu epoch records from %s to %s\n", n,
                         convert_from.c_str(), out.c_str());
            return finish_observability();
        }

        if (merge_n > 0) {
            // Merge mode: read-only over the shard checkpoints (rerunnable);
            // the supervisor's auto-merge is the consuming variant.
            std::vector<std::filesystem::path> ckpts;
            for (int i = 0; i < merge_n; ++i) {
                ckpts.push_back(shard_checkpoint_path(out, shard_ref{i, merge_n}));
            }
            std::size_t merged = 0;
            if (store_mode) {
                merged = merge_shard_checkpoints_to_store(cfg, ckpts, out);
            } else {
                const dataset data = merge_shard_checkpoints(cfg, ckpts);
                save_csv(data, out);
                merged = data.records.size();
            }
            std::fprintf(stderr, "merged %d shard(s), %zu epoch records, into %s\n",
                         merge_n, merged, out.c_str());
            return finish_observability();
        }

        if (workers > 0) {
            supervisor_options sup;
            sup.cfg = cfg;
            sup.out = out;
            sup.workers = workers;
            sup.worker_jobs = worker_jobs;
            sup.hang_timeout_s = hang_timeout_s;
            sup.max_attempts = max_attempts;
            sup.cancelled = [] { return g_interrupted != 0; };
            if (store_mode) {
                // Workers still checkpoint their shards (that is the crash-
                // tolerance story); only the final merge streams into a
                // store instead of loading everything for save_csv.
                sup.merge = [](const campaign_config& mcfg,
                               const std::vector<std::filesystem::path>& ckpts,
                               const std::filesystem::path& dest) {
                    return merge_shard_checkpoints_to_store(mcfg, ckpts, dest);
                };
            }
            // Worker command line = ours minus supervision/observability
            // flags (each worker gets --shard/--jobs/--resume appended by
            // the supervisor; traces and metrics stay in this process).
            static const std::set<std::string> drop_with_value = {
                "--workers", "--worker-jobs", "--hang-timeout-s", "--max-attempts",
                "--jobs",    "--trace",       "--merge",          "--shard",
                "--format",  "--convert"};
            static const std::set<std::string> drop_flag = {"--metrics-summary",
                                                            "--resume"};
            static const std::set<std::string> with_value = {
                "--out",  "--paths",  "--traces", "--epochs",          "--seed",
                "--transfer-s", "--cross-model", "--faults", "--checkpoint-every"};
            sup.worker_argv.push_back(argv[0]);
            for (int i = 1; i < argc; ++i) {
                const std::string a = argv[i];
                if (drop_with_value.count(a) > 0) {
                    ++i;
                    continue;
                }
                if (drop_flag.count(a) > 0) continue;
                sup.worker_argv.push_back(a);
                if (with_value.count(a) > 0 && i + 1 < argc) {
                    sup.worker_argv.push_back(argv[++i]);
                }
            }
            std::fprintf(stderr,
                         "supervising %d worker(s) over %d paths x %d traces x %d "
                         "epochs (seed %llu%s)...\n",
                         workers, cfg.paths, cfg.traces_per_path, cfg.epochs_per_trace,
                         static_cast<unsigned long long>(cfg.seed),
                         chaos.enabled() ? (", chaos " + chaos.spec()).c_str() : "");
            const supervisor_result res = run_supervisor(sup);
            if (res.interrupted) {
                std::fprintf(stderr,
                             "interrupted; shard checkpoints are resumable — rerun "
                             "the same --workers command\n");
                finish_observability();
                return 130;
            }
            if (!res.complete) {
                std::fprintf(stderr, "error: %s\n", res.error.c_str());
                finish_observability();
                return 2;
            }
            std::fprintf(stderr,
                         "wrote %zu epoch records to %s (%d launch(es), %d "
                         "restart(s), %d hang(s) killed)\n",
                         res.epochs_merged, out.c_str(), res.workers_spawned,
                         res.worker_restarts, res.hangs_killed);
            return finish_observability();
        }

        std::fprintf(stderr, "running %d paths x %d traces x %d epochs (seed %llu%s%s%s)...\n",
                     cfg.paths, cfg.traces_per_path, cfg.epochs_per_trace,
                     static_cast<unsigned long long>(cfg.seed),
                     cfg.faults.enabled()
                         ? (", faults " + cfg.faults.spec()).c_str()
                         : "",
                     chaos.enabled() ? (", chaos " + chaos.spec()).c_str() : "",
                     shard ? (", shard " + std::to_string(shard->index) + "/" +
                              std::to_string(shard->count))
                                 .c_str()
                           : "");
        if (store_mode) {
            // Streamed sweep: epochs flow straight into the store's chunk
            // sink; nothing grid-sized is ever resident.
            streamed_campaign_options sopts;
            sopts.cancelled = [] { return g_interrupted != 0; };
            int last = -1;
            const tcppred::obs::stopwatch watch;
            const streamed_campaign_outcome outcome =
                run_campaign_streamed(cfg, out, sopts, [&](int done, int total) {
                    const int pct = done * 100 / std::max(1, total);
                    if (pct / 10 != last / 10) {
                        std::fprintf(stderr, "  %d%%\n", pct);
                        last = pct;
                    }
                });
            const double wall_s = watch.elapsed_s();
            if (!outcome.complete) {
                std::fprintf(stderr,
                             "interrupted after %d epoch(s); store runs are not "
                             "checkpointed — rerun from scratch (or use --workers)\n",
                             outcome.epochs_completed);
                finish_observability();
                return 130;
            }
            const std::size_t n = campaign_total_epochs(cfg);
            std::fprintf(stderr, "wrote %zu epoch records to %s\n", n, out.c_str());
            std::fprintf(stderr, "%zu epochs in %.2f s (%.1f epochs/s)\n", n, wall_s,
                         wall_s > 0 ? static_cast<double>(n) / wall_s : 0.0);
            return finish_observability();
        }
        // Worker heartbeat: one atomic write per completed epoch, from the
        // progress path on purpose — a wedged worker must stop heartbeating.
        const int total_epochs = cfg.paths * cfg.traces_per_path * cfg.epochs_per_trace;
        const int claimed =
            shard ? static_cast<int>(
                        shard_size(static_cast<std::size_t>(total_epochs), *shard))
                  : total_epochs;
        const std::filesystem::path hb_path =
            shard ? shard_heartbeat_path(out, *shard) : std::filesystem::path{};
        std::uint64_t hb_seq = 0;
        if (shard) {
            write_heartbeat(hb_path, shard_heartbeat{::getpid(), ++hb_seq, 0, claimed});
        }
        int last = -1;
        const tcppred::obs::stopwatch watch;
        const campaign_outcome outcome =
            run_campaign_resumable(cfg, run_opts, [&](int done, int) {
                if (shard) {
                    write_heartbeat(hb_path, shard_heartbeat{::getpid(), ++hb_seq,
                                                             done, claimed});
                }
                const int pct = done * 100 / std::max(1, claimed);
                if (pct / 10 != last / 10) {
                    std::fprintf(stderr, "  %d%%\n", pct);
                    last = pct;
                }
            });
        const double wall_s = watch.elapsed_s();
        if (outcome.epochs_resumed > 0) {
            std::fprintf(stderr, "resumed %d completed epoch(s) from %s\n",
                         outcome.epochs_resumed, run_opts.checkpoint.string().c_str());
        }
        if (!outcome.complete) {
            std::fprintf(stderr,
                         "interrupted after %d epoch(s)%s%s; rerun with --resume\n",
                         outcome.epochs_completed,
                         checkpointing ? "; progress saved to " : "",
                         checkpointing ? run_opts.checkpoint.string().c_str() : "");
            finish_observability();  // partial summary/trace is still useful
            return 130;
        }
        if (shard) {
            // A shard's output is its checkpoint; only the merge step (or
            // the supervisor) writes the CSV.
            std::fprintf(stderr, "shard %d/%d complete: %d epoch(s) in %s\n",
                         shard->index, shard->count, outcome.epochs_completed,
                         run_opts.checkpoint.string().c_str());
            return finish_observability();
        }
        save_csv(outcome.data, out);
        std::fprintf(stderr, "wrote %zu epoch records to %s\n",
                     outcome.data.records.size(), out.c_str());
        std::fprintf(stderr, "%zu epochs in %.2f s (%.1f epochs/s)\n",
                     outcome.data.records.size(), wall_s,
                     wall_s > 0
                         ? static_cast<double>(outcome.data.records.size()) / wall_s
                         : 0.0);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        finish_observability();
        return 2;
    }
    return finish_observability();
}
