// tcppred_campaign — run a measurement campaign from the command line and
// write the dataset CSV. The operational entry point for producing new
// datasets without writing C++.
//
//   tcppred_campaign --out data/my.csv [--paths N] [--traces N]
//                    [--epochs N] [--seed S] [--transfer-s T] [--second-set]
//                    [--jobs N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testbed/campaign.hpp"

using namespace tcppred::testbed;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --out FILE [options]\n"
                 "  --out FILE        output CSV (required)\n"
                 "  --paths N         number of paths        (default 35)\n"
                 "  --traces N        traces per path        (default 2)\n"
                 "  --epochs N        epochs per trace       (default 120)\n"
                 "  --seed S          campaign seed          (default 20040501)\n"
                 "  --transfer-s T    target transfer length (default 10)\n"
                 "  --second-set      use the campaign-2 catalogue & plan\n"
                 "  --jobs N          worker threads; 1 = serial\n"
                 "                    (default $REPRO_JOBS, else all cores)\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    campaign_config cfg;
    std::string out;
    int jobs = 0;  // applied after parsing so --second-set cannot reset it

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            out = next();
        } else if (arg == "--paths") {
            cfg.paths = std::atoi(next());
        } else if (arg == "--traces") {
            cfg.traces_per_path = std::atoi(next());
        } else if (arg == "--epochs") {
            cfg.epochs_per_trace = std::atoi(next());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--transfer-s") {
            cfg.epoch.transfer = tcppred::core::seconds{std::atof(next())};
        } else if (arg == "--second-set") {
            cfg = campaign2_config(campaign_scale::normal);
        } else if (arg == "--jobs") {
            jobs = std::atoi(next());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (out.empty() || cfg.paths <= 0 || cfg.traces_per_path <= 0 ||
        cfg.epochs_per_trace <= 0) {
        usage(argv[0]);
        return 2;
    }
    cfg.jobs = jobs;

    std::fprintf(stderr, "running %d paths x %d traces x %d epochs (seed %llu)...\n",
                 cfg.paths, cfg.traces_per_path, cfg.epochs_per_trace,
                 static_cast<unsigned long long>(cfg.seed));
    int last = -1;
    const auto t0 = std::chrono::steady_clock::now();
    const dataset data = run_campaign(cfg, [&](int done, int total) {
        const int pct = done * 100 / total;
        if (pct / 10 != last / 10) {
            std::fprintf(stderr, "  %d%%\n", pct);
            last = pct;
        }
    });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    save_csv(data, out);
    std::fprintf(stderr, "wrote %zu epoch records to %s\n", data.records.size(),
                 out.c_str());
    std::fprintf(stderr, "%zu epochs in %.2f s (%.1f epochs/s)\n", data.records.size(),
                 wall_s, wall_s > 0 ? static_cast<double>(data.records.size()) / wall_s
                                    : 0.0);
    return 0;
}
