#!/usr/bin/env bash
# CI gate for campaign crash-recovery: run a small faulty campaign, kill it
# mid-flight with SIGINT, resume from the checkpoint, and require the final
# CSV to be byte-identical to an uninterrupted run. This is the end-to-end
# proof that checkpoint + --resume preserve the determinism contract
# (DESIGN.md §10) through a real process death, not just an in-process
# cancellation flag.
#
# Usage: tools/ci_resume_check.sh path/to/tcppred_campaign
set -eu

CAMPAIGN=${1:?usage: ci_resume_check.sh path/to/tcppred_campaign}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Sized so the interrupted leg runs long enough for the signal to land
# mid-campaign on any CI machine, but stays well under a minute overall.
ARGS=(--paths 2 --traces 2 --epochs 60 --transfer-s 2 --seed 11
      --faults "pathload=0.2,abort=0.2,seed=5")

echo "== reference run (uninterrupted)"
"$CAMPAIGN" "${ARGS[@]}" --out "$WORK/reference.csv" --jobs 4 2>/dev/null

echo "== interrupted run"
"$CAMPAIGN" "${ARGS[@]}" --out "$WORK/resumed.csv" \
    --checkpoint-every 4 --jobs 2 2>/dev/null &
PID=$!
# Interrupt as soon as the first checkpoint has been flushed.
while [ ! -f "$WORK/resumed.csv.ckpt" ]; do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done
kill -INT "$PID" 2>/dev/null || true
RC=0
wait "$PID" || RC=$?
if [ "$RC" -eq 130 ]; then
    echo "   interrupted with exit 130, checkpoint on disk"
    [ -f "$WORK/resumed.csv.ckpt" ] || { echo "FAIL: SIGINT left no checkpoint"; exit 1; }
elif [ "$RC" -eq 0 ]; then
    # Extremely fast machine: the run beat the signal. The resume leg below
    # still re-runs from scratch, so the byte-identity check remains valid.
    echo "   note: campaign finished before SIGINT landed"
else
    echo "FAIL: interrupted campaign exited $RC (want 130)"
    exit 1
fi

echo "== resumed run (different job count)"
"$CAMPAIGN" "${ARGS[@]}" --out "$WORK/resumed.csv" --resume --jobs 3 2>/dev/null

cmp "$WORK/reference.csv" "$WORK/resumed.csv" || {
    echo "FAIL: resumed CSV differs from the uninterrupted run"
    exit 1
}
[ -f "$WORK/resumed.csv.ckpt" ] && {
    echo "FAIL: completed run left its checkpoint behind"
    exit 1
}
echo "ci_resume_check: resumed campaign is byte-identical to the uninterrupted run"
