#!/usr/bin/env bash
# Bench smoke gate: run every figure and ablation bench at tiny scale and
# fail on the first non-zero exit. The benches share the cached tiny
# campaigns, so after the first one pays the generation cost the rest load
# the CSV — the whole sweep stays CI-sized.
#
# Usage: tools/bench_smoke.sh [bench-dir]   (default: build/bench)
# Runs from the repository root so every bench sees the same data/ cache.
set -u

SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
BENCH_DIR="${1:-$SRC_DIR/build/bench}"

if [ ! -d "$BENCH_DIR" ]; then
    echo "bench_smoke.sh: bench directory not found: $BENCH_DIR" >&2
    exit 1
fi

cd "$SRC_DIR"
export REPRO_SCALE=tiny

ran=0
failed=0
for bench in "$BENCH_DIR"/fig* "$BENCH_DIR"/ablation_*; do
    [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    if "$bench" >/dev/null 2>"/tmp/bench_smoke_$name.err"; then
        echo "ok: $name"
    else
        rc=$?
        echo "FAIL: $name (exit $rc)"
        sed 's/^/    /' "/tmp/bench_smoke_$name.err"
        failed=$((failed + 1))
    fi
    ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
    echo "bench_smoke.sh: no fig*/ablation_* benches found in $BENCH_DIR" >&2
    exit 1
fi
if [ "$failed" -ne 0 ]; then
    echo "$failed of $ran benches failed"
    exit 1
fi
echo "all $ran benches passed at REPRO_SCALE=tiny"
