// tcppred_serve — the online prediction daemon (DESIGN.md §17): holds live
// per-path predictor state behind the line protocol of serve/protocol.hpp,
// on a Unix-domain or loopback TCP socket.
//
//   tcppred_serve --socket PATH | --port N [options]
//
// Prints "READY <socket|port>" on stdout once listening. SIGINT/SIGTERM is
// the documented stop: drain connections, write the final snapshot (when
// --snapshot is set), exit 0. A daemon restarted with --resume replays the
// snapshot through the live apply path and answers PREDICT requests
// bitwise-identically to the process that wrote it.
//
// Exit codes: 0 success (including signal-driven shutdown), 1 bad
// arguments, 2 runtime failure (malformed flag value, bad predictor spec,
// socket/snapshot errors).
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/checked_parse.hpp"
#include "core/predictor_registry.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "serve/path_table.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH | --port N [options]\n"
                 "  --socket PATH       listen on a Unix-domain socket\n"
                 "  --port N            listen on 127.0.0.1:N (0 = ephemeral;\n"
                 "                      the bound port is printed after READY)\n"
                 "  --specs LIST        comma-separated predictor specs served\n"
                 "                      per path (default fb:pftk)\n"
                 "  --shards N          path-table mutex stripes (default 8)\n"
                 "  --workers N         connection workers       (default 4)\n"
                 "  --max-inflight N    admission bound          (default 64)\n"
                 "  --snapshot FILE     snapshot file (written on SIGINT and on\n"
                 "                      SNAPSHOT requests)\n"
                 "  --snapshot-every N  also snapshot every N observations\n"
                 "                      (default off)\n"
                 "  --resume            replay --snapshot FILE at startup when\n"
                 "                      it exists\n"
                 "  --metrics-summary   print counters to stderr on exit\n",
                 argv0);
}

// Lock-free atomics are async-signal-safe; the handler writes the same flag
// the server's accept loop and connection workers poll every tick.
std::atomic<bool> g_stop{false};
void on_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

std::vector<std::string> split_specs(const std::string& list) {
    std::vector<std::string> specs;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t pos = list.find(',', start);
        const std::string item = pos == std::string::npos
                                     ? list.substr(start)
                                     : list.substr(start, pos - start);
        if (!item.empty()) specs.push_back(item);
        if (pos == std::string::npos) break;
        start = pos + 1;
    }
    return specs;
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    int port = -1;
    std::string specs_list = "fb:pftk";
    std::size_t shards = 8;
    tcppred::serve::server_config scfg;
    bool resume = false;
    bool metrics_summary = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                    std::exit(1);
                }
                return argv[++i];
            };
            const auto checked_int = [&](std::int64_t min, std::int64_t max) {
                return tcppred::core::parse_checked_int(arg, next(), min, max);
            };
            if (arg == "--socket") {
                socket_path = next();
            } else if (arg == "--port") {
                port = static_cast<int>(checked_int(0, 65535));
            } else if (arg == "--specs") {
                specs_list = next();
            } else if (arg == "--shards") {
                shards = static_cast<std::size_t>(checked_int(1, 4096));
            } else if (arg == "--workers") {
                scfg.workers = static_cast<std::size_t>(checked_int(1, 4096));
            } else if (arg == "--max-inflight") {
                scfg.max_inflight = static_cast<std::size_t>(checked_int(1, 65536));
            } else if (arg == "--snapshot") {
                scfg.snapshot_file = next();
            } else if (arg == "--snapshot-every") {
                scfg.snapshot_every =
                    static_cast<std::uint64_t>(checked_int(1, 1000000000));
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--metrics-summary") {
                metrics_summary = true;
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
                usage(argv[0]);
                return 1;
            }
        }
    } catch (const tcppred::core::parse_error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
        return 2;
    }

    if (socket_path.empty() && port < 0) {
        std::fprintf(stderr, "need a listen address: --socket PATH or --port N\n");
        usage(argv[0]);
        return 1;
    }
    if (resume && scfg.snapshot_file.empty()) {
        std::fprintf(stderr, "--resume needs --snapshot FILE\n");
        return 1;
    }
    if (scfg.snapshot_every > 0 && scfg.snapshot_file.empty()) {
        std::fprintf(stderr, "--snapshot-every needs --snapshot FILE\n");
        return 1;
    }
    const std::vector<std::string> specs = split_specs(specs_list);
    if (specs.empty()) {
        std::fprintf(stderr, "--specs must name at least one predictor spec\n");
        return 1;
    }

    tcppred::obs::init_from_env();
    if (metrics_summary) tcppred::obs::set_metrics_enabled(true);

    int rc = 0;
    try {
        tcppred::serve::path_table table(specs, {}, shards);
        if (resume && std::filesystem::exists(scfg.snapshot_file)) {
            const tcppred::serve::snapshot_stats st =
                tcppred::serve::load_snapshot(table, scfg.snapshot_file);
            std::fprintf(stderr, "resumed %zu path(s), %llu observation(s) from %s\n",
                         st.paths, static_cast<unsigned long long>(st.events),
                         scfg.snapshot_file.string().c_str());
        }

        scfg.unix_socket = socket_path;
        scfg.tcp_port = port;
        tcppred::serve::server srv(table, scfg);
        std::signal(SIGINT, on_stop_signal);
        std::signal(SIGTERM, on_stop_signal);
        std::signal(SIGPIPE, SIG_IGN);  // client hangups surface as write errors

        if (!socket_path.empty()) {
            std::printf("READY %s\n", socket_path.c_str());
        } else {
            std::printf("READY %d\n", srv.port());
        }
        std::fflush(stdout);

        srv.run(g_stop);

        if (!scfg.snapshot_file.empty()) {
            tcppred::serve::write_snapshot(table, scfg.snapshot_file);
            std::fprintf(stderr, "final snapshot: %s\n",
                         scfg.snapshot_file.string().c_str());
        }
        std::fprintf(stderr, "served %llu observation(s) over %zu path(s)\n",
                     static_cast<unsigned long long>(table.observations()),
                     table.path_count());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        rc = 2;
    }
    if (metrics_summary) tcppred::obs::write_metrics_summary(std::cerr);
    return rc;
}
