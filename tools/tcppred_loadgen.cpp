// tcppred_loadgen — replay a campaign record store against a running
// tcppred_serve daemon, and/or compute the offline reference with
// analysis::evaluation_engine — the equivalence harness and throughput
// bench for the serve layer (DESIGN.md §17).
//
// Each (path, trace) series of the store is replayed as daemon path
// "p<path>.t<trace>" in sorted trace order (the order dataset::traces()
// walks): per epoch one OBSERVE, then one PREDICT per spec. Emitted
// prediction lines
//
//   pred,<spec>,<path>,<trace>,<epoch>,<hexfloat forecast>
//
// apply the engine's scoring filter (usable forecast, real positive actual,
// trace at least min_trace_length epochs), so `--out` from a live replay is
// byte-identical to `--offline` from the engine over the same records —
// cmp(1) is the whole equivalence check. --start/--count replay a trace
// range, so a SIGINT-snapshot-restart split replay concatenates to the
// uninterrupted output.
//
// Exit codes: 0 success, 1 bad arguments, 2 runtime failure (daemon
// unreachable, protocol error, malformed store, bad spec).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/evaluation.hpp"
#include "core/checked_parse.hpp"
#include "core/predictor_registry.hpp"
#include "obs/stopwatch.hpp"
#include "serve/protocol.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/dataset.hpp"
#include "testbed/record_store.hpp"

using namespace tcppred;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --from-store FILE [options]\n"
                 "  --from-store FILE  campaign record store to replay (required)\n"
                 "  --socket PATH      daemon Unix socket to replay against\n"
                 "  --port N           daemon TCP port on 127.0.0.1\n"
                 "  --specs LIST       comma-separated predictor specs; must match\n"
                 "                     the daemon's --specs (default fb:pftk)\n"
                 "  --out FILE         write live prediction lines here\n"
                 "  --offline FILE     write the offline engine's prediction lines\n"
                 "                     (no daemon needed when --socket/--port are\n"
                 "                     absent)\n"
                 "  --bench FILE       write BENCH_serve.json-style throughput and\n"
                 "                     latency stats for the live replay\n"
                 "  --start N          first trace (sorted order) to replay\n"
                 "  --count N          number of traces to replay (default: rest)\n",
                 argv0);
}

/// A blocking line-oriented client connection to the daemon.
class client {
public:
    client(const std::string& unix_path, int port) {
        if (!unix_path.empty()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (unix_path.size() >= sizeof(addr.sun_path)) {
                throw std::runtime_error("socket path too long: " + unix_path);
            }
            std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
            fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd_ < 0 || ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                                     sizeof(addr)) != 0) {
                throw std::runtime_error("cannot connect to " + unix_path + ": " +
                                         std::strerror(errno));
            }
        } else {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(static_cast<std::uint16_t>(port));
            if (fd_ < 0 || ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                                     sizeof(addr)) != 0) {
                throw std::runtime_error("cannot connect to 127.0.0.1:" +
                                         std::to_string(port) + ": " +
                                         std::strerror(errno));
            }
        }
    }
    ~client() {
        if (fd_ >= 0) ::close(fd_);
    }
    client(const client&) = delete;
    client& operator=(const client&) = delete;

    /// Send one request line, return the one response line (no newline).
    std::string roundtrip(const std::string& line) {
        std::string msg = line;
        msg += '\n';
        const char* p = msg.data();
        std::size_t left = msg.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            if (n < 0) {
                if (errno == EINTR) continue;
                throw std::runtime_error(std::string("daemon write failed: ") +
                                         std::strerror(errno));
            }
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        while (true) {
            const std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string resp = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return resp;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                throw std::runtime_error(std::string("daemon read failed: ") +
                                         std::strerror(errno));
            }
            if (n == 0) throw std::runtime_error("daemon closed the connection");
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    int fd_{-1};
    std::string buf_;
};

std::vector<std::string> split_specs(const std::string& list) {
    std::vector<std::string> specs;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t pos = list.find(',', start);
        const std::string item = pos == std::string::npos
                                     ? list.substr(start)
                                     : list.substr(start, pos - start);
        if (!item.empty()) specs.push_back(item);
        if (pos == std::string::npos) break;
        start = pos + 1;
    }
    return specs;
}

std::vector<std::string> split_ws(const std::string& line) {
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ') ++i;
        if (i > start) toks.push_back(line.substr(start, i - start));
    }
    return toks;
}

/// One emitted prediction line; the shared format of --out and --offline.
void emit_pred(std::ostream& out, const std::string& spec_name, int path_id,
               int trace_id, int epoch_index, const std::string& hex_value) {
    out << "pred," << spec_name << ',' << path_id << ',' << trace_id << ','
        << epoch_index << ',' << hex_value << '\n';
}

double percentile(std::vector<double>& sorted_samples, double q) {
    if (sorted_samples.empty()) return 0.0;
    const auto i = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted_samples.size())));
    return sorted_samples[std::min(i == 0 ? 0 : i - 1, sorted_samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
    std::string store_file;
    std::string socket_path;
    int port = -1;
    std::string specs_list = "fb:pftk";
    std::string out_file;
    std::string offline_file;
    std::string bench_file;
    std::size_t start_trace = 0;
    std::int64_t count_traces = -1;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto next = [&]() -> const char* {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                    std::exit(1);
                }
                return argv[++i];
            };
            const auto checked_int = [&](std::int64_t min, std::int64_t max) {
                return core::parse_checked_int(arg, next(), min, max);
            };
            if (arg == "--from-store") {
                store_file = next();
            } else if (arg == "--socket") {
                socket_path = next();
            } else if (arg == "--port") {
                port = static_cast<int>(checked_int(1, 65535));
            } else if (arg == "--specs") {
                specs_list = next();
            } else if (arg == "--out") {
                out_file = next();
            } else if (arg == "--offline") {
                offline_file = next();
            } else if (arg == "--bench") {
                bench_file = next();
            } else if (arg == "--start") {
                start_trace = static_cast<std::size_t>(checked_int(0, 1000000000));
            } else if (arg == "--count") {
                count_traces = checked_int(0, 1000000000);
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
                usage(argv[0]);
                return 1;
            }
        }
    } catch (const core::parse_error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
        return 2;
    }

    if (store_file.empty()) {
        usage(argv[0]);
        return 1;
    }
    const bool live = !socket_path.empty() || port > 0;
    if (!live && offline_file.empty()) {
        std::fprintf(stderr,
                     "nothing to do: need --socket/--port (live replay) and/or "
                     "--offline FILE\n");
        return 1;
    }
    const std::vector<std::string> specs = split_specs(specs_list);
    if (specs.empty()) {
        std::fprintf(stderr, "--specs must name at least one predictor spec\n");
        return 1;
    }

    try {
        // Canonical spec names and scoring thresholds, before any I/O.
        std::vector<std::string> names;
        std::vector<std::size_t> min_len;
        for (const std::string& s : specs) {
            const auto p = core::make_predictor(s);
            names.push_back(p->name());
            min_len.push_back(p->min_trace_length());
        }

        // Load the store into memory grouped per (path, trace); the
        // replay's stores are campaign-sized test fixtures, not the
        // past-RAM datasets the streamed evaluation path serves.
        testbed::dataset data;
        {
            testbed::record_reader reader(store_file);
            testbed::epoch_record rec;
            while (reader.next(rec)) data.records.push_back(rec);
        }
        const auto traces = data.traces();
        std::vector<std::pair<int, int>> keys;
        keys.reserve(traces.size());
        for (const auto& [key, recs] : traces) keys.push_back(key);
        const std::size_t end_trace =
            count_traces < 0
                ? keys.size()
                : std::min(keys.size(),
                           start_trace + static_cast<std::size_t>(count_traces));
        if (start_trace > keys.size()) {
            std::fprintf(stderr, "--start %zu is past the last trace (%zu)\n",
                         start_trace, keys.size());
            return 1;
        }

        // --- offline reference: the engine over the full store ------------
        if (!offline_file.empty()) {
            const analysis::evaluation_engine engine;
            const std::vector<analysis::predictor_result> results =
                engine.run(data, specs);
            // (path, trace) -> per-spec scored epochs, for sorted emission.
            std::vector<std::map<std::pair<int, int>, const analysis::trace_result*>>
                by_trace(specs.size());
            for (std::size_t j = 0; j < results.size(); ++j) {
                for (const analysis::trace_result& tr : results[j].traces) {
                    by_trace[j].emplace(std::make_pair(tr.path_id, tr.trace_id), &tr);
                }
            }
            std::ofstream out(offline_file);
            if (!out) throw std::runtime_error("cannot write " + offline_file);
            for (const auto& key : keys) {
                const std::size_t epochs = traces.at(key).size();
                // Per-spec cursor into the trace's scored epochs (ascending
                // walk index), merged epoch-major / spec-minor.
                std::vector<std::size_t> cursor(specs.size(), 0);
                for (std::size_t i = 0; i < epochs; ++i) {
                    for (std::size_t j = 0; j < specs.size(); ++j) {
                        const auto it = by_trace[j].find(key);
                        if (it == by_trace[j].end()) continue;
                        const auto& scored = it->second->epochs;
                        if (cursor[j] < scored.size() && scored[cursor[j]].index == i) {
                            const analysis::epoch_score& sc = scored[cursor[j]];
                            emit_pred(out, names[j], key.first, key.second,
                                      sc.rec->epoch_index,
                                      testbed::hexd(sc.predicted_bps));
                            ++cursor[j];
                        }
                    }
                }
            }
            std::fprintf(stderr, "offline reference written to %s\n",
                         offline_file.c_str());
        }

        // --- live replay ---------------------------------------------------
        if (live) {
            client conn(socket_path, port);
            std::unique_ptr<std::ofstream> out;
            if (!out_file.empty()) {
                out = std::make_unique<std::ofstream>(out_file);
                if (!*out) throw std::runtime_error("cannot write " + out_file);
            }
            std::vector<double> predict_latencies_s;
            std::uint64_t observations = 0;
            std::uint64_t predictions = 0;
            const obs::stopwatch wall;
            for (std::size_t t = start_trace; t < end_trace; ++t) {
                const auto& key = keys[t];
                const auto& recs = traces.at(key);
                const std::string path_key = "p" + std::to_string(key.first) + ".t" +
                                             std::to_string(key.second);
                for (const testbed::epoch_record* rec : recs) {
                    serve::observation ev;
                    ev.epoch = rec->epoch_index;
                    ev.avail_bw_bps = rec->m.avail_bw_bps;
                    ev.phat = rec->m.phat;
                    ev.phat_events = rec->m.phat_events;
                    ev.that_s = rec->m.that_s;
                    ev.r_large_bps = rec->m.r_large_bps;
                    ev.fault_flags = rec->m.fault_flags;
                    const std::string resp =
                        conn.roundtrip(serve::format_observe(path_key, ev));
                    if (resp != "OK") {
                        throw std::runtime_error("OBSERVE rejected: " + resp);
                    }
                    ++observations;

                    // The engine's per-epoch actual (default options view).
                    const double actual =
                        analysis::view_of_record(*rec).actual_bps;
                    for (std::size_t j = 0; j < specs.size(); ++j) {
                        const obs::stopwatch lat;
                        const std::string presp = conn.roundtrip(
                            "PREDICT " + path_key + " " + specs[j]);
                        predict_latencies_s.push_back(lat.elapsed_s());
                        ++predictions;
                        const std::vector<std::string> f = split_ws(presp);
                        if (f.size() != 6 || f[0] != "OK") {
                            throw std::runtime_error("PREDICT failed: " + presp);
                        }
                        // The engine's scoring filter (score_walk skip rule
                        // + short-trace omission); f[2] is the status.
                        const bool usable = f[2] == "ok";
                        if (out && recs.size() >= min_len[j] && usable &&
                            !std::isnan(actual) && actual > 0.0) {
                            emit_pred(*out, names[j], key.first, key.second,
                                      rec->epoch_index, f[1]);
                        }
                    }
                }
            }
            const double wall_s = wall.elapsed_s();
            std::fprintf(stderr,
                         "replayed %llu observation(s), %llu prediction(s) in %.2f s "
                         "(%.1f predictions/s)\n",
                         static_cast<unsigned long long>(observations),
                         static_cast<unsigned long long>(predictions), wall_s,
                         wall_s > 0 ? static_cast<double>(predictions) / wall_s : 0.0);

            if (!bench_file.empty()) {
                std::sort(predict_latencies_s.begin(), predict_latencies_s.end());
                const double p50_us = percentile(predict_latencies_s, 0.50) * 1e6;
                const double p99_us = percentile(predict_latencies_s, 0.99) * 1e6;
                std::ofstream bj(bench_file);
                if (!bj) throw std::runtime_error("cannot write " + bench_file);
                bj << "{\n"
                   << "  \"schema\": \"tcppred-bench-serve-v1\",\n"
                   << "  \"specs\": [";
                for (std::size_t j = 0; j < names.size(); ++j) {
                    bj << (j ? ", " : "") << '"' << names[j] << '"';
                }
                bj << "],\n"
                   << "  \"observations\": " << observations << ",\n"
                   << "  \"predictions\": " << predictions << ",\n"
                   << "  \"wall_s\": " << wall_s << ",\n"
                   << "  \"predictions_per_s\": "
                   << (wall_s > 0 ? static_cast<double>(predictions) / wall_s : 0.0)
                   << ",\n"
                   << "  \"predict_p50_us\": " << p50_us << ",\n"
                   << "  \"predict_p99_us\": " << p99_us << "\n"
                   << "}\n";
                std::fprintf(stderr, "bench stats written to %s\n", bench_file.c_str());
            }
        }
    } catch (const core::predictor_spec_error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return 0;
}
