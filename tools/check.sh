#!/usr/bin/env sh
# One-shot local gate: configure + build (warnings are errors), the repo
# linter (tcppred_lint), clang-tidy (when installed), and the full test
# suite at tiny scale. This mirrors what CI enforces; run it before pushing.
#
# Usage: tools/check.sh [build-dir]   (default: build-check)
set -eu

BUILD_DIR="${1:-build-check}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

# compile_commands.json export is unconditional (top-level CMakeLists), so
# both the tidy and lint targets below see accurate per-TU flags.
cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
    -DCMAKE_BUILD_TYPE=Release \
    -DREPRO_CHECKS=ON
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
cmake --build "$BUILD_DIR" --target lint
cmake --build "$BUILD_DIR" --target tidy
REPRO_SCALE=tiny ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"
"$SRC_DIR/tools/ci_resume_check.sh" "$BUILD_DIR/tools/tcppred_campaign"
"$SRC_DIR/tools/ci_chaos_check.sh" "$BUILD_DIR/tools/tcppred_campaign"
"$SRC_DIR/tools/ci_memcap_check.sh" \
    "$BUILD_DIR/tools/tcppred_campaign" "$BUILD_DIR/tools/tcppred_analyze"
"$SRC_DIR/tools/ci_serve_check.sh" "$BUILD_DIR/tools/tcppred_campaign" \
    "$BUILD_DIR/tools/tcppred_serve" "$BUILD_DIR/tools/tcppred_loadgen"
"$SRC_DIR/tools/bench_smoke.sh" "$BUILD_DIR/bench"
"$SRC_DIR/tools/trace_smoke.sh" \
    "$BUILD_DIR/tools/tcppred_campaign" "$BUILD_DIR/tools/tcppred_analyze"

echo "check.sh: all gates passed"
