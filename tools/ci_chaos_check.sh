#!/usr/bin/env bash
# CI gate for multi-process campaign supervision (DESIGN.md §15): run
# sharded campaigns under seeded process chaos — workers SIGKILL and wedge
# themselves on a $REPRO_CHAOS schedule — and require every merged CSV to be
# byte-identical to a chaos-free serial run. Also interrupts a supervised
# run with SIGINT (expect exit 130 + resumable shard checkpoints) and
# resumes it to the same bytes. This is the end-to-end proof that crash
# detection, hang detection, retry/backoff and the shard merge preserve the
# determinism contract through real process deaths.
#
# Usage: tools/ci_chaos_check.sh path/to/tcppred_campaign
set -eu

CAMPAIGN=${1:?usage: ci_chaos_check.sh path/to/tcppred_campaign}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Campaign set 1 grid, sized to restart workers a handful of times per run
# while keeping the whole gate well under a minute.
ARGS1=(--paths 3 --traces 1 --epochs 8 --transfer-s 1.5 --seed 11)

echo "== serial golden (campaign set 1, no chaos)"
"$CAMPAIGN" "${ARGS1[@]}" --out "$WORK/golden1.csv" --jobs 1 2>/dev/null

for W in 2 3 4; do
    echo "== supervised, $W worker(s), chaos kills"
    REPRO_CHAOS="kill=0.15,seed=3" \
        "$CAMPAIGN" "${ARGS1[@]}" --out "$WORK/sup$W.csv" --workers "$W" \
        2>"$WORK/sup$W.log"
    cmp "$WORK/golden1.csv" "$WORK/sup$W.csv" || {
        echo "FAIL: $W-worker chaos run differs from the serial golden"
        exit 1
    }
done
grep -q "restart" "$WORK/sup3.log" || {
    echo "FAIL: supervisor log reports no restarts under kill chaos"
    exit 1
}

echo "== supervised, 3 workers, chaos kills + hangs (1 s heartbeat timeout)"
REPRO_CHAOS="kill=0.1,hang=0.08,seed=4" \
    "$CAMPAIGN" "${ARGS1[@]}" --out "$WORK/hang.csv" --workers 3 \
    --hang-timeout-s 1 2>"$WORK/hang.log"
cmp "$WORK/golden1.csv" "$WORK/hang.csv" || {
    echo "FAIL: kill+hang chaos run differs from the serial golden"
    exit 1
}

echo "== serial golden (campaign set 2, no chaos)"
ARGS2=(--second-set --paths 2 --traces 1 --epochs 6 --seed 7)
"$CAMPAIGN" "${ARGS2[@]}" --out "$WORK/golden2.csv" --jobs 1 2>/dev/null

echo "== supervised, 2 workers, chaos kills, second set"
REPRO_CHAOS="kill=0.15,seed=5" \
    "$CAMPAIGN" "${ARGS2[@]}" --out "$WORK/sup2nd.csv" --workers 2 \
    2>"$WORK/sup2nd.log"
cmp "$WORK/golden2.csv" "$WORK/sup2nd.csv" || {
    echo "FAIL: second-set chaos run differs from the serial golden"
    exit 1
}

echo "== SIGINT a supervised chaos run, then resume"
INT_ARGS=(--paths 4 --traces 1 --epochs 30 --transfer-s 2 --seed 11)
"$CAMPAIGN" "${INT_ARGS[@]}" --out "$WORK/intref.csv" --jobs 1 2>/dev/null
REPRO_CHAOS="kill=0.1,seed=6" \
    "$CAMPAIGN" "${INT_ARGS[@]}" --out "$WORK/int.csv" --workers 3 \
    2>"$WORK/int.log" &
PID=$!
# Interrupt once at least one shard has flushed a checkpoint.
while ! ls "$WORK"/int.csv.shard-*.ckpt >/dev/null 2>&1; do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done
kill -INT "$PID" 2>/dev/null || true
RC=0
wait "$PID" || RC=$?
if [ "$RC" -eq 130 ]; then
    echo "   interrupted with exit 130"
    ls "$WORK"/int.csv.shard-*.ckpt >/dev/null 2>&1 || {
        echo "FAIL: SIGINT left no resumable shard checkpoints"
        exit 1
    }
elif [ "$RC" -eq 0 ]; then
    # Extremely fast machine: the run beat the signal; the resume leg below
    # still validates byte identity.
    echo "   note: supervised run finished before SIGINT landed"
else
    echo "FAIL: interrupted supervisor exited $RC (want 130)"
    exit 1
fi
REPRO_CHAOS="kill=0.1,seed=6" \
    "$CAMPAIGN" "${INT_ARGS[@]}" --out "$WORK/int.csv" --workers 3 \
    2>>"$WORK/int.log"
cmp "$WORK/intref.csv" "$WORK/int.csv" || {
    echo "FAIL: resumed supervised run differs from the serial reference"
    exit 1
}
ls "$WORK"/int.csv.shard-*.ckpt >/dev/null 2>&1 && {
    echo "FAIL: completed supervised run left shard checkpoints behind"
    exit 1
}

echo "ci_chaos_check: all supervised chaos runs byte-identical to serial goldens"
