#!/usr/bin/env bash
# CI gate for the online prediction daemon (DESIGN.md §17): generate a small
# faulted campaign store, compute the offline engine reference with
# tcppred_loadgen --offline, then
#
#   1. replay the store against a live tcppred_serve daemon and require the
#      PREDICT stream to be byte-identical to the offline reference, and
#   2. replay the first half of the traces, stop the daemon with SIGINT (it
#      writes its snapshot and exits 0), restart it with --resume, replay
#      the remaining traces, and require the two live outputs concatenated
#      to be byte-identical to the same reference.
#
# This is the end-to-end proof that the daemon's observe/predict pipeline
# and its snapshot/restore machinery preserve the engine-equivalence
# contract through a real process death.
#
# Usage: tools/ci_serve_check.sh path/to/tcppred_campaign \
#            path/to/tcppred_serve path/to/tcppred_loadgen
set -eu

CAMPAIGN=${1:?usage: ci_serve_check.sh campaign serve loadgen}
SERVE=${2:?usage: ci_serve_check.sh campaign serve loadgen}
LOADGEN=${3:?usage: ci_serve_check.sh campaign serve loadgen}
WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SPECS="fb:pftk,10-MA"
SOCK="$WORK/serve.sock"
SNAP="$WORK/serve.snapshot"

start_daemon() {  # extra flags...
    "$SERVE" --socket "$SOCK" --specs "$SPECS" --snapshot "$SNAP" "$@" \
        >"$WORK/ready.out" 2>>"$WORK/daemon.err" &
    SERVE_PID=$!
    for _ in $(seq 100); do
        [ -S "$SOCK" ] && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || break
        sleep 0.05
    done
    echo "FAIL: daemon did not come up"
    cat "$WORK/daemon.err"
    exit 1
}

stop_daemon() {
    kill -INT "$SERVE_PID"
    RC=0
    wait "$SERVE_PID" || RC=$?
    SERVE_PID=
    [ "$RC" -eq 0 ] || { echo "FAIL: daemon exited $RC on SIGINT (want 0)"; exit 1; }
}

echo "== tiny faulted campaign -> record store"
"$CAMPAIGN" --paths 3 --traces 2 --epochs 24 --transfer-s 1.5 --seed 17 \
    --faults "pathload=0.2,ping-timeout=0.1,seed=5" \
    --out "$WORK/tiny.store" --format store --jobs 2 2>/dev/null

echo "== offline engine reference"
"$LOADGEN" --from-store "$WORK/tiny.store" --specs "$SPECS" \
    --offline "$WORK/ref.txt" 2>/dev/null
[ -s "$WORK/ref.txt" ] || { echo "FAIL: empty offline reference"; exit 1; }

echo "== full live replay vs offline reference"
start_daemon
"$LOADGEN" --from-store "$WORK/tiny.store" --specs "$SPECS" --socket "$SOCK" \
    --out "$WORK/live.txt" --bench "$WORK/BENCH_serve.json" 2>/dev/null
stop_daemon
cmp "$WORK/ref.txt" "$WORK/live.txt" || {
    echo "FAIL: live PREDICT stream differs from the offline engine"
    exit 1
}
grep -q '"schema": "tcppred-bench-serve-v1"' "$WORK/BENCH_serve.json" || {
    echo "FAIL: loadgen bench stats missing or mis-schema'd"
    exit 1
}

echo "== split replay across SIGINT-snapshot-restart"
rm -f "$SNAP"
start_daemon
"$LOADGEN" --from-store "$WORK/tiny.store" --specs "$SPECS" --socket "$SOCK" \
    --out "$WORK/live_a.txt" --count 3 2>/dev/null
stop_daemon
[ -f "$SNAP" ] || { echo "FAIL: SIGINT left no snapshot"; exit 1; }
start_daemon --resume
grep -q "resumed" "$WORK/daemon.err" || {
    echo "FAIL: restarted daemon did not report a resume"
    exit 1
}
"$LOADGEN" --from-store "$WORK/tiny.store" --specs "$SPECS" --socket "$SOCK" \
    --out "$WORK/live_b.txt" --start 3 2>/dev/null
stop_daemon
cat "$WORK/live_a.txt" "$WORK/live_b.txt" >"$WORK/live_split.txt"
cmp "$WORK/ref.txt" "$WORK/live_split.txt" || {
    echo "FAIL: split replay across a restart differs from the offline engine"
    exit 1
}

echo "ci_serve_check: live daemon is byte-identical to the offline engine," \
     "including across a SIGINT-snapshot-restart"
