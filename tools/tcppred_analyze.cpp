// tcppred_analyze — summarize a campaign dataset CSV: FB accuracy, HB
// accuracy per predictor, and per-path predictability classes. The
// command-line counterpart of the per-figure benches for ad-hoc datasets.
// Every predictor is built from its registry spec (core::make_predictor)
// and all of them are evaluated in ONE streaming pass over the dataset
// (analysis::evaluation_engine).
//
//   tcppred_analyze DATASET.csv [--predictors SPEC,SPEC,...]
//
// Exit codes: 0 success, 1 bad arguments, 2 runtime failure (unreadable or
// malformed dataset, unknown predictor spec).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s DATASET.csv [--predictors SPEC,SPEC,...]\n"
                 "  default predictors: 10-MA,10-MA-LSO,0.8-HW,0.8-HW-LSO,NWS\n"
                 "  spec grammar: fb[:pftk|:pftk-full|:sqrt|:minwa], <n>-MA[-LSO],\n"
                 "                <a>-EWMA[-LSO], <a>-HW[-LSO], <p>-AR[-LSO], NWS,\n"
                 "                hybrid:<hb-spec>[:<k>]   (see README \"Predictor specs\")\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        usage(argv[0]);
        return 0;
    }
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }

    std::vector<std::string> specs{"10-MA", "10-MA-LSO", "0.8-HW", "0.8-HW-LSO", "NWS"};
    for (int i = 2; i < argc; i += 2) {
        if (std::strcmp(argv[i], "--predictors") == 0 && i + 1 < argc) {
            specs.clear();
            std::stringstream ss(argv[i + 1]);
            std::string item;
            while (std::getline(ss, item, ',')) specs.push_back(item);
        } else {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", argv[i]);
            usage(argv[0]);
            return 1;
        }
    }

    try {
        const testbed::dataset data = testbed::load_csv(argv[1]);
        std::size_t faulty_epochs = 0;
        for (const auto& r : data.records) {
            faulty_epochs += r.m.fault_flags != testbed::fault_none;
        }
        std::printf("dataset: %zu epochs, %zu paths, %zu traces", data.records.size(),
                    data.paths.size(), data.traces().size());
        if (faulty_epochs > 0) {
            std::printf(" (%zu epochs carry measurement faults, %.1f%%)",
                        faulty_epochs,
                        100.0 * static_cast<double>(faulty_epochs) /
                            static_cast<double>(data.records.size()));
        }
        std::printf("\n\n");

        // One engine pass evaluates the FB baseline, every requested HB
        // spec, and the HW-LSO classifier input together.
        std::vector<std::string> all_specs{"fb:pftk"};
        for (const char* extra : {"0.8-HW-LSO"}) {
            if (std::find(specs.begin(), specs.end(), extra) == specs.end()) {
                all_specs.emplace_back(extra);
            }
        }
        all_specs.insert(all_specs.end(), specs.begin(), specs.end());
        const auto results = analysis::evaluation_engine{}.run(data, all_specs);
        const auto result_of = [&](const std::string& spec) -> const auto& {
            for (std::size_t i = 0; i < all_specs.size(); ++i) {
                if (all_specs[i] == spec) return results[i];
            }
            throw std::logic_error("spec not evaluated: " + spec);
        };

        // ---- FB summary
        const auto& fb = result_of("fb:pftk");
        const auto errors = fb.epoch_errors();
        if (errors.empty()) {
            std::printf("formula-based (Eq. 3): no scorable epochs\n");
        } else {
            std::size_t over = 0, over2 = 0, under2 = 0;
            for (const double e : errors) {
                over += e > 0;
                over2 += e >= 1;
                under2 += e <= -1;
            }
            std::printf("formula-based (Eq. 3) over %zu epochs:\n", errors.size());
            std::printf("  median E %+.2f | overestimates %zu%% | off by >2x: over %zu%%, "
                        "under %zu%%\n",
                        analysis::median(errors), over * 100 / errors.size(),
                        over2 * 100 / errors.size(), under2 * 100 / errors.size());
            if (faulty_epochs > 0) {
                // Fault-conditioned accuracy: how much measurement failures
                // (and the stale-fallback inputs they force) cost.
                const auto cond = analysis::rmsre_conditioned(fb);
                std::printf("  RMSRE by measurement status: clean %.3f (%zu epochs)",
                            cond.rmsre_clean, cond.n_clean);
                if (cond.n_faulty > 0) {
                    std::printf(" | faulty %.3f (%zu)", cond.rmsre_faulty,
                                cond.n_faulty);
                }
                if (cond.n_stale > 0) {
                    std::printf(" | stale-input %.3f (%zu)", cond.rmsre_stale,
                                cond.n_stale);
                }
                std::printf("\n");
            }
        }
        std::printf("\n");

        // ---- HB summary per predictor
        std::printf("history-based, per-trace RMSRE:\n");
        std::printf("  %-14s %8s %8s %10s\n", "predictor", "median", "p90", "P(<0.4)");
        for (const auto& spec : specs) {
            const auto rmsres = result_of(spec).trace_rmsres();
            const analysis::ecdf cdf{std::vector<double>(rmsres)};
            std::printf("  %-14s %8.3f %8.3f %9.0f%%\n", spec.c_str(),
                        analysis::median(rmsres), analysis::quantile(rmsres, 0.9),
                        100.0 * cdf.at(0.4));
        }

        // ---- per-path classes (HW-LSO)
        const auto& hw = result_of("0.8-HW-LSO");
        std::printf("\nper-path predictability (0.8-HW-LSO mean trace RMSRE):\n");
        std::map<int, std::vector<double>> per_path;
        for (const auto& t : hw.traces) per_path[t.path_id].push_back(t.rmsre);
        for (const auto& [path, rs] : per_path) {
            const double mean_err = analysis::mean(rs);
            const char* klass = mean_err < 0.2   ? "predictable"
                                : mean_err < 0.5 ? "moderate"
                                                 : "unpredictable";
            std::printf("  path %-4d %-14s RMSRE %.3f (%zu traces)\n", path, klass,
                        mean_err, rs.size());
        }
    } catch (const core::predictor_spec_error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return 0;
}
