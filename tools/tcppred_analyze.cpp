// tcppred_analyze — summarize a campaign dataset CSV: FB accuracy, HB
// accuracy per predictor, and per-path predictability classes. The
// command-line counterpart of the per-figure benches for ad-hoc datasets.
//
//   tcppred_analyze DATASET.csv [--predictors SPEC,SPEC,...]
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fb_analysis.hpp"
#include "analysis/hb_analysis.hpp"
#include "analysis/stats.hpp"
#include "testbed/dataset.hpp"

using namespace tcppred;

int main(int argc, char** argv) {
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
        std::fprintf(stderr,
                     "usage: %s DATASET.csv [--predictors SPEC,SPEC,...]\n"
                     "  default predictors: 10-MA,10-MA-LSO,0.8-HW,0.8-HW-LSO,NWS\n",
                     argv[0]);
        return argc < 2 ? 2 : 0;
    }

    std::vector<std::string> specs{"10-MA", "10-MA-LSO", "0.8-HW", "0.8-HW-LSO", "NWS"};
    for (int i = 2; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--predictors") == 0) {
            specs.clear();
            std::stringstream ss(argv[i + 1]);
            std::string item;
            while (std::getline(ss, item, ',')) specs.push_back(item);
        }
    }

    const testbed::dataset data = testbed::load_csv(argv[1]);
    std::printf("dataset: %zu epochs, %zu paths, %zu traces\n\n", data.records.size(),
                data.paths.size(), data.traces().size());

    // ---- FB summary
    const auto evals = analysis::evaluate_fb(data);
    const auto errors = analysis::errors_of(evals);
    std::size_t over = 0, over2 = 0, under2 = 0;
    for (const double e : errors) {
        over += e > 0;
        over2 += e >= 1;
        under2 += e <= -1;
    }
    std::printf("formula-based (Eq. 3) over %zu epochs:\n", errors.size());
    std::printf("  median E %+.2f | overestimates %zu%% | off by >2x: over %zu%%, "
                "under %zu%%\n\n",
                analysis::median(errors), over * 100 / errors.size(),
                over2 * 100 / errors.size(), under2 * 100 / errors.size());

    // ---- HB summary per predictor
    std::printf("history-based, per-trace RMSRE:\n");
    std::printf("  %-14s %8s %8s %10s\n", "predictor", "median", "p90", "P(<0.4)");
    for (const auto& spec : specs) {
        const auto pred = analysis::make_predictor(spec);
        const auto rmsres = analysis::rmsre_of(analysis::hb_rmsre_per_trace(data, *pred));
        const analysis::ecdf cdf{std::vector<double>(rmsres)};
        std::printf("  %-14s %8.3f %8.3f %9.0f%%\n", spec.c_str(),
                    analysis::median(rmsres), analysis::quantile(rmsres, 0.9),
                    100.0 * cdf.at(0.4));
    }

    // ---- per-path classes (HW-LSO)
    const auto hw = analysis::make_predictor("0.8-HW-LSO");
    const auto per_trace = analysis::hb_rmsre_per_trace(data, *hw);
    std::printf("\nper-path predictability (0.8-HW-LSO mean trace RMSRE):\n");
    std::map<int, std::vector<double>> per_path;
    for (const auto& t : per_trace) per_path[t.path_id].push_back(t.rmsre);
    for (const auto& [path, rs] : per_path) {
        const double mean_err = analysis::mean(rs);
        const char* klass = mean_err < 0.2   ? "predictable"
                            : mean_err < 0.5 ? "moderate"
                                             : "unpredictable";
        std::printf("  path %-4d %-14s RMSRE %.3f (%zu traces)\n", path, klass, mean_err,
                    rs.size());
    }
    return 0;
}
