// tcppred_analyze — summarize a campaign dataset CSV: FB accuracy, HB
// accuracy per predictor, and per-path predictability classes. The
// command-line counterpart of the per-figure benches for ad-hoc datasets.
// Every predictor is built from its registry spec (core::make_predictor)
// and all of them are evaluated in ONE streaming pass over the dataset
// (analysis::evaluation_engine).
//
//   tcppred_analyze DATASET.csv [--predictors SPEC,SPEC,...]
//                   [--trace FILE] [--metrics-summary]
//   tcppred_analyze --from-store STORE [--predictors ...]
//   tcppred_analyze --from-trace RUN.jsonl
//
// --from-store streams a chunked record store (tcppred_campaign
// --format store) through analysis::evaluate_stream — one trace resident
// at a time, never the dataset — and prints a report byte-identical to
// analyzing the store's CSV conversion (records are CSV-normalized on the
// fly so the lossy decimal round-trip matches).
//
// --from-trace re-derives the fault-conditioned RMSRE table from a JSONL
// run trace (tcppred_campaign/tcppred_analyze --trace, $REPRO_TRACE)
// without the dataset: every "predict" event carries the scored error, its
// fault flags and its input staleness.
//
// Exit codes: 0 success, 1 bad arguments, 2 runtime failure (unreadable or
// malformed dataset/trace, unknown predictor spec).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "core/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "testbed/dataset.hpp"
#include "testbed/record_store.hpp"

using namespace tcppred;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s DATASET.csv [--predictors SPEC,SPEC,...]\n"
                 "          [--trace FILE] [--metrics-summary]\n"
                 "       %s --from-store STORE [--predictors ...]\n"
                 "       %s --from-trace RUN.jsonl\n"
                 "  default predictors: 10-MA,10-MA-LSO,0.8-HW,0.8-HW-LSO,NWS\n"
                 "  spec grammar: fb[:pftk|:pftk-full|:sqrt|:minwa], <n>-MA[-LSO],\n"
                 "                <a>-EWMA[-LSO], <a>-HW[-LSO], <p>-AR[-LSO], NWS,\n"
                 "                hybrid:<hb-spec>[:<k>]   (see README \"Predictor specs\")\n"
                 "  --trace FILE      write a JSONL run trace (also $REPRO_TRACE)\n"
                 "  --metrics-summary print counters and stage timings to stderr on exit\n"
                 "  --from-store FILE stream-analyze a chunked record store\n"
                 "                    (tcppred_campaign --format store) with one\n"
                 "                    trace resident at a time, never the dataset\n"
                 "  --from-trace FILE re-derive the conditioned RMSRE table from a\n"
                 "                    previously written run trace\n",
                 argv0, argv0, argv0);
}

/// Render an RMSRE with its sample count, or "n/a" when nothing was scored
/// (core::rmsre of an empty series is NaN, not a perfect 0).
std::string fmt_rmsre(double rmsre, std::size_t n) {
    if (n == 0) return "n/a";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f (%zu)", rmsre, n);
    return buf;
}

/// What the dataset header line reports, however the records arrived.
struct dataset_counts {
    std::size_t epochs{0};
    std::size_t paths{0};
    std::size_t traces{0};
    std::size_t faulty{0};
};

/// The one report printer both evaluation paths share: the in-memory engine
/// path collapses its predictor_results with analysis::summarize, the
/// --from-store path gets summaries straight from evaluate_stream — so the
/// two modes produce byte-identical stdout on the same records.
void print_report(const dataset_counts& counts,
                  const std::vector<std::string>& all_specs,
                  const std::vector<std::string>& specs,
                  const std::vector<analysis::stream_predictor_summary>& summaries) {
    std::printf("dataset: %zu epochs, %zu paths, %zu traces", counts.epochs,
                counts.paths, counts.traces);
    if (counts.faulty > 0) {
        std::printf(" (%zu epochs carry measurement faults, %.1f%%)", counts.faulty,
                    100.0 * static_cast<double>(counts.faulty) /
                        static_cast<double>(counts.epochs));
    }
    std::printf("\n\n");

    const auto summary_of =
        [&](const std::string& spec) -> const analysis::stream_predictor_summary& {
        for (std::size_t i = 0; i < all_specs.size(); ++i) {
            if (all_specs[i] == spec) return summaries[i];
        }
        throw std::logic_error("spec not evaluated: " + spec);
    };

    // ---- FB summary
    const auto& fb = summary_of("fb:pftk");
    const auto& errors = fb.epoch_errors;
    if (errors.empty()) {
        std::printf("formula-based (Eq. 3): no scorable epochs\n");
    } else {
        std::size_t over = 0, over2 = 0, under2 = 0;
        for (const double e : errors) {
            over += e > 0;
            over2 += e >= 1;
            under2 += e <= -1;
        }
        std::printf("formula-based (Eq. 3) over %zu epochs:\n", errors.size());
        std::printf("  median E %+.2f | overestimates %zu%% | off by >2x: over %zu%%, "
                    "under %zu%%\n",
                    analysis::median(errors), over * 100 / errors.size(),
                    over2 * 100 / errors.size(), under2 * 100 / errors.size());
        if (counts.faulty > 0) {
            // Fault-conditioned accuracy: how much measurement failures
            // (and the stale-fallback inputs they force) cost.
            const auto& cond = fb.conditioned;
            if (cond.n_clean == 0) {
                std::printf("  RMSRE by measurement status: clean n/a");
            } else {
                std::printf("  RMSRE by measurement status: clean %.3f (%zu epochs)",
                            cond.rmsre_clean, cond.n_clean);
            }
            if (cond.n_faulty > 0) {
                std::printf(" | faulty %.3f (%zu)", cond.rmsre_faulty, cond.n_faulty);
            }
            if (cond.n_stale > 0) {
                std::printf(" | stale-input %.3f (%zu)", cond.rmsre_stale,
                            cond.n_stale);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");

    // ---- HB summary per predictor
    std::printf("history-based, per-trace RMSRE:\n");
    std::printf("  %-14s %8s %8s %10s\n", "predictor", "median", "p90", "P(<0.4)");
    for (const auto& spec : specs) {
        const auto& res = summary_of(spec);
        const auto rmsres = res.trace_rmsres();
        if (rmsres.empty()) {
            // Every trace was unscorable (too short / all-faulty): there
            // is no RMSRE distribution, which is not the same as a
            // perfect one.
            std::printf("  %-14s %8s %8s %10s (%zu traces unscored)\n", spec.c_str(),
                        "n/a", "n/a", "n/a", res.traces_unscored);
            continue;
        }
        const analysis::ecdf cdf{std::vector<double>(rmsres)};
        std::printf("  %-14s %8.3f %8.3f %9.0f%%\n", spec.c_str(),
                    analysis::median(rmsres), analysis::quantile(rmsres, 0.9),
                    100.0 * cdf.at(0.4));
    }

    // ---- per-path classes (HW-LSO)
    const auto& hw = summary_of("0.8-HW-LSO");
    std::printf("\nper-path predictability (0.8-HW-LSO mean trace RMSRE):\n");
    std::map<int, std::vector<double>> per_path;
    for (const auto& t : hw.traces) per_path[t.path_id].push_back(t.rmsre);
    for (const auto& [path, rs] : per_path) {
        const double mean_err = analysis::mean(rs);
        const char* klass = mean_err < 0.2   ? "predictable"
                            : mean_err < 0.5 ? "moderate"
                                             : "unpredictable";
        std::printf("  path %-4d %-14s RMSRE %.3f (%zu traces)\n", path, klass,
                    mean_err, rs.size());
    }
}

/// Per-predictor accumulation of "predict" events from a run trace.
struct trace_tally {
    std::vector<double> all, clean, faulty, stale;
};

int analyze_from_trace(const std::string& file) {
    const std::vector<obs::trace_event> events = obs::read_trace_file(file);
    std::map<std::string, trace_tally> per_predictor;
    std::size_t predict_events = 0;
    for (const obs::trace_event& ev : events) {
        if (std::get<std::string>(ev.at("ev")) != "predict") continue;
        ++predict_events;
        const auto field = [&](const char* key) -> double {
            const auto it = ev.find(key);
            if (it == ev.end()) {
                throw std::runtime_error(file + ": predict event missing \"" +
                                         key + "\"");
            }
            const double* v = std::get_if<double>(&it->second);
            if (v == nullptr) {
                throw std::runtime_error(file + ": predict event key \"" +
                                         std::string(key) + "\" is not numeric");
            }
            return *v;
        };
        const auto pred_it = ev.find("predictor");
        if (pred_it == ev.end()) {
            throw std::runtime_error(file + ": predict event missing \"predictor\"");
        }
        trace_tally& t = per_predictor[std::get<std::string>(pred_it->second)];
        const double error = field("error");
        t.all.push_back(error);
        if (field("fault_flags") != 0.0) {
            t.faulty.push_back(error);
        } else {
            t.clean.push_back(error);
        }
        if (field("staleness") > 0.0) t.stale.push_back(error);
    }

    std::printf("trace %s: %zu events, %zu predict events, %zu predictors\n\n",
                file.c_str(), events.size(), predict_events, per_predictor.size());
    std::printf("RMSRE by measurement status (re-derived from trace):\n");
    std::printf("  %-14s %-16s %-16s %-16s %-16s\n", "predictor", "all", "clean",
                "faulty", "stale-input");
    for (const auto& [name, t] : per_predictor) {
        std::printf("  %-14s %-16s %-16s %-16s %-16s\n", name.c_str(),
                    fmt_rmsre(core::rmsre(t.all), t.all.size()).c_str(),
                    fmt_rmsre(core::rmsre(t.clean), t.clean.size()).c_str(),
                    fmt_rmsre(core::rmsre(t.faulty), t.faulty.size()).c_str(),
                    fmt_rmsre(core::rmsre(t.stale), t.stale.size()).c_str());
    }
    if (per_predictor.empty()) std::printf("  (no predict events in trace)\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string from_trace;
    std::string from_store;
    std::string trace_file;
    bool metrics_summary = false;
    std::vector<std::string> specs{"10-MA", "10-MA-LSO", "0.8-HW", "0.8-HW-LSO", "NWS"};

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--predictors") {
            specs.clear();
            std::stringstream ss(next());
            std::string item;
            while (std::getline(ss, item, ',')) specs.push_back(item);
        } else if (arg == "--from-trace") {
            from_trace = next();
        } else if (arg == "--from-store") {
            from_store = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--metrics-summary") {
            metrics_summary = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown or incomplete argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        } else if (input.empty()) {
            input = arg;
        } else {
            std::fprintf(stderr, "unexpected extra argument: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    if (!from_trace.empty()) {
        if (!input.empty() || !from_store.empty()) {
            std::fprintf(stderr, "--from-trace takes no dataset argument\n");
            return 1;
        }
        try {
            return analyze_from_trace(from_trace);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    if (!from_store.empty() && !input.empty()) {
        std::fprintf(stderr, "--from-store takes no dataset argument\n");
        return 1;
    }
    if (input.empty() && from_store.empty()) {
        usage(argv[0]);
        return 1;
    }

    // --trace opens first so init_from_env() skips $REPRO_TRACE (the flag
    // overrides the environment, with no stray env-named file).
    if (!trace_file.empty()) {
        try {
            tcppred::obs::trace_writer::instance().open(trace_file);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    tcppred::obs::init_from_env();
    if (metrics_summary) tcppred::obs::set_metrics_enabled(true);
    const auto finish_observability = [&]() -> int {
        if (metrics_summary) tcppred::obs::write_metrics_summary(std::cerr);
        if (!trace_file.empty()) {
            try {
                tcppred::obs::trace_writer::instance().close();
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
        }
        return 0;
    };

    try {
        // One pass evaluates the FB baseline, every requested HB spec, and
        // the HW-LSO classifier input together. fb:pftk is always index 0 —
        // the one spec whose per-epoch errors the report needs.
        std::vector<std::string> all_specs{"fb:pftk"};
        for (const char* extra : {"0.8-HW-LSO"}) {
            if (std::find(specs.begin(), specs.end(), extra) == specs.end()) {
                all_specs.emplace_back(extra);
            }
        }
        all_specs.insert(all_specs.end(), specs.begin(), specs.end());

        if (!from_store.empty()) {
            // Streamed path: records flow store → CSV-normalization →
            // evaluate_stream one trace at a time. The normalization applies
            // the same lossy precision-10 decimal round-trip loading the
            // store's CSV conversion would, so the report is byte-identical
            // to the in-memory path on that CSV.
            testbed::record_reader reader(from_store);
            const dataset_counts counts{reader.total(), reader.catalog_lines().size(),
                                        reader.n_traces(), reader.n_faulted()};
            analysis::stream_eval_options sopts;
            sopts.keep_epoch_errors = {0};
            const auto summaries = analysis::evaluate_stream(
                [&](testbed::epoch_record& out) {
                    if (!reader.next(out)) return false;
                    out = testbed::csv_normalized_record(out);
                    return true;
                },
                all_specs, sopts);
            print_report(counts, all_specs, specs, summaries);
        } else {
            const testbed::dataset data = testbed::load_csv(input);
            std::size_t faulty_epochs = 0;
            for (const auto& r : data.records) {
                faulty_epochs += r.m.fault_flags != testbed::fault_none;
            }
            const dataset_counts counts{data.records.size(), data.paths.size(),
                                        data.traces().size(), faulty_epochs};
            const auto results = analysis::evaluation_engine{}.run(data, all_specs);
            std::vector<analysis::stream_predictor_summary> summaries;
            summaries.reserve(results.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                summaries.push_back(analysis::summarize(results[i], i == 0));
            }
            print_report(counts, all_specs, specs, summaries);
        }
    } catch (const core::predictor_spec_error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        finish_observability();
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        finish_observability();
        return 2;
    }
    return finish_observability();
}
