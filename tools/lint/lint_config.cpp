#include "lint.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tcppred::lint {

const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
    static const std::vector<std::pair<std::string, std::string>> rules = {
        {"det-rng", "nondeterministic randomness (random_device, rand, srand)"},
        {"det-clock", "wall-clock reads (time(), system/steady clocks) outside obs/"},
        {"det-env", "getenv outside the blessed config-from-env modules"},
        {"det-thread", "ad-hoc thread creation outside sim/thread_pool"},
        {"det-unordered-iter", "iteration over std::unordered_{map,set}"},
        {"ser-hexfloat", "bare double serialization in a hexfloat module"},
        {"units-boundary", "raw double for a dimensioned quantity in a public header"},
        {"layer-include", "include edge outside the declared module DAG"},
    };
    return rules;
}

namespace {

bool known_rule(const std::string& id) {
    for (const auto& [rule, desc] : rule_catalog()) {
        if (rule == id) return true;
    }
    return false;
}

bool glob_match_at(const std::string& pat, std::size_t pi, const std::string& s,
                   std::size_t si) {
    while (pi < pat.size()) {
        const char c = pat[pi];
        if (c == '*') {
            // Collapse consecutive stars, then try every suffix.
            while (pi < pat.size() && pat[pi] == '*') ++pi;
            if (pi == pat.size()) return true;
            for (std::size_t k = si; k <= s.size(); ++k) {
                if (glob_match_at(pat, pi, s, k)) return true;
            }
            return false;
        }
        if (si >= s.size()) return false;
        if (c != '?' && c != s[si]) return false;
        ++pi;
        ++si;
    }
    return si == s.size();
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& path) {
    return glob_match_at(pattern, 0, path, 0);
}

std::string config::module_override(const std::string& rel_path) const {
    std::string best;
    std::size_t best_len = 0;
    for (const auto& [prefix, name] : modules) {
        if (prefix.size() >= best_len && rel_path.rfind(prefix, 0) == 0) {
            best = name;
            best_len = prefix.size();
        }
    }
    return best;
}

config parse_config(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) {
        throw std::runtime_error("cannot open lint config " + file.string());
    }
    config cfg;
    std::string line;
    std::size_t line_no = 0;
    const auto fail = [&](const std::string& why) {
        throw std::runtime_error(file.string() + ":" + std::to_string(line_no) +
                                 ": " + why);
    };
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ss(line);
        std::string directive;
        if (!(ss >> directive)) continue;  // blank / comment-only
        if (directive == "layer") {
            std::string module;
            std::string colon;
            if (!(ss >> module) || !(ss >> colon) || colon != ":") {
                fail("expected 'layer <module> : [dep...]'");
            }
            auto& deps = cfg.layers[module];  // creates the (leaf) entry
            std::string dep;
            while (ss >> dep) deps.insert(dep);
        } else if (directive == "allow") {
            std::string rule;
            std::string glob;
            if (!(ss >> rule) || !(ss >> glob)) {
                fail("expected 'allow <rule-id> <path-glob>'");
            }
            if (!known_rule(rule)) fail("unknown rule id '" + rule + "'");
            std::string extra;
            if (ss >> extra) fail("one glob per allow line (got '" + extra + "')");
            cfg.allows[rule].push_back(glob);
        } else if (directive == "module") {
            std::string prefix;
            std::string name;
            if (!(ss >> prefix) || !(ss >> name)) {
                fail("expected 'module <path-prefix> <name>'");
            }
            std::string extra;
            if (ss >> extra) fail("one mapping per module line (got '" + extra + "')");
            cfg.modules.emplace_back(std::move(prefix), std::move(name));
        } else if (directive == "serialization") {
            std::string path;
            if (!(ss >> path)) fail("expected 'serialization <path>'");
            cfg.serialization_files.insert(path);
        } else if (directive == "skip") {
            std::string glob;
            if (!(ss >> glob)) fail("expected 'skip <path-glob>'");
            cfg.skips.push_back(glob);
        } else {
            fail("unknown directive '" + directive + "'");
        }
    }
    if (cfg.layers.empty()) fail("config declares no 'layer' table");
    // A module mapping must target a declared layer, or the override would
    // silently disable layer checking for those files.
    for (const auto& [prefix, name] : cfg.modules) {
        if (cfg.layers.find(name) == cfg.layers.end()) {
            throw std::runtime_error(file.string() + ": module mapping '" + prefix +
                                     "' targets undeclared module '" + name + "'");
        }
    }
    // Every dependency must itself be a declared module (or the wildcard) so
    // a table typo cannot silently open an edge.
    for (const auto& [module, deps] : cfg.layers) {
        for (const auto& dep : deps) {
            if (dep != "*" && cfg.layers.find(dep) == cfg.layers.end()) {
                throw std::runtime_error(file.string() + ": layer '" + module +
                                         "' depends on undeclared module '" + dep +
                                         "'");
            }
        }
    }
    return cfg;
}

std::vector<std::filesystem::path> include_dirs_from_compile_commands(
    const std::filesystem::path& file) {
    std::vector<std::filesystem::path> dirs;
    std::ifstream in(file);
    if (!in) return dirs;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // cmake emits plain absolute paths after -I (optionally space-separated);
    // that is all this needs — no full JSON parse.
    std::set<std::string> seen;
    for (std::size_t pos = text.find("-I"); pos != std::string::npos;
         pos = text.find("-I", pos + 2)) {
        std::size_t start = pos + 2;
        while (start < text.size() && text[start] == ' ') ++start;
        std::size_t end = start;
        while (end < text.size() && text[end] != ' ' && text[end] != '"' &&
               text[end] != '\\') {
            ++end;
        }
        if (end > start) {
            std::string dir = text.substr(start, end - start);
            if (seen.insert(dir).second) dirs.emplace_back(std::move(dir));
        }
    }
    return dirs;
}

}  // namespace tcppred::lint
