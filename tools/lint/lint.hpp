// tcppred_lint — repo-specific static analysis for the determinism,
// layering, units and output-hygiene invariants (DESIGN.md §14).
//
// This is deliberately a lexical linter, not a compiler plugin: every rule
// it enforces is a *textual* contract of this repository (banned
// identifiers, include edges, naming-convention boundaries), so a
// comment/string-aware token scan is both sufficient and fast, and the
// binary builds in seconds with no LLVM dependency. Type-level enforcement
// (narrowing, use-after-move, ...) stays with clang-tidy; tcppred_lint
// covers what no off-the-shelf tool can know about this codebase.
//
// Rule catalogue (stable IDs — tests and allowlists key on these):
//   det-rng            std::random_device / rand / srand / drand48: all
//                      randomness must come from sim/rng.hpp seeded streams.
//   det-clock          wall clocks (time(), *_clock, gettimeofday, ...):
//                      simulated time only; real time lives in obs/.
//   det-env            getenv outside the blessed config-from-env modules:
//                      hidden inputs break replayability.
//   det-thread         std::thread / jthread / async / pthread_create
//                      outside sim/thread_pool and the trace drain thread.
//   det-unordered-iter iteration over std::unordered_{map,set}: the order
//                      is implementation-defined, so any accumulation or
//                      serialization over it is nondeterministic.
//   ser-hexfloat       in serialization modules, doubles must cross the
//                      text boundary through the hexfloat/shortest-round-
//                      trip helpers, never bare operator<< or setprecision.
//   units-boundary     public-header double parameters/members named like a
//                      dimensioned quantity (rtt/loss/bw/timeout/...) must
//                      be core::units strong types or carry a unit suffix.
//   layer-include      first-party includes must follow the module DAG
//                      declared in the config ("layer" directives).
//
// Suppression, most specific first:
//   - inline, same line or the line above:
//       // tcppred-lint: allow(rule-id[,rule-id...]): reason
//   - config file: `allow <rule-id> <path-glob>` (reason as a # comment).
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tcppred::lint {

struct finding {
    std::string file;  ///< repo-relative path
    std::size_t line{0};
    std::string rule;
    std::string message;
};

/// Parsed `tcppred_lint.conf`. See parse_config() for the directive grammar.
struct config {
    /// module -> allowed first-party include modules ("*" = anything).
    /// A module's own name is always an implied allowed target.
    std::map<std::string, std::set<std::string>> layers;
    /// repo-relative path prefix -> module name ("module" directives).
    /// Longest matching prefix wins; carves a sub-module with its own layer
    /// entry out of a parent directory (src/testbed/record_store.* lints as
    /// "store", not "testbed").
    std::vector<std::pair<std::string, std::string>> modules;
    /// rule id -> repo-relative path globs exempt from that rule.
    std::map<std::string, std::vector<std::string>> allows;
    /// Files holding the ser-hexfloat contract (repo-relative paths).
    std::set<std::string> serialization_files;
    /// Globs never walked at all (fixtures, corpora, compile-fail probes).
    std::vector<std::string> skips;

    /// The module a path belongs to per the "module" directives, or "" when
    /// no prefix matches (use the path-derived default).
    [[nodiscard]] std::string module_override(const std::string& rel_path) const;
};

/// One source file prepared for rule scans.
struct source_file {
    std::string rel_path;            ///< repo-relative, '/'-separated
    std::string module;              ///< "core", "sim", ..., "tools", "tests"
    bool is_header{false};
    std::vector<std::string> lines;  ///< comments/strings blanked, 0-based
    /// line (0-based) -> rule ids suppressed by an inline pragma there.
    std::map<std::size_t, std::set<std::string>> pragmas;
};

// --- lint_config.cpp -------------------------------------------------------

/// Shell-style glob match ('*' spans path separators, '?' one char).
[[nodiscard]] bool glob_match(const std::string& pattern, const std::string& path);

/// Parse the rule table. Throws std::runtime_error with file:line context on
/// unknown directives or unknown rule IDs (config typos must not silently
/// disable a rule).
[[nodiscard]] config parse_config(const std::filesystem::path& file);

/// -I include directories mined from compile_commands.json (crude but
/// sufficient: cmake writes plain absolute paths). Missing/unparsable file
/// yields an empty list; the caller decides whether that is fatal.
[[nodiscard]] std::vector<std::filesystem::path> include_dirs_from_compile_commands(
    const std::filesystem::path& file);

/// All known rule IDs, for --list-rules and config validation.
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>& rule_catalog();

// --- lint_rules.cpp --------------------------------------------------------

/// Blank comments and string/char literals (preserving line structure and
/// preprocessor lines) and collect inline allow-pragmas.
[[nodiscard]] source_file prepare_source(const std::string& rel_path,
                                         const std::string& text);

/// Run every rule over one prepared file. `include_dirs` resolves quoted
/// includes for layer-include existence checking.
[[nodiscard]] std::vector<finding> lint_file(
    const source_file& src, const config& cfg,
    const std::vector<std::filesystem::path>& include_dirs);

}  // namespace tcppred::lint
