// tcppred_lint — CLI driver. Walks src/, tools/, tests/, bench/ and
// examples/ under --root, runs every rule in lint.hpp over each C++ source,
// and prints findings as `path:line: [rule-id] message`.
//
//   tcppred_lint [--root DIR] [--config FILE] [--compile-commands FILE]
//                [--list-rules] [paths...]
//
// Exit codes: 0 clean, 1 findings, 2 usage/config error. Explicit `paths`
// restrict the walk (files or directories, repo-relative or absolute) —
// that is what the fixture self-tests use.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace tcppred::lint;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [options] [paths...]\n"
                 "  --root DIR             repository root (default: .)\n"
                 "  --config FILE          rule table (default:\n"
                 "                         ROOT/tools/lint/tcppred_lint.conf)\n"
                 "  --compile-commands F   resolve includes via the -I dirs of a\n"
                 "                         cmake compile_commands.json (missing\n"
                 "                         file: noted, falls back to ROOT/src)\n"
                 "  --list-rules           print the rule catalogue and exit\n"
                 "  paths                  files/dirs to lint instead of the\n"
                 "                         default src tools tests bench examples\n",
                 argv0);
}

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string rel_to(const fs::path& root, const fs::path& p) {
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

void collect(const fs::path& root, const fs::path& at, const config& cfg,
             std::vector<fs::path>& out) {
    const std::string rel = rel_to(root, at);
    for (const auto& g : cfg.skips) {
        if (glob_match(g, rel)) return;
    }
    if (fs::is_directory(at)) {
        std::vector<fs::path> entries;
        for (const auto& e : fs::directory_iterator(at)) entries.push_back(e.path());
        std::sort(entries.begin(), entries.end());
        for (const auto& e : entries) collect(root, e, cfg, out);
    } else if (fs::is_regular_file(at) && lintable(at)) {
        out.push_back(at);
    }
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = ".";
    fs::path config_file;
    fs::path compile_commands;
    std::vector<std::string> explicit_paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "--config") {
            config_file = next();
        } else if (arg == "--compile-commands") {
            compile_commands = next();
        } else if (arg == "--list-rules") {
            for (const auto& [rule, desc] : rule_catalog()) {
                std::printf("%-20s %s\n", rule.c_str(), desc.c_str());
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            explicit_paths.push_back(arg);
        }
    }

    if (config_file.empty()) {
        config_file = root / "tools" / "lint" / "tcppred_lint.conf";
    }

    config cfg;
    try {
        cfg = parse_config(config_file);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "tcppred_lint: %s\n", e.what());
        return 2;
    }

    std::vector<fs::path> include_dirs;
    if (!compile_commands.empty()) {
        include_dirs = include_dirs_from_compile_commands(compile_commands);
        if (include_dirs.empty()) {
            std::fprintf(stderr,
                         "tcppred_lint: note: no -I directories from %s; "
                         "falling back to %s\n",
                         compile_commands.string().c_str(),
                         (root / "src").string().c_str());
        }
    }
    if (include_dirs.empty()) include_dirs.push_back(root / "src");

    std::vector<fs::path> files;
    try {
        if (explicit_paths.empty()) {
            for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
                const fs::path dir = root / top;
                if (fs::exists(dir)) collect(root, dir, cfg, files);
            }
        } else {
            for (const auto& p : explicit_paths) {
                const fs::path at = fs::path(p).is_absolute() ? fs::path(p) : root / p;
                if (!fs::exists(at)) {
                    std::fprintf(stderr, "tcppred_lint: no such path: %s\n",
                                 p.c_str());
                    return 2;
                }
                collect(root, at, cfg, files);
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "tcppred_lint: walk failed: %s\n", e.what());
        return 2;
    }

    std::vector<finding> findings;
    for (const auto& file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "tcppred_lint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        const source_file src = prepare_source(rel_to(root, file), buf.str());
        const auto found = lint_file(src, cfg, include_dirs);
        findings.insert(findings.end(), found.begin(), found.end());
    }

    for (const auto& f : findings) {
        std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                    f.message.c_str());
    }
    if (!findings.empty()) {
        std::fprintf(stderr, "tcppred_lint: %zu finding(s) in %zu file(s)\n",
                     findings.size(), files.size());
        return 1;
    }
    std::fprintf(stderr, "tcppred_lint: clean (%zu files)\n", files.size());
    return 0;
}
