#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace tcppred::lint {

namespace {

bool is_word(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Pull every `tcppred-lint: allow(a,b): reason` out of one comment.
void collect_pragmas(const std::string& comment, std::size_t line,
                     std::map<std::size_t, std::set<std::string>>& pragmas) {
    static const std::regex re(R"(tcppred-lint:\s*allow\(([^)]*)\))");
    for (auto it = std::sregex_iterator(comment.begin(), comment.end(), re);
         it != std::sregex_iterator(); ++it) {
        std::istringstream rules((*it)[1].str());
        std::string id;
        while (std::getline(rules, id, ',')) {
            id.erase(std::remove_if(id.begin(), id.end(),
                                    [](unsigned char c) { return std::isspace(c); }),
                     id.end());
            if (!id.empty()) pragmas[line].insert(id);
        }
    }
}

std::string module_of(const std::string& rel_path) {
    // src/<mod>/... lints as <mod>; anything else (tools/, tests/, bench/,
    // examples/) lints as its top directory.
    std::size_t start = 0;
    if (rel_path.rfind("src/", 0) == 0) start = 4;
    const auto slash = rel_path.find('/', start);
    if (slash == std::string::npos) return rel_path.substr(start);
    return rel_path.substr(start, slash - start);
}

}  // namespace

source_file prepare_source(const std::string& rel_path, const std::string& text) {
    source_file out;
    out.rel_path = rel_path;
    out.module = module_of(rel_path);
    out.is_header = rel_path.ends_with(".hpp") || rel_path.ends_with(".h");

    // One pass: blank comments and string/char literals with spaces so that
    // banned tokens inside them never match, collecting allow-pragmas from
    // the comment text as it goes. Preprocessor lines are kept verbatim
    // (minus comments) so `#include "..."` survives for the layering rule.
    std::string code;
    code.reserve(text.size());
    enum class st { normal, line_comment, block_comment, dquote, squote, raw };
    st state = st::normal;
    std::string comment;          // text of the comment being scanned
    std::size_t comment_line = 0;
    std::string raw_close;        // )delim" of an active raw string
    bool preprocessor = false;    // current line started with '#'
    bool line_has_code = false;
    std::size_t line = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (state == st::line_comment) {
                collect_pragmas(comment, comment_line, out.pragmas);
                comment.clear();
                state = st::normal;
            }
            code += '\n';
            ++line;
            preprocessor = false;
            line_has_code = false;
            continue;
        }
        switch (state) {
            case st::normal:
                if (!line_has_code && c == '#') preprocessor = true;
                if (c == '/' && next == '/') {
                    state = st::line_comment;
                    comment_line = line;
                    code += "  ";
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = st::block_comment;
                    comment_line = line;
                    code += "  ";
                    ++i;
                } else if (c == 'R' && next == '"' && (i == 0 || !is_word(text[i - 1]))) {
                    const auto paren = text.find('(', i + 2);
                    if (paren != std::string::npos) {
                        raw_close = ")" + text.substr(i + 2, paren - i - 2) + "\"";
                        state = st::raw;
                        code += "  ";
                        i = paren;  // loop's ++i skips the '('
                    } else {
                        code += c;
                    }
                } else if (c == '"' && !preprocessor) {
                    state = st::dquote;
                    code += ' ';
                } else if (c == '\'' && !preprocessor &&
                           (i == 0 || !is_word(text[i - 1]))) {
                    state = st::squote;
                    code += ' ';
                } else {
                    code += c;
                    if (!std::isspace(static_cast<unsigned char>(c))) {
                        line_has_code = true;
                    }
                }
                break;
            case st::line_comment:
                comment += c;
                code += ' ';
                break;
            case st::block_comment:
                if (c == '*' && next == '/') {
                    collect_pragmas(comment, comment_line, out.pragmas);
                    comment.clear();
                    state = st::normal;
                    code += "  ";
                    ++i;
                } else {
                    comment += c;
                    code += ' ';
                }
                break;
            case st::dquote:
                if (c == '\\') {
                    code += "  ";
                    if (next != '\n') ++i;
                } else if (c == '"') {
                    state = st::normal;
                    code += ' ';
                } else {
                    code += ' ';
                }
                break;
            case st::squote:
                if (c == '\\') {
                    code += "  ";
                    if (next != '\n') ++i;
                } else if (c == '\'') {
                    state = st::normal;
                    code += ' ';
                } else {
                    code += ' ';
                }
                break;
            case st::raw:
                if (c == ')' && text.compare(i, raw_close.size(), raw_close) == 0) {
                    // Blank the close marker too, minus embedded newlines.
                    for (std::size_t k = 0; k < raw_close.size(); ++k) code += ' ';
                    i += raw_close.size() - 1;
                    state = st::normal;
                } else {
                    code += ' ';
                }
                break;
        }
    }
    if (state == st::line_comment || state == st::block_comment) {
        collect_pragmas(comment, comment_line, out.pragmas);
    }

    std::istringstream ss(code);
    std::string l;
    while (std::getline(ss, l)) out.lines.push_back(l);
    return out;
}

namespace {

/// Shared per-file scan state so each rule stays a small function.
class scanner {
public:
    scanner(const source_file& src, const config& cfg,
            const std::vector<std::filesystem::path>& include_dirs,
            std::vector<finding>& out)
        : src_(src), cfg_(cfg), include_dirs_(include_dirs), out_(out) {}

    void report(const std::string& rule, std::size_t line0, std::string message) {
        if (suppressed(rule, line0)) return;
        out_.push_back(finding{src_.rel_path, line0 + 1, rule, std::move(message)});
    }

    [[nodiscard]] bool suppressed(const std::string& rule, std::size_t line0) const {
        for (const std::size_t l : {line0, line0 == 0 ? line0 : line0 - 1}) {
            const auto it = src_.pragmas.find(l);
            if (it != src_.pragmas.end() && it->second.count(rule) > 0) return true;
        }
        const auto globs = cfg_.allows.find(rule);
        if (globs != cfg_.allows.end()) {
            for (const auto& g : globs->second) {
                if (glob_match(g, src_.rel_path)) return true;
            }
        }
        return false;
    }

    // --- det-rng / det-clock / det-env / det-thread: banned identifiers ----
    void banned_tokens() {
        struct ban {
            const char* rule;
            const std::regex re;
            const char* what;
        };
        static const std::vector<ban> bans = {
            {"det-rng", std::regex(R"(\brandom_device\b)"),
             "std::random_device — use a sim::rng stream seeded from the campaign seed"},
            {"det-rng", std::regex(R"(\bs?rand\s*\()"),
             "rand()/srand() — use a sim::rng stream seeded from the campaign seed"},
            {"det-rng", std::regex(R"(\bdrand48\b)"),
             "drand48 — use a sim::rng stream seeded from the campaign seed"},
            {"det-clock", std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
             "wall clock — simulated time only; real-time measurement belongs in obs/"},
            {"det-clock", std::regex(R"(\b(gettimeofday|clock_gettime|localtime|gmtime)\b)"),
             "wall clock — simulated time only; real-time measurement belongs in obs/"},
            {"det-clock", std::regex(R"(\b(time|clock)\s*\()"),
             "wall clock — simulated time only; real-time measurement belongs in obs/"},
            {"det-env", std::regex(R"(\b(getenv|secure_getenv)\b)"),
             "environment read — only the blessed config-from-env modules may getenv"},
            {"det-thread", std::regex(R"(\bstd\s*::\s*thread\b(?!\s*::))"),
             "thread creation — all parallelism goes through sim/thread_pool"},
            {"det-thread", std::regex(R"(\b(jthread|pthread_create)\b)"),
             "thread creation — all parallelism goes through sim/thread_pool"},
            {"det-thread", std::regex(R"(\bstd\s*::\s*async\s*\()"),
             "thread creation — all parallelism goes through sim/thread_pool"},
        };
        for (std::size_t l = 0; l < src_.lines.size(); ++l) {
            for (const auto& b : bans) {
                if (std::regex_search(src_.lines[l], b.re)) {
                    report(b.rule, l, b.what);
                }
            }
        }
    }

    // --- det-unordered-iter ------------------------------------------------
    // Track names declared with an unordered type in this file, then flag
    // range-fors and .begin()/.end() walks over them (and over any range
    // expression that itself names an unordered type). Same-file tracking
    // only — cross-TU members are out of lexical reach — but every current
    // serializing/accumulating loop declares its container in-file.
    void unordered_iteration() {
        static const std::regex decl_re(
            R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
        static const std::regex for_re(R"(\bfor\s*\()");
        std::set<std::string> names;
        for (const auto& ln : src_.lines) {
            for (auto it = std::sregex_iterator(ln.begin(), ln.end(), decl_re);
                 it != std::sregex_iterator(); ++it) {
                // Skip the <...> argument list (line-local; a declaration
                // whose template arguments span lines is rare enough to
                // accept the miss — the range-for check below still fires
                // on the literal `unordered` spelling).
                std::size_t i = static_cast<std::size_t>(it->position()) +
                                static_cast<std::size_t>(it->length());
                int depth = 1;
                while (i < ln.size() && depth > 0) {
                    if (ln[i] == '<') ++depth;
                    if (ln[i] == '>') --depth;
                    ++i;
                }
                while (i < ln.size() && (ln[i] == ' ' || ln[i] == '&')) ++i;
                std::size_t start = i;
                while (i < ln.size() && is_word(ln[i])) ++i;
                if (i > start) names.insert(ln.substr(start, i - start));
            }
        }
        for (std::size_t l = 0; l < src_.lines.size(); ++l) {
            const std::string& ln = src_.lines[l];
            std::smatch m;
            if (std::regex_search(ln, m, for_re)) {
                const auto colon = ln.find(':', static_cast<std::size_t>(m.position()));
                if (colon != std::string::npos && colon + 1 < ln.size() &&
                    ln[colon + 1] != ':' && (colon == 0 || ln[colon - 1] != ':')) {
                    std::string range = ln.substr(colon + 1);
                    if (const auto paren = range.rfind(')'); paren != std::string::npos) {
                        range.erase(paren);
                    }
                    if (range.find("unordered_") != std::string::npos ||
                        names_in(range, names)) {
                        report("det-unordered-iter", l,
                               "range-for over an unordered container — "
                               "iteration order is implementation-defined; use an "
                               "ordered container or sort before consuming");
                    }
                }
            }
            for (const auto& name : names) {
                if (ln.find(name + ".begin()") != std::string::npos ||
                    ln.find(name + ".cbegin()") != std::string::npos) {
                    report("det-unordered-iter", l,
                           "iterator walk over unordered container '" + name +
                               "' — iteration order is implementation-defined");
                }
            }
        }
    }

    static bool names_in(const std::string& expr, const std::set<std::string>& names) {
        // The range expression's trailing identifier component (after any
        // `obj.` / `obj->` qualification) is what the declaration tracked.
        std::size_t end = expr.size();
        while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1]))) {
            --end;
        }
        std::size_t start = end;
        while (start > 0 && is_word(expr[start - 1])) --start;
        return end > start && names.count(expr.substr(start, end - start)) > 0;
    }

    // --- ser-hexfloat ------------------------------------------------------
    void serialization_hygiene() {
        if (cfg_.serialization_files.count(src_.rel_path) == 0) return;
        static const std::regex fmt_re(
            R"((\bsetprecision\b|\.\s*precision\s*\(|\bstd::fixed\b|\bstd::scientific\b|\bstd::defaultfloat\b))");
        // A streamed operand that names a double by this repo's conventions:
        // strong-type .value() reads, unit-suffixed fields, or the paper's
        // measurement names.
        static const std::regex double_operand(
            R"(^[A-Za-z_][\w.>\[\]()-]*$)");
        static const std::regex double_name(
            R"((\.value\(\)$|(^|[._])(phat\w*|ptilde|that_s|ttilde\w*|goodputs?|utilization|loss\w*|rtt\w*)$|_(s|bps|bytes|rate|fraction|hz)$))");
        for (std::size_t l = 0; l < src_.lines.size(); ++l) {
            const std::string& ln = src_.lines[l];
            if (std::regex_search(ln, fmt_re)) {
                report("ser-hexfloat", l,
                       "decimal float formatting in a serialization module — "
                       "doubles must round-trip bit-exactly (hexd / "
                       "json_line::num)");
            }
            if (ln.find("<<") == std::string::npos) continue;
            std::size_t pos = 0;
            while (true) {
                const auto op = ln.find("<<", pos);
                if (op == std::string::npos) break;
                std::size_t end = ln.find("<<", op + 2);
                if (end == std::string::npos) end = ln.size();
                std::string operand = ln.substr(op + 2, end - op - 2);
                trim(operand);
                if (const auto semi = operand.find(';'); semi != std::string::npos) {
                    operand.erase(semi);
                    trim(operand);
                }
                pos = op + 2;
                if (operand.empty() || operand.rfind("hexd(", 0) == 0) continue;
                if (operand.ends_with(".size()") || operand.ends_with(".count()")) {
                    continue;
                }
                if (!std::regex_match(operand, double_operand)) continue;
                // Last identifier component decides (m.phat -> "phat").
                std::string last = operand;
                if (const auto dot = last.find_last_of("."); dot != std::string::npos &&
                                                            !last.ends_with(".value()")) {
                    last = last.substr(dot + 1);
                }
                if (std::regex_search(operand, double_name) ||
                    std::regex_search(last, double_name)) {
                    report("ser-hexfloat", l,
                           "double '" + operand +
                               "' streamed with bare operator<< in a "
                               "serialization module — wrap in hexd() or emit "
                               "via json_line::num");
                }
            }
        }
    }

    static void trim(std::string& s) {
        while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
            s.erase(s.begin());
        }
        while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
            s.pop_back();
        }
    }

    // --- units-boundary ----------------------------------------------------
    // Public headers only: a `double` whose name reads like a dimensioned
    // quantity must either be a core::units strong type or carry an explicit
    // unit/dimension suffix (the documented serialization-record convention).
    // Private members (trailing '_') are an implementation detail and exempt.
    void units_boundary() {
        if (!src_.is_header || src_.module == "tests") return;
        static const std::regex decl_re(R"(\bdouble\s+([A-Za-z_]\w*))");
        static const std::regex dimensioned(R"(rtt|loss|bandwidth|timeout|delay)");
        static const std::regex exempt(
            R"((_$|_(s|ms|us|bps|mbps|bytes|rate|fraction|frac|factor|weight|prob|length|count|pkts|hz|events)$|fraction|ratio))");
        for (std::size_t l = 0; l < src_.lines.size(); ++l) {
            const std::string& ln = src_.lines[l];
            for (auto it = std::sregex_iterator(ln.begin(), ln.end(), decl_re);
                 it != std::sregex_iterator(); ++it) {
                const std::string name = (*it)[1].str();
                if (!std::regex_search(name, dimensioned)) continue;
                if (std::regex_search(name, exempt)) continue;
                report("units-boundary", l,
                       "'double " + name +
                           "' names a dimensioned quantity — use a core::units "
                           "strong type (core::seconds, core::bits_per_second, "
                           "core::probability) or a unit-suffixed name");
            }
        }
    }

    // --- layer-include -----------------------------------------------------
    void layering() {
        static const std::regex inc_re(R"re(^\s*#\s*include\s*"([^"]+)")re");
        const auto self = cfg_.layers.find(src_.module);
        for (std::size_t l = 0; l < src_.lines.size(); ++l) {
            std::smatch m;
            if (!std::regex_match(src_.lines[l], m, inc_re)) continue;
            const std::string inc = m[1].str();
            const auto slash = inc.find('/');
            if (slash == std::string::npos) continue;  // same-directory include
            std::string target = inc.substr(0, slash);
            // First-party includes are rooted at src/; a "module" mapping on
            // the included file reassigns it (e.g. testbed/record_store.hpp
            // is module "store").
            if (const std::string ov = cfg_.module_override("src/" + inc);
                !ov.empty()) {
                target = ov;
            }
            if (cfg_.layers.find(target) == cfg_.layers.end()) {
                continue;  // not a first-party module prefix (e.g. vendored)
            }
            if (!include_dirs_.empty()) {
                bool found = false;
                for (const auto& dir : include_dirs_) {
                    std::error_code ec;
                    if (std::filesystem::exists(dir / inc, ec)) {
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    report("layer-include", l,
                           "include \"" + inc +
                               "\" does not resolve in any -I directory of "
                               "compile_commands.json");
                    continue;
                }
            }
            if (target == src_.module) continue;
            if (self == cfg_.layers.end()) {
                report("layer-include", l,
                       "module '" + src_.module +
                           "' is not in the layer table but includes \"" + inc + "\"");
                continue;
            }
            if (self->second.count("*") > 0 || self->second.count(target) > 0) {
                continue;
            }
            report("layer-include", l,
                   "layering violation: '" + src_.module + "' may not include '" +
                       target + "' (\"" + inc + "\"); allowed: {" +
                       join(self->second) + "}");
        }
    }

    static std::string join(const std::set<std::string>& s) {
        std::string out;
        for (const auto& e : s) {
            if (!out.empty()) out += ", ";
            out += e;
        }
        return out;
    }

private:
    const source_file& src_;
    const config& cfg_;
    const std::vector<std::filesystem::path>& include_dirs_;
    std::vector<finding>& out_;
};

}  // namespace

std::vector<finding> lint_file(const source_file& src, const config& cfg,
                               const std::vector<std::filesystem::path>& include_dirs) {
    std::vector<finding> out;
    // "module" directives override the path-derived module (prepare_source
    // has no config, so the reassignment happens here).
    source_file patched;
    const source_file* use = &src;
    if (const std::string ov = cfg.module_override(src.rel_path);
        !ov.empty() && ov != src.module) {
        patched = src;
        patched.module = ov;
        use = &patched;
    }
    scanner sc(*use, cfg, include_dirs, out);
    sc.banned_tokens();
    sc.unordered_iteration();
    sc.serialization_hygiene();
    sc.units_boundary();
    sc.layering();
    std::sort(out.begin(), out.end(), [](const finding& a, const finding& b) {
        if (a.file != b.file) return a.file < b.file;
        if (a.line != b.line) return a.line < b.line;
        return a.rule < b.rule;
    });
    return out;
}

}  // namespace tcppred::lint
