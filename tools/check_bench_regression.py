#!/usr/bin/env python3
"""Perf-smoke gate: validate BENCH_*.json schemas and fail on regression.

Usage:
    tools/check_bench_regression.py COMMITTED_DIR FRESH_DIR [--factor 2.0]

Loads BENCH_campaign.json, BENCH_scheduler.json, BENCH_record_store.json
and BENCH_serve.json from both directories,
validates the schemas (see PERFORMANCE.md), then compares each campaign
run's epochs/s: a fresh number more than `factor` times slower than the
committed one fails the check. Only runs present in BOTH files are
compared (so adding a new campaign/model doesn't break the gate), but the
committed runs must all still exist. The other files (scheduler, record
store, serve) are schema-validated only: google-benchmark timings and
socket round-trip latencies on shared CI runners are too noisy for a hard
numeric gate, the end-to-end epochs/s is the contract.
"""

import argparse
import json
import pathlib
import sys


def fail(msg: str) -> None:
    print(f"check_bench_regression: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: pathlib.Path) -> dict:
    if not path.is_file():
        fail(f"missing file: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail(f"invalid JSON in {path}: {e}")
    raise AssertionError  # unreachable


def validate_campaign(doc: dict, origin: pathlib.Path) -> dict:
    """Schema check; returns {(campaign, cross_model): epochs_per_s}."""
    if doc.get("schema") != "tcppred-bench-campaign-v1":
        fail(f"{origin}: bad schema tag: {doc.get('schema')!r}")
    if doc.get("scale") not in ("tiny", "normal"):
        fail(f"{origin}: bad scale: {doc.get('scale')!r}")
    if not isinstance(doc.get("jobs"), int) or doc["jobs"] < 1:
        fail(f"{origin}: bad jobs: {doc.get('jobs')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{origin}: runs must be a non-empty list")
    table = {}
    for r in runs:
        for key, typ in (("campaign", int), ("cross_model", str),
                         ("epochs", int), ("seconds", (int, float)),
                         ("epochs_per_s", (int, float))):
            if not isinstance(r.get(key), typ):
                fail(f"{origin}: run field {key} bad or missing: {r!r}")
        if r["cross_model"] not in ("packet", "fluid"):
            fail(f"{origin}: bad cross_model: {r['cross_model']!r}")
        if r["epochs_per_s"] <= 0:
            fail(f"{origin}: non-positive epochs_per_s: {r!r}")
        table[(r["campaign"], r["cross_model"])] = r["epochs_per_s"]
    return table


def validate_scheduler(doc: dict, origin: pathlib.Path) -> None:
    if doc.get("schema") != "tcppred-bench-scheduler-v1":
        fail(f"{origin}: bad schema tag: {doc.get('schema')!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(f"{origin}: benchmarks must be a non-empty list")
    for b in benches:
        if not isinstance(b.get("name"), str):
            fail(f"{origin}: benchmark without a name: {b!r}")
        if not isinstance(b.get("real_time_ns"), (int, float)) or b["real_time_ns"] <= 0:
            fail(f"{origin}: bad real_time_ns: {b!r}")


def validate_record_store(doc: dict, origin: pathlib.Path) -> None:
    if doc.get("schema") != "tcppred-bench-record-store-v1":
        fail(f"{origin}: bad schema tag: {doc.get('schema')!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(f"{origin}: benchmarks must be a non-empty list")
    names = set()
    for b in benches:
        if not isinstance(b.get("name"), str):
            fail(f"{origin}: benchmark without a name: {b!r}")
        if not isinstance(b.get("real_time_ns"), (int, float)) or b["real_time_ns"] <= 0:
            fail(f"{origin}: bad real_time_ns: {b!r}")
        if (not isinstance(b.get("records_per_second"), (int, float))
                or b["records_per_second"] <= 0):
            fail(f"{origin}: bad records_per_second: {b!r}")
        names.add(b["name"])
    for required in ("bm_store_ingest", "bm_store_scan"):
        if required not in names:
            fail(f"{origin}: required benchmark missing: {required}")


def validate_serve(doc: dict, origin: pathlib.Path) -> None:
    if doc.get("schema") != "tcppred-bench-serve-v1":
        fail(f"{origin}: bad schema tag: {doc.get('schema')!r}")
    specs = doc.get("specs")
    if not isinstance(specs, list) or not specs \
            or not all(isinstance(s, str) for s in specs):
        fail(f"{origin}: specs must be a non-empty list of strings")
    for key in ("observations", "predictions"):
        if not isinstance(doc.get(key), int) or doc[key] <= 0:
            fail(f"{origin}: bad {key}: {doc.get(key)!r}")
    for key in ("wall_s", "predictions_per_s", "predict_p50_us",
                "predict_p99_us"):
        if not isinstance(doc.get(key), (int, float)) or doc[key] <= 0:
            fail(f"{origin}: bad {key}: {doc.get(key)!r}")
    if doc["predict_p99_us"] < doc["predict_p50_us"]:
        fail(f"{origin}: p99 below p50")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("committed_dir", type=pathlib.Path)
    ap.add_argument("fresh_dir", type=pathlib.Path)
    ap.add_argument("--factor", type=float, default=2.0,
                    help="max allowed slowdown vs committed (default 2.0)")
    args = ap.parse_args()

    committed = validate_campaign(
        load(args.committed_dir / "BENCH_campaign.json"),
        args.committed_dir / "BENCH_campaign.json")
    fresh = validate_campaign(
        load(args.fresh_dir / "BENCH_campaign.json"),
        args.fresh_dir / "BENCH_campaign.json")
    validate_scheduler(load(args.committed_dir / "BENCH_scheduler.json"),
                       args.committed_dir / "BENCH_scheduler.json")
    validate_scheduler(load(args.fresh_dir / "BENCH_scheduler.json"),
                       args.fresh_dir / "BENCH_scheduler.json")
    validate_record_store(load(args.committed_dir / "BENCH_record_store.json"),
                          args.committed_dir / "BENCH_record_store.json")
    validate_record_store(load(args.fresh_dir / "BENCH_record_store.json"),
                          args.fresh_dir / "BENCH_record_store.json")
    validate_serve(load(args.committed_dir / "BENCH_serve.json"),
                   args.committed_dir / "BENCH_serve.json")
    validate_serve(load(args.fresh_dir / "BENCH_serve.json"),
                   args.fresh_dir / "BENCH_serve.json")

    failed = False
    for key, old in sorted(committed.items()):
        new = fresh.get(key)
        if new is None:
            print(f"MISSING: campaign {key[0]} ({key[1]}) absent from fresh run",
                  file=sys.stderr)
            failed = True
            continue
        ratio = old / new
        verdict = "FAIL" if ratio > args.factor else "ok"
        print(f"{verdict}: campaign {key[0]} ({key[1]}): "
              f"{new:.1f} epochs/s vs committed {old:.1f} "
              f"({ratio:.2f}x slower, limit {args.factor:.1f}x)")
        if ratio > args.factor:
            failed = True
    if failed:
        sys.exit(1)
    print("perf smoke passed")


if __name__ == "__main__":
    main()
