#!/usr/bin/env bash
# Observability smoke gate, run by check.sh and CI:
#   trace_smoke.sh CAMPAIGN_BIN ANALYZE_BIN
#
# Runs a tiny faulted campaign with --trace and --metrics-summary, validates
# every trace line against the JSONL schema (DESIGN.md §12), round-trips the
# engine trace through `tcppred_analyze --from-trace`, and re-checks the
# zero-overhead contract: with tracing off the CSV is byte-identical to a
# traced run's CSV.
set -u

CAMPAIGN=${1:?usage: trace_smoke.sh CAMPAIGN_BIN ANALYZE_BIN}
ANALYZE=${2:?usage: trace_smoke.sh CAMPAIGN_BIN ANALYZE_BIN}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

fail() { echo "FAIL: $1"; FAILURES=$((FAILURES + 1)); }
ok()   { echo "ok: $1"; }

TINY="--paths 2 --traces 1 --epochs 5 --transfer-s 1.5"
FAULTS="pathload=0.3,abort=0.3,seed=11"

# --- traced faulted campaign + metrics summary -----------------------------
"$CAMPAIGN" $TINY --out "$WORK/traced.csv" --faults "$FAULTS" --jobs 2 \
    --trace "$WORK/run.jsonl" --metrics-summary >/dev/null 2>"$WORK/err"
[ $? -eq 0 ] && ok "traced campaign exits 0" || fail "traced campaign failed"
[ -s "$WORK/run.jsonl" ] || fail "no trace written"
grep -q "== metrics summary ==" "$WORK/err" \
    && ok "--metrics-summary prints the summary table on stderr" \
    || fail "metrics summary missing from stderr"
grep -q "counter  campaign.epochs_run" "$WORK/err" \
    || fail "summary lacks the counter catalogue"

# --- JSONL schema: every line is flat JSON with an "ev" key; epoch events
# carry the documented fields; a campaign_start event exists.
if python3 - "$WORK/run.jsonl" <<'EOF'
import json, sys

epoch_keys = {"path", "trace", "epoch", "seed", "fault_flags", "sim_events",
              "dur_s", "thread"}
saw_start = saw_epoch = False
for n, line in enumerate(open(sys.argv[1]), 1):
    ev = json.loads(line)          # malformed JSON raises -> exit 1
    assert isinstance(ev, dict) and "ev" in ev, f"line {n}: no 'ev' key"
    for v in ev.values():
        assert not isinstance(v, (dict, list)), f"line {n}: nested value"
    if ev["ev"] == "campaign_start":
        saw_start = True
        assert "seed" in ev and "faults" in ev, f"line {n}: start schema"
    elif ev["ev"] == "epoch":
        saw_epoch = True
        missing = epoch_keys - ev.keys()
        assert not missing, f"line {n}: epoch event missing {missing}"
assert saw_start and saw_epoch, "trace lacks campaign_start/epoch events"
EOF
then ok "trace lines validate against the JSONL schema"
else fail "trace schema validation"
fi

# --- zero-overhead contract: tracing must not change the dataset -----------
"$CAMPAIGN" $TINY --out "$WORK/plain.csv" --faults "$FAULTS" --jobs 2 \
    >/dev/null 2>&1
cmp -s "$WORK/plain.csv" "$WORK/traced.csv" \
    && ok "CSV byte-identical with tracing on and off" \
    || fail "tracing changed the dataset bytes"

# --- analyze: engine trace round-trips through --from-trace ----------------
"$ANALYZE" "$WORK/traced.csv" --trace "$WORK/engine.jsonl" >/dev/null 2>&1
[ $? -eq 0 ] && ok "analyze --trace exits 0" || fail "analyze --trace failed"
grep -q '"ev":"predict"' "$WORK/engine.jsonl" \
    || fail "engine trace has no predict events"
"$ANALYZE" --from-trace "$WORK/engine.jsonl" >"$WORK/fromtrace.out" 2>&1
[ $? -eq 0 ] && ok "--from-trace exits 0" || fail "--from-trace failed"
grep -q "re-derived from trace" "$WORK/fromtrace.out" \
    || fail "--from-trace table missing"
grep -q "fb:pftk" "$WORK/fromtrace.out" \
    || fail "--from-trace table lacks predictor rows"

# --- malformed trace -> runtime failure (exit 2) ---------------------------
printf 'this is not json\n' > "$WORK/bad.jsonl"
"$ANALYZE" --from-trace "$WORK/bad.jsonl" >/dev/null 2>&1
[ $? -eq 2 ] && ok "malformed trace exits 2" \
    || fail "malformed trace did not exit 2"

if [ "$FAILURES" -ne 0 ]; then
    echo "$FAILURES trace smoke check(s) failed"
    exit 1
fi
echo "all trace smoke checks passed"
