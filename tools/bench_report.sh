#!/usr/bin/env bash
# Perf report generator: runs the micro-benchmarks and timed campaign runs
# and emits two machine-readable JSON files (see PERFORMANCE.md for the
# schema and how to read a trajectory of these):
#
#   BENCH_scheduler.json  event-substrate micro-benchmarks (google-benchmark
#                         numbers for the scheduler, link forwarding and
#                         TCP hot loops, from bench/micro_engine)
#   BENCH_campaign.json   end-to-end campaign throughput in epochs/s, per
#                         campaign and cross-traffic model
#   BENCH_record_store.json
#                         record-store cursor rates (sequential ingest and
#                         scan in records/s, from bench/micro_store)
#   BENCH_serve.json      online daemon replay throughput (predictions/s and
#                         PREDICT round-trip p50/p99 over a Unix socket,
#                         from tools/tcppred_loadgen against tcppred_serve)
#
# Usage: tools/bench_report.sh [options]
#   --build-dir DIR   build tree with bench/ and tools/ binaries
#                     (default: build)
#   --out-dir DIR     where to write the BENCH_*.json files
#                     (default: repository root — the committed copies)
#   --scale S         tiny | normal   campaign geometry (default: tiny;
#                     committed files are regenerated at normal scale)
#   --jobs N          worker threads for the campaign runs (default: 1,
#                     serial — the number quoted in the perf trajectory)
#
# The campaign runs write their CSVs to a temp dir and discard them: this
# script measures, it does not produce datasets. Runs are serial by default
# so the epochs/s numbers compare across machines with different core
# counts. CI runs this at tiny scale and gates on >2x regression against
# the committed numbers (.github/workflows/ci.yml, "perf smoke").
set -eu

SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
BUILD_DIR="$SRC_DIR/build"
OUT_DIR="$SRC_DIR"
SCALE="tiny"
JOBS=1

while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) BUILD_DIR="$2"; shift 2 ;;
        --out-dir) OUT_DIR="$2"; shift 2 ;;
        --scale) SCALE="$2"; shift 2 ;;
        --jobs) JOBS="$2"; shift 2 ;;
        *) echo "bench_report.sh: unknown option: $1" >&2; exit 2 ;;
    esac
done

case "$SCALE" in tiny|normal) ;; *)
    echo "bench_report.sh: --scale must be tiny or normal, got: $SCALE" >&2
    exit 2 ;;
esac

MICRO="$BUILD_DIR/bench/micro_engine"
MICRO_STORE="$BUILD_DIR/bench/micro_store"
CAMPAIGN="$BUILD_DIR/tools/tcppred_campaign"
SERVE="$BUILD_DIR/tools/tcppred_serve"
LOADGEN="$BUILD_DIR/tools/tcppred_loadgen"
for bin in "$MICRO" "$MICRO_STORE" "$CAMPAIGN" "$SERVE" "$LOADGEN"; do
    if [ ! -x "$bin" ]; then
        echo "bench_report.sh: missing binary: $bin (build the repo first)" >&2
        exit 1
    fi
done

TMP_DIR="$(mktemp -d /tmp/bench_report.XXXXXX)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$TMP_DIR"
}
trap cleanup EXIT

# --- micro-benchmarks -> BENCH_scheduler.json -----------------------------
echo "running micro_engine benchmarks..." >&2
"$MICRO" --benchmark_format=json > "$TMP_DIR/micro.json"

python3 - "$TMP_DIR/micro.json" "$OUT_DIR/BENCH_scheduler.json" <<'PY'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {
    "schema": "tcppred-bench-scheduler-v1",
    "source": "bench/micro_engine --benchmark_format=json",
    "benchmarks": [
        {
            "name": b["name"],
            "real_time_ns": round(b["real_time"], 1),
            **(
                {"items_per_second": round(b["items_per_second"], 1)}
                if "items_per_second" in b
                else {}
            ),
        }
        for b in raw["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    ],
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
open(sys.argv[2], "a").write("\n")
print("wrote", sys.argv[2], file=sys.stderr)
PY

# --- record-store cursors -> BENCH_record_store.json ----------------------
echo "running micro_store benchmarks..." >&2
"$MICRO_STORE" --benchmark_format=json > "$TMP_DIR/micro_store.json"

python3 - "$TMP_DIR/micro_store.json" "$OUT_DIR/BENCH_record_store.json" <<'PY'
import json, sys
raw = json.load(open(sys.argv[1]))
out = {
    "schema": "tcppred-bench-record-store-v1",
    "source": "bench/micro_store --benchmark_format=json",
    "benchmarks": [
        {
            "name": b["name"],
            "real_time_ns": round(b["real_time"], 1),
            "records_per_second": round(b["items_per_second"], 1),
        }
        for b in raw["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"
    ],
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
open(sys.argv[2], "a").write("\n")
print("wrote", sys.argv[2], file=sys.stderr)
PY

# --- campaign throughput -> BENCH_campaign.json ---------------------------
# Tiny geometry mirrors testbed::campaign{1,2}_config(campaign_scale::tiny);
# normal scale is the tool's defaults.
if [ "$SCALE" = "tiny" ]; then
    C1_FLAGS="--paths 8 --traces 1 --epochs 45"
    C2_FLAGS="--second-set --paths 4 --traces 1 --epochs 15"
else
    C1_FLAGS=""
    C2_FLAGS="--second-set"
fi

: > "$TMP_DIR/campaign_runs.txt"
for model in packet fluid; do
    for set in 1 2; do
        if [ "$set" = 1 ]; then flags="$C1_FLAGS"; else flags="$C2_FLAGS"; fi
        echo "running campaign$set ($SCALE, $model, jobs=$JOBS)..." >&2
        # shellcheck disable=SC2086  # flags is a word list by construction
        "$CAMPAIGN" --out "$TMP_DIR/c$set-$model.csv" --jobs "$JOBS" \
            --cross-model "$model" $flags 2> "$TMP_DIR/c$set-$model.log"
        line="$(grep 'epochs in' "$TMP_DIR/c$set-$model.log")"
        echo "$set $model $line" >> "$TMP_DIR/campaign_runs.txt"
        echo "  $line" >&2
    done
done

python3 - "$TMP_DIR/campaign_runs.txt" "$OUT_DIR/BENCH_campaign.json" \
    "$SCALE" "$JOBS" <<'PY'
import json, re, sys
runs = []
for line in open(sys.argv[1]):
    # "<set> <model> <N> epochs in <S> s (<R> epochs/s)"
    m = re.match(r"(\d) (\w+) (\d+) epochs in ([\d.]+) s \(([\d.]+) epochs/s\)",
                 line.strip())
    if not m:
        sys.exit(f"unparseable campaign timing line: {line!r}")
    runs.append({
        "campaign": int(m.group(1)),
        "cross_model": m.group(2),
        "epochs": int(m.group(3)),
        "seconds": float(m.group(4)),
        "epochs_per_s": float(m.group(5)),
    })
out = {
    "schema": "tcppred-bench-campaign-v1",
    "scale": sys.argv[3],
    "jobs": int(sys.argv[4]),
    "runs": runs,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
open(sys.argv[2], "a").write("\n")
print("wrote", sys.argv[2], file=sys.stderr)
PY

# --- serve daemon replay -> BENCH_serve.json ------------------------------
# A store replayed over a Unix socket; the loadgen writes the JSON itself
# (schema tcppred-bench-serve-v1). Like the micro-benchmarks this file is
# schema-gated only — socket round-trip latency on shared runners is too
# noisy for a numeric gate.
if [ "$SCALE" = "tiny" ]; then
    SERVE_FLAGS="--paths 4 --traces 1 --epochs 40"
else
    SERVE_FLAGS="--paths 8 --traces 2 --epochs 120"
fi
echo "running serve replay bench ($SCALE)..." >&2
# shellcheck disable=SC2086  # SERVE_FLAGS is a word list by construction
"$CAMPAIGN" --out "$TMP_DIR/serve.store" --format store --jobs "$JOBS" \
    $SERVE_FLAGS 2>/dev/null
"$SERVE" --socket "$TMP_DIR/serve.sock" --specs "fb:pftk,10-MA" \
    >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 100); do
    [ -S "$TMP_DIR/serve.sock" ] && break
    sleep 0.05
done
"$LOADGEN" --from-store "$TMP_DIR/serve.store" --specs "fb:pftk,10-MA" \
    --socket "$TMP_DIR/serve.sock" --bench "$OUT_DIR/BENCH_serve.json" \
    2> "$TMP_DIR/serve.log"
kill -INT "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
grep 'predictions/s' "$TMP_DIR/serve.log" | sed 's/^/  /' >&2 || true
echo "wrote $OUT_DIR/BENCH_serve.json" >&2

echo "bench report complete: $OUT_DIR/BENCH_scheduler.json $OUT_DIR/BENCH_campaign.json $OUT_DIR/BENCH_record_store.json $OUT_DIR/BENCH_serve.json" >&2
