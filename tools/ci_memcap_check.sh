#!/usr/bin/env bash
# CI gate for the past-RAM contract (DESIGN.md §16): the record-store paths
# must analyze a campaign under an address-space cap that the in-memory CSV
# path cannot fit.
#
# The gate self-calibrates instead of hard-coding a byte budget: it runs a
# medium campaign to a store, converts it to CSV, measures VmPeak of the
# streamed analysis (--from-store) and the in-memory analysis (load_csv)
# via the mem.vm_peak_kb line of --metrics-summary, then re-runs both under
# `ulimit -v` pinned halfway between the two peaks. The streamed run must
# succeed; the in-memory run must die. A calibration gap below MIN_GAP_KB
# fails the gate outright — that would mean streaming stopped saving memory.
#
# Usage: tools/ci_memcap_check.sh path/to/tcppred_campaign path/to/tcppred_analyze
set -eu

CAMPAIGN=${1:?usage: ci_memcap_check.sh CAMPAIGN_BIN ANALYZE_BIN}
ANALYZE=${2:?usage: ci_memcap_check.sh CAMPAIGN_BIN ANALYZE_BIN}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Big enough that whole-dataset retention is megabytes above the streamed
# peak (the calibration gap), small enough to generate in well under a
# minute: 4 paths x 2 traces x 1000 epochs = 8000 records.
ARGS=(--paths 4 --traces 2 --epochs 1000 --transfer-s 0.5 --seed 23)
MIN_GAP_KB=512

vm_peak() {  # file-with-metrics-summary -> VmPeak in kB
    awk '/mem\.vm_peak_kb/ {print $3; exit}' "$1"
}

echo "== generate the campaign (streamed, then convert to CSV)"
"$CAMPAIGN" "${ARGS[@]}" --out "$WORK/c.store" --format store --jobs 4 2>/dev/null
"$CAMPAIGN" --convert "$WORK/c.store" --out "$WORK/c.csv" 2>/dev/null

echo "== calibrate: VmPeak of streamed vs in-memory analysis"
"$ANALYZE" --from-store "$WORK/c.store" --metrics-summary \
    >"$WORK/stream.out" 2>"$WORK/stream.err"
"$ANALYZE" "$WORK/c.csv" --metrics-summary \
    >"$WORK/mem.out" 2>"$WORK/mem.err"
cmp -s "$WORK/stream.out" "$WORK/mem.out" || {
    echo "FAIL: streamed and in-memory reports differ"; exit 1; }

STREAM_KB=$(vm_peak "$WORK/stream.err")
MEM_KB=$(vm_peak "$WORK/mem.err")
[ -n "$STREAM_KB" ] && [ -n "$MEM_KB" ] || {
    echo "FAIL: no mem.vm_peak_kb in --metrics-summary output"; exit 1; }
GAP_KB=$((MEM_KB - STREAM_KB))
echo "   streamed peak ${STREAM_KB} kB, in-memory peak ${MEM_KB} kB (gap ${GAP_KB} kB)"
if [ "$GAP_KB" -lt "$MIN_GAP_KB" ]; then
    echo "FAIL: calibration gap ${GAP_KB} kB < ${MIN_GAP_KB} kB —"
    echo "      the streamed path is no longer saving memory over load_csv"
    exit 1
fi

CAP_KB=$((STREAM_KB + GAP_KB / 2))
echo "== enforce: ulimit -v ${CAP_KB} kB"

# The streamed analysis (and the streamed campaign itself) must fit.
(ulimit -v "$CAP_KB"; exec "$ANALYZE" --from-store "$WORK/c.store") \
    >"$WORK/capped.out" 2>/dev/null || {
    echo "FAIL: streamed analysis died under the cap"; exit 1; }
cmp -s "$WORK/capped.out" "$WORK/stream.out" || {
    echo "FAIL: capped streamed report differs from uncapped"; exit 1; }
echo "   ok: --from-store fits in ${CAP_KB} kB"

(ulimit -v "$CAP_KB"; exec "$CAMPAIGN" "${ARGS[@]}" \
    --out "$WORK/capped.store" --format store --jobs 1) >/dev/null 2>&1 || {
    echo "FAIL: streamed campaign died under the cap"; exit 1; }
echo "   ok: --format store campaign fits in ${CAP_KB} kB"

# The in-memory path must NOT fit — if it does, the cap proves nothing.
if (ulimit -v "$CAP_KB"; exec "$ANALYZE" "$WORK/c.csv") >/dev/null 2>&1; then
    echo "FAIL: in-memory analysis fit under the cap meant to exclude it"
    exit 1
fi
echo "   ok: in-memory analysis exceeds the cap (as intended)"

echo "ci_memcap_check: past-RAM memory gate passed"
