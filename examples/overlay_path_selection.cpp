// Overlay path selection (the RON use case that motivates the paper):
// three candidate overlay paths lead to the same destination; before each
// bulk transfer the application predicts the throughput of every path from
// its transfer history (HB, Holt-Winters + LSO) — falling back to the
// formula-based predictor while a path has no history — and routes the
// transfer over the best-predicted path.
//
// Prints the achieved throughput of the predictive policy against an
// oracle (best path each round) and a static policy (always path 0).
//
// Build & run:  ./build/examples/overlay_path_selection
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/predictor_registry.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "probe/bulk_transfer.hpp"
#include "probe/ping_prober.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

using namespace tcppred;

namespace {

/// One candidate overlay path plus its background load and its predictor.
struct candidate {
    std::unique_ptr<net::duplex_path> path;
    std::unique_ptr<net::poisson_source> cross;
    std::unique_ptr<core::predictor> history;
    double capacity_bps{0};
    net::flow_id next_flow{1000};
};

double run_transfer(sim::scheduler& sched, candidate& c, double duration) {
    net::path_conduit conduit(*c.path);
    tcp::tcp_config cfg;
    cfg.initial_ssthresh_segments = 128;
    probe::bulk_transfer xfer(sched, conduit, c.next_flow++, core::seconds{duration},
                              cfg);
    xfer.start();
    while (!xfer.done()) sched.step();
    return xfer.result()->goodput().value();
}

double fb_cold_start(sim::scheduler& sched, candidate& c) {
    probe::ping_config pc;
    pc.count = 200;
    probe::ping_prober pinger(sched, *c.path, c.next_flow++, pc);
    pinger.start();
    while (!pinger.done()) sched.step();
    core::path_measurement m;
    m.rtt = pinger.result()->mean_rtt();
    m.loss_rate = pinger.result()->loss_rate();
    m.avail_bw = core::bits_per_second{0.0};  // no avail-bw probe: window bound fallback
    return core::make_predictor("fb:pftk")
        ->predict(core::epoch_inputs::valid(m))
        .value_bps;
}

}  // namespace

int main() {
    std::printf("overlay path selection with TCP throughput prediction\n\n");

    sim::scheduler sched;
    sim::rng rng(2024);

    // Three overlay paths with different capacities, RTTs and (drifting)
    // background loads.
    std::vector<candidate> paths;
    const double caps[] = {10e6, 12e6, 8e6};
    const double rtts[] = {0.030, 0.090, 0.050};
    const double loads[] = {0.55, 0.25, 0.40};
    for (int i = 0; i < 3; ++i) {
        candidate c;
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{caps[i]}, core::seconds{rtts[i] / 2}, 80}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtts[i] / 2}, 512}};
        c.path = std::make_unique<net::duplex_path>(sched, fwd, rev);
        c.cross = std::make_unique<net::poisson_source>(
            sched, *c.path, 0, 9000 + static_cast<net::flow_id>(i),
            sim::derive_seed(7, "cross", static_cast<std::uint64_t>(i)),
            loads[i] * caps[i]);
        c.cross->start();
        c.history = core::make_predictor("0.8-HW-LSO");
        c.capacity_bps = caps[i];
        c.next_flow = 1000 + static_cast<net::flow_id>(i) * 1000;
        paths.push_back(std::move(c));
    }
    sched.run_until(2.0);

    double chosen_sum = 0, oracle_sum = 0, static_sum = 0;
    std::printf("%-6s %12s %12s %12s %8s %12s\n", "round", "pred p0", "pred p1", "pred p2",
                "chosen", "achieved");
    const int rounds = 12;
    for (int round = 0; round < rounds; ++round) {
        // Occasionally the background load changes (level shifts).
        if (round == 6) paths[1].cross->set_rate(0.75 * paths[1].capacity_bps);

        // Predict each path: HB once history exists, FB before that.
        std::vector<double> preds;
        for (auto& c : paths) {
            const core::prediction hb = c.history->predict(core::epoch_inputs::absent());
            preds.push_back(hb.usable() ? hb.value_bps : fb_cold_start(sched, c));
        }
        int best = 0;
        for (int i = 1; i < 3; ++i) {
            if (preds[i] > preds[best]) best = i;
        }

        // Measure ALL paths this round (so the oracle and the histories are
        // well defined); only the chosen path's result counts for the policy.
        std::vector<double> achieved;
        for (auto& c : paths) achieved.push_back(run_transfer(sched, c, 6.0));
        for (std::size_t i = 0; i < paths.size(); ++i) {
            paths[i].history->observe(achieved[i]);
        }

        chosen_sum += achieved[static_cast<std::size_t>(best)];
        oracle_sum += *std::max_element(achieved.begin(), achieved.end());
        static_sum += achieved[0];
        std::printf("%-6d %12.2f %12.2f %12.2f %8d %12.2f\n", round, preds[0] / 1e6,
                    preds[1] / 1e6, preds[2] / 1e6, best,
                    achieved[static_cast<std::size_t>(best)] / 1e6);
        sched.run_until(sched.now() + 3.0);
    }

    std::printf("\nmean achieved throughput over %d rounds:\n", rounds);
    std::printf("  predictive policy: %.2f Mbps\n", chosen_sum / rounds / 1e6);
    std::printf("  oracle (hindsight): %.2f Mbps\n", oracle_sum / rounds / 1e6);
    std::printf("  static path 0:      %.2f Mbps\n", static_sum / rounds / 1e6);
    return 0;
}
