// Running your own measurement study: the full pipeline the repository is
// built around, end to end on a small custom testbed — define paths, run a
// campaign of epochs, persist the dataset, and analyze both predictor
// families over it with one streaming engine pass. This is the template to
// adapt for new experiments.
//
// Build & run:  ./build/examples/measurement_study
#include <cstdio>

#include "analysis/evaluation.hpp"
#include "analysis/stats.hpp"
#include "testbed/campaign.hpp"

using namespace tcppred;
using namespace tcppred::testbed;

int main() {
    std::printf("a self-contained measurement study on a custom 6-path testbed\n\n");

    // --- 1. Define the campaign: 6 paths, 1 trace each, 40 epochs.
    campaign_config cfg;
    cfg.paths = 6;
    cfg.traces_per_path = 1;
    cfg.epochs_per_trace = 40;
    cfg.seed = 424242;
    cfg.epoch.transfer = core::seconds{8.0};

    // --- 2. Collect (prints nothing; takes a few seconds of CPU).
    const dataset data = run_campaign(cfg);
    std::printf("collected %zu epochs over %zu paths\n", data.records.size(),
                data.paths.size());

    // --- 3. Persist and reload, exactly like the cached benchmark campaigns.
    const auto file = data_dir() / "example_study.csv";
    std::filesystem::create_directories(data_dir());
    save_csv(data, file);
    const dataset loaded = load_csv(file);
    std::printf("round-tripped through %s (%zu records)\n\n", file.string().c_str(),
                loaded.records.size());

    // --- 4. One engine pass evaluates the FB predictor and every HB spec.
    const analysis::evaluation_engine engine;
    const auto results = engine.run(
        loaded, {"fb:pftk", "1-MA", "10-MA", "10-MA-LSO", "0.8-HW", "0.8-HW-LSO"});

    // Formula-based accuracy.
    const auto errors = results[0].epoch_errors();
    std::size_t over = 0;
    for (const double e : errors) over += e > 0 ? 1 : 0;
    std::printf("FB prediction over %zu epochs: median E %.2f, %zu%% overestimates\n",
                errors.size(), analysis::median(errors), over * 100 / errors.size());

    // --- 5. History-based accuracy, per predictor.
    std::printf("\nHB per-trace RMSRE (median across traces):\n");
    for (std::size_t i = 1; i < results.size(); ++i) {
        std::printf("  %-12s %.3f\n", results[i].name.c_str(),
                    analysis::median(results[i].trace_rmsres()));
    }

    // --- 6. The paper's headline relation: trace CoV vs HB error.
    const auto pts = analysis::cov_vs_rmsre(loaded, "0.8-HW-LSO");
    std::vector<double> cov, rmsre;
    for (const auto& p : pts) {
        cov.push_back(p.cov);
        rmsre.push_back(p.rmsre);
    }
    std::printf("\ncorr(trace CoV, HW-LSO RMSRE) = %.2f over %zu traces\n",
                analysis::pearson(cov, rmsre), pts.size());
    std::printf("\nadapt campaign_config / path_catalog to design your own study.\n");
    return 0;
}
