// TCP-based streaming with predictability-aware rate selection — the
// application §4.2.8 of the paper points at: "applications that care more
// for throughput predictability than throughput maximization should perform
// transfers with a limited advertised window so that they do not attempt to
// saturate the underlying avail-bw" (real-time grid computing, TCP-based
// streaming, overlay peer selection).
//
// A streaming client picks a bitrate for each 10-second segment from an HB
// forecast of its TCP throughput. Two configurations are compared on the
// same path and background load:
//   * congestion-limited fetches (W = 1 MB): higher but volatile throughput;
//   * window-limited fetches (W sized to ~1.5x the target bitrate):
//     lower but stable throughput.
// The score is rebuffering: segments whose fetch was slower than playback.
//
// Build & run:  ./build/examples/adaptive_streaming
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/predictor_registry.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

using namespace tcppred;

namespace {

constexpr double k_segment_s = 10.0;  // playback duration of one segment
const std::vector<double> k_bitrates{0.5e6, 1e6, 1.5e6, 2e6, 3e6, 4.5e6, 6e6};

struct session_stats {
    int segments{0};
    int rebuffers{0};
    double mean_bitrate{0.0};
    double mean_error{0.0};
};

/// Fetch one `bytes`-sized segment with max window `wnd`; returns seconds.
double fetch_segment(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
                     std::uint64_t bytes, std::uint64_t wnd) {
    net::path_conduit conduit(path);
    tcp::tcp_config cfg;
    cfg.variant = tcp::tcp_variant::sack;
    cfg.initial_ssthresh_segments = 64;
    cfg.max_window_bytes = wnd;
    tcp::tcp_connection conn(sched, conduit, flow, cfg);
    const double t0 = sched.now();
    conn.start();
    while (conn.sender().acked_bytes() < bytes && sched.now() < t0 + 120.0) {
        if (!sched.step()) break;
    }
    conn.quiesce();
    return sched.now() - t0;
}

session_stats stream(sim::scheduler& sched, net::duplex_path& path,
                     net::poisson_source& cross, double cap, bool window_limited,
                     net::flow_id flow_base, std::uint64_t seed) {
    sim::rng load_rng(seed);
    const auto forecaster = core::make_predictor("0.8-HW-LSO");
    session_stats stats;
    double sum_rate = 0.0, sum_abs_err = 0.0;
    int scored = 0;

    for (int seg = 0; seg < 36; ++seg) {
        // Background load drifts between segments.
        if (seg % 9 == 8) cross.set_rate(load_rng.uniform(0.25, 0.5) * cap);

        // Pick the highest bitrate safely below the forecast.
        const core::prediction forecast =
            forecaster->predict(core::epoch_inputs::absent());
        double bitrate = k_bitrates.front();
        if (forecast.usable()) {
            for (const double b : k_bitrates) {
                if (b <= forecast.value_bps * 0.95) bitrate = b;
            }
        }

        const auto bytes = static_cast<std::uint64_t>(bitrate * k_segment_s / 8.0);
        // Window-limited fetches size W for the NEXT bitrate rung: enough
        // headroom to observe whether an upgrade would be sustainable,
        // without saturating the path the way W = 1 MB does.
        double probe_rate = k_bitrates.back();
        for (const double b : k_bitrates) {
            if (b > bitrate) {
                probe_rate = b;
                break;
            }
        }
        const std::uint64_t wnd =
            window_limited
                ? std::max<std::uint64_t>(
                      16 * 1024,
                      static_cast<std::uint64_t>(probe_rate * 1.75 * 0.06 / 8.0))
                : (1u << 20);
        const double took = fetch_segment(sched, path, flow_base + seg, bytes, wnd);
        const double achieved = static_cast<double>(bytes) * 8.0 / took;

        ++stats.segments;
        if (took > k_segment_s) ++stats.rebuffers;
        sum_rate += bitrate;
        if (forecast.usable()) {
            sum_abs_err += std::abs(core::relative_error(forecast.value_bps, achieved));
            ++scored;
        }
        forecaster->observe(achieved);
        // Idle until the playback deadline (pacing between segments).
        sched.run_until(sched.now() + std::max(0.0, k_segment_s - took) + 0.5);
    }
    stats.mean_bitrate = sum_rate / stats.segments;
    stats.mean_error = scored > 0 ? sum_abs_err / scored : 0.0;
    return stats;
}

}  // namespace

int main() {
    std::printf("adaptive TCP streaming: window-limited vs congestion-limited fetches\n\n");

    const double cap = 10e6;
    for (const bool window_limited : {false, true}) {
        sim::scheduler sched;
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{cap}, core::seconds{0.03}, 60}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{0.03}, 512}};
        net::duplex_path path(sched, fwd, rev);
        net::poisson_source cross(sched, path, 0, 999, 11, 0.3 * cap);
        net::pareto_onoff_config bcfg;
        net::pareto_onoff_source bursts(sched, path, 0, 998, 12, bcfg);
        bursts.set_mean_rate(0.25 * cap);
        cross.start();
        bursts.start();
        sched.run_until(2.0);

        const session_stats s = stream(sched, path, cross, cap, window_limited, 1000, 77);
        std::printf("%-22s segments %2d | rebuffers %2d | mean bitrate %.2f Mbps | "
                    "mean |forecast error| %.2f\n",
                    window_limited ? "window-limited (W~rate)" : "congestion-limited",
                    s.segments, s.rebuffers, s.mean_bitrate / 1e6, s.mean_error);
    }
    std::printf("\ntakeaway (s4.2.8): capping the window sacrifices peak throughput but "
                "makes the forecast reliable — fewer rebuffers at a similar bitrate.\n");
    return 0;
}
