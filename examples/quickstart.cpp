// Quickstart: predict the throughput of a bulk TCP transfer on a simulated
// path, first formula-based (measure the path, apply Eq. 3), then
// history-based (forecast from previous transfers), and compare both with
// what the transfer actually achieves.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/metrics.hpp"
#include "core/predictor_registry.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "probe/bulk_transfer.hpp"
#include "probe/pathload.hpp"
#include "probe/ping_prober.hpp"
#include "sim/scheduler.hpp"

using namespace tcppred;

int main() {
    std::printf("tcppred quickstart: predicting large-transfer TCP throughput\n\n");

    // --- 1. A simulated Internet path: 10 Mbps bottleneck, 60 ms RTT, and
    //        ~40%% background load.
    sim::scheduler sched;
    std::vector<net::hop_config> fwd{
        net::hop_config{core::bits_per_second{100e6}, core::seconds{0.006}, 512},
        net::hop_config{core::bits_per_second{10e6}, core::seconds{0.018}, 60},
        net::hop_config{core::bits_per_second{100e6}, core::seconds{0.006}, 512}};
    std::vector<net::hop_config> rev{net::hop_config{
        core::bits_per_second{100e6}, core::seconds{0.030}, 512}};
    net::duplex_path path(sched, fwd, rev);
    net::poisson_source cross(sched, path, 1, /*flow=*/99, /*seed=*/7, 4e6);
    cross.start();
    sched.run_until(2.0);  // warm up the background load

    // --- 2. Formula-based prediction: measure avail-bw, RTT and loss rate
    //        non-intrusively, then apply Eq. 3 of the paper.
    probe::pathload_config plc;
    plc.max_rate = core::bits_per_second{13e6};
    probe::pathload availbw(sched, path, /*flow=*/2, plc);
    availbw.start();
    while (!availbw.done()) sched.step();

    probe::ping_prober pinger(sched, path, /*flow=*/3, probe::ping_config{});
    pinger.start();
    while (!pinger.done()) sched.step();

    core::path_measurement meas;
    meas.avail_bw = availbw.result()->estimate();
    meas.rtt = pinger.result()->mean_rtt();
    meas.loss_rate = pinger.result()->loss_rate();
    std::printf("measured a priori: avail-bw %.2f Mbps, RTT %.1f ms, loss %.4f\n",
                meas.avail_bw.value() / 1e6, meas.rtt.value() * 1e3,
                meas.loss_rate.value());

    // Both predictor families come from the registry (MSS 1460, b = 2,
    // W = 1 MB by default — core::predictor_config to change them).
    const auto fb_pred = core::make_predictor("fb:pftk");
    const core::prediction fb = fb_pred->predict(core::epoch_inputs::valid(meas));
    std::printf("FB prediction (Eq. 3): %.2f Mbps  [branch: %s]\n\n",
                fb.value_bps / 1e6,
                fb.inputs_used.source == core::prediction_source::model_based
                    ? "PFTK on (T^, p^)"
                : fb.inputs_used.source == core::prediction_source::avail_bw
                    ? "avail-bw"
                    : "window bound W/T^");

    // --- 3. Run repeated bulk transfers; feed each observation to an
    //        HB predictor (Holt-Winters wrapped with the LSO heuristics)
    //        and forecast the next transfer one step ahead.
    const auto hb = core::make_predictor("0.8-HW-LSO");
    tcp::tcp_config tcp_cfg;
    tcp_cfg.initial_ssthresh_segments = 128;

    std::printf("%-6s %14s %14s %14s %10s\n", "run", "FB pred Mbps", "HB pred Mbps",
                "actual Mbps", "HB error");
    for (int run = 0; run < 8; ++run) {
        const core::prediction hb_forecast = hb->predict(core::epoch_inputs::absent());

        net::path_conduit conduit(path);
        probe::bulk_transfer xfer(sched, conduit, /*flow=*/100 + run,
                                  /*duration=*/core::seconds{10.0}, tcp_cfg);
        xfer.start();
        while (!xfer.done()) sched.step();
        const double actual = xfer.result()->goodput().value();

        std::printf("%-6d %14.2f", run, fb.value_bps / 1e6);
        if (hb_forecast.usable()) {
            std::printf(" %14.2f %14.2f %+9.2f\n", hb_forecast.value_bps / 1e6,
                        actual / 1e6, core::relative_error(hb_forecast.value_bps, actual));
        } else {
            std::printf(" %14s %14.2f %10s\n", "(no history)", actual / 1e6, "-");
        }
        hb->observe(actual);
        sched.run_until(sched.now() + 5.0);  // idle gap between transfers
    }

    std::printf("\ntakeaway: with even a short history the HB forecast tracks the "
                "achieved throughput; the FB prediction is only as good as the a-priori "
                "measurements (see bench/fig02* and the paper's Section 4).\n");
    return 0;
}
