// Peer-to-peer parallel download with predictive chunk allocation — one of
// the applications the paper's introduction motivates. A client downloads a
// file from four mirrors in parallel; chunks are assigned proportionally to
// each mirror's predicted TCP throughput (Moving Average + LSO over past
// downloads). Compared with a naive equal split, the predictive split
// finishes when the slowest mirror finishes much earlier.
//
// Build & run:  ./build/examples/parallel_download
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/predictor_registry.hpp"
#include "net/cross_traffic.hpp"
#include "net/path.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

using namespace tcppred;

namespace {

struct mirror {
    std::unique_ptr<net::duplex_path> path;
    std::unique_ptr<net::poisson_source> cross;
    std::unique_ptr<core::predictor> predictor;
    net::flow_id next_flow{1};
};

/// Transfer `bytes` from one mirror; returns (seconds, achieved bps).
std::pair<double, double> fetch(sim::scheduler& sched, mirror& m, std::uint64_t bytes) {
    net::path_conduit conduit(*m.path);
    tcp::tcp_config cfg;
    cfg.initial_ssthresh_segments = 128;
    tcp::tcp_connection conn(sched, conduit, m.next_flow++, cfg);
    const double t0 = sched.now();
    conn.start();
    while (conn.sender().acked_bytes() < bytes && sched.now() < t0 + 300.0) {
        if (!sched.step()) break;
    }
    conn.quiesce();
    const double took = sched.now() - t0;
    return {took, took > 0 ? static_cast<double>(bytes) * 8.0 / took : 0.0};
}

}  // namespace

int main() {
    std::printf("parallel download with predictive chunk allocation\n\n");

    sim::scheduler sched;
    std::vector<mirror> mirrors;
    const double caps[] = {10e6, 2e6, 12e6, 6e6};
    const double rtts[] = {0.030, 0.050, 0.110, 0.070};
    const double loads[] = {0.5, 0.2, 0.3, 0.6};
    for (int i = 0; i < 4; ++i) {
        mirror m;
        std::vector<net::hop_config> fwd{net::hop_config{
            core::bits_per_second{caps[i]}, core::seconds{rtts[i] / 2}, 64}};
        std::vector<net::hop_config> rev{net::hop_config{
            core::bits_per_second{100e6}, core::seconds{rtts[i] / 2}, 512}};
        m.path = std::make_unique<net::duplex_path>(sched, fwd, rev);
        m.cross = std::make_unique<net::poisson_source>(
            sched, *m.path, 0, 900 + static_cast<net::flow_id>(i),
            sim::derive_seed(3, "load", static_cast<std::uint64_t>(i)),
            loads[i] * caps[i]);
        m.cross->start();
        m.predictor = core::make_predictor("10-MA-LSO");
        m.next_flow = 100 + static_cast<net::flow_id>(i) * 100;
        mirrors.push_back(std::move(m));
    }
    sched.run_until(2.0);

    // --- Phase 1: build history with a few warmup downloads per mirror.
    std::printf("warmup downloads (seed the per-mirror history):\n");
    for (int round = 0; round < 5; ++round) {
        for (std::size_t i = 0; i < mirrors.size(); ++i) {
            const auto [took, bps] = fetch(sched, mirrors[i], 2 * 1000 * 1000);
            mirrors[i].predictor->observe(bps);
            if (round == 4) {
                std::printf("  mirror %zu: last observed %.2f Mbps, forecast %.2f Mbps\n",
                            i, bps / 1e6,
                            mirrors[i].predictor->predict(core::epoch_inputs::absent())
                                    .value_bps /
                                1e6);
            }
        }
        sched.run_until(sched.now() + 2.0);
    }

    const std::uint64_t file_bytes = 40ull * 1000 * 1000;

    // --- Phase 2a: naive equal split.
    double equal_finish = 0.0;
    for (auto& m : mirrors) {
        const auto [took, bps] = fetch(sched, m, file_bytes / mirrors.size());
        equal_finish = std::max(equal_finish, took);
        sched.run_until(sched.now() + 1.0);
    }

    // --- Phase 2b: predictive proportional split.
    double total_pred = 0.0;
    std::vector<double> preds;
    for (auto& m : mirrors) {
        preds.push_back(m.predictor->predict(core::epoch_inputs::absent()).value_bps);
        total_pred += preds.back();
    }
    double pred_finish = 0.0;
    std::printf("\npredictive split of a %.0f MB file:\n", file_bytes / 1e6);
    for (std::size_t i = 0; i < mirrors.size(); ++i) {
        const auto chunk =
            static_cast<std::uint64_t>(static_cast<double>(file_bytes) * preds[i] / total_pred);
        const auto [took, bps] = fetch(sched, mirrors[i], chunk);
        pred_finish = std::max(pred_finish, took);
        std::printf("  mirror %zu: predicted %.2f Mbps -> %5.1f MB chunk, fetched at "
                    "%.2f Mbps in %.1f s\n",
                    i, preds[i] / 1e6, static_cast<double>(chunk) / 1e6, bps / 1e6, took);
        sched.run_until(sched.now() + 1.0);
    }

    std::printf("\ncompletion time (slowest mirror):\n");
    std::printf("  equal split:       %.1f s\n", equal_finish);
    std::printf("  predictive split:  %.1f s   (%.0f%% faster)\n", pred_finish,
                100.0 * (equal_finish - pred_finish) / equal_finish);
    return 0;
}
