// The packet: the unit every queue, link, endpoint and probe exchanges.
#pragma once

#include <cstdint>

namespace tcppred::net {

/// Identifies a flow end-to-end. Flow ids are allocated by the world that
/// builds the topology; id 0 is reserved/invalid.
using flow_id = std::uint64_t;

/// What kind of traffic a packet carries. Only used for per-class
/// accounting (e.g. loss rates seen by probes vs by TCP); forwarding is
/// class-blind, as in a real FIFO router.
enum class packet_kind : std::uint8_t {
    tcp_data,
    tcp_ack,
    probe,       ///< ping / pathload probe
    probe_reply, ///< echoed probe on the reverse path
    cross,       ///< background (unresponsive) cross traffic
};

/// A simulated packet. Passed by value: it is a small POD.
struct packet {
    flow_id flow{0};
    packet_kind kind{packet_kind::cross};
    std::uint32_t size_bytes{0};  ///< wire size including headers
    std::uint64_t seq{0};         ///< segment seq / probe index
    std::uint64_t ack{0};         ///< cumulative ACK (tcp_ack only)
    /// One SACK block [sack_begin, sack_end): the out-of-order run that the
    /// triggering segment belongs to (tcp_ack from a SACK receiver only).
    std::uint64_t sack_begin{0};
    std::uint64_t sack_end{0};
    double sent_at{0.0};          ///< timestamp written by the sender
};

/// IPv4 + TCP header overhead used to size segments and ACKs.
inline constexpr std::uint32_t tcp_ip_header_bytes = 40;
/// ping-style probe packet size used by the paper's homespun prober.
inline constexpr std::uint32_t ping_probe_bytes = 41;

}  // namespace tcppred::net
