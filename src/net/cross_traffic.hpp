// Unresponsive (open-loop) cross-traffic sources. They inject packets into
// a single queue of a path: the background load against which the target
// flow, the probes and the elastic flows compete.
#pragma once

#include <array>
#include <cstdint>

#include "net/packet.hpp"
#include "net/path.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::net {

/// How unresponsive cross traffic is realized at the shared queue.
///
///  - `packet`: every cross packet is a scheduler event transiting the link
///    (exact drop-tail interaction; the default, and the model all default
///    goldens are pinned against).
///  - `fluid`: the aggregate is a piecewise-constant fluid rate applied to
///    the link (net::link::add_fluid_rate). Foreground packets wait behind
///    the fluid backlog and are dropped when packets + fluid overflow the
///    buffer, but no per-packet cross events exist — a Poisson source costs
///    zero events, an on/off source two per burst cycle. Statistically
///    equivalent at burst granularity, not packet granularity: see
///    DESIGN.md §13.5 for the equivalence argument and pinned goldens.
enum class cross_model {
    packet,
    fluid,
};

/// Empirical-style Internet packet size mix (40/576/1500 with the classic
/// trimodal weights). Gives the cross traffic realistic per-packet
/// granularity at the queue.
struct packet_size_mix {
    std::array<std::uint32_t, 3> sizes{40, 576, 1500};
    std::array<double, 3> weights{0.3, 0.2, 0.5};

    [[nodiscard]] double mean_bytes() const noexcept {
        double m = 0.0;
        for (std::size_t i = 0; i < sizes.size(); ++i) m += weights[i] * sizes[i];
        return m;
    }

    [[nodiscard]] std::uint32_t draw(sim::rng& r) const {
        double u = r.uniform();
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            if (u < weights[i]) return sizes[i];
            u -= weights[i];
        }
        return sizes.back();
    }
};

/// Poisson packet-arrival source at a configurable bit rate.
class poisson_source {
public:
    poisson_source(sim::scheduler& sched, duplex_path& path, std::size_t link_index,
                   flow_id flow, std::uint64_t seed, double rate_bps,
                   packet_size_mix mix = {}, cross_model model = cross_model::packet);

    /// Begin emitting packets (idempotent). In fluid mode this applies the
    /// constant rate to the link instead — no events at all.
    void start();
    /// Stop emitting (already-queued packets still drain).
    void stop();
    /// Change the offered load; takes effect from the next arrival (packet
    /// mode) or immediately (fluid mode).
    void set_rate(double rate_bps);
    [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }

private:
    void schedule_next();

    sim::scheduler* sched_;
    duplex_path* path_;
    std::size_t link_index_;
    flow_id flow_;
    sim::rng rng_;
    double rate_bps_;
    packet_size_mix mix_;
    cross_model model_;
    bool running_{false};
    std::uint64_t seq_{0};
};

/// Parameters of a Pareto on/off source: heavy-tailed ON periods at a fixed
/// peak rate, exponential OFF periods. The standard model for bursty,
/// LRD-like background traffic; its mean rate is peak * on/(on+off).
struct pareto_onoff_config {
    double peak_rate_bps{4e6};
    double mean_on_s{0.20};
    double mean_off_s{0.30};
    double pareto_shape{1.9};  ///< ON-period tail index (1,2] = very bursty
    std::uint32_t packet_bytes{1500};
};

class pareto_onoff_source {
public:
    pareto_onoff_source(sim::scheduler& sched, duplex_path& path, std::size_t link_index,
                        flow_id flow, std::uint64_t seed, pareto_onoff_config cfg,
                        cross_model model = cross_model::packet);

    void start();
    void stop();

    /// Long-run average offered rate.
    [[nodiscard]] double mean_rate_bps() const noexcept {
        return cfg_.peak_rate_bps * cfg_.mean_on_s / (cfg_.mean_on_s + cfg_.mean_off_s);
    }

    /// Scale the peak rate so the mean offered rate equals `rate_bps`.
    void set_mean_rate(double rate_bps);

private:
    void begin_on_period();
    void end_on_period();
    void emit(double until);

    sim::scheduler* sched_;
    duplex_path* path_;
    std::size_t link_index_;
    flow_id flow_;
    sim::rng rng_;
    pareto_onoff_config cfg_;
    cross_model model_;
    bool running_{false};
    double applied_rate_bps_{0.0};  ///< fluid rate currently on the link
    std::uint64_t seq_{0};
};

}  // namespace tcppred::net
