// A duplex end-to-end path: a chain of forward links (data direction), a
// chain of reverse links (ACK direction), per-flow delivery demux at both
// ends, and hooks for cross traffic that shares only part of the path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/units.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::net {

/// Static description of one hop of a path. Capacity and delay carry their
/// units in the type, so swapping them at a construction site is a compile
/// error (tests/compile_fail/); the packet-level hot path below this
/// boundary runs on raw doubles.
struct hop_config {
    core::bits_per_second capacity{10e6};
    core::seconds prop_delay{0.010};
    std::size_t buffer_packets{64};
};

/// Delivery callback for packets reaching an endpoint.
using delivery_handler = std::function<void(packet)>;

/// Flat per-flow handler table. Flow ids are small dense integers allocated
/// by the world that builds the topology (testbed plan: 1..5 for tools,
/// 10..13 for open-loop cross traffic, 100+ for elastic flows), so a
/// direct-indexed vector replaces the hash map on the per-packet delivery
/// path. Registration grows the table; lookup is a bounds check + load.
class flow_table {
public:
    void set(flow_id flow, delivery_handler h) {
        if (flow >= slots_.size()) {
            if (!h) return;  // unregistering a never-registered flow
            slots_.resize(static_cast<std::size_t>(flow) + 1);
        }
        slots_[static_cast<std::size_t>(flow)] = std::move(h);
    }

    /// Handler for `flow`, or nullptr when none is registered.
    [[nodiscard]] const delivery_handler* find(flow_id flow) const noexcept {
        if (flow >= slots_.size()) return nullptr;
        const delivery_handler& h = slots_[static_cast<std::size_t>(flow)];
        return h ? &h : nullptr;
    }

private:
    std::vector<delivery_handler> slots_;
};

/// Duplex multi-hop path.
///
/// End-to-end flows enter with `send_forward`/`send_reverse` and are
/// delivered to the handler registered for their flow id at the opposite
/// end. Cross traffic that shares only one queue is injected with
/// `inject_forward(link_index, packet)` and *exits* the path right after
/// that link (one-hop cross traffic, the classic congestion setup); an
/// optional exit handler receives it (used by elastic cross flows to close
/// their control loop).
class duplex_path {
public:
    duplex_path(sim::scheduler& sched, std::span<const hop_config> forward,
                std::span<const hop_config> reverse);

    duplex_path(const duplex_path&) = delete;
    duplex_path& operator=(const duplex_path&) = delete;

    /// Inject a packet at the head of the forward (data) direction.
    void send_forward(packet p) { route_forward(0, p); }
    /// Inject a packet at the head of the reverse (ACK) direction.
    void send_reverse(packet p) { route_reverse(0, p); }

    /// Register the destination-side delivery handler for `flow`; a null
    /// handler unregisters (late packets are then silently dropped).
    void on_deliver_forward(flow_id flow, delivery_handler h) {
        forward_endpoints_.set(flow, std::move(h));
    }
    /// Register the source-side delivery handler for `flow`; null unregisters.
    void on_deliver_reverse(flow_id flow, delivery_handler h) {
        reverse_endpoints_.set(flow, std::move(h));
    }

    /// Inject cross traffic directly into forward link `link_index`.
    void inject_forward(std::size_t link_index, packet p);

    /// Register where cross-traffic flow `flow`, injected at `link_index`,
    /// goes after transiting that link. Without a handler the packet is
    /// silently sunk.
    void on_cross_exit(flow_id flow, delivery_handler h) {
        cross_exits_.set(flow, std::move(h));
    }

    [[nodiscard]] std::size_t forward_hops() const noexcept { return forward_.size(); }
    [[nodiscard]] std::size_t reverse_hops() const noexcept { return reverse_.size(); }
    [[nodiscard]] link& forward_link(std::size_t i) { return *forward_.at(i); }
    [[nodiscard]] link& reverse_link(std::size_t i) { return *reverse_.at(i); }
    [[nodiscard]] const link& forward_link(std::size_t i) const { return *forward_.at(i); }

    /// Index of the minimum-capacity forward link.
    [[nodiscard]] std::size_t bottleneck_index() const noexcept { return bottleneck_; }
    [[nodiscard]] link& bottleneck() { return *forward_[bottleneck_]; }

    /// Sum of forward+reverse propagation delays: the no-load RTT floor
    /// (excluding serialization).
    [[nodiscard]] core::seconds base_rtt() const noexcept {
        return core::seconds{base_rtt_};
    }

private:
    void route_forward(std::size_t link_index, packet p);
    void route_reverse(std::size_t link_index, packet p);
    void deliver_forward(packet p);
    void deliver_reverse(packet p);

    sim::scheduler* sched_;
    std::vector<std::unique_ptr<link>> forward_;
    std::vector<std::unique_ptr<link>> reverse_;
    static constexpr std::size_t k_not_cross = static_cast<std::size_t>(-1);

    flow_table forward_endpoints_;
    flow_table reverse_endpoints_;
    flow_table cross_exits_;
    std::vector<std::size_t> cross_members_;  ///< flow -> exit-after index (k_not_cross: end-to-end)
    std::size_t bottleneck_{0};
    double base_rtt_{0.0};

    friend class cross_injector;
};

/// Abstract transport used by TCP endpoints, so the same TCP code drives the
/// measured end-to-end path and the single-queue conduits of elastic cross
/// flows.
class conduit {
public:
    virtual ~conduit() = default;
    /// Carry a packet from the TCP sender toward the receiver.
    virtual void send_data(packet p) = 0;
    /// Carry a packet from the TCP receiver toward the sender.
    virtual void send_ack(packet p) = 0;
    /// Register delivery at the receiver side (null handler unregisters).
    virtual void on_deliver_data(flow_id flow, delivery_handler h) = 0;
    /// Register delivery at the sender side (null handler unregisters).
    virtual void on_deliver_ack(flow_id flow, delivery_handler h) = 0;
};

/// The end-to-end path as a conduit for a given flow.
class path_conduit final : public conduit {
public:
    explicit path_conduit(duplex_path& path) : path_(&path) {}

    void send_data(packet p) override { path_->send_forward(p); }
    void send_ack(packet p) override { path_->send_reverse(p); }
    void on_deliver_data(flow_id flow, delivery_handler h) override {
        path_->on_deliver_forward(flow, std::move(h));
    }
    void on_deliver_ack(flow_id flow, delivery_handler h) override {
        path_->on_deliver_reverse(flow, std::move(h));
    }

private:
    duplex_path* path_;
};

/// Conduit for an elastic cross flow that shares exactly one forward link of
/// the path. Data packets wait `access_delay` (the flow's private path up to
/// the shared queue), transit the shared link, then wait `egress_delay`
/// before delivery; ACKs return after `ack_delay` with no congestion (the
/// common assumption that the reverse direction is unloaded).
class shared_link_conduit final : public conduit {
public:
    shared_link_conduit(sim::scheduler& sched, duplex_path& path, std::size_t link_index,
                        flow_id flow, core::seconds access_delay,
                        core::seconds egress_delay, core::seconds ack_delay);

    void send_data(packet p) override;
    void send_ack(packet p) override;
    void on_deliver_data(flow_id flow, delivery_handler h) override;
    void on_deliver_ack(flow_id flow, delivery_handler h) override;

    [[nodiscard]] core::seconds round_trip_floor() const noexcept {
        return core::seconds{access_delay_ + egress_delay_ + ack_delay_};
    }

private:
    sim::scheduler* sched_;
    duplex_path* path_;
    std::size_t link_index_;
    flow_id flow_;
    double access_delay_;
    double egress_delay_;
    double ack_delay_;
    delivery_handler data_handler_;
    delivery_handler ack_handler_;
};

}  // namespace tcppred::net
