#include "net/link.hpp"

namespace tcppred::net {

void link::set_random_loss(double probability, std::uint64_t seed,
                           double burst_duration_s) {
    random_loss_ = probability;
    loss_burst_s_ = burst_duration_s;
    loss_rng_.emplace(seed);
    in_bad_state_ = false;
    if (burst_duration_s > 0.0 && probability > 0.0 && probability < 1.0) {
        // Start inside a good period of the stationary process.
        const double mean_good = burst_duration_s * (1.0 - probability) / probability;
        state_until_ = sched_->now() + loss_rng_->exponential(mean_good);
    } else {
        state_until_ = 0.0;
    }
}

bool link::random_loss_hit() {
    if (random_loss_ <= 0.0 || !loss_rng_) return false;
    if (loss_burst_s_ <= 0.0) return loss_rng_->chance(random_loss_);

    // Gilbert-Elliott in time: advance the two-state machine lazily to now.
    // Mean good duration G solves loss = bad/(bad+good): G = B(1-p)/p.
    const double now = sched_->now();
    while (now >= state_until_) {
        if (in_bad_state_) {
            in_bad_state_ = false;
            const double mean_good = loss_burst_s_ * (1.0 - random_loss_) / random_loss_;
            state_until_ += loss_rng_->exponential(mean_good);
        } else {
            in_bad_state_ = true;
            state_until_ += loss_rng_->exponential(loss_burst_s_);
        }
    }
    return in_bad_state_;
}

void link::set_outage(double from_s, double until_s) {
    outage_from_ = from_s;
    outage_until_ = until_s;
}

bool link::enqueue(packet p) {
    const double now = sched_->now();
    if (now >= outage_from_ && now < outage_until_) {
        ++stats_.dropped;
        return false;
    }
    if (random_loss_hit()) {
        ++stats_.dropped;
        return false;
    }
    if (!transmitting_) {
        ++stats_.enqueued;
        start_transmission(p);
        return true;
    }
    if (queue_.size() >= buffer_packets_) {
        ++stats_.dropped;
        return false;
    }
    ++stats_.enqueued;
    queue_.push_back(p);
    return true;
}

void link::start_transmission(packet p) {
    transmitting_ = true;
    const double tx = tx_time(p.size_bytes);
    stats_.busy_time += tx;
    sched_->schedule_in(tx, [this, p] {
        // Transmission finished: the packet leaves onto the wire and the
        // next queued packet starts serializing immediately.
        ++stats_.delivered;
        stats_.bytes_delivered += p.size_bytes;
        sched_->schedule_in(prop_delay_, [this, p] {
            if (sink_) sink_(p);
        });
        on_tx_complete();
    });
}

void link::on_tx_complete() {
    if (queue_.empty()) {
        transmitting_ = false;
        return;
    }
    packet next = queue_.front();
    queue_.pop_front();
    start_transmission(next);
}

}  // namespace tcppred::net
