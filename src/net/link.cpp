#include "net/link.hpp"

#include <algorithm>

namespace tcppred::net {

void link::set_random_loss(double probability, std::uint64_t seed,
                           double burst_duration_s) {
    random_loss_ = probability;
    loss_burst_s_ = burst_duration_s;
    loss_rng_.emplace(seed);
    in_bad_state_ = false;
    if (burst_duration_s > 0.0 && probability > 0.0 && probability < 1.0) {
        // Start inside a good period of the stationary process.
        const double mean_good = burst_duration_s * (1.0 - probability) / probability;
        state_until_ = sched_->now() + loss_rng_->exponential(mean_good);
    } else {
        state_until_ = 0.0;
    }
}

bool link::random_loss_hit() {
    if (random_loss_ <= 0.0 || !loss_rng_) return false;
    if (loss_burst_s_ <= 0.0) return loss_rng_->chance(random_loss_);

    // Gilbert-Elliott in time: advance the two-state machine lazily to now.
    // Mean good duration G solves loss = bad/(bad+good): G = B(1-p)/p.
    const double now = sched_->now();
    while (now >= state_until_) {
        if (in_bad_state_) {
            in_bad_state_ = false;
            const double mean_good = loss_burst_s_ * (1.0 - random_loss_) / random_loss_;
            state_until_ += loss_rng_->exponential(mean_good);
        } else {
            in_bad_state_ = true;
            state_until_ += loss_rng_->exponential(loss_burst_s_);
        }
    }
    return in_bad_state_;
}

void link::set_outage(double from_s, double until_s) {
    outage_from_ = from_s;
    outage_until_ = until_s;
}

void link::add_fluid_rate(double delta_bps) {
    if (!fluid_active_) {
        fluid_active_ = true;
        fluid_updated_ = sched_->now();
    }
    advance_fluid();  // integrate the old rate up to the change instant
    fluid_rate_ += delta_bps;
    if (fluid_rate_ < 0.0) fluid_rate_ = 0.0;
}

void link::advance_fluid() {
    const double now = sched_->now();
    const double dt = now - fluid_updated_;
    fluid_updated_ = now;
    if (dt <= 0.0) return;
    if (transmitting_) {
        // The server is held by a packet: fluid accumulates behind the queue.
        const double arrived = fluid_rate_ * dt;
        fluid_tail_bits_ += arrived;
        fluid_total_bits_ += arrived;
    } else {
        // Idle server: fluid is served at capacity while arriving at its
        // rate. All fluid is tail fluid here (no packets are queued).
        const double delta = (fluid_rate_ - capacity_bps_) * dt;
        fluid_tail_bits_ = std::max(0.0, fluid_tail_bits_ + delta);
        fluid_total_bits_ = fluid_tail_bits_;
    }
    // Fluid overflowing the shared drop-tail buffer is lost, exactly like a
    // cross packet arriving to a full queue.
    const double cap_bits =
        (static_cast<double>(buffer_packets_) - static_cast<double>(queue_.size())) *
        fluid_pkt_bits_;
    if (fluid_total_bits_ > cap_bits) {
        const double excess = fluid_total_bits_ - std::max(cap_bits, 0.0);
        const double removed = std::min(excess, fluid_tail_bits_);
        fluid_tail_bits_ -= removed;
        fluid_total_bits_ -= removed;
    }
}

bool link::enqueue(packet p) {
    const double now = sched_->now();
    if (now >= outage_from_ && now < outage_until_) {
        ++stats_.dropped;
        return false;
    }
    if (random_loss_hit()) {
        ++stats_.dropped;
        return false;
    }
    if (fluid_active_) advance_fluid();
    if (!transmitting_) {
        // Fluid already queued ahead may fill the buffer on its own.
        if (fluid_active_ &&
            fluid_total_bits_ / fluid_pkt_bits_ >= static_cast<double>(buffer_packets_)) {
            ++stats_.dropped;
            return false;
        }
        ++stats_.enqueued;
        const double ahead = fluid_tail_bits_;
        fluid_tail_bits_ = 0.0;
        start_transmission(p, ahead);
        return true;
    }
    double occupancy = static_cast<double>(queue_.size());
    if (fluid_active_) occupancy += fluid_total_bits_ / fluid_pkt_bits_;
    if (occupancy >= static_cast<double>(buffer_packets_)) {
        ++stats_.dropped;
        return false;
    }
    ++stats_.enqueued;
    queue_.push_back(queued{p, fluid_tail_bits_});
    fluid_tail_bits_ = 0.0;
    return true;
}

void link::start_transmission(packet p, double fluid_ahead_bits) {
    transmitting_ = true;
    double tx = tx_time(p.size_bytes);
    if (fluid_ahead_bits > 0.0) {
        // Serve the fluid queued ahead of this packet first (FIFO): its
        // flush time delays the packet's transmission completion.
        tx += fluid_ahead_bits / capacity_bps_;
        fluid_total_bits_ = std::max(0.0, fluid_total_bits_ - fluid_ahead_bits);
    }
    stats_.busy_time += tx;
    sched_->schedule_in(tx, [this, p] {
        // Transmission finished: the packet leaves onto the wire and the
        // next queued packet starts serializing immediately.
        if (fluid_active_) advance_fluid();
        ++stats_.delivered;
        stats_.bytes_delivered += p.size_bytes;
        sched_->schedule_in(prop_delay_, [this, p] {
            if (sink_) sink_(p);
        });
        on_tx_complete();
    });
}

void link::on_tx_complete() {
    if (queue_.empty()) {
        transmitting_ = false;
        return;
    }
    queued next = queue_.front();
    queue_.pop_front();
    start_transmission(next.p, next.fluid_ahead_bits);
}

}  // namespace tcppred::net
