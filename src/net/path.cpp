#include "net/path.hpp"

#include "core/contracts.hpp"

namespace tcppred::net {

duplex_path::duplex_path(sim::scheduler& sched, std::span<const hop_config> forward,
                         std::span<const hop_config> reverse)
    : sched_(&sched) {
    if (forward.empty() || reverse.empty()) {
        throw std::invalid_argument("duplex_path: need at least one hop per direction");
    }
    forward_.reserve(forward.size());
    for (std::size_t i = 0; i < forward.size(); ++i) {
        const auto& h = forward[i];
        forward_.push_back(std::make_unique<link>(sched, h.capacity.value(),
                                                  h.prop_delay.value(),
                                                  h.buffer_packets));
        base_rtt_ += h.prop_delay.value();
        if (h.capacity < forward[bottleneck_].capacity) bottleneck_ = i;
        forward_[i]->set_sink([this, i](packet p) { route_forward(i + 1, p); });
    }
    reverse_.reserve(reverse.size());
    for (std::size_t i = 0; i < reverse.size(); ++i) {
        const auto& h = reverse[i];
        reverse_.push_back(std::make_unique<link>(sched, h.capacity.value(),
                                                  h.prop_delay.value(),
                                                  h.buffer_packets));
        base_rtt_ += h.prop_delay.value();
        reverse_[i]->set_sink([this, i](packet p) { route_reverse(i + 1, p); });
    }
}

void duplex_path::inject_forward(std::size_t link_index, packet p) {
    const auto flow = static_cast<std::size_t>(p.flow);
    if (flow >= cross_members_.size()) {
        cross_members_.resize(flow + 1, k_not_cross);
    }
    cross_members_[flow] = link_index;
    forward_.at(link_index)->enqueue(p);
}

void duplex_path::route_forward(std::size_t link_index, packet p) {
    // Cross traffic leaves right after its shared link.
    if (link_index > 0) {
        const auto flow = static_cast<std::size_t>(p.flow);
        if (flow < cross_members_.size() && cross_members_[flow] == link_index - 1) {
            if (const delivery_handler* exit = cross_exits_.find(p.flow)) {
                (*exit)(p);
            }
            return;
        }
    }
    if (link_index < forward_.size()) {
        forward_[link_index]->enqueue(p);
        return;
    }
    deliver_forward(p);
}

void duplex_path::route_reverse(std::size_t link_index, packet p) {
    if (link_index < reverse_.size()) {
        reverse_[link_index]->enqueue(p);
        return;
    }
    deliver_reverse(p);
}

void duplex_path::deliver_forward(packet p) {
    if (const delivery_handler* h = forward_endpoints_.find(p.flow)) {
        (*h)(p);
    }
}

void duplex_path::deliver_reverse(packet p) {
    if (const delivery_handler* h = reverse_endpoints_.find(p.flow)) {
        (*h)(p);
    }
}

shared_link_conduit::shared_link_conduit(sim::scheduler& sched, duplex_path& path,
                                         std::size_t link_index, flow_id flow,
                                         core::seconds access_delay,
                                         core::seconds egress_delay,
                                         core::seconds ack_delay)
    : sched_(&sched),
      path_(&path),
      link_index_(link_index),
      flow_(flow),
      access_delay_(access_delay.value()),
      egress_delay_(egress_delay.value()),
      ack_delay_(ack_delay.value()) {
    TCPPRED_EXPECTS(access_delay_ >= 0.0 && egress_delay_ >= 0.0 && ack_delay_ >= 0.0);
    path_->on_cross_exit(flow_, [this](packet p) {
        sched_->schedule_in(egress_delay_, [this, p] {
            if (data_handler_) data_handler_(p);
        });
    });
}

void shared_link_conduit::send_data(packet p) {
    sched_->schedule_in(access_delay_, [this, p] { path_->inject_forward(link_index_, p); });
}

void shared_link_conduit::send_ack(packet p) {
    sched_->schedule_in(ack_delay_, [this, p] {
        if (ack_handler_) ack_handler_(p);
    });
}

void shared_link_conduit::on_deliver_data(flow_id, delivery_handler h) {
    data_handler_ = std::move(h);
}

void shared_link_conduit::on_deliver_ack(flow_id, delivery_handler h) {
    ack_handler_ = std::move(h);
}

}  // namespace tcppred::net
