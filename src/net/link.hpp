// A unidirectional store-and-forward link: finite FIFO drop-tail buffer,
// fixed capacity, fixed propagation delay. The only source of loss and
// queueing delay in the simulator, as in a drop-tail router port.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::net {

/// Per-link counters, split by packet kind where loss accounting needs it.
struct link_stats {
    std::uint64_t enqueued{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped{0};
    std::uint64_t bytes_delivered{0};
    double busy_time{0.0};  ///< cumulative transmission time
};

/// FIFO drop-tail link.
///
/// `enqueue()` either admits the packet into the buffer or drops it (buffer
/// full). Admitted packets are serialized at `capacity_bps` and delivered to
/// the sink `prop_delay` seconds after their transmission completes.
/// Propagation does not serialize: several packets can be "in flight" on the
/// wire simultaneously.
class link {
public:
    /// @param buffer_packets maximum number of packets queued *behind* the
    ///        one in transmission (classic drop-tail buffer size).
    link(sim::scheduler& sched, double capacity_bps, double prop_delay_s,
         std::size_t buffer_packets)
        : sched_(&sched),
          capacity_bps_(capacity_bps),
          prop_delay_(prop_delay_s),
          buffer_packets_(buffer_packets) {}

    link(const link&) = delete;
    link& operator=(const link&) = delete;

    /// Where delivered packets go (next hop's enqueue or endpoint demux).
    void set_sink(std::function<void(packet)> sink) { sink_ = std::move(sink); }

    /// Offer a packet to the link. Returns false (and counts a drop) when
    /// the buffer is full or the packet is hit by random loss.
    bool enqueue(packet p);

    /// Enable random loss on this link, modelling loss that originates
    /// outside the simulated bottleneck (upstream congestion episodes,
    /// noisy access links). Loss follows a time-based Gilbert-Elliott
    /// process: the link alternates between a good state (no extra loss)
    /// and bad episodes during which every arrival is dropped. Episode
    /// durations are exponential with mean `burst_duration_s`; episode
    /// frequency is derived so the long-run loss fraction equals
    /// `probability`. With burst_duration_s == 0 this degenerates to
    /// independent per-packet (Bernoulli) loss.
    void set_random_loss(double probability, std::uint64_t seed,
                         double burst_duration_s = 0.0);

    /// Schedule a transient outage: every arrival in [from_s, until_s) is
    /// dropped (a routing blackout / dead interface), deterministically and
    /// without consuming any RNG draws. A later call replaces the window.
    void set_outage(double from_s, double until_s);

    // --- fluid background load (cross_model::fluid; DESIGN.md §13.5) ---
    //
    // Aggregate unresponsive cross traffic modelled as a piecewise-constant
    // fluid rate instead of per-packet events. The fluid occupies capacity
    // and buffer space: packets arriving to the link wait behind the fluid
    // backlog queued ahead of them (FIFO) and are dropped when packets plus
    // fluid exceed the buffer. Fluid arriving while the server is busy with
    // a packet queues behind the packets already waiting.

    /// Change the aggregate fluid arrival rate by `delta_bps` (sources call
    /// this on start/stop and at on/off transitions). Enables fluid
    /// accounting on first use.
    void add_fluid_rate(double delta_bps);
    [[nodiscard]] double fluid_rate_bps() const noexcept { return fluid_rate_; }
    /// Mean packet size used to convert fluid bits into buffer slots.
    void set_fluid_mean_packet_bytes(double bytes) {
        fluid_pkt_bits_ = bytes * 8.0;
    }

    [[nodiscard]] double capacity_bps() const noexcept { return capacity_bps_; }
    [[nodiscard]] double prop_delay_s() const noexcept { return prop_delay_; }
    [[nodiscard]] std::size_t buffer_packets() const noexcept { return buffer_packets_; }
    [[nodiscard]] std::size_t queue_length() const noexcept {
        return queue_.size() + (transmitting_ ? 1u : 0u);
    }
    [[nodiscard]] const link_stats& stats() const noexcept { return stats_; }

    /// Serialization time of a packet of `bytes` on this link.
    [[nodiscard]] double tx_time(std::uint32_t bytes) const noexcept {
        return static_cast<double>(bytes) * 8.0 / capacity_bps_;
    }

    /// Fraction of time the link transmitted since construction (or since
    /// the given origin time).
    [[nodiscard]] double utilization(double since = 0.0) const noexcept {
        const double span = sched_->now() - since;
        return span > 0.0 ? stats_.busy_time / span : 0.0;
    }

private:
    /// A queued packet plus the fluid volume that arrived before it and is
    /// therefore served ahead of it (FIFO).
    struct queued {
        packet p;
        double fluid_ahead_bits{0.0};
    };

    void start_transmission(packet p, double fluid_ahead_bits);
    void on_tx_complete();
    /// Integrate the fluid process up to now() under the current server
    /// state; must be called at every state-transition or rate-change point.
    void advance_fluid();

    sim::scheduler* sched_;
    double capacity_bps_;
    double prop_delay_;
    std::size_t buffer_packets_;
    [[nodiscard]] bool random_loss_hit();

    std::function<void(packet)> sink_;
    std::deque<queued> queue_;
    bool transmitting_{false};
    bool fluid_active_{false};
    double fluid_rate_{0.0};        ///< aggregate fluid arrival rate, bps
    double fluid_tail_bits_{0.0};   ///< fluid behind the last queued packet
    double fluid_total_bits_{0.0};  ///< all unserved fluid (tail + attributed)
    double fluid_updated_{0.0};     ///< last integration instant
    double fluid_pkt_bits_{1500.0 * 8.0};
    double outage_from_{0.0};
    double outage_until_{0.0};  ///< <= outage_from_: no outage scheduled
    double random_loss_{0.0};
    double loss_burst_s_{0.0};
    bool in_bad_state_{false};
    double state_until_{0.0};
    std::optional<sim::rng> loss_rng_;
    link_stats stats_{};
};

}  // namespace tcppred::net
