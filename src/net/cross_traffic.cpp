#include "net/cross_traffic.hpp"

namespace tcppred::net {

poisson_source::poisson_source(sim::scheduler& sched, duplex_path& path,
                               std::size_t link_index, flow_id flow, std::uint64_t seed,
                               double rate_bps, packet_size_mix mix, cross_model model)
    : sched_(&sched),
      path_(&path),
      link_index_(link_index),
      flow_(flow),
      rng_(seed),
      rate_bps_(rate_bps),
      mix_(mix),
      model_(model) {}

void poisson_source::start() {
    if (running_) return;
    running_ = true;
    if (model_ == cross_model::fluid) {
        // A Poisson aggregate is a constant-rate fluid: no events, ever.
        path_->forward_link(link_index_).add_fluid_rate(rate_bps_);
        return;
    }
    schedule_next();
}

void poisson_source::stop() {
    if (running_ && model_ == cross_model::fluid) {
        path_->forward_link(link_index_).add_fluid_rate(-rate_bps_);
    }
    running_ = false;
}

void poisson_source::set_rate(double rate_bps) {
    if (running_ && model_ == cross_model::fluid) {
        path_->forward_link(link_index_).add_fluid_rate(rate_bps - rate_bps_);
    }
    rate_bps_ = rate_bps;
}

void poisson_source::schedule_next() {
    if (!running_ || rate_bps_ <= 0.0) return;
    const double mean_interarrival = mix_.mean_bytes() * 8.0 / rate_bps_;
    sched_->schedule_in(rng_.exponential(mean_interarrival), [this] {
        if (!running_) return;
        packet p;
        p.flow = flow_;
        p.kind = packet_kind::cross;
        p.size_bytes = mix_.draw(rng_);
        p.seq = seq_++;
        p.sent_at = sched_->now();
        path_->inject_forward(link_index_, p);
        schedule_next();
    });
}

pareto_onoff_source::pareto_onoff_source(sim::scheduler& sched, duplex_path& path,
                                         std::size_t link_index, flow_id flow,
                                         std::uint64_t seed, pareto_onoff_config cfg,
                                         cross_model model)
    : sched_(&sched),
      path_(&path),
      link_index_(link_index),
      flow_(flow),
      rng_(seed),
      cfg_(cfg),
      model_(model) {}

void pareto_onoff_source::start() {
    if (running_) return;
    running_ = true;
    // Random initial OFF phase so concurrent sources don't synchronize.
    sched_->schedule_in(rng_.exponential(cfg_.mean_off_s), [this] { begin_on_period(); });
}

void pareto_onoff_source::stop() {
    if (applied_rate_bps_ != 0.0) {
        path_->forward_link(link_index_).add_fluid_rate(-applied_rate_bps_);
        applied_rate_bps_ = 0.0;
    }
    running_ = false;
}

void pareto_onoff_source::set_mean_rate(double rate_bps) {
    const double peak =
        rate_bps * (cfg_.mean_on_s + cfg_.mean_off_s) / cfg_.mean_on_s;
    if (applied_rate_bps_ != 0.0) {
        // Mid-ON-period rate change: re-apply the fluid delta immediately.
        path_->forward_link(link_index_).add_fluid_rate(peak - applied_rate_bps_);
        applied_rate_bps_ = peak;
    }
    cfg_.peak_rate_bps = peak;
}

void pareto_onoff_source::begin_on_period() {
    if (!running_) return;
    // Pareto with mean = mean_on_s: xmin = mean * (shape-1)/shape.
    const double xmin = cfg_.mean_on_s * (cfg_.pareto_shape - 1.0) / cfg_.pareto_shape;
    const double on = rng_.pareto(cfg_.pareto_shape, xmin);
    if (model_ == cross_model::fluid) {
        // One burst = two events: rate up now, rate down at the burst end.
        path_->forward_link(link_index_).add_fluid_rate(cfg_.peak_rate_bps);
        applied_rate_bps_ = cfg_.peak_rate_bps;
        sched_->schedule_in(on, [this] { end_on_period(); });
        return;
    }
    emit(sched_->now() + on);
}

void pareto_onoff_source::end_on_period() {
    if (applied_rate_bps_ != 0.0) {
        path_->forward_link(link_index_).add_fluid_rate(-applied_rate_bps_);
        applied_rate_bps_ = 0.0;
    }
    if (!running_) return;
    sched_->schedule_in(rng_.exponential(cfg_.mean_off_s), [this] { begin_on_period(); });
}

void pareto_onoff_source::emit(double until) {
    if (!running_) return;
    if (sched_->now() >= until) {
        sched_->schedule_in(rng_.exponential(cfg_.mean_off_s), [this] { begin_on_period(); });
        return;
    }
    packet p;
    p.flow = flow_;
    p.kind = packet_kind::cross;
    p.size_bytes = cfg_.packet_bytes;
    p.seq = seq_++;
    p.sent_at = sched_->now();
    path_->inject_forward(link_index_, p);
    const double spacing = cfg_.packet_bytes * 8.0 / cfg_.peak_rate_bps;
    sched_->schedule_in(spacing, [this, until] { emit(until); });
}

}  // namespace tcppred::net
