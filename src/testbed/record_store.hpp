// Chunked columnar record store (DESIGN.md §16): the past-RAM persistence
// format for campaign datasets. Records live in fixed-size column chunks
// with hexfloat-exact number encoding, a footer index keyed on the v2
// campaign fingerprint locates every chunk, and sequential reader/writer
// cursors stream a store with O(chunk_capacity) memory — callers never hold
// a whole dataset. The legacy v1 CSV becomes a *conversion* (store_to_csv),
// byte-identical to save_csv on the same records by construction: the store
// carries the catalogue lines verbatim and the conversion reuses the
// write_csv_* emitters (dataset.hpp).
//
// Layering: this module ("store" in tools/lint/tcppred_lint.conf) sits on
// top of testbed — it includes campaign/checkpoint/dataset, nothing in
// testbed includes it. The streamed campaign sweep and the streaming shard
// merge therefore live here, not in campaign.cpp/shard.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <string>
#include <utility>
#include <vector>

#include "testbed/campaign.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::testbed {

/// Tuning for record_writer and the streamed campaign sink.
struct store_options {
    /// Records per column chunk. Writer and reader memory are O(this); the
    /// footer index is O(total / this).
    std::size_t chunk_capacity{1024};
};

/// Hard ceiling on the chunk_capacity a reader will accept: the memory
/// bound against hostile headers, far above any sane tuning.
inline constexpr std::size_t k_max_chunk_capacity = std::size_t{1} << 20;

/// Sequential store writer. Records must be appended in ascending linear
/// campaign order — (path, trace, epoch), the order run_campaign's records
/// vector and dataset::traces() share — so a store's record order is the
/// sorted order every reader can rely on. Data is written to a same-
/// directory temp file and atomically renamed into place by finish();
/// a crash (or abort()) before finish() never touches the target.
class record_writer {
public:
    /// `catalog_lines` are the verbatim "#path,..." CSV catalogue lines
    /// (csv_catalog_lines); `fingerprint` is the v2 campaign fingerprint.
    record_writer(const std::filesystem::path& file, std::string fingerprint,
                  std::vector<std::string> catalog_lines, store_options opts = {});
    ~record_writer();
    record_writer(const record_writer&) = delete;
    record_writer& operator=(const record_writer&) = delete;

    void append(const epoch_record& rec);

    /// Flush the final chunk, write the footer index, and atomically publish
    /// the store. Throws on I/O failure. No-op when already finished.
    void finish();

    /// Drop the temp file without publishing; the target is never touched.
    void abort() noexcept;

    [[nodiscard]] std::size_t total() const noexcept { return total_; }

private:
    void flush_chunk();

    std::filesystem::path file_;
    std::filesystem::path tmp_;
    std::ofstream out_;
    store_options opts_;
    std::vector<epoch_record> buf_;   // current chunk, O(chunk_capacity)
    struct chunk_ref {
        std::uint64_t offset{0};
        std::size_t count{0};
    };
    std::vector<chunk_ref> chunks_;   // footer index, O(total / chunk_capacity)
    std::size_t total_{0};
    std::size_t n_traces_{0};
    std::size_t n_faulted_{0};
    int last_path_{0};
    int last_trace_{0};
    bool have_last_{false};
    bool finished_{false};
    bool aborted_{false};
};

/// Sequential store reader: validates the footer index and header up front
/// (including the fingerprint when `expected_fingerprint` is non-empty;
/// empty accepts any campaign), then streams records in linear order with
/// O(chunk_capacity) memory. Every malformed input throws dataset_error —
/// this is an untrusted-input parser (fuzzed by fuzz_record_store).
class record_reader {
public:
    explicit record_reader(const std::filesystem::path& file,
                           const std::string& expected_fingerprint = {});
    /// Over an already-open seekable stream (tests, the fuzz harness);
    /// `context` only labels dataset_error messages.
    record_reader(std::istream& in, std::filesystem::path context,
                  const std::string& expected_fingerprint = {});

    /// Fill `out` with the next record; false at end of store.
    [[nodiscard]] bool next(epoch_record& out);

    [[nodiscard]] const std::string& fingerprint() const noexcept { return fingerprint_; }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    /// Distinct (path, trace) pairs among the records.
    [[nodiscard]] std::size_t n_traces() const noexcept { return n_traces_; }
    /// Records carrying a nonzero fault_flags.
    [[nodiscard]] std::size_t n_faulted() const noexcept { return n_faulted_; }
    [[nodiscard]] bool any_faults() const noexcept { return n_faulted_ > 0; }
    [[nodiscard]] std::size_t chunk_capacity() const noexcept { return chunk_capacity_; }
    /// The verbatim "#path,..." catalogue lines the store carries.
    [[nodiscard]] const std::vector<std::string>& catalog_lines() const noexcept {
        return catalog_lines_;
    }

private:
    void open_and_validate(const std::string& expected_fingerprint);
    void load_chunk();

    std::ifstream own_;   // only used by the path constructor
    std::istream* in_{nullptr};
    std::filesystem::path file_;
    std::string fingerprint_;
    std::vector<std::string> catalog_lines_;
    std::size_t chunk_capacity_{0};
    std::size_t total_{0};
    std::size_t n_traces_{0};
    std::size_t n_faulted_{0};
    struct chunk_ref {
        std::uint64_t offset{0};
        std::size_t count{0};
    };
    std::vector<chunk_ref> chunks_;
    std::vector<epoch_record> cur_;   // decoded current chunk
    std::size_t cur_pos_{0};
    std::size_t next_chunk_{0};
    std::size_t line_no_{0};          // during sequential (header/chunk) reads
};

/// Convert a store to the legacy v1 analysis CSV, streaming (O(chunk)
/// memory). Byte-identical to save_csv over the same records: catalogue
/// lines are copied verbatim and records go through the shared
/// write_csv_record emitter; the optional fault_flags column is driven by
/// the footer's fault count, exactly as save_csv's any-fault scan would.
void store_to_csv(record_reader& in, const std::filesystem::path& csv_file);

/// Knobs for the streamed campaign sweep.
struct streamed_campaign_options {
    store_options store{};
    /// Bounded reorder window (records) between out-of-order workers and the
    /// in-order chunk sink. Workers finishing ahead of the lowest
    /// outstanding epoch park their records here; when it fills they block
    /// (except the worker holding the next in-order index, so progress is
    /// always possible). Peak buffered memory is O(this + jobs).
    std::size_t reorder_capacity{4096};
    /// Polled between epochs; return true to stop. A cancelled streamed run
    /// abandons the temp store — nothing is checkpointed (use --workers /
    /// shard checkpoints for crash tolerance).
    std::function<bool()> cancelled{};
};

struct streamed_campaign_outcome {
    bool complete{true};
    int epochs_completed{0};
};

/// run_campaign writing straight to a record store instead of an in-memory
/// dataset: completed epochs flow through a bounded reorder window into the
/// chunk sink in linear order, and per-trace load trajectories are generated
/// lazily and evicted when their last epoch completes. Peak memory is
/// O(chunk + reorder window + jobs·epochs_per_trace) — independent of the
/// grid size. Records are bitwise identical to run_campaign's (same
/// simulate_campaign_epoch, same per-epoch seeding) at any job count.
[[nodiscard]] streamed_campaign_outcome run_campaign_streamed(
    const campaign_config& cfg, const std::filesystem::path& store_file,
    const streamed_campaign_options& opts = {}, progress_fn progress = nullptr);

/// Merge completed shard checkpoints (testbed/shard.hpp) into a store by
/// walking one streaming checkpoint_reader cursor per shard in lockstep
/// over the linear epoch order — O(shards · record) memory instead of
/// loading every shard whole. First writer wins on overlap, exactly like
/// the in-memory merge; a missing epoch or absent/foreign checkpoint
/// throws dataset_error. Returns the merged record count (the full grid).
std::size_t merge_shard_checkpoints_to_store(
    const campaign_config& cfg, const std::vector<std::filesystem::path>& shard_ckpts,
    const std::filesystem::path& store_file, store_options opts = {});

}  // namespace tcppred::testbed
