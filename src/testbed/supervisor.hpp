// Multi-process campaign supervisor (DESIGN.md §15).
//
// Forks one tcppred_campaign worker per shard, watches their heartbeat
// files, and keeps the campaign converging through worker crashes and
// hangs: a dead worker's shard is relaunched (on whichever seat is free)
// with capped exponential backoff, a silent worker is SIGKILLed once its
// heartbeat goes stale, and SIGINT fans out to every worker so each one
// checkpoints its shard before the supervisor reports "interrupted".
// When every shard completes, the per-shard checkpoints are merged
// (testbed/shard.hpp) and the CSV is written — byte-identical to a serial
// run of the same config.
//
// Worker failures are classified by wait status: exit 0 = shard complete;
// exit 1 (bad arguments) or 127 (exec failed) = a config error retrying
// cannot heal, so the whole campaign aborts; any other exit or death by
// signal = crash, retried up to max_attempts per shard.
#pragma once

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "testbed/campaign.hpp"

namespace tcppred::testbed {

/// Knobs for one supervised campaign run.
struct supervisor_options {
    /// Campaign the workers are running; used to fingerprint-check and merge
    /// the shard checkpoints. Must match the config flags in worker_argv.
    campaign_config cfg{};
    /// Final CSV path. Shard checkpoint/heartbeat/log names derive from it.
    std::filesystem::path out{};
    /// Worker process count == shard count.
    int workers{2};
    /// Worker command line: program then config flags (--out, --paths, ...).
    /// The supervisor appends --shard i/N, --jobs, --resume itself.
    std::vector<std::string> worker_argv{};
    /// Threads per worker process (the --jobs each worker runs with).
    int worker_jobs{1};
    /// A worker whose heartbeat file stays unchanged this long is declared
    /// hung and SIGKILLed (then retried like a crash). Also the grace period
    /// between the SIGINT fan-out and SIGKILLing stragglers.
    double hang_timeout_s{30.0};
    /// Launch attempts per shard before the campaign is declared failed.
    int max_attempts{50};
    /// Relaunch backoff: base * 2^(attempt-1), capped. Keeps a crash-looping
    /// shard from spinning while staying far below test timescales.
    double backoff_base_s{0.02};
    double backoff_cap_s{0.5};
    /// Supervisor poll period (reap, heartbeat scan, launch).
    double poll_interval_s{0.05};
    /// Polled each cycle; true = fan SIGINT out to the workers, wait for
    /// them to checkpoint and exit, and return interrupted.
    std::function<bool()> cancelled{};
    /// Override for the final merge step: (cfg, shard checkpoint paths, out)
    /// -> merged record count, writing `out` in whatever format the caller
    /// wants. Null = the default in-memory merge_shard_checkpoints +
    /// save_csv. This inversion is how the store layer (record_store.hpp)
    /// plugs its streaming merge in without testbed depending on it.
    std::function<std::size_t(const campaign_config&,
                              const std::vector<std::filesystem::path>&,
                              const std::filesystem::path&)>
        merge{};
};

/// What a supervised run did.
struct supervisor_result {
    bool complete{false};     ///< all shards done, CSV merged and written
    bool interrupted{false};  ///< cancelled(); shard checkpoints are resumable
    std::string error;        ///< set when neither complete nor interrupted
    int workers_spawned{0};   ///< total worker launches (first runs + retries)
    int worker_restarts{0};   ///< launches beyond each shard's first
    int hangs_killed{0};      ///< workers SIGKILLed for a stale heartbeat
    std::size_t epochs_merged{0};  ///< records in the merged dataset
};

/// Run the campaign under supervision. Blocks until the campaign completes,
/// fails, or is cancelled. Never throws for worker failures (they land in
/// result.error); merge/IO failures are reported the same way.
[[nodiscard]] supervisor_result run_supervisor(const supervisor_options& opts);

}  // namespace tcppred::testbed
