#include "testbed/record_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/stopwatch.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/load_process.hpp"

namespace tcppred::testbed {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, sep)) out.push_back(item);
    return out;
}

std::uint64_t parse_u64(const std::string& s, const std::filesystem::path& file,
                        std::size_t line_no) {
    if (s.empty() || s[0] == '-') {
        throw dataset_error(file, line_no, 0,
                            "expected a non-negative integer, got \"" + s + "\"");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
        throw dataset_error(file, line_no, 0,
                            "bad unsigned integer field \"" + s + "\"");
    }
    return v;
}

int parse_i32(const std::string& s, const std::filesystem::path& file,
              std::size_t line_no) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE || v < INT32_MIN ||
        v > INT32_MAX) {
        throw dataset_error(file, line_no, 0, "bad integer field \"" + s + "\"");
    }
    return static_cast<int>(v);
}

/// Per-record prefix-pair ceiling a reader accepts. The campaigns use at
/// most 3; this only bounds hostile inputs.
constexpr std::size_t k_max_store_prefixes = 64;

}  // namespace

// ---------------------------------------------------------------------------
// record_writer

record_writer::record_writer(const std::filesystem::path& file, std::string fingerprint,
                             std::vector<std::string> catalog_lines, store_options opts)
    : file_(file), opts_(opts) {
    TCPPRED_EXPECTS(opts_.chunk_capacity >= 1 &&
                    opts_.chunk_capacity <= k_max_chunk_capacity);
    const std::filesystem::path dir =
        file_.parent_path().empty() ? std::filesystem::path(".") : file_.parent_path();
    // Same-directory temp + rename: the target is only ever observed whole.
    // (atomic_write_text is not used here on purpose — it buffers the full
    // contents in memory, the exact pattern this module exists to avoid.)
    tmp_ = dir / (file_.filename().string() + "." + std::to_string(::getpid()) + ".tmp");
    out_.open(tmp_, std::ios::trunc | std::ios::binary);
    if (!out_) {
        throw std::runtime_error("record_writer: cannot open " + tmp_.string());
    }
    out_ << "tcppred-store,v1\n";
    out_ << "fingerprint," << fingerprint << '\n';
    out_ << "chunk_capacity," << opts_.chunk_capacity << '\n';
    out_ << "paths," << catalog_lines.size() << '\n';
    for (const std::string& line : catalog_lines) out_ << line << '\n';
    buf_.reserve(opts_.chunk_capacity);
}

record_writer::~record_writer() {
    if (!finished_) abort();
}

void record_writer::append(const epoch_record& rec) {
    TCPPRED_EXPECTS(!finished_ && !aborted_);
    if (!have_last_ || rec.path_id != last_path_ || rec.trace_id != last_trace_) {
        ++n_traces_;
        last_path_ = rec.path_id;
        last_trace_ = rec.trace_id;
        have_last_ = true;
    }
    if (rec.m.fault_flags != fault_none) ++n_faulted_;
    buf_.push_back(rec);
    ++total_;
    if (buf_.size() >= opts_.chunk_capacity) flush_chunk();
}

void record_writer::flush_chunk() {
    if (buf_.empty()) return;
    chunk_ref ref;
    ref.offset = static_cast<std::uint64_t>(out_.tellp());
    ref.count = buf_.size();
    out_ << "chunk," << chunks_.size() << ',' << buf_.size() << '\n';
    const auto col = [&](const char* name, auto&& emit_one) {
        out_ << "col," << name;
        for (const epoch_record& r : buf_) {
            out_ << ',';
            emit_one(r);
        }
        out_ << '\n';
    };
    col("path", [&](const epoch_record& r) { out_ << r.path_id; });
    col("trace", [&](const epoch_record& r) { out_ << r.trace_id; });
    col("epoch", [&](const epoch_record& r) { out_ << r.epoch_index; });
    // Every double goes through hexd: the store round-trips bit-exactly.
    col("availbw_bps", [&](const epoch_record& r) { out_ << hexd(r.m.avail_bw_bps); });
    col("phat", [&](const epoch_record& r) { out_ << hexd(r.m.phat); });
    col("phat_events", [&](const epoch_record& r) { out_ << hexd(r.m.phat_events); });
    col("that_s", [&](const epoch_record& r) { out_ << hexd(r.m.that_s); });
    col("ptilde", [&](const epoch_record& r) { out_ << hexd(r.m.ptilde); });
    col("ttilde_s", [&](const epoch_record& r) { out_ << hexd(r.m.ttilde_s); });
    col("r_large_bps", [&](const epoch_record& r) { out_ << hexd(r.m.r_large_bps); });
    col("r_small_bps", [&](const epoch_record& r) { out_ << hexd(r.m.r_small_bps); });
    col("tcp_loss", [&](const epoch_record& r) { out_ << hexd(r.m.tcp_loss_rate); });
    col("tcp_event_rate",
        [&](const epoch_record& r) { out_ << hexd(r.m.tcp_event_rate); });
    col("tcp_rtt_s", [&](const epoch_record& r) { out_ << hexd(r.m.tcp_mean_rtt_s); });
    col("sim_time_s", [&](const epoch_record& r) { out_ << hexd(r.m.sim_time_s); });
    col("events", [&](const epoch_record& r) { out_ << r.m.events; });
    col("fault_flags", [&](const epoch_record& r) { out_ << r.m.fault_flags; });
    col("n_prefix",
        [&](const epoch_record& r) { out_ << r.m.prefix_goodputs.size(); });
    // Flattened (s, bps) pairs, record-major; n_prefix above is the ragged
    // index into this column.
    out_ << "col,prefix";
    for (const epoch_record& r : buf_) {
        for (const auto& [s, bps] : r.m.prefix_goodputs) {
            out_ << ',' << hexd(s) << ',' << hexd(bps);
        }
    }
    out_ << '\n';
    chunks_.push_back(ref);
    buf_.clear();
}

void record_writer::finish() {
    if (finished_) return;
    TCPPRED_EXPECTS(!aborted_);
    flush_chunk();
    const auto footer_off = static_cast<std::uint64_t>(out_.tellp());
    out_ << "footer," << total_ << ',' << n_traces_ << ',' << n_faulted_ << ','
         << chunks_.size() << '\n';
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
        out_ << "chunkoff," << i << ',' << chunks_[i].offset << ',' << chunks_[i].count
             << '\n';
    }
    out_ << "end," << footer_off << '\n';
    out_.flush();
    if (!out_) {
        abort();
        throw std::runtime_error("record_writer: write failed on " + tmp_.string());
    }
    out_.close();
    std::error_code ec;
    std::filesystem::rename(tmp_, file_, ec);
    if (ec) {
        std::error_code ignore;
        std::filesystem::remove(tmp_, ignore);
        throw std::runtime_error("record_writer: cannot rename " + tmp_.string() +
                                 " into " + file_.string());
    }
    finished_ = true;
}

void record_writer::abort() noexcept {
    if (finished_ || aborted_) return;
    aborted_ = true;
    out_.close();
    std::error_code ignore;
    std::filesystem::remove(tmp_, ignore);
}

// ---------------------------------------------------------------------------
// record_reader

record_reader::record_reader(const std::filesystem::path& file,
                             const std::string& expected_fingerprint)
    : own_(file, std::ios::binary), in_(&own_), file_(file) {
    if (!own_) throw dataset_error(file_, 0, 0, "cannot open record store");
    open_and_validate(expected_fingerprint);
}

record_reader::record_reader(std::istream& in, std::filesystem::path context,
                             const std::string& expected_fingerprint)
    : in_(&in), file_(std::move(context)) {
    open_and_validate(expected_fingerprint);
}

void record_reader::open_and_validate(const std::string& expected_fingerprint) {
    std::istream& in = *in_;

    // Probe seekability and size up front: footer discovery needs random
    // access, and the probe lets the error messages distinguish an *empty*
    // store (a crashed writer's target, a truncated copy) from a stream
    // that genuinely cannot seek — both used to collapse into the baffling
    // "store is not seekable".
    const std::istream::pos_type probe_start = in.tellg();
    in.seekg(0, std::ios::end);
    const std::istream::pos_type probe_end = in.tellg();
    if (probe_start < std::istream::pos_type{0} ||
        probe_end < std::istream::pos_type{0} || !in.seekg(probe_start)) {
        throw dataset_error(file_, 0, 0,
                            "store stream is not seekable (footer discovery "
                            "needs random access)");
    }
    if (probe_end == probe_start) {
        throw dataset_error(file_, 0, 0, "store file is empty (0 bytes)");
    }

    std::string line;
    const auto next_line = [&](const char* what) {
        if (!std::getline(in, line)) {
            throw dataset_error(file_, line_no_ + 1, 0,
                                std::string("truncated store: expected ") + what);
        }
        ++line_no_;
    };

    next_line("magic");
    if (line != "tcppred-store,v1") {
        throw dataset_error(file_, line_no_, 0, "not a tcppred record store");
    }
    next_line("fingerprint");
    if (line.rfind("fingerprint,", 0) != 0) {
        throw dataset_error(file_, line_no_, 0, "expected fingerprint line");
    }
    fingerprint_ = line.substr(12);
    if (!expected_fingerprint.empty() && fingerprint_ != expected_fingerprint) {
        throw dataset_error(
            file_, line_no_, 0,
            "record store belongs to a different campaign config (fingerprint "
            "mismatch); differing fields:" +
                describe_fingerprint_mismatch(fingerprint_, expected_fingerprint));
    }
    next_line("chunk_capacity");
    if (line.rfind("chunk_capacity,", 0) != 0) {
        throw dataset_error(file_, line_no_, 0, "expected chunk_capacity line");
    }
    chunk_capacity_ =
        static_cast<std::size_t>(parse_u64(line.substr(15), file_, line_no_));
    if (chunk_capacity_ < 1 || chunk_capacity_ > k_max_chunk_capacity) {
        throw dataset_error(file_, line_no_, 0, "chunk_capacity out of range");
    }
    next_line("paths");
    if (line.rfind("paths,", 0) != 0) {
        throw dataset_error(file_, line_no_, 0, "expected paths line");
    }
    const std::uint64_t n_paths = parse_u64(line.substr(6), file_, line_no_);
    for (std::uint64_t i = 0; i < n_paths; ++i) {
        next_line("catalogue line");
        if (line.rfind("#path,", 0) != 0) {
            throw dataset_error(file_, line_no_, 0, "expected #path catalogue line");
        }
        catalog_lines_.push_back(line);
    }
    const auto data_start = static_cast<std::uint64_t>(in.tellg());

    // Footer discovery: the file ends with "end,<footer offset>". Seek to
    // the tail, isolate the last line, then validate the footer it points at
    // — every derived offset/count is checked before use, because this is an
    // untrusted input.
    in.clear();
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::int64_t>(in.tellg());
    if (size <= 0) {
        // Unreachable for empty/truncated input (the up-front probe and the
        // header reads reject those with specific messages first); a failed
        // tellg() here means the stream lost seekability mid-parse.
        throw dataset_error(file_, 0, 0, "store stream is not seekable");
    }
    const std::int64_t tail_len = std::min<std::int64_t>(size, 64);
    in.seekg(size - tail_len);
    std::string tail(static_cast<std::size_t>(tail_len), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(tail_len));
    if (in.gcount() != tail_len) {
        throw dataset_error(file_, 0, 0, "cannot read store tail");
    }
    while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r')) {
        tail.pop_back();
    }
    const auto nl = tail.find_last_of('\n');
    const std::string end_line =
        nl == std::string::npos ? tail : tail.substr(nl + 1);
    if (end_line.rfind("end,", 0) != 0) {
        throw dataset_error(file_, 0, 0, "store missing end line (truncated?)");
    }
    const std::uint64_t footer_off = parse_u64(end_line.substr(4), file_, 0);
    if (footer_off < data_start || footer_off >= static_cast<std::uint64_t>(size)) {
        throw dataset_error(file_, 0, 0, "footer offset out of range");
    }
    in.clear();
    in.seekg(static_cast<std::streamoff>(footer_off));
    std::string fline;
    if (!std::getline(in, fline) || fline.rfind("footer,", 0) != 0) {
        throw dataset_error(file_, 0, 0, "end line does not point at a footer");
    }
    const auto ff = split(fline, ',');
    if (ff.size() != 5) {
        throw dataset_error(file_, 0, 0, "footer needs 5 fields");
    }
    total_ = static_cast<std::size_t>(parse_u64(ff[1], file_, 0));
    n_traces_ = static_cast<std::size_t>(parse_u64(ff[2], file_, 0));
    n_faulted_ = static_cast<std::size_t>(parse_u64(ff[3], file_, 0));
    const std::uint64_t n_chunks = parse_u64(ff[4], file_, 0);
    if (n_traces_ > total_ || n_faulted_ > total_) {
        throw dataset_error(file_, 0, 0, "footer counts out of range");
    }
    std::uint64_t sum = 0;
    std::uint64_t prev_off = data_start;
    for (std::uint64_t i = 0; i < n_chunks; ++i) {
        std::string cline;
        if (!std::getline(in, cline)) {
            throw dataset_error(file_, 0, 0, "truncated footer index");
        }
        const auto cf = split(cline, ',');
        if (cf.size() != 4 || cf[0] != "chunkoff" || parse_u64(cf[1], file_, 0) != i) {
            throw dataset_error(file_, 0, 0, "bad chunkoff line in footer index");
        }
        chunk_ref ref;
        ref.offset = parse_u64(cf[2], file_, 0);
        ref.count = static_cast<std::size_t>(parse_u64(cf[3], file_, 0));
        if (ref.offset < prev_off || ref.offset >= footer_off) {
            throw dataset_error(file_, 0, 0, "chunk offset out of range");
        }
        if (ref.count < 1 || ref.count > chunk_capacity_) {
            throw dataset_error(file_, 0, 0, "chunk count out of range");
        }
        // The writer fills every chunk but the last to capacity; enforcing
        // that here rejects spliced/reordered indexes early.
        if (i + 1 < n_chunks && ref.count != chunk_capacity_) {
            throw dataset_error(file_, 0, 0, "non-final chunk not full");
        }
        sum += ref.count;
        prev_off = ref.offset;
        chunks_.push_back(ref);
    }
    if (sum != total_) {
        throw dataset_error(file_, 0, 0, "chunk counts disagree with footer total");
    }
    std::string eline;
    if (!std::getline(in, eline) || eline != "end," + std::to_string(footer_off)) {
        throw dataset_error(file_, 0, 0, "footer index not terminated by end line");
    }
}

void record_reader::load_chunk() {
    const chunk_ref ref = chunks_[next_chunk_];
    std::istream& in = *in_;
    in.clear();
    in.seekg(static_cast<std::streamoff>(ref.offset));
    const auto fail = [&](const std::string& msg) {
        return dataset_error(file_, 0, 0,
                             "chunk " + std::to_string(next_chunk_) + ": " + msg);
    };
    std::string line;
    if (!std::getline(in, line)) throw fail("truncated: expected chunk header");
    {
        const auto f = split(line, ',');
        if (f.size() != 3 || f[0] != "chunk") throw fail("expected chunk header line");
        if (parse_u64(f[1], file_, 0) != next_chunk_ ||
            parse_u64(f[2], file_, 0) != ref.count) {
            throw fail("chunk header disagrees with footer index");
        }
    }
    const std::size_t n = ref.count;
    const auto read_col = [&](const char* name) {
        if (!std::getline(in, line)) {
            throw fail(std::string("truncated: expected column ") + name);
        }
        auto f = split(line, ',');
        if (f.size() < 2 || f[0] != "col" || f[1] != name) {
            throw fail(std::string("expected column ") + name);
        }
        return f;
    };
    const auto expect_n = [&](const std::vector<std::string>& f, const char* name,
                              std::size_t want) {
        if (f.size() != 2 + want) {
            throw fail(std::string("column ") + name + " has " +
                       std::to_string(f.size() - 2) + " values, expected " +
                       std::to_string(want));
        }
    };

    auto f = read_col("path");
    expect_n(f, "path", n);
    // Allocate only after an actual input line with n fields existed, so
    // memory stays proportional to the input on hostile headers.
    cur_.assign(n, epoch_record{});
    cur_pos_ = 0;
    for (std::size_t i = 0; i < n; ++i) cur_[i].path_id = parse_i32(f[2 + i], file_, 0);
    f = read_col("trace");
    expect_n(f, "trace", n);
    for (std::size_t i = 0; i < n; ++i) cur_[i].trace_id = parse_i32(f[2 + i], file_, 0);
    f = read_col("epoch");
    expect_n(f, "epoch", n);
    for (std::size_t i = 0; i < n; ++i) {
        cur_[i].epoch_index = parse_i32(f[2 + i], file_, 0);
    }

    const struct {
        const char* name;
        double epoch_measurement::*field;
    } dcols[] = {
        {"availbw_bps", &epoch_measurement::avail_bw_bps},
        {"phat", &epoch_measurement::phat},
        {"phat_events", &epoch_measurement::phat_events},
        {"that_s", &epoch_measurement::that_s},
        {"ptilde", &epoch_measurement::ptilde},
        {"ttilde_s", &epoch_measurement::ttilde_s},
        {"r_large_bps", &epoch_measurement::r_large_bps},
        {"r_small_bps", &epoch_measurement::r_small_bps},
        {"tcp_loss", &epoch_measurement::tcp_loss_rate},
        {"tcp_event_rate", &epoch_measurement::tcp_event_rate},
        {"tcp_rtt_s", &epoch_measurement::tcp_mean_rtt_s},
        {"sim_time_s", &epoch_measurement::sim_time_s},
    };
    for (const auto& dc : dcols) {
        f = read_col(dc.name);
        expect_n(f, dc.name, n);
        for (std::size_t i = 0; i < n; ++i) {
            cur_[i].m.*dc.field = parse_hexd(f[2 + i], file_, 0);
        }
    }

    f = read_col("events");
    expect_n(f, "events", n);
    for (std::size_t i = 0; i < n; ++i) cur_[i].m.events = parse_u64(f[2 + i], file_, 0);
    f = read_col("fault_flags");
    expect_n(f, "fault_flags", n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t v = parse_u64(f[2 + i], file_, 0);
        if (v > UINT32_MAX) throw fail("fault_flags out of range");
        cur_[i].m.fault_flags = static_cast<std::uint32_t>(v);
    }
    f = read_col("n_prefix");
    expect_n(f, "n_prefix", n);
    std::vector<std::size_t> np(n);
    std::size_t prefix_sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
        np[i] = static_cast<std::size_t>(parse_u64(f[2 + i], file_, 0));
        if (np[i] > k_max_store_prefixes) throw fail("implausible prefix count");
        prefix_sum += np[i];
    }
    f = read_col("prefix");
    expect_n(f, "prefix", 2 * prefix_sum);
    std::size_t at = 2;
    for (std::size_t i = 0; i < n; ++i) {
        cur_[i].m.prefix_goodputs.reserve(np[i]);
        for (std::size_t j = 0; j < np[i]; ++j) {
            const double s = parse_hexd(f[at], file_, 0);
            const double bps = parse_hexd(f[at + 1], file_, 0);
            cur_[i].m.prefix_goodputs.emplace_back(s, bps);
            at += 2;
        }
    }
    ++next_chunk_;
}

bool record_reader::next(epoch_record& out) {
    while (cur_pos_ >= cur_.size()) {
        if (next_chunk_ >= chunks_.size()) return false;
        load_chunk();
    }
    out = std::move(cur_[cur_pos_++]);
    return true;
}

// ---------------------------------------------------------------------------
// store -> CSV conversion

void store_to_csv(record_reader& in, const std::filesystem::path& csv_file) {
    std::ofstream out(csv_file);
    if (!out) {
        throw std::runtime_error("store_to_csv: cannot open " + csv_file.string());
    }
    for (const std::string& line : in.catalog_lines()) out << line << '\n';
    const bool any_faults = in.any_faults();
    write_csv_header(out, any_faults);
    epoch_record rec;
    while (in.next(rec)) write_csv_record(out, rec, any_faults);
    out.flush();
    if (!out) {
        throw std::runtime_error("store_to_csv: write failed on " + csv_file.string());
    }
}

// ---------------------------------------------------------------------------
// Streamed campaign sweep

streamed_campaign_outcome run_campaign_streamed(const campaign_config& cfg,
                                                const std::filesystem::path& store_file,
                                                const streamed_campaign_options& opts,
                                                progress_fn progress) {
    TCPPRED_EXPECTS(cfg.paths > 0 && cfg.traces_per_path > 0 &&
                    cfg.epochs_per_trace > 0);
    TCPPRED_EXPECTS(cfg.jobs >= 0);
    TCPPRED_EXPECTS(opts.reorder_capacity >= 1);
    const std::vector<path_profile> paths = campaign_catalog(cfg);
    const std::size_t total = campaign_total_epochs(cfg);
    const int total_i = static_cast<int>(total);
    trace_campaign_start(cfg);

    record_writer writer(store_file, campaign_fingerprint(cfg),
                         csv_catalog_lines(paths), opts.store);

    // Lazy per-trace load trajectories with last-epoch eviction: the
    // in-memory sweep pregenerates all of them (O(total) load_states), which
    // is exactly the kind of grid-sized allocation this path must not make.
    // Live entries ≈ traces with any epoch in flight ≈ jobs + 1, because
    // parallel_for claims indices in ascending (trace-major) order.
    struct trace_loads {
        std::vector<load_state> loads;
        int remaining{0};
    };
    std::map<std::size_t, trace_loads> load_cache;
    std::mutex cache_mutex;

    // In-order chunk sink behind a bounded reorder window. The worker
    // holding the lowest outstanding index is always admitted (it drains the
    // window), so blocking the rest at capacity cannot deadlock.
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::size_t, epoch_record> pending;
    std::size_t next_write = 0;
    bool sink_aborted = false;
    int completed = 0;
    std::atomic<bool> cancel{false};

    const auto abort_sink = [&] {
        const std::lock_guard<std::mutex> lock(mu);
        sink_aborted = true;
        cv.notify_all();
    };

    const auto push = [&](std::size_t idx, epoch_record&& rec) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
            return sink_aborted || idx == next_write ||
                   pending.size() < opts.reorder_capacity;
        });
        if (sink_aborted) return;
        if (idx == next_write) {
            writer.append(rec);
            ++next_write;
            while (!pending.empty() && pending.begin()->first == next_write) {
                writer.append(pending.begin()->second);
                pending.erase(pending.begin());
                ++next_write;
            }
            cv.notify_all();
        } else {
            pending.emplace(idx, std::move(rec));
        }
        ++completed;
        if (progress) progress(completed, total_i);
    };

    const auto run_one = [&](std::size_t idx) {
        if (cancel.load(std::memory_order_relaxed)) return;
        if (opts.cancelled && opts.cancelled()) {
            cancel.store(true, std::memory_order_relaxed);
            abort_sink();
            return;
        }
        const epoch_coords c = decompose_epoch_index(cfg, idx);
        const std::size_t trace_key =
            c.path_index * static_cast<std::size_t>(cfg.traces_per_path) +
            static_cast<std::size_t>(c.trace);
        load_state load;
        {
            const std::lock_guard<std::mutex> lock(cache_mutex);
            auto it = load_cache.find(trace_key);
            if (it == load_cache.end()) {
                trace_loads entry;
                entry.loads = load_trajectory(
                    paths[c.path_index],
                    sim::derive_seed(cfg.seed, "trace",
                                     static_cast<std::uint64_t>(paths[c.path_index].id),
                                     static_cast<std::uint64_t>(c.trace)),
                    cfg.epochs_per_trace);
                entry.remaining = cfg.epochs_per_trace;
                it = load_cache.emplace(trace_key, std::move(entry)).first;
            }
            load = it->second.loads[static_cast<std::size_t>(c.epoch)];
        }
        epoch_record rec =
            simulate_campaign_epoch(cfg, paths[c.path_index], load, c.trace, c.epoch);
        {
            const std::lock_guard<std::mutex> lock(cache_mutex);
            const auto it = load_cache.find(trace_key);
            if (it != load_cache.end() && --it->second.remaining == 0) {
                load_cache.erase(it);
            }
        }
        push(idx, std::move(rec));
    };

    try {
        const obs::stage_timer t_sweep("campaign.sweep");
        sim::parallel_for(total, campaign_effective_jobs(cfg, total), run_one);
    } catch (...) {
        abort_sink();
        writer.abort();
        throw;
    }

    streamed_campaign_outcome out;
    out.epochs_completed = completed;
    out.complete = !sink_aborted && writer.total() == total;
    if (out.complete) {
        writer.finish();
    } else {
        writer.abort();
    }
    return out;
}

// ---------------------------------------------------------------------------
// Streaming shard merge

std::size_t merge_shard_checkpoints_to_store(
    const campaign_config& cfg, const std::vector<std::filesystem::path>& shard_ckpts,
    const std::filesystem::path& store_file, store_options opts) {
    TCPPRED_EXPECTS(!shard_ckpts.empty());
    const std::string fingerprint = campaign_fingerprint(cfg);
    const std::size_t total = campaign_total_epochs(cfg);
    for (const auto& file : shard_ckpts) {
        if (!std::filesystem::exists(file)) {
            throw dataset_error(file, 0, 0,
                                "shard checkpoint missing — run its shard to "
                                "completion before merging");
        }
    }
    std::vector<checkpoint_reader> readers;
    readers.reserve(shard_ckpts.size());
    std::vector<std::optional<std::pair<std::size_t, epoch_record>>> cur;
    cur.reserve(shard_ckpts.size());
    for (const auto& file : shard_ckpts) {
        readers.emplace_back(file, fingerprint);
        if (readers.back().total() != total) {
            throw dataset_error(file, 0, 0,
                                "shard checkpoint epoch count disagrees with config");
        }
        cur.push_back(readers.back().next());
    }

    record_writer writer(store_file, fingerprint, csv_catalog_lines(campaign_catalog(cfg)),
                         opts);
    // One cursor per shard, advanced in lockstep over the linear order.
    // save_checkpoint writes records ascending, so each cursor only ever
    // moves forward; first writer wins on overlap (like the in-memory
    // merge), later shards' duplicates drain as their cursors catch up.
    for (std::size_t expected = 0; expected < total; ++expected) {
        bool found = false;
        for (std::size_t s = 0; s < readers.size(); ++s) {
            while (cur[s] && cur[s]->first < expected) cur[s] = readers[s].next();
            if (!found && cur[s] && cur[s]->first == expected) {
                writer.append(cur[s]->second);
                cur[s] = readers[s].next();
                found = true;
            }
        }
        if (!found) {
            throw dataset_error(
                shard_ckpts.front(), 0, 0,
                "shards do not cover linear epoch index " + std::to_string(expected) +
                    " — every shard must be complete before merging");
        }
    }
    writer.finish();
    return total;
}

}  // namespace tcppred::testbed
