// Sharding a campaign across worker processes (DESIGN.md §15).
//
// A shard is a deterministic slice of the linearized (path, trace, epoch)
// grid. Each worker process runs exactly one shard via
// run_campaign_resumable's epoch_filter, persists it into its own
// per-shard checkpoint (keyed by the same v2 config fingerprint as serial
// checkpoints), and advertises liveness through a tiny heartbeat file. The
// merge step unions the shard checkpoints back into one dataset whose CSV
// is byte-identical to a serial run's — epochs are independently seeded,
// records are slot-indexed, and checkpoint doubles round-trip through
// hexfloat, so *which process* ran an epoch can never show in the output.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "testbed/campaign.hpp"

namespace tcppred::testbed {

/// Shard i of N (0 <= index < count).
struct shard_ref {
    int index{0};
    int count{1};
};

/// Parse "i/N" (e.g. "2/4"). Returns nullopt unless 0 <= i < N and N >= 1.
[[nodiscard]] std::optional<shard_ref> parse_shard(std::string_view spec);

/// Deterministic owner of linear epoch index `idx`: round-robin striding.
/// Strided (not block) assignment so every shard samples the whole
/// (path, trace) range — per-path simulation cost varies, and striding
/// balances it without knowing it.
[[nodiscard]] constexpr int shard_of(std::size_t idx, int shard_count) noexcept {
    return static_cast<int>(idx % static_cast<std::size_t>(shard_count));
}

/// Epoch filter claiming exactly `ref`'s slice, for campaign_run_options.
[[nodiscard]] std::function<bool(std::size_t)> shard_filter(shard_ref ref);

/// Number of epochs `ref` owns out of `total`.
[[nodiscard]] std::size_t shard_size(std::size_t total, shard_ref ref);

/// Per-shard file names, all derived from the output CSV path:
/// `<out>.shard-<i>-of-<N>.{ckpt,hb,log}`.
[[nodiscard]] std::filesystem::path shard_checkpoint_path(
    const std::filesystem::path& out, shard_ref ref);
[[nodiscard]] std::filesystem::path shard_heartbeat_path(
    const std::filesystem::path& out, shard_ref ref);
[[nodiscard]] std::filesystem::path shard_log_path(const std::filesystem::path& out,
                                                   shard_ref ref);

/// A worker's liveness beacon. The *contract* is change, not content: `seq`
/// strictly increases with every write, and the supervisor declares a
/// worker hung when the file stops changing for longer than the hang
/// timeout. Written atomically (atomic_write_text) so the supervisor never
/// reads a torn beacon.
struct shard_heartbeat {
    long long pid{0};        ///< worker process id
    std::uint64_t seq{0};    ///< strictly increasing write counter
    int epochs_done{0};      ///< completed epochs (including restored)
    int epochs_claimed{0};   ///< the shard's slice size
};

void write_heartbeat(const std::filesystem::path& file, const shard_heartbeat& hb);

/// Read a heartbeat; nullopt when the file is absent or malformed (a torn
/// or half-provisioned beacon counts as "no news", never an error).
[[nodiscard]] std::optional<shard_heartbeat> read_heartbeat(
    const std::filesystem::path& file);

/// Merge shard checkpoints into the full campaign dataset. Every file must
/// exist, carry cfg's fingerprint and epoch count, and together the shards
/// must cover the whole grid (overlap is tolerated — slot contents are
/// deterministic, so duplicates are byte-identical; first writer wins).
/// Throws dataset_error naming the offending file or the missing epochs.
/// Shards may be passed in any order; the result is order-invariant.
[[nodiscard]] dataset merge_shard_checkpoints(
    const campaign_config& cfg, const std::vector<std::filesystem::path>& shard_ckpts);

}  // namespace tcppred::testbed
