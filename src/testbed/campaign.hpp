// Campaign orchestration: the full paths x traces x epochs measurement
// sweep of §4.1, plus load-or-run caching so the expensive simulation runs
// once and every figure binary shares the CSV (the paper's
// collect-then-analyze split).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "testbed/dataset.hpp"
#include "testbed/load_process.hpp"

namespace tcppred::testbed {

/// Size and seeding of a measurement campaign.
struct campaign_config {
    int paths{35};
    int traces_per_path{2};
    int epochs_per_trace{120};
    std::uint64_t seed{20040501};  ///< May 2004, the paper's first set
    epoch_config epoch{};
    bool second_set{false};  ///< use the campaign-2 catalogue & transfer plan
    /// Worker threads for the epoch sweep. 0 = auto ($REPRO_JOBS if set,
    /// else hardware_concurrency); 1 = serial, bypassing the pool entirely.
    /// The dataset is byte-identical for every value (DESIGN.md §6).
    int jobs{0};
    /// Measurement-fault rates (sim/fault_injector.hpp). Default-disabled:
    /// a fault-free campaign is byte-identical to one run before the fault
    /// layer existed.
    sim::fault_profile faults{};
};

/// Progress callback: (epochs completed, total epochs).
///
/// Threading guarantees: invocations are serialized under an internal mutex
/// and `completed` is strictly increasing (1..total), regardless of how many
/// worker threads run the campaign — the callback itself needs no locking.
/// With jobs > 1 it is invoked from worker threads (never concurrently), and
/// epochs complete out of record order, so `completed` is a count, not an
/// index. It must not re-enter run_campaign.
using progress_fn = std::function<void(int, int)>;

/// The path catalogue a campaign config generates (campaign-1 or campaign-2
/// per cfg.second_set). Path ids ascend 0..paths-1 in catalogue order — the
/// invariant that makes the linearized epoch order below equal the
/// (path, trace)-sorted order dataset::traces() produces.
[[nodiscard]] std::vector<path_profile> campaign_catalog(const campaign_config& cfg);

/// Epochs in the full grid: paths * traces_per_path * epochs_per_trace.
[[nodiscard]] std::size_t campaign_total_epochs(const campaign_config& cfg);

/// Grid coordinates of a linear epoch index (DESIGN.md §6): the inverse of
/// idx = path_index * (traces_per_path * epochs_per_trace)
///     + trace * epochs_per_trace + epoch.
struct epoch_coords {
    std::size_t path_index{0};  ///< index into campaign_catalog(cfg)
    int trace{0};
    int epoch{0};
};
[[nodiscard]] epoch_coords decompose_epoch_index(const campaign_config& cfg,
                                                 std::size_t idx);

/// Worker count for a campaign sweep: explicit cfg.jobs wins, otherwise
/// $REPRO_JOBS / hardware_concurrency, never more than one per epoch.
[[nodiscard]] unsigned campaign_effective_jobs(const campaign_config& cfg,
                                               std::size_t total_epochs);

/// Simulate one campaign epoch exactly as run_campaign does: per-epoch seed
/// derivation, fault planning, the campaign.epochs_run/faulted counters, the
/// per-epoch latency recorder and the JSONL "epoch" trace event. `load` is
/// the trace's load state for `epoch` (load_trajectory position). A pure
/// function of (cfg, profile, load, trace, epoch) — both the in-memory sweep
/// and the streamed store sink (record_store.hpp) call this, which is what
/// keeps their records bitwise identical.
[[nodiscard]] epoch_record simulate_campaign_epoch(const campaign_config& cfg,
                                                   const path_profile& profile,
                                                   const load_state& load, int trace,
                                                   int epoch);

/// Emit the JSONL "campaign_start" event (no-op when tracing is off).
void trace_campaign_start(const campaign_config& cfg);

/// Run a campaign from scratch. Deterministic in cfg alone: the records
/// vector (and hence the CSV) is identical for any cfg.jobs / $REPRO_JOBS,
/// because every epoch is independently seeded via
/// derive_seed(seed, "epoch", path, trace, epoch) and results are written
/// into pre-sized slots in (path, trace, epoch) order, never push order.
[[nodiscard]] dataset run_campaign(const campaign_config& cfg, progress_fn progress = nullptr);

/// Checkpointing / cancellation knobs for run_campaign_resumable. All
/// default-off: a default-constructed value makes it behave exactly like
/// run_campaign.
struct campaign_run_options {
    /// Checkpoint file. Empty = no checkpointing.
    std::filesystem::path checkpoint{};
    /// Flush the checkpoint after this many newly completed epochs (and
    /// always once more at the end of an interrupted run).
    int checkpoint_every{32};
    /// Load `checkpoint` if it exists and skip its completed epochs. The
    /// checkpoint must carry this config's fingerprint (checkpoint.hpp);
    /// job count may differ freely.
    bool resume{false};
    /// Claim only linear epoch indices for which this returns true (null =
    /// claim everything). Off-claim epochs are neither simulated nor marked
    /// done — this is how a shard worker runs its slice of the grid
    /// (testbed/shard.hpp); `complete` then means "every claimed epoch done".
    /// Must be pure and thread-safe: it is called from worker threads.
    std::function<bool(std::size_t)> epoch_filter{};
    /// Keep the checkpoint file after a complete run instead of removing it.
    /// A shard's checkpoint IS its output — the merge step consumes it.
    bool keep_checkpoint{false};
    /// Polled between epochs; return true to stop claiming new epochs. The
    /// in-flight ones finish and are checkpointed.
    std::function<bool()> cancelled{};
    /// Test/instrumentation hook, invoked with the linear epoch index just
    /// before that epoch simulates. An exception thrown here (or anywhere in
    /// an epoch) aborts the run, but completed epochs are still flushed to
    /// the checkpoint before the first worker error is rethrown.
    std::function<void(std::size_t)> epoch_hook{};
};

/// What a (possibly interrupted) campaign run produced.
struct campaign_outcome {
    dataset data;             ///< complete iff `complete`; else done slots only
    bool complete{true};      ///< every *claimed* epoch done (see epoch_filter)
    int epochs_completed{0};  ///< including epochs restored from the checkpoint
    int epochs_resumed{0};    ///< epochs restored from the checkpoint
};

/// run_campaign plus checkpoint/resume/cancel. Determinism contract: for a
/// fixed cfg, the records of a run that was interrupted any number of times
/// and resumed are byte-identical to an uninterrupted run's, at any job
/// count — every epoch is independently seeded, completed epochs round-trip
/// bit-exactly through the checkpoint, and the checkpoint is refused when
/// cfg (beyond jobs) changed. On a complete run the checkpoint file is
/// removed.
[[nodiscard]] campaign_outcome run_campaign_resumable(const campaign_config& cfg,
                                                      const campaign_run_options& opts,
                                                      progress_fn progress = nullptr);

/// Pre-canned sizes, selectable with REPRO_SCALE=tiny|default|paper.
enum class campaign_scale { tiny, normal, paper };
[[nodiscard]] campaign_scale scale_from_env();
[[nodiscard]] campaign_config campaign1_config(campaign_scale scale);
/// Campaign 2 (§4.1 second set, March 2006): fresh paths, longer transfers
/// with 1/4, 1/2 and full-length goodput checkpoints, no W=20KB companion.
[[nodiscard]] campaign_config campaign2_config(campaign_scale scale);

/// Load `file` if present, otherwise run the campaign and save it there.
/// Progress goes to stderr.
[[nodiscard]] dataset load_or_run(const campaign_config& cfg,
                                  const std::filesystem::path& file);

/// Resolve the shared data directory: $REPRO_DATA_DIR or "data".
[[nodiscard]] std::filesystem::path data_dir();

/// The standard cached campaign-1 / campaign-2 datasets used by benches and
/// examples (scale from $REPRO_SCALE).
[[nodiscard]] dataset ensure_campaign1();
[[nodiscard]] dataset ensure_campaign2();

}  // namespace tcppred::testbed
