// Campaign orchestration: the full paths x traces x epochs measurement
// sweep of §4.1, plus load-or-run caching so the expensive simulation runs
// once and every figure binary shares the CSV (the paper's
// collect-then-analyze split).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "testbed/dataset.hpp"

namespace tcppred::testbed {

/// Size and seeding of a measurement campaign.
struct campaign_config {
    int paths{35};
    int traces_per_path{2};
    int epochs_per_trace{120};
    std::uint64_t seed{20040501};  ///< May 2004, the paper's first set
    epoch_config epoch{};
    bool second_set{false};  ///< use the campaign-2 catalogue & transfer plan
    /// Worker threads for the epoch sweep. 0 = auto ($REPRO_JOBS if set,
    /// else hardware_concurrency); 1 = serial, bypassing the pool entirely.
    /// The dataset is byte-identical for every value (DESIGN.md §6).
    int jobs{0};
};

/// Progress callback: (epochs completed, total epochs).
///
/// Threading guarantees: invocations are serialized under an internal mutex
/// and `completed` is strictly increasing (1..total), regardless of how many
/// worker threads run the campaign — the callback itself needs no locking.
/// With jobs > 1 it is invoked from worker threads (never concurrently), and
/// epochs complete out of record order, so `completed` is a count, not an
/// index. It must not re-enter run_campaign.
using progress_fn = std::function<void(int, int)>;

/// Run a campaign from scratch. Deterministic in cfg alone: the records
/// vector (and hence the CSV) is identical for any cfg.jobs / $REPRO_JOBS,
/// because every epoch is independently seeded via
/// derive_seed(seed, "epoch", path, trace, epoch) and results are written
/// into pre-sized slots in (path, trace, epoch) order, never push order.
[[nodiscard]] dataset run_campaign(const campaign_config& cfg, progress_fn progress = nullptr);

/// Pre-canned sizes, selectable with REPRO_SCALE=tiny|default|paper.
enum class campaign_scale { tiny, normal, paper };
[[nodiscard]] campaign_scale scale_from_env();
[[nodiscard]] campaign_config campaign1_config(campaign_scale scale);
/// Campaign 2 (§4.1 second set, March 2006): fresh paths, longer transfers
/// with 1/4, 1/2 and full-length goodput checkpoints, no W=20KB companion.
[[nodiscard]] campaign_config campaign2_config(campaign_scale scale);

/// Load `file` if present, otherwise run the campaign and save it there.
/// Progress goes to stderr.
[[nodiscard]] dataset load_or_run(const campaign_config& cfg,
                                  const std::filesystem::path& file);

/// Resolve the shared data directory: $REPRO_DATA_DIR or "data".
[[nodiscard]] std::filesystem::path data_dir();

/// The standard cached campaign-1 / campaign-2 datasets used by benches and
/// examples (scale from $REPRO_SCALE).
[[nodiscard]] dataset ensure_campaign1();
[[nodiscard]] dataset ensure_campaign2();

}  // namespace tcppred::testbed
