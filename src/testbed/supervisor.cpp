#include "testbed/supervisor.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "core/contracts.hpp"
#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/shard.hpp"

extern char** environ;  // worker env = ours + $REPRO_CHAOS_ATTEMPT

namespace tcppred::testbed {

namespace {

/// One occupied worker seat.
struct seat {
    shard_ref ref{};
    int attempt{1};
    pid_t pid{-1};
    std::uint64_t last_seq{0};
    bool have_seq{false};
    bool hung{false};           ///< we SIGKILLed it for a stale heartbeat
    obs::stopwatch quiet{};     ///< since the heartbeat last changed
};

/// A shard waiting (out) its backoff before relaunch.
struct pending_shard {
    shard_ref ref{};
    int attempt{1};
    double delay_s{0.0};
    obs::stopwatch since{};
};

double backoff_delay(const supervisor_options& opts, int attempt) {
    double d = opts.backoff_base_s;
    for (int k = 1; k < attempt && d < opts.backoff_cap_s; ++k) d *= 2.0;
    return std::min(d, opts.backoff_cap_s);
}

/// Fork+exec one worker on `ref`, attempt `attempt`. stdout/stderr append to
/// the shard log. Everything the child touches between fork and exec is
/// prepared up front (no allocation after fork). Returns -1 when fork fails.
pid_t spawn_worker(const supervisor_options& opts, shard_ref ref, int attempt) {
    std::vector<std::string> args = opts.worker_argv;
    args.push_back("--shard");
    args.push_back(std::to_string(ref.index) + "/" + std::to_string(ref.count));
    args.push_back("--jobs");
    args.push_back(std::to_string(std::max(1, opts.worker_jobs)));
    args.push_back("--resume");

    // Child env = ours with $REPRO_CHAOS_ATTEMPT pinned to this launch, so a
    // chaos-enabled worker draws a fresh kill/hang plan per attempt
    // (sim/chaos.hpp, 0-based: 0 = first launch) and a planned crash cannot
    // repeat forever.
    const std::string attempt_var =
        "REPRO_CHAOS_ATTEMPT=" + std::to_string(attempt - 1);
    std::vector<char*> envp;
    for (char** e = environ; e && *e; ++e) {
        if (std::strncmp(*e, "REPRO_CHAOS_ATTEMPT=", 20) == 0) continue;
        envp.push_back(*e);
    }
    envp.push_back(const_cast<char*>(attempt_var.c_str()));
    envp.push_back(nullptr);

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    // A stale heartbeat from the previous attempt must not read as liveness.
    std::error_code ec;
    std::filesystem::remove(shard_heartbeat_path(opts.out, ref), ec);
    const std::string log = shard_log_path(opts.out, ref).string();

    const pid_t pid = ::fork();
    if (pid != 0) return pid;  // parent (or fork failure, -1)

    const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
    }
    ::execvpe(argv[0], argv.data(), envp.data());
    ::_exit(127);  // exec failed: argv[0] is wrong — fatal, not retryable
}

void trace_worker_event(const char* ev, const seat& s, int wait_status) {
    if (!obs::trace_enabled()) return;
    obs::trace_emit(obs::json_line{}
                        .str("ev", ev)
                        .num("shard", static_cast<std::int64_t>(s.ref.index))
                        .num("of", static_cast<std::int64_t>(s.ref.count))
                        .num("attempt", static_cast<std::int64_t>(s.attempt))
                        .num("pid", static_cast<std::int64_t>(s.pid))
                        .num("wait_status", static_cast<std::int64_t>(wait_status))
                        .done());
}

}  // namespace

supervisor_result run_supervisor(const supervisor_options& opts) {
    TCPPRED_EXPECTS(opts.workers >= 1);
    TCPPRED_EXPECTS(!opts.out.empty());
    TCPPRED_EXPECTS(!opts.worker_argv.empty());
    TCPPRED_EXPECTS(opts.max_attempts >= 1);
    static const obs::counter c_spawned = obs::counter::get("supervisor.workers_spawned");
    static const obs::counter c_restarts = obs::counter::get("supervisor.worker_restarts");
    static const obs::counter c_retries = obs::counter::get("supervisor.shard_retries");
    static const obs::counter c_reassigned =
        obs::counter::get("supervisor.shard_reassignments");
    static const obs::counter c_hangs = obs::counter::get("supervisor.hangs_killed");

    supervisor_result result;
    const int n = opts.workers;
    // Seats are worker slots 0..W-1; shard i starts on seat i and a retry
    // takes the first free seat — landing on a different seat counts as a
    // reassignment (the shard moved to a surviving worker slot).
    std::vector<std::optional<seat>> seats(static_cast<std::size_t>(n));
    std::vector<int> last_seat(static_cast<std::size_t>(n));
    std::vector<char> shard_done(static_cast<std::size_t>(n), 0);
    std::vector<pending_shard> pending;
    for (int i = 0; i < n; ++i) {
        last_seat[static_cast<std::size_t>(i)] = i;
        pending.push_back(pending_shard{shard_ref{i, n}, 1, 0.0, {}});
    }

    bool interrupting = false;
    bool failing = false;
    obs::stopwatch grace;  // read only while interrupting/failing
    const auto useconds = static_cast<unsigned>(
        std::max(0.001, opts.poll_interval_s) * 1e6);

    const auto active_count = [&] {
        return std::count_if(seats.begin(), seats.end(),
                             [](const auto& s) { return s.has_value(); });
    };
    const auto signal_all = [&](int sig) {
        for (auto& s : seats) {
            if (s) ::kill(s->pid, sig);
        }
    };
    const auto fail = [&](std::string why) {
        if (!failing && !interrupting) {
            result.error = std::move(why);
            failing = true;
            grace.restart();
            signal_all(SIGINT);  // let survivors checkpoint before we leave
        }
    };

    while (true) {
        // Cancellation: fan SIGINT out once, then drain.
        if (!interrupting && !failing && opts.cancelled && opts.cancelled()) {
            interrupting = true;
            grace.restart();
            signal_all(SIGINT);
        }

        // Launch eligible pending shards onto free seats.
        if (!interrupting && !failing) {
            for (std::size_t pi = 0; pi < pending.size();) {
                pending_shard& p = pending[pi];
                if (p.since.elapsed_s() < p.delay_s) {
                    ++pi;
                    continue;
                }
                const auto free_it =
                    std::find_if(seats.begin(), seats.end(),
                                 [](const auto& s) { return !s.has_value(); });
                if (free_it == seats.end()) break;
                const pid_t pid = spawn_worker(opts, p.ref, p.attempt);
                if (pid < 0) {
                    fail("fork failed: " + std::string(std::strerror(errno)));
                    break;
                }
                seat s;
                s.ref = p.ref;
                s.attempt = p.attempt;
                s.pid = pid;
                *free_it = s;
                const int seat_index = static_cast<int>(free_it - seats.begin());
                const auto shard_idx = static_cast<std::size_t>(p.ref.index);
                if (p.attempt > 1 && seat_index != last_seat[shard_idx]) {
                    c_reassigned.add();
                }
                last_seat[shard_idx] = seat_index;
                ++result.workers_spawned;
                c_spawned.add();
                if (p.attempt > 1) {
                    ++result.worker_restarts;
                    c_restarts.add();
                }
                trace_worker_event("worker_spawn", **free_it, 0);
                pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pi));
            }
        }

        // Reap exits.
        int status = 0;
        pid_t reaped = 0;
        while ((reaped = ::waitpid(-1, &status, WNOHANG)) > 0) {
            const auto it = std::find_if(seats.begin(), seats.end(), [&](const auto& s) {
                return s && s->pid == reaped;
            });
            if (it == seats.end()) continue;  // not one of ours
            const seat s = **it;
            it->reset();
            trace_worker_event("worker_exit", s, status);
            const bool exited = WIFEXITED(status);
            const int code = exited ? WEXITSTATUS(status) : -1;
            if (exited && code == 0) {
                shard_done[static_cast<std::size_t>(s.ref.index)] = 1;
                continue;
            }
            if (interrupting || failing) continue;  // drained, not retried
            if (exited && (code == 1 || code == 127)) {
                std::ostringstream why;
                why << "worker for shard " << s.ref.index << "/" << s.ref.count
                    << " exited " << code
                    << " (bad arguments or exec failure) — not retryable; see "
                    << shard_log_path(opts.out, s.ref).string();
                fail(why.str());
                continue;
            }
            // Crash (signal), runtime failure, or a stray SIGINT: retry with
            // backoff unless the shard is out of attempts.
            if (s.attempt >= opts.max_attempts) {
                std::ostringstream why;
                why << "shard " << s.ref.index << "/" << s.ref.count << " failed "
                    << s.attempt << " attempt(s) (last wait status " << status
                    << "); see " << shard_log_path(opts.out, s.ref).string();
                fail(why.str());
                continue;
            }
            c_retries.add();
            pending.push_back(pending_shard{s.ref, s.attempt + 1,
                                            backoff_delay(opts, s.attempt + 1),
                                            {}});
        }

        // Heartbeat scan: a seat whose beacon has not changed within the
        // hang timeout is wedged — SIGKILL it; the reap above then treats it
        // as a crash and retries.
        if (!interrupting && !failing) {
            for (auto& s : seats) {
                if (!s || s->hung) continue;
                const auto hb = read_heartbeat(shard_heartbeat_path(opts.out, s->ref));
                if (hb && (!s->have_seq || hb->seq != s->last_seq)) {
                    s->have_seq = true;
                    s->last_seq = hb->seq;
                    s->quiet.restart();
                } else if (s->quiet.elapsed_s() > opts.hang_timeout_s) {
                    s->hung = true;
                    ++result.hangs_killed;
                    c_hangs.add();
                    trace_worker_event("worker_hang_kill", *s, 0);
                    ::kill(s->pid, SIGKILL);
                }
            }
        }

        if (interrupting || failing) {
            if (active_count() == 0) break;
            // Workers normally exit promptly on SIGINT (they flush their
            // shard checkpoint first); a chaos-hung worker never will, so
            // SIGKILL stragglers after the grace period.
            if (grace.elapsed_s() > opts.hang_timeout_s) signal_all(SIGKILL);
        } else if (pending.empty() && active_count() == 0) {
            break;  // every shard exited 0
        }
        ::usleep(useconds);
    }

    if (interrupting) {
        result.interrupted = true;
        return result;
    }
    if (failing) return result;

    // All shards complete: merge their checkpoints into the final CSV. The
    // shard checkpoints play the role a serial run's checkpoint plays — they
    // are consumed (removed) once the CSV is safely written; logs stay.
    try {
        std::vector<std::filesystem::path> ckpts;
        ckpts.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            ckpts.push_back(shard_checkpoint_path(opts.out, shard_ref{i, n}));
        }
        if (opts.merge) {
            result.epochs_merged = opts.merge(opts.cfg, ckpts, opts.out);
        } else {
            const dataset data = merge_shard_checkpoints(opts.cfg, ckpts);
            save_csv(data, opts.out);
            result.epochs_merged = data.records.size();
        }
        for (int i = 0; i < n; ++i) {
            std::error_code ec;
            std::filesystem::remove(shard_checkpoint_path(opts.out, shard_ref{i, n}), ec);
            std::filesystem::remove(shard_heartbeat_path(opts.out, shard_ref{i, n}), ec);
        }
        if (obs::trace_enabled()) {
            obs::trace_emit(obs::json_line{}
                                .str("ev", "supervisor_merge")
                                .num("shards", static_cast<std::int64_t>(n))
                                .num("epochs",
                                     static_cast<std::uint64_t>(result.epochs_merged))
                                .done());
        }
    } catch (const std::exception& e) {
        result.error = std::string("merge failed: ") + e.what();
        return result;
    }
    result.complete = true;
    return result;
}

}  // namespace tcppred::testbed
