// One measurement epoch (Fig. 1 of the paper): avail-bw measurement
// (pathload), then periodic probing (p̂, T̂), then the bulk target transfer
// with concurrent probing (R, p̃, T̃), then the window-limited companion
// transfer — all against the epoch's background load.
//
// Durations are compressed relative to the paper's wall-clock (Design
// decision in DESIGN.md §2): sample *counts* are kept in the paper's
// regime, absolute seconds are not.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/units.hpp"
#include "net/cross_traffic.hpp"
#include "probe/ping_prober.hpp"
#include "sim/fault_injector.hpp"
#include "tcp/tcp.hpp"
#include "testbed/load_process.hpp"
#include "testbed/path_catalog.hpp"

namespace tcppred::testbed {

/// Per-epoch measurement-failure flags (bitmask in epoch_measurement).
/// Recorded, never thrown: a failed measurement is data, not an error, and
/// a faulty epoch must not abort a campaign.
enum epoch_fault_flag : std::uint32_t {
    fault_none = 0,
    fault_pathload_failed = 1u << 0,   ///< avail-bw estimate missing (NaN)
    fault_ping_degraded = 1u << 1,     ///< a-priori ping saw injected timeouts
    fault_ping_partial = 1u << 2,      ///< a-priori ping session truncated
    fault_transfer_aborted = 1u << 3,  ///< target transfer ended early
    fault_path_outage = 1u << 4,       ///< transient blackout during transfer
};

/// True when the a-priori (pre-transfer) measurements of the epoch were
/// touched by a fault, i.e. the FB predictor's inputs are suspect.
[[nodiscard]] constexpr bool apriori_faulty(std::uint32_t flags) noexcept {
    return (flags & (fault_pathload_failed | fault_ping_degraded | fault_ping_partial)) !=
           0;
}

/// True when the measured throughput itself is unreliable.
[[nodiscard]] constexpr bool actual_faulty(std::uint32_t flags) noexcept {
    return (flags & (fault_transfer_aborted | fault_path_outage)) != 0;
}

/// Epoch phase parameters. Durations carry their unit in the type
/// (core/units.hpp); window sizes stay raw byte counts because they feed
/// tcp_config directly.
struct epoch_config {
    core::seconds warmup{2.0};  ///< let cross traffic reach steady state
    probe::ping_config prior_ping{};  ///< p̂/T̂ measurement (defaults: 400 x 15 ms)
    core::seconds during_ping_interval{0.015};
    core::seconds transfer{10.0};     ///< target-flow duration
    std::uint64_t large_window_bytes{1 << 20};  ///< W = 1 MB (congestion-limited)
    std::uint64_t small_window_bytes{20 * 1024};///< W = 20 KB (window-limited)
    bool run_small_window{true};
    bool run_pathload{true};
    /// Goodput checkpoints within the target transfer (campaign 2 /
    /// Fig. 11); empty for campaign 1.
    std::vector<double> prefix_s{};
    /// pathload search upper bound as a multiple of the bottleneck capacity.
    double pathload_max_rate_factor{1.3};
    /// Template TCP parameters (window is overridden per transfer). The
    /// testbed default bounds the first slow-start overshoot the way real
    /// stacks do on repeat paths (cached ssthresh); see tcp_config.
    tcp::tcp_config tcp = [] {
        tcp::tcp_config c;
        c.variant = tcp::tcp_variant::sack;  // paper-era endpoints (Linux 2.4)
        c.initial_ssthresh_segments = 128;
        c.max_rto_backoff = 2;
        return c;
    }();
    core::seconds hard_cap{240.0};  ///< watchdog on simulated time
    /// Resolved measurement faults for this specific epoch (default: none).
    /// Planned by the campaign from its fault_profile; see DESIGN.md §10.
    sim::epoch_fault_plan faults{};
    /// How the open-loop background traffic is realized at the bottleneck
    /// (net/cross_traffic.hpp). Defaults to the exact per-packet model; the
    /// fluid aggregate trades packet granularity for a large event-count
    /// reduction (DESIGN.md §13.5).
    net::cross_model cross{net::cross_model::packet};
};

/// Everything one epoch measures. Under fault injection a field may be NaN:
/// the measurement failed and the value is missing (`fault_flags` says why);
/// with faults off every field is a real number, exactly as before the
/// fault layer existed.
struct epoch_measurement {
    // A-priori measurements feeding the FB predictor (Eq. 3).
    double avail_bw_bps{0.0};  ///< Â
    double phat{0.0};          ///< p̂
    double phat_events{0.0};   ///< p̂ with consecutive losses collapsed (Goyal p')
    double that_s{0.0};        ///< T̂
    // Periodic-probing view during the target flow (§4.2.3).
    double ptilde{0.0};        ///< p̃
    double ttilde_s{0.0};      ///< T̃
    // Target-flow outcomes.
    double r_large_bps{0.0};   ///< R with W = 1 MB
    double r_small_bps{0.0};   ///< R with W = 20 KB
    std::vector<std::pair<double, double>> prefix_goodputs;  ///< (prefix s, bps)
    // TCP's own view of the path during the large transfer (§3.3 ablation).
    double tcp_loss_rate{0.0};       ///< retransmitted / sent segments
    double tcp_event_rate{0.0};      ///< congestion events / sent segments
    double tcp_mean_rtt_s{0.0};      ///< mean of TCP's RTT samples
    // Diagnostics.
    double sim_time_s{0.0};
    std::uint64_t events{0};
    std::uint32_t fault_flags{fault_none};  ///< epoch_fault_flag bitmask
};

/// Run a single epoch, fully deterministically from (profile, load, seed).
[[nodiscard]] epoch_measurement run_epoch(const path_profile& profile,
                                          const load_state& load, std::uint64_t seed,
                                          const epoch_config& cfg = {});

}  // namespace tcppred::testbed
