#include "testbed/shard.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/path_catalog.hpp"

namespace tcppred::testbed {

namespace {

bool parse_int(std::string_view s, int& out) {
    const auto* end = s.data() + s.size();
    const auto res = std::from_chars(s.data(), end, out);
    return res.ec == std::errc{} && res.ptr == end;
}

std::filesystem::path shard_file(const std::filesystem::path& out, shard_ref ref,
                                 const char* ext) {
    std::filesystem::path p = out;
    p += ".shard-" + std::to_string(ref.index) + "-of-" + std::to_string(ref.count) +
         ext;
    return p;
}

}  // namespace

std::optional<shard_ref> parse_shard(std::string_view spec) {
    const std::size_t slash = spec.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    shard_ref ref;
    if (!parse_int(spec.substr(0, slash), ref.index)) return std::nullopt;
    if (!parse_int(spec.substr(slash + 1), ref.count)) return std::nullopt;
    if (ref.count < 1 || ref.index < 0 || ref.index >= ref.count) return std::nullopt;
    return ref;
}

std::function<bool(std::size_t)> shard_filter(shard_ref ref) {
    TCPPRED_EXPECTS(ref.count >= 1 && ref.index >= 0 && ref.index < ref.count);
    return [ref](std::size_t idx) { return shard_of(idx, ref.count) == ref.index; };
}

std::size_t shard_size(std::size_t total, shard_ref ref) {
    TCPPRED_EXPECTS(ref.count >= 1 && ref.index >= 0 && ref.index < ref.count);
    const std::size_t count = static_cast<std::size_t>(ref.count);
    const std::size_t index = static_cast<std::size_t>(ref.index);
    return total / count + (total % count > index ? 1 : 0);
}

std::filesystem::path shard_checkpoint_path(const std::filesystem::path& out,
                                            shard_ref ref) {
    return shard_file(out, ref, ".ckpt");
}

std::filesystem::path shard_heartbeat_path(const std::filesystem::path& out,
                                           shard_ref ref) {
    return shard_file(out, ref, ".hb");
}

std::filesystem::path shard_log_path(const std::filesystem::path& out, shard_ref ref) {
    return shard_file(out, ref, ".log");
}

void write_heartbeat(const std::filesystem::path& file, const shard_heartbeat& hb) {
    std::ostringstream out;
    out << "tcppred-heartbeat v1\n"
        << "pid " << hb.pid << "\n"
        << "seq " << hb.seq << "\n"
        << "done " << hb.epochs_done << "\n"
        << "claimed " << hb.epochs_claimed << "\n";
    atomic_write_text(file, out.str());
}

std::optional<shard_heartbeat> read_heartbeat(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) return std::nullopt;
    std::string magic;
    std::string version;
    if (!(in >> magic >> version) || magic != "tcppred-heartbeat" || version != "v1") {
        return std::nullopt;
    }
    shard_heartbeat hb;
    std::string key;
    if (!(in >> key >> hb.pid) || key != "pid") return std::nullopt;
    if (!(in >> key >> hb.seq) || key != "seq") return std::nullopt;
    if (!(in >> key >> hb.epochs_done) || key != "done") return std::nullopt;
    if (!(in >> key >> hb.epochs_claimed) || key != "claimed") return std::nullopt;
    return hb;
}

dataset merge_shard_checkpoints(const campaign_config& cfg,
                                const std::vector<std::filesystem::path>& shard_ckpts) {
    TCPPRED_EXPECTS(!shard_ckpts.empty());
    const std::string fingerprint = campaign_fingerprint(cfg);
    const std::size_t total = static_cast<std::size_t>(cfg.paths) *
                              static_cast<std::size_t>(cfg.traces_per_path) *
                              static_cast<std::size_t>(cfg.epochs_per_trace);

    dataset data;
    data.paths = cfg.second_set ? second_campaign_catalog(cfg.paths, cfg.seed)
                                : ron_like_catalog(cfg.paths, cfg.seed);
    data.records.resize(total);
    std::vector<char> done(total, 0);

    for (const auto& file : shard_ckpts) {
        // load_checkpoint already rejects fingerprint mismatches with a
        // field-level diff and returns nullopt only for absent files — an
        // absent shard means the campaign is not finished, so refuse.
        auto ck = load_checkpoint(file, fingerprint);
        if (!ck) {
            throw dataset_error(file, 0, 0,
                                "shard checkpoint missing — run its shard to "
                                "completion before merging");
        }
        if (ck->total != total) {
            throw dataset_error(file, 0, 0,
                                "shard checkpoint epoch count disagrees with config");
        }
        for (std::size_t i = 0; i < total; ++i) {
            if (!ck->done[i] || done[i]) continue;  // overlap: first writer wins
            data.records[i] = std::move(ck->records[i]);
            done[i] = 1;
        }
    }

    std::size_t missing = 0;
    std::size_t first_missing = 0;
    for (std::size_t i = 0; i < total; ++i) {
        if (done[i]) continue;
        if (missing == 0) first_missing = i;
        ++missing;
    }
    if (missing > 0) {
        std::ostringstream msg;
        msg << "shards cover only " << (total - missing) << " of " << total
            << " epochs (first missing linear index " << first_missing
            << ") — every shard must be complete before merging";
        throw dataset_error(shard_ckpts.front(), 0, 0, msg.str());
    }
    return data;
}

}  // namespace tcppred::testbed
