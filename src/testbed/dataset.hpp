// The measurement dataset: one record per epoch, CSV persistence so a
// campaign is generated once and shared by every analysis/bench binary
// (exactly as the paper separates trace collection from analysis).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "testbed/epoch_runner.hpp"

namespace tcppred::testbed {

/// One epoch's results, keyed by (path, trace, epoch).
struct epoch_record {
    int path_id{0};
    int trace_id{0};
    int epoch_index{0};
    epoch_measurement m;
};

/// A full campaign's records plus the catalogue that produced them.
struct dataset {
    std::vector<path_profile> paths;
    std::vector<epoch_record> records;

    /// Group records into per-(path, trace) series, ordered by epoch index.
    [[nodiscard]] std::map<std::pair<int, int>, std::vector<const epoch_record*>>
    traces() const;

    /// The W=1MB throughput series of one trace, ordered by epoch.
    [[nodiscard]] std::vector<double> throughput_series(int path_id, int trace_id) const;
    /// The W=20KB throughput series of one trace.
    [[nodiscard]] std::vector<double> small_window_series(int path_id, int trace_id) const;

    [[nodiscard]] const path_profile& profile(int path_id) const;
};

/// Write records as CSV (one header line, one line per epoch).
void save_csv(const dataset& data, const std::filesystem::path& file);

/// Read records back. The path catalogue is re-derived from the stored
/// catalogue parameters line. Throws on malformed input.
[[nodiscard]] dataset load_csv(const std::filesystem::path& file);

}  // namespace tcppred::testbed
