// The measurement dataset: one record per epoch, CSV persistence so a
// campaign is generated once and shared by every analysis/bench binary
// (exactly as the paper separates trace collection from analysis).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "testbed/epoch_runner.hpp"

namespace tcppred::testbed {

/// A malformed-dataset failure, pinpointing where in the file the loader
/// gave up: `file():line():column(): reason`. Line numbers are 1-based;
/// column is the 1-based CSV field index (0 when the whole line is bad).
class dataset_error : public std::runtime_error {
public:
    dataset_error(std::filesystem::path file, std::size_t line, std::size_t column,
                  const std::string& reason);

    [[nodiscard]] const std::filesystem::path& file() const noexcept { return file_; }
    [[nodiscard]] std::size_t line() const noexcept { return line_; }
    [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
    std::filesystem::path file_;
    std::size_t line_;
    std::size_t column_;
};

/// One epoch's results, keyed by (path, trace, epoch).
struct epoch_record {
    int path_id{0};
    int trace_id{0};
    int epoch_index{0};
    epoch_measurement m;
};

/// A full campaign's records plus the catalogue that produced them.
struct dataset {
    std::vector<path_profile> paths;
    std::vector<epoch_record> records;

    /// Group records into per-(path, trace) series, ordered by epoch index.
    [[nodiscard]] std::map<std::pair<int, int>, std::vector<const epoch_record*>>
    traces() const;

    /// The W=1MB throughput series of one trace, ordered by epoch.
    [[nodiscard]] std::vector<double> throughput_series(int path_id, int trace_id) const;
    /// The W=20KB throughput series of one trace.
    [[nodiscard]] std::vector<double> small_window_series(int path_id, int trace_id) const;

    [[nodiscard]] const path_profile& profile(int path_id) const;
};

/// Write records as CSV (one header line, one line per epoch). A
/// `fault_flags` column is appended only when at least one record carries a
/// nonzero flag, so fault-free campaigns serialize byte-identically to
/// datasets written before the fault layer existed.
void save_csv(const dataset& data, const std::filesystem::path& file);

/// Streaming emitters of the legacy v1 analysis CSV, shared by save_csv and
/// the record-store conversion (record_store.hpp) so that "store -> CSV" is
/// byte-identical to save_csv by construction, not by parallel maintenance.
/// Each call configures the stream itself (decimal, precision 10);
/// `any_faults` must be the same value for the header and every record of
/// one file (it decides the optional fault_flags column).
void write_csv_catalog(std::ostream& out, const std::vector<path_profile>& paths);
void write_csv_header(std::ostream& out, bool any_faults);
void write_csv_record(std::ostream& out, const epoch_record& r, bool any_faults);

/// The catalogue lines write_csv_catalog would emit, one string per path,
/// without trailing newlines — the verbatim form the record store carries in
/// its header so conversion back to CSV needs no re-formatting.
[[nodiscard]] std::vector<std::string> csv_catalog_lines(
    const std::vector<path_profile>& paths);

/// Project a record through the v1 CSV number format: every measurement
/// double is rendered exactly as save_csv would render it and parsed back
/// exactly as load_csv would parse it, fields the CSV does not carry
/// (sim_time_s, events) are zeroed, and prefix goodputs get the CSV's
/// pad-to-3/drop-non-positive treatment. Evaluating csv_normalized_record(r)
/// is bitwise equivalent to evaluating r after a save_csv/load_csv round
/// trip — the bridge that lets streamed, store-backed analysis reproduce the
/// pinned CSV-derived goldens without materializing a CSV.
[[nodiscard]] epoch_record csv_normalized_record(const epoch_record& r);

/// Read records back. The path catalogue is re-derived from the stored
/// catalogue parameters line; the optional `fault_flags` column is detected
/// from the header. NaN fields are legal in measurement columns (a failed
/// measurement); everything else malformed throws dataset_error with the
/// offending file/line/column.
[[nodiscard]] dataset load_csv(const std::filesystem::path& file);

/// Same parse over an already-open stream. `context` only labels
/// dataset_error messages; nothing is read from the filesystem. This is the
/// entry point the fuzz harness drives, so it must stay safe on arbitrary
/// bytes: throw dataset_error, never crash or allocate unboundedly.
[[nodiscard]] dataset load_csv(std::istream& in,
                               const std::filesystem::path& context = "<stream>");

}  // namespace tcppred::testbed
