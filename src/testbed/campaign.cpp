#include "testbed/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "sim/fault_injector.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/load_process.hpp"

namespace tcppred::testbed {

std::vector<path_profile> campaign_catalog(const campaign_config& cfg) {
    return cfg.second_set ? second_campaign_catalog(cfg.paths, cfg.seed)
                          : ron_like_catalog(cfg.paths, cfg.seed);
}

std::size_t campaign_total_epochs(const campaign_config& cfg) {
    return static_cast<std::size_t>(cfg.paths) *
           static_cast<std::size_t>(cfg.traces_per_path) *
           static_cast<std::size_t>(cfg.epochs_per_trace);
}

epoch_coords decompose_epoch_index(const campaign_config& cfg, std::size_t idx) {
    const int per_path = cfg.traces_per_path * cfg.epochs_per_trace;
    epoch_coords c;
    c.path_index = idx / static_cast<std::size_t>(per_path);
    const int rem = static_cast<int>(idx % static_cast<std::size_t>(per_path));
    c.trace = rem / cfg.epochs_per_trace;
    c.epoch = rem % cfg.epochs_per_trace;
    return c;
}

unsigned campaign_effective_jobs(const campaign_config& cfg, std::size_t total_epochs) {
    const unsigned requested =
        cfg.jobs > 0 ? static_cast<unsigned>(cfg.jobs) : sim::jobs_from_env();
    const std::size_t cap_epochs = total_epochs > 0 ? total_epochs : 1;
    const unsigned cap = static_cast<unsigned>(std::min<std::size_t>(
        cap_epochs, std::numeric_limits<unsigned>::max()));
    return std::min(requested, cap);
}

epoch_record simulate_campaign_epoch(const campaign_config& cfg,
                                     const path_profile& profile,
                                     const load_state& load, int trace, int epoch) {
    static const obs::counter c_epochs = obs::counter::get("campaign.epochs_run");
    static const obs::counter c_faulted = obs::counter::get("campaign.epochs_faulted");
    const std::uint64_t epoch_seed = sim::derive_seed(
        cfg.seed, "epoch", static_cast<std::uint64_t>(profile.id),
        static_cast<std::uint64_t>(trace), static_cast<std::uint64_t>(epoch));
    // The fault plan rides in a per-epoch copy of the epoch config; the
    // fault-free path keeps using cfg.epoch directly.
    const epoch_config* ecfg = &cfg.epoch;
    epoch_config faulty_cfg;
    if (cfg.faults.enabled()) {
        faulty_cfg = cfg.epoch;
        faulty_cfg.faults =
            sim::plan_epoch_faults(cfg.faults, cfg.seed, profile.id, trace, epoch);
        if (faulty_cfg.faults.any()) c_faulted.add();
        ecfg = &faulty_cfg;
    }
    epoch_record rec;
    rec.path_id = profile.id;
    rec.trace_id = trace;
    rec.epoch_index = epoch;
    const bool observing = obs::metrics_enabled() || obs::trace_enabled();
    const obs::stopwatch epoch_watch;  // read only when observing
    rec.m = run_epoch(profile, load, epoch_seed, *ecfg);
    c_epochs.add();
    if (observing) {
        const double dur_s = epoch_watch.elapsed_s();
        obs::record_duration("campaign.epoch", dur_s);
        if (obs::trace_enabled()) {
            char seed_hex[20];
            std::snprintf(seed_hex, sizeof(seed_hex), "0x%016llx",
                          static_cast<unsigned long long>(epoch_seed));
            obs::trace_emit(
                obs::json_line{}
                    .str("ev", "epoch")
                    .num("path", static_cast<std::int64_t>(profile.id))
                    .num("trace", static_cast<std::int64_t>(trace))
                    .num("epoch", static_cast<std::int64_t>(epoch))
                    .str("seed", seed_hex)
                    .num("fault_flags", static_cast<std::uint64_t>(rec.m.fault_flags))
                    .num("sim_events", rec.m.events)
                    .num("dur_s", dur_s)
                    .num("thread", static_cast<std::uint64_t>(std::hash<std::thread::id>{}(
                                       std::this_thread::get_id())))
                    .done());
        }
    }
    return rec;
}

void trace_campaign_start(const campaign_config& cfg) {
    if (!obs::trace_enabled()) return;
    obs::trace_emit(obs::json_line{}
                        .str("ev", "campaign_start")
                        .num("paths", static_cast<std::int64_t>(cfg.paths))
                        .num("traces", static_cast<std::int64_t>(cfg.traces_per_path))
                        .num("epochs", static_cast<std::int64_t>(cfg.epochs_per_trace))
                        .num("seed", static_cast<std::uint64_t>(cfg.seed))
                        .str("faults", cfg.faults.spec())
                        .num("second_set",
                             static_cast<std::int64_t>(cfg.second_set ? 1 : 0))
                        .done());
}

dataset run_campaign(const campaign_config& cfg, progress_fn progress) {
    return run_campaign_resumable(cfg, {}, std::move(progress)).data;
}

campaign_outcome run_campaign_resumable(const campaign_config& cfg,
                                        const campaign_run_options& opts,
                                        progress_fn progress) {
    TCPPRED_EXPECTS(cfg.paths > 0 && cfg.traces_per_path > 0 &&
                    cfg.epochs_per_trace > 0);
    TCPPRED_EXPECTS(cfg.jobs >= 0);
    TCPPRED_EXPECTS(opts.checkpoint_every > 0);
    campaign_outcome out;
    dataset& data = out.data;
    data.paths = campaign_catalog(cfg);

    const int total = cfg.paths * cfg.traces_per_path * cfg.epochs_per_trace;

    // Observability: logical-event counters (job-count-invariant; DESIGN.md
    // §12) and the JSONL run trace (per-epoch events are emitted inside
    // simulate_campaign_epoch).
    static const obs::counter c_resumed = obs::counter::get("campaign.epochs_resumed");
    static const obs::counter c_flushes =
        obs::counter::get("campaign.checkpoint_flushes");
    trace_campaign_start(cfg);
    const bool checkpointing = !opts.checkpoint.empty();
    const std::string fingerprint =
        checkpointing ? campaign_fingerprint(cfg) : std::string{};

    // Per-trace load trajectories are cheap; generate them up front so the
    // parallel sweep below is a pure fan-out over independent epochs.
    const obs::stopwatch loads_watch;
    const std::size_t n_traces =
        data.paths.size() * static_cast<std::size_t>(cfg.traces_per_path);
    std::vector<std::vector<load_state>> loads(n_traces);
    for (std::size_t p = 0; p < data.paths.size(); ++p) {
        for (int trace = 0; trace < cfg.traces_per_path; ++trace) {
            const std::uint64_t trace_seed = sim::derive_seed(
                cfg.seed, "trace", static_cast<std::uint64_t>(data.paths[p].id),
                static_cast<std::uint64_t>(trace));
            loads[p * static_cast<std::size_t>(cfg.traces_per_path) +
                  static_cast<std::size_t>(trace)] =
                load_trajectory(data.paths[p], trace_seed, cfg.epochs_per_trace);
        }
    }
    obs::record_duration("campaign.load_trajectories", loads_watch.elapsed_s());

    // Records are pre-sized and indexed by the linearized (path, trace,
    // epoch) — identical to the serial iteration order — so completion order
    // never shows in the output and save_csv is byte-identical for any job
    // count (the determinism contract, DESIGN.md §6).
    data.records.resize(static_cast<std::size_t>(total));

    // Completed-epoch bitmap. Slots restored here (before any worker starts)
    // are read without locking in run_one: thread creation orders those
    // writes before every worker. Workers only set their own claimed slot,
    // under ck_mutex, so checkpoint flushes read a consistent view.
    std::vector<char> done(static_cast<std::size_t>(total), 0);
    if (opts.resume && checkpointing) {
        if (auto ck = load_checkpoint(opts.checkpoint, fingerprint)) {
            if (ck->total != static_cast<std::size_t>(total)) {
                throw dataset_error(opts.checkpoint, 0, 0,
                                    "checkpoint epoch count disagrees with config");
            }
            for (std::size_t i = 0; i < ck->total; ++i) {
                if (!ck->done[i]) continue;
                data.records[i] = std::move(ck->records[i]);
                done[i] = 1;
                ++out.epochs_resumed;
            }
            c_resumed.add(static_cast<std::uint64_t>(out.epochs_resumed));
        }
    }

    // Progress + checkpoint state, all serialized by ck_mutex so the user
    // callback sees strictly increasing counts and never runs concurrently
    // with itself, and a flush always sees fully written records.
    std::atomic<bool> cancel{false};
    std::mutex ck_mutex;
    int completed = out.epochs_resumed;
    int since_flush = 0;

    const auto flush_checkpoint = [&] {  // caller holds ck_mutex
        campaign_checkpoint ck;
        ck.fingerprint = fingerprint;
        ck.total = static_cast<std::size_t>(total);
        ck.done = done;
        // Copy completed slots only: a worker writes its record slot before
        // taking ck_mutex to set done[idx], so every done slot is fully
        // written and quiescent here — while a slot still in flight may be
        // mid-write on another thread and must not even be read (save would
        // skip it anyway).
        ck.records.resize(ck.total);
        for (std::size_t i = 0; i < ck.total; ++i) {
            if (done[i]) ck.records[i] = data.records[i];
        }
        save_checkpoint(ck, opts.checkpoint);
        c_flushes.add();
    };

    const auto run_one = [&](std::size_t idx) {
        if (opts.epoch_filter && !opts.epoch_filter(idx)) return;  // not ours
        if (done[idx]) return;  // restored from the checkpoint
        if (cancel.load(std::memory_order_relaxed)) return;
        if (opts.cancelled && opts.cancelled()) {
            cancel.store(true, std::memory_order_relaxed);
            return;
        }
        if (opts.epoch_hook) opts.epoch_hook(idx);
        const epoch_coords c = decompose_epoch_index(cfg, idx);
        const path_profile& profile = data.paths[c.path_index];
        data.records[idx] = simulate_campaign_epoch(
            cfg, profile,
            loads[c.path_index * static_cast<std::size_t>(cfg.traces_per_path) +
                  static_cast<std::size_t>(c.trace)][static_cast<std::size_t>(c.epoch)],
            c.trace, c.epoch);
        {
            const std::lock_guard<std::mutex> lock(ck_mutex);
            done[idx] = 1;
            ++completed;
            if (progress) progress(completed, total);
            if (checkpointing && ++since_flush >= opts.checkpoint_every) {
                flush_checkpoint();
                since_flush = 0;
            }
        }
    };

    try {
        const obs::stage_timer t_sweep("campaign.sweep");
        sim::parallel_for(static_cast<std::size_t>(total),
                          campaign_effective_jobs(cfg, static_cast<std::size_t>(total)),
                          run_one);
    } catch (...) {
        // A worker threw (parallel_for already drained the pool and captured
        // the first error). Persist the epochs that did complete, then let
        // the error propagate — exactly once — to the caller.
        if (checkpointing) {
            const std::lock_guard<std::mutex> lock(ck_mutex);
            flush_checkpoint();
        }
        throw;
    }

    out.epochs_completed = completed;
    // Complete = every claimed epoch done. Without a filter that is the
    // whole grid; a shard is complete when its slice is, regardless of the
    // other shards' slots.
    out.complete = true;
    for (std::size_t i = 0; i < static_cast<std::size_t>(total); ++i) {
        if (opts.epoch_filter && !opts.epoch_filter(i)) continue;
        if (!done[i]) {
            out.complete = false;
            break;
        }
    }
    if (checkpointing) {
        if (out.complete && !opts.keep_checkpoint) {
            std::error_code ec;  // best-effort cleanup; absence is fine
            std::filesystem::remove(opts.checkpoint, ec);
        } else {
            // Final flush so everything finished since the last periodic
            // flush survives the interruption — and so a kept (shard)
            // checkpoint exists even when the run had nothing left to do.
            const std::lock_guard<std::mutex> lock(ck_mutex);
            if (since_flush > 0 || !std::filesystem::exists(opts.checkpoint)) {
                flush_checkpoint();
            }
        }
    }
    return out;
}

campaign_scale scale_from_env() {
    const char* env = std::getenv("REPRO_SCALE");  // NOLINT(concurrency-mt-unsafe)
    if (!env) return campaign_scale::normal;
    const std::string s(env);
    if (s == "tiny") return campaign_scale::tiny;
    if (s == "paper") return campaign_scale::paper;
    return campaign_scale::normal;
}

campaign_config campaign1_config(campaign_scale scale) {
    campaign_config cfg;
    switch (scale) {
        case campaign_scale::tiny:
            cfg.paths = 8;
            cfg.traces_per_path = 1;
            cfg.epochs_per_trace = 45;
            break;
        case campaign_scale::normal:
            cfg.paths = 35;
            cfg.traces_per_path = 2;
            cfg.epochs_per_trace = 120;
            break;
        case campaign_scale::paper:
            cfg.paths = 35;
            cfg.traces_per_path = 7;
            cfg.epochs_per_trace = 150;
            break;
    }
    return cfg;
}

campaign_config campaign2_config(campaign_scale scale) {
    campaign_config cfg;
    cfg.second_set = true;
    cfg.seed = 20060301;  // March 2006, the paper's second set
    // Longer target transfers with goodput checkpoints at 1/4, 1/2 and the
    // full length (the paper's 30/60/120 s of a 120 s transfer).
    cfg.epoch.transfer = core::seconds{24.0};
    cfg.epoch.prefix_s = {6.0, 12.0, 24.0};
    cfg.epoch.run_small_window = false;
    switch (scale) {
        case campaign_scale::tiny:
            cfg.paths = 4;
            cfg.traces_per_path = 1;
            cfg.epochs_per_trace = 15;
            break;
        case campaign_scale::normal:
            cfg.paths = 24;
            cfg.traces_per_path = 1;
            cfg.epochs_per_trace = 60;
            break;
        case campaign_scale::paper:
            cfg.paths = 24;
            cfg.traces_per_path = 3;
            cfg.epochs_per_trace = 120;
            break;
    }
    return cfg;
}

dataset load_or_run(const campaign_config& cfg, const std::filesystem::path& file) {
    if (std::filesystem::exists(file)) {
        return load_csv(file);
    }
    const unsigned jobs = campaign_effective_jobs(cfg, campaign_total_epochs(cfg));
    std::cerr << "[campaign] dataset " << file
              << " not found; running measurement campaign on " << jobs
              << " thread(s) (this is done once and cached)...\n";
    int last_percent = -1;
    const obs::stopwatch watch;
    dataset data = run_campaign(cfg, [&](int done, int total) {
        const int percent = done * 100 / total;
        if (percent / 5 != last_percent / 5) {
            std::cerr << "[campaign] " << percent << "% (" << done << "/" << total
                      << " epochs)\n";
            last_percent = percent;
        }
    });
    const double wall_s = watch.elapsed_s();
    std::filesystem::create_directories(file.parent_path().empty() ? "."
                                                                   : file.parent_path());
    save_csv(data, file);
    std::cerr << "[campaign] " << data.records.size() << " epochs in " << wall_s
              << " s (" << (wall_s > 0 ? static_cast<double>(data.records.size()) / wall_s
                                       : 0.0)
              << " epochs/s, " << jobs << " jobs); saved to " << file << "\n";
    return data;
}

std::filesystem::path data_dir() {
    if (const char* env = std::getenv("REPRO_DATA_DIR")) return env;  // NOLINT(concurrency-mt-unsafe)
    return "data";
}

namespace {

std::string scale_suffix(campaign_scale s) {
    switch (s) {
        case campaign_scale::tiny: return "tiny";
        case campaign_scale::normal: return "default";
        case campaign_scale::paper: return "paper";
    }
    return "default";
}

}  // namespace

dataset ensure_campaign1() {
    const campaign_scale scale = scale_from_env();
    return load_or_run(campaign1_config(scale),
                       data_dir() / ("campaign1_" + scale_suffix(scale) + ".csv"));
}

dataset ensure_campaign2() {
    const campaign_scale scale = scale_from_env();
    return load_or_run(campaign2_config(scale),
                       data_dir() / ("campaign2_" + scale_suffix(scale) + ".csv"));
}

}  // namespace tcppred::testbed
