// The synthetic stand-in for the RON testbed (§4.1): a catalogue of path
// profiles whose capacities, RTTs, buffering, cross-traffic mixes and load
// dynamics mirror the population the paper measured — 7 DSL-bottleneck
// paths, a majority of >=10 Mbps US university paths, a few transatlantic
// paths and one trans-Pacific (Korea) path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/path.hpp"

namespace tcppred::testbed {

/// Broad class of a path; drives the parameter ranges below.
enum class path_class { dsl, us_university, transatlantic, transpacific };

[[nodiscard]] std::string_view to_string(path_class c);

/// Everything that is *static* about a path across a whole campaign.
struct path_profile {
    int id{0};
    std::string name;
    path_class klass{path_class::us_university};

    std::vector<net::hop_config> forward;
    std::vector<net::hop_config> reverse;
    std::size_t bottleneck{0};  ///< index into `forward`

    // --- cross-traffic population at the bottleneck ---
    /// Long-run open-loop (unresponsive) offered load as a fraction of the
    /// bottleneck capacity, before per-trace regime modulation.
    double base_utilization{0.4};
    /// Of the unresponsive load, the fraction carried by the bursty Pareto
    /// on/off source (the rest is Poisson).
    double burstiness{0.3};
    /// Number of persistent window-limited TCP flows sharing the bottleneck.
    int elastic_flows{2};
    /// Max window of each elastic flow, bytes (small = tame competitor).
    std::uint64_t elastic_window_bytes{32 * 1024};
    /// Two-way propagation floor of the elastic flows' private paths.
    double elastic_rtt_s{0.06};
    /// Low-grade ambient loss at the bottleneck, modelling loss that does
    /// not come from the simulated queue (upstream congestion, noisy access
    /// links); 0 on clean paths.
    double random_loss_rate{0.0};
    /// Mean duration of an ambient-loss episode (Gilbert-Elliott bad state):
    /// upstream congestion comes in bursts of tens of milliseconds, which is
    /// what makes raw probe loss exceed the loss-EVENT rate (Goyal, §3.3).
    double loss_burst_s{0.0};

    // --- per-trace load dynamics (§5.2 pathologies) ---
    double shift_probability{0.01};   ///< per-epoch regime-switch probability
    double outlier_probability{0.01}; ///< per-epoch single-epoch load spike
    double trend_per_epoch{0.0};      ///< linear utilization drift per epoch
    double regime_util_min{0.1};      ///< regime utilization range
    double regime_util_max{0.7};

    [[nodiscard]] core::bits_per_second bottleneck_capacity() const {
        return forward.at(bottleneck).capacity;
    }
    [[nodiscard]] core::seconds base_rtt() const {
        double r = 0.0;
        for (const auto& h : forward) r += h.prop_delay.value();
        for (const auto& h : reverse) r += h.prop_delay.value();
        return core::seconds{r};
    }
};

/// Build the campaign-1 catalogue: `count` paths (the paper used 35) drawn
/// from the RON-like population, deterministically from `seed`.
[[nodiscard]] std::vector<path_profile> ron_like_catalog(int count, std::uint64_t seed);

/// Build the campaign-2 catalogue (§4.1 second set: 24 fresh US paths, one
/// DSL-connected host).
[[nodiscard]] std::vector<path_profile> second_campaign_catalog(int count,
                                                                std::uint64_t seed);

}  // namespace tcppred::testbed
