#include "testbed/dataset.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/units.hpp"

namespace tcppred::testbed {

namespace {

constexpr int k_max_prefixes = 3;

path_class class_from_string(const std::string& s) {
    if (s == "dsl") return path_class::dsl;
    if (s == "eu") return path_class::transatlantic;
    if (s == "kr") return path_class::transpacific;
    return path_class::us_university;
}

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, sep)) out.push_back(item);
    return out;
}

}  // namespace

std::map<std::pair<int, int>, std::vector<const epoch_record*>> dataset::traces() const {
    std::map<std::pair<int, int>, std::vector<const epoch_record*>> out;
    for (const auto& r : records) out[{r.path_id, r.trace_id}].push_back(&r);
    for (auto& [key, recs] : out) {
        std::sort(recs.begin(), recs.end(), [](const epoch_record* a, const epoch_record* b) {
            return a->epoch_index < b->epoch_index;
        });
    }
    return out;
}

std::vector<double> dataset::throughput_series(int path_id, int trace_id) const {
    std::vector<std::pair<int, double>> tmp;
    for (const auto& r : records) {
        if (r.path_id == path_id && r.trace_id == trace_id) {
            tmp.emplace_back(r.epoch_index, r.m.r_large_bps);
        }
    }
    std::sort(tmp.begin(), tmp.end());
    std::vector<double> out;
    out.reserve(tmp.size());
    for (const auto& [_, v] : tmp) out.push_back(v);
    return out;
}

std::vector<double> dataset::small_window_series(int path_id, int trace_id) const {
    std::vector<std::pair<int, double>> tmp;
    for (const auto& r : records) {
        if (r.path_id == path_id && r.trace_id == trace_id) {
            tmp.emplace_back(r.epoch_index, r.m.r_small_bps);
        }
    }
    std::sort(tmp.begin(), tmp.end());
    std::vector<double> out;
    out.reserve(tmp.size());
    for (const auto& [_, v] : tmp) out.push_back(v);
    return out;
}

const path_profile& dataset::profile(int path_id) const {
    for (const auto& p : paths) {
        if (p.id == path_id) return p;
    }
    throw std::out_of_range("dataset: unknown path id " + std::to_string(path_id));
}

void save_csv(const dataset& data, const std::filesystem::path& file) {
    std::ofstream out(file);
    if (!out) throw std::runtime_error("save_csv: cannot open " + file.string());
    out.precision(10);

    // Catalogue summary lines: what post-hoc analysis needs about each path.
    for (const auto& p : data.paths) {
        out << "#path," << p.id << ',' << p.name << ',' << to_string(p.klass) << ','
            << p.bottleneck_capacity().value() << ',' << p.base_rtt().value() << ','
            << p.forward.at(p.bottleneck).buffer_packets << ',' << p.base_utilization << ','
            << p.elastic_flows << '\n';
    }

    out << "path,trace,epoch,availbw_bps,phat,phat_events,that_s,ptilde,ttilde_s,"
           "r_large_bps,r_small_bps,tcp_loss,tcp_event_rate,tcp_rtt_s";
    for (int i = 0; i < k_max_prefixes; ++i) out << ",prefix" << i << "_s,prefix" << i << "_bps";
    out << '\n';

    for (const auto& r : data.records) {
        const auto& m = r.m;
        out << r.path_id << ',' << r.trace_id << ',' << r.epoch_index << ','
            << m.avail_bw_bps << ',' << m.phat << ',' << m.phat_events << ','
            << m.that_s << ',' << m.ptilde << ',' << m.ttilde_s << ','
            << m.r_large_bps << ',' << m.r_small_bps << ','
            << m.tcp_loss_rate << ',' << m.tcp_event_rate << ',' << m.tcp_mean_rtt_s;
        for (int i = 0; i < k_max_prefixes; ++i) {
            if (static_cast<std::size_t>(i) < m.prefix_goodputs.size()) {
                out << ',' << m.prefix_goodputs[static_cast<std::size_t>(i)].first << ','
                    << m.prefix_goodputs[static_cast<std::size_t>(i)].second;
            } else {
                out << ",0,0";
            }
        }
        out << '\n';
    }
}

dataset load_csv(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) throw std::runtime_error("load_csv: cannot open " + file.string());

    dataset data;
    std::string line;
    bool header_seen = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line.rfind("#path,", 0) == 0) {
            const auto f = split(line.substr(6), ',');
            if (f.size() < 8) throw std::runtime_error("load_csv: bad catalogue line");
            path_profile p;
            p.id = std::stoi(f[0]);
            p.name = f[1];
            p.klass = class_from_string(f[2]);
            // Loaded profiles are analysis summaries: a single-hop topology
            // carrying the bottleneck capacity / RTT / buffer of the
            // original (full hop structure is only needed to *run* epochs).
            const double cap = std::stod(f[3]);
            const double rtt = std::stod(f[4]);
            const auto buffer = static_cast<std::size_t>(std::stoul(f[5]));
            p.forward = {net::hop_config{core::bits_per_second{cap},
                                         core::seconds{rtt / 2.0}, buffer}};
            p.reverse = {net::hop_config{core::bits_per_second{100e6},
                                         core::seconds{rtt / 2.0}, 512}};
            p.bottleneck = 0;
            p.base_utilization = std::stod(f[6]);
            p.elastic_flows = std::stoi(f[7]);
            data.paths.push_back(std::move(p));
            continue;
        }
        if (!header_seen) {  // column header
            header_seen = true;
            continue;
        }
        const auto f = split(line, ',');
        if (f.size() < 14) throw std::runtime_error("load_csv: bad record line: " + line);
        epoch_record r;
        r.path_id = std::stoi(f[0]);
        r.trace_id = std::stoi(f[1]);
        r.epoch_index = std::stoi(f[2]);
        r.m.avail_bw_bps = std::stod(f[3]);
        // Loss-rate columns come from an untrusted file: validate the [0,1]
        // domain on the way in (core::probability::checked throws on bad data
        // in every build mode, unlike the debug-only contracts).
        r.m.phat = core::probability::checked(std::stod(f[4])).value();
        r.m.phat_events = core::probability::checked(std::stod(f[5])).value();
        r.m.that_s = std::stod(f[6]);
        r.m.ptilde = core::probability::checked(std::stod(f[7])).value();
        r.m.ttilde_s = std::stod(f[8]);
        r.m.r_large_bps = std::stod(f[9]);
        r.m.r_small_bps = std::stod(f[10]);
        r.m.tcp_loss_rate = std::stod(f[11]);
        r.m.tcp_event_rate = std::stod(f[12]);
        r.m.tcp_mean_rtt_s = std::stod(f[13]);
        for (int i = 0; i < k_max_prefixes; ++i) {
            const std::size_t base = 14 + static_cast<std::size_t>(2 * i);
            if (base + 1 < f.size()) {
                const double prefix_s = std::stod(f[base]);
                const double bps = std::stod(f[base + 1]);
                if (prefix_s > 0.0) r.m.prefix_goodputs.emplace_back(prefix_s, bps);
            }
        }
        data.records.push_back(std::move(r));
    }
    return data;
}

}  // namespace tcppred::testbed
