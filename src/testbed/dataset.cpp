#include "testbed/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "core/units.hpp"
#include "obs/counters.hpp"

namespace tcppred::testbed {

dataset_error::dataset_error(std::filesystem::path file, std::size_t line,
                             std::size_t column, const std::string& reason)
    : std::runtime_error(file.string() + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + reason),
      file_(std::move(file)),
      line_(line),
      column_(column) {}

namespace {

constexpr int k_max_prefixes = 3;

path_class class_from_string(const std::string& s) {
    if (s == "dsl") return path_class::dsl;
    if (s == "eu") return path_class::transatlantic;
    if (s == "kr") return path_class::transpacific;
    return path_class::us_university;
}

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, sep)) out.push_back(item);
    return out;
}

/// One CSV line plus enough context to produce a precise dataset_error.
/// Field indices are 0-based internally; reported columns are 1-based.
class row_parser {
public:
    row_parser(const std::filesystem::path& file, std::size_t line_no,
               std::vector<std::string> fields, std::size_t column_offset = 0)
        : file_(file), line_(line_no), fields_(std::move(fields)),
          offset_(column_offset) {}

    [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }

    [[nodiscard]] dataset_error error(std::size_t i, const std::string& reason) const {
        return {file_, line_, offset_ + i + 1, reason};
    }

    [[nodiscard]] const std::string& raw(std::size_t i) const {
        if (i >= fields_.size()) {
            throw dataset_error(file_, line_, offset_ + i + 1,
                                "missing field (line has only " +
                                    std::to_string(fields_.size()) + ")");
        }
        return fields_[i];
    }

    /// Any finite or NaN double; rejects empty/garbage/trailing junk.
    [[nodiscard]] double num(std::size_t i) const {
        const std::string& s = raw(i);
        std::size_t consumed = 0;
        double v = 0.0;
        try {
            v = std::stod(s, &consumed);
        } catch (const std::exception&) {
            throw error(i, "expected a number, got \"" + s + "\"");
        }
        if (consumed != s.size()) {
            throw error(i, "trailing junk in numeric field \"" + s + "\"");
        }
        return v;
    }

    /// A loss-rate column: NaN means "measurement missing" and passes
    /// through; anything else must be in [0, 1].
    [[nodiscard]] double prob(std::size_t i) const {
        const double v = num(i);
        if (std::isnan(v)) return v;
        if (!(v >= 0.0 && v <= 1.0)) {
            throw error(i, "probability out of [0,1]: " + raw(i));
        }
        return v;
    }

    [[nodiscard]] int integer(std::size_t i) const {
        const std::string& s = raw(i);
        std::size_t consumed = 0;
        int v = 0;
        try {
            v = std::stoi(s, &consumed);
        } catch (const std::exception&) {
            throw error(i, "expected an integer, got \"" + s + "\"");
        }
        if (consumed != s.size()) {
            throw error(i, "trailing junk in integer field \"" + s + "\"");
        }
        return v;
    }

    [[nodiscard]] std::uint32_t flags(std::size_t i) const {
        const int v = integer(i);
        if (v < 0) throw error(i, "fault_flags must be non-negative");
        return static_cast<std::uint32_t>(v);
    }

private:
    const std::filesystem::path& file_;
    std::size_t line_;
    std::vector<std::string> fields_;
    std::size_t offset_;
};

}  // namespace

std::map<std::pair<int, int>, std::vector<const epoch_record*>> dataset::traces() const {
    std::map<std::pair<int, int>, std::vector<const epoch_record*>> out;
    for (const auto& r : records) out[{r.path_id, r.trace_id}].push_back(&r);
    for (auto& [key, recs] : out) {
        std::sort(recs.begin(), recs.end(), [](const epoch_record* a, const epoch_record* b) {
            return a->epoch_index < b->epoch_index;
        });
    }
    return out;
}

std::vector<double> dataset::throughput_series(int path_id, int trace_id) const {
    std::vector<std::pair<int, double>> tmp;
    for (const auto& r : records) {
        if (r.path_id == path_id && r.trace_id == trace_id) {
            tmp.emplace_back(r.epoch_index, r.m.r_large_bps);
        }
    }
    std::sort(tmp.begin(), tmp.end());
    std::vector<double> out;
    out.reserve(tmp.size());
    for (const auto& [_, v] : tmp) out.push_back(v);
    return out;
}

std::vector<double> dataset::small_window_series(int path_id, int trace_id) const {
    std::vector<std::pair<int, double>> tmp;
    for (const auto& r : records) {
        if (r.path_id == path_id && r.trace_id == trace_id) {
            tmp.emplace_back(r.epoch_index, r.m.r_small_bps);
        }
    }
    std::sort(tmp.begin(), tmp.end());
    std::vector<double> out;
    out.reserve(tmp.size());
    for (const auto& [_, v] : tmp) out.push_back(v);
    return out;
}

const path_profile& dataset::profile(int path_id) const {
    for (const auto& p : paths) {
        if (p.id == path_id) return p;
    }
    throw std::out_of_range("dataset: unknown path id " + std::to_string(path_id));
}

// The dataset CSV is the *legacy v1 analysis format*: decimal at precision
// 10, pinned byte-for-byte by the campaign goldens and every downstream
// analysis script. Its determinism contract is "same computation -> same
// bytes", not "parse back bit-exactly" — the bit-exact path is the
// checkpoint / record store (hexd). Hence the explicit ser-hexfloat
// allowances below; new serialization formats must not copy this pattern.

void write_csv_catalog(std::ostream& out, const std::vector<path_profile>& paths) {
    out.precision(10);  // tcppred-lint: allow(ser-hexfloat): legacy v1 format
    // Catalogue summary lines: what post-hoc analysis needs about each path.
    for (const auto& p : paths) {
        out << "#path," << p.id << ',' << p.name << ',' << to_string(p.klass) << ','
            // tcppred-lint: allow(ser-hexfloat): legacy v1 format
            << p.bottleneck_capacity().value() << ',' << p.base_rtt().value() << ','
            // tcppred-lint: allow(ser-hexfloat): legacy v1 format
            << p.forward.at(p.bottleneck).buffer_packets << ',' << p.base_utilization << ','
            << p.elastic_flows << '\n';
    }
}

void write_csv_header(std::ostream& out, bool any_faults) {
    out << "path,trace,epoch,availbw_bps,phat,phat_events,that_s,ptilde,ttilde_s,"
           "r_large_bps,r_small_bps,tcp_loss,tcp_event_rate,tcp_rtt_s";
    for (int i = 0; i < k_max_prefixes; ++i) out << ",prefix" << i << "_s,prefix" << i << "_bps";
    if (any_faults) out << ",fault_flags";
    out << '\n';
}

void write_csv_record(std::ostream& out, const epoch_record& r, bool any_faults) {
    out.precision(10);  // tcppred-lint: allow(ser-hexfloat): legacy v1 format
    const auto& m = r.m;
    out << r.path_id << ',' << r.trace_id << ',' << r.epoch_index << ','
        // tcppred-lint: allow(ser-hexfloat): legacy v1 format
        << m.avail_bw_bps << ',' << m.phat << ',' << m.phat_events << ','
        // tcppred-lint: allow(ser-hexfloat): legacy v1 format
        << m.that_s << ',' << m.ptilde << ',' << m.ttilde_s << ','
        // tcppred-lint: allow(ser-hexfloat): legacy v1 format
        << m.r_large_bps << ',' << m.r_small_bps << ','
        // tcppred-lint: allow(ser-hexfloat): legacy v1 format
        << m.tcp_loss_rate << ',' << m.tcp_event_rate << ',' << m.tcp_mean_rtt_s;
    for (int i = 0; i < k_max_prefixes; ++i) {
        if (static_cast<std::size_t>(i) < m.prefix_goodputs.size()) {
            out << ',' << m.prefix_goodputs[static_cast<std::size_t>(i)].first << ','
                << m.prefix_goodputs[static_cast<std::size_t>(i)].second;
        } else {
            out << ",0,0";
        }
    }
    if (any_faults) out << ',' << m.fault_flags;
    out << '\n';
}

std::vector<std::string> csv_catalog_lines(const std::vector<path_profile>& paths) {
    std::ostringstream os;
    write_csv_catalog(os, paths);
    std::istringstream is(os.str());
    std::vector<std::string> out;
    out.reserve(paths.size());
    std::string line;
    while (std::getline(is, line)) out.push_back(line);
    return out;
}

namespace {

/// One double through the v1 CSV's formatter and back through its parser.
double csv_num_round_trip(double v) {
    std::ostringstream os;
    os.precision(10);  // tcppred-lint: allow(ser-hexfloat): legacy v1 format
    os << v;           // tcppred-lint: allow(ser-hexfloat): legacy v1 format
    return std::stod(os.str());
}

}  // namespace

epoch_record csv_normalized_record(const epoch_record& r) {
    epoch_record out;
    out.path_id = r.path_id;
    out.trace_id = r.trace_id;
    out.epoch_index = r.epoch_index;
    out.m.avail_bw_bps = csv_num_round_trip(r.m.avail_bw_bps);
    out.m.phat = csv_num_round_trip(r.m.phat);
    out.m.phat_events = csv_num_round_trip(r.m.phat_events);
    out.m.that_s = csv_num_round_trip(r.m.that_s);
    out.m.ptilde = csv_num_round_trip(r.m.ptilde);
    out.m.ttilde_s = csv_num_round_trip(r.m.ttilde_s);
    out.m.r_large_bps = csv_num_round_trip(r.m.r_large_bps);
    out.m.r_small_bps = csv_num_round_trip(r.m.r_small_bps);
    out.m.tcp_loss_rate = csv_num_round_trip(r.m.tcp_loss_rate);
    out.m.tcp_event_rate = csv_num_round_trip(r.m.tcp_event_rate);
    out.m.tcp_mean_rtt_s = csv_num_round_trip(r.m.tcp_mean_rtt_s);
    // The CSV carries at most k_max_prefixes pairs and the loader keeps only
    // pairs with a positive duration (the "0,0" padding parses to 0 and is
    // dropped); sim_time_s and events are not serialized at all.
    for (int i = 0; i < k_max_prefixes; ++i) {
        if (static_cast<std::size_t>(i) >= r.m.prefix_goodputs.size()) continue;
        const auto& [s, bps] = r.m.prefix_goodputs[static_cast<std::size_t>(i)];
        const double s_rt = csv_num_round_trip(s);
        if (s_rt > 0.0) out.m.prefix_goodputs.emplace_back(s_rt, csv_num_round_trip(bps));
    }
    out.m.sim_time_s = 0.0;
    out.m.events = 0;
    out.m.fault_flags = r.m.fault_flags;
    return out;
}

void save_csv(const dataset& data, const std::filesystem::path& file) {
    std::ofstream out(file);
    if (!out) throw std::runtime_error("save_csv: cannot open " + file.string());

    write_csv_catalog(out, data.paths);

    // The fault column only exists when something actually faulted, so
    // fault-free datasets stay byte-identical to the pre-fault format.
    const bool any_faults =
        std::any_of(data.records.begin(), data.records.end(),
                    [](const epoch_record& r) { return r.m.fault_flags != fault_none; });

    write_csv_header(out, any_faults);
    for (const auto& r : data.records) write_csv_record(out, r, any_faults);
}

namespace {

/// load_csv with rejection accounting split out so the public entry points
/// can count rejected rows without cluttering the parse itself. Takes the
/// stream rather than a path so the same code serves files and in-memory
/// buffers (the fuzz harness); `file` is error-message context only.
dataset load_csv_impl(std::istream& in, const std::filesystem::path& file) {
    dataset data;
    std::string line;
    std::size_t line_no = 0;
    bool header_seen = false;
    bool has_fault_column = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        if (line.rfind("#path,", 0) == 0) {
            // "#path," is stripped before splitting; report columns relative
            // to the full line so they point at the real file offsets.
            const row_parser f(file, line_no, split(line.substr(6), ','), 1);
            if (f.size() < 8) {
                throw dataset_error(file, line_no, 0,
                                    "catalogue line needs 8 fields, has " +
                                        std::to_string(f.size()));
            }
            path_profile p;
            p.id = f.integer(0);
            p.name = f.raw(1);
            p.klass = class_from_string(f.raw(2));
            // Loaded profiles are analysis summaries: a single-hop topology
            // carrying the bottleneck capacity / RTT / buffer of the
            // original (full hop structure is only needed to *run* epochs).
            const double cap = f.num(3);
            const double rtt = f.num(4);
            const int buffer = f.integer(5);
            if (!(cap > 0.0) || !(rtt > 0.0) || buffer <= 0) {
                throw dataset_error(file, line_no, 0,
                                    "catalogue line has non-positive "
                                    "capacity/RTT/buffer");
            }
            p.forward = {net::hop_config{core::bits_per_second{cap},
                                         core::seconds{rtt / 2.0},
                                         static_cast<std::size_t>(buffer)}};
            p.reverse = {net::hop_config{core::bits_per_second{100e6},
                                         core::seconds{rtt / 2.0}, 512}};
            p.bottleneck = 0;
            p.base_utilization = f.num(6);
            p.elastic_flows = f.integer(7);
            data.paths.push_back(std::move(p));
            continue;
        }
        if (!header_seen) {  // column header
            header_seen = true;
            const auto cols = split(line, ',');
            has_fault_column =
                std::find(cols.begin(), cols.end(), "fault_flags") != cols.end();
            continue;
        }
        const row_parser f(file, line_no, split(line, ','));
        if (f.size() < 14) {
            throw dataset_error(file, line_no, 0,
                                "record line needs at least 14 fields, has " +
                                    std::to_string(f.size()));
        }
        epoch_record r;
        r.path_id = f.integer(0);
        r.trace_id = f.integer(1);
        r.epoch_index = f.integer(2);
        r.m.avail_bw_bps = f.num(3);
        // Loss-rate columns come from an untrusted file: validate the [0,1]
        // domain on the way in. NaN is a legal value there — the measurement
        // failed — so validation happens in prob(), not probability::checked
        // (whose contract rejects NaN).
        r.m.phat = f.prob(4);
        r.m.phat_events = f.prob(5);
        r.m.that_s = f.num(6);
        r.m.ptilde = f.prob(7);
        r.m.ttilde_s = f.num(8);
        r.m.r_large_bps = f.num(9);
        r.m.r_small_bps = f.num(10);
        r.m.tcp_loss_rate = f.num(11);
        r.m.tcp_event_rate = f.num(12);
        r.m.tcp_mean_rtt_s = f.num(13);
        for (int i = 0; i < k_max_prefixes; ++i) {
            const std::size_t base = 14 + static_cast<std::size_t>(2 * i);
            if (base + 1 < f.size()) {
                const double prefix_s = f.num(base);
                const double bps = f.num(base + 1);
                if (prefix_s > 0.0) r.m.prefix_goodputs.emplace_back(prefix_s, bps);
            }
        }
        if (has_fault_column) {
            r.m.fault_flags = f.flags(14 + 2 * k_max_prefixes);
        }
        data.records.push_back(std::move(r));
    }
    return data;
}

/// Shared rejection accounting for both public load_csv entry points.
dataset load_csv_counted(std::istream& in, const std::filesystem::path& context) {
    try {
        return load_csv_impl(in, context);
    } catch (const dataset_error& e) {
        // Parsing is fail-fast, so a load rejects at most one row — but the
        // counter still distinguishes "campaign ran clean" from "some input
        // was refused" in a metrics summary. A line number of 0 means the
        // file itself was unreadable, which is not a row rejection.
        if (e.line() > 0) {
            static const obs::counter c_rejected =
                obs::counter::get("testbed.dataset_rows_rejected");
            c_rejected.add();
        }
        throw;
    }
}

}  // namespace

dataset load_csv(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) throw dataset_error(file, 0, 0, "cannot open file");
    return load_csv_counted(in, file);
}

dataset load_csv(std::istream& in, const std::filesystem::path& context) {
    return load_csv_counted(in, context);
}

}  // namespace tcppred::testbed
