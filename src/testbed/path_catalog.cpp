#include "testbed/path_catalog.hpp"

#include <algorithm>
#include <cmath>

#include "core/units.hpp"
#include "sim/rng.hpp"

namespace tcppred::testbed {

namespace {

/// A fast, uncongested edge link on either side of the bottleneck.
net::hop_config edge_hop(double delay_s) {
    return net::hop_config{core::bits_per_second{100e6}, core::seconds{delay_s}, 512};
}

/// Assemble the common 3-hop forward / 1-hop reverse topology around a
/// bottleneck of capacity `cap` with round-trip propagation `rtt`.
void build_hops(path_profile& p, double cap_bps, double rtt_s, std::size_t buffer_pkts) {
    const double one_way = rtt_s / 2.0;
    p.forward = {edge_hop(one_way * 0.2),
                 net::hop_config{core::bits_per_second{cap_bps},
                                 core::seconds{one_way * 0.6}, buffer_pkts},
                 edge_hop(one_way * 0.2)};
    p.bottleneck = 1;
    p.reverse = {edge_hop(one_way)};
}

path_profile make_path(int id, path_class klass, sim::rng& r) {
    path_profile p;
    p.id = id;
    p.klass = klass;

    double cap = 0.0, rtt = 0.0;
    switch (klass) {
        case path_class::dsl:
            cap = r.uniform(0.768e6, 3.0e6);
            rtt = r.uniform(0.020, 0.070);
            break;
        case path_class::us_university:
            cap = r.uniform(9e6, 13e6);
            rtt = r.uniform(0.015, 0.080);
            break;
        case path_class::transatlantic:
            cap = r.uniform(9e6, 12e6);
            rtt = r.uniform(0.090, 0.150);
            break;
        case path_class::transpacific:
            cap = r.uniform(9e6, 11e6);
            rtt = r.uniform(0.200, 0.240);
            break;
    }

    // Buffering between ~0.4x and ~2x of the bandwidth-delay product, with a
    // sane floor — the spread that makes avail-bw sometimes unattainable for
    // TCP (§3.4).
    const double bdp_packets = cap * rtt / (1500.0 * 8.0);
    // Buffer provisioning varies wildly across the population: a third of
    // the paths have shallow buffers (under-provisioned ports) that drop
    // under bursts even at moderate utilization and keep TCP from reaching
    // the measured avail-bw (§3.4); DSL access links are deeply buffered
    // (paper-era bufferbloat), which is where the >100 ms RTT inflation of
    // Fig. 3 comes from.
    double buffer_bdp = r.chance(0.4) ? r.uniform(0.1, 0.4) : r.uniform(0.8, 2.5);
    if (klass == path_class::dsl) buffer_bdp = r.uniform(1.5, 5.0);
    const auto buffer = static_cast<std::size_t>(
        std::max(10.0, bdp_packets * buffer_bdp));
    build_hops(p, cap, rtt, buffer);

    p.base_utilization = r.uniform(0.15, 0.62);
    p.burstiness = r.uniform(0.05, 0.3);
    p.elastic_flows = static_cast<int>(r.uniform_int(0, klass == path_class::dsl ? 1 : 2));
    p.elastic_window_bytes = static_cast<std::uint64_t>(r.uniform_int(8, 16)) * 1024;
    p.elastic_rtt_s = r.uniform(0.06, 0.15);

    // Roughly half the paths carry persistent low-grade ambient loss (the
    // paper's "lossy paths", 56% of predictions were PFTK-based). Losses
    // arrive in upstream-congestion episodes of tens of milliseconds.
    p.random_loss_rate = r.chance(0.85) ? r.uniform(0.001, 0.006) : 0.0;
    p.loss_burst_s = r.uniform(0.01, 0.04);

    p.shift_probability = r.uniform(0.002, 0.012);
    p.outlier_probability = r.uniform(0.001, 0.007);
    p.trend_per_epoch = r.chance(0.2) ? r.uniform(-0.002, 0.002) : 0.0;
    p.regime_util_min = std::max(0.02, p.base_utilization - r.uniform(0.15, 0.35));
    p.regime_util_max = std::min(0.92, p.base_utilization + r.uniform(0.15, 0.35));

    // A minority of paths are persistently congested: high utilization and
    // aggressive competing traffic. These become the paper's
    // high-error/unpredictable cluster (§4.2.4, Fig. 21d).
    if (r.chance(0.28)) {
        p.base_utilization = r.uniform(0.75, 0.92);
        p.regime_util_min = p.base_utilization - 0.1;
        p.regime_util_max = std::min(0.93, p.base_utilization + 0.06);
        p.burstiness = r.uniform(0.2, 0.45);
        p.elastic_flows += 1;
        // Persistently congested links of the era were also deeply buffered
        // (bufferbloat): pre-transfer probing sees little loss but long
        // delays, the leftover capacity is tiny, and FB overestimates by an
        // order of magnitude (the paper's worst paths, Fig. 7/8).
        const double bdp_pkts = cap * rtt / (1500.0 * 8.0);
        p.forward[p.bottleneck].buffer_packets =
            static_cast<std::size_t>(std::max(24.0, bdp_pkts * r.uniform(2.0, 5.0)));
    }

    p.name = std::string(to_string(klass)) + "-" + std::to_string(id);
    return p;
}

}  // namespace

std::string_view to_string(path_class c) {
    switch (c) {
        case path_class::dsl: return "dsl";
        case path_class::us_university: return "us";
        case path_class::transatlantic: return "eu";
        case path_class::transpacific: return "kr";
    }
    return "?";
}

std::vector<path_profile> ron_like_catalog(int count, std::uint64_t seed) {
    std::vector<path_profile> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        sim::rng r(sim::derive_seed(seed, "path", static_cast<std::uint64_t>(i)));
        // Population mix of the May 2004 measurement set: 7/35 DSL, 5/35
        // transatlantic, 1/35 Korea, the rest US universities.
        path_class klass = path_class::us_university;
        const double mix = static_cast<double>(i) / std::max(1, count);
        if (mix < 0.2) {
            klass = path_class::dsl;
        } else if (mix >= 0.82 && mix < 0.97) {
            klass = path_class::transatlantic;
        } else if (mix >= 0.97) {
            klass = path_class::transpacific;
        }
        out.push_back(make_path(i, klass, r));
    }
    return out;
}

std::vector<path_profile> second_campaign_catalog(int count, std::uint64_t seed) {
    std::vector<path_profile> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        sim::rng r(sim::derive_seed(seed, "path2", static_cast<std::uint64_t>(i)));
        const path_class klass = (i == 0) ? path_class::dsl : path_class::us_university;
        out.push_back(make_path(i, klass, r));
        out.back().name = "set2-" + out.back().name;
    }
    return out;
}

}  // namespace tcppred::testbed
