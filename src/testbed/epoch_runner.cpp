#include "testbed/epoch_runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/loss_events.hpp"
#include "net/cross_traffic.hpp"
#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"
#include "probe/bulk_transfer.hpp"
#include "probe/pathload.hpp"
#include "sim/rng.hpp"

namespace tcppred::testbed {

namespace {

// Fixed flow-id plan within an epoch's private world.
constexpr net::flow_id k_flow_target = 1;
constexpr net::flow_id k_flow_small = 2;
constexpr net::flow_id k_flow_ping_prior = 3;
constexpr net::flow_id k_flow_ping_during = 4;
constexpr net::flow_id k_flow_pathload = 5;
constexpr net::flow_id k_flow_poisson = 10;
constexpr net::flow_id k_flow_pareto = 11;
constexpr net::flow_id k_flow_elastic_base = 100;

/// The per-epoch simulation world: topology, background traffic and
/// measurement tools, sequenced through the Fig. 1 phases by callbacks.
class epoch_world {
public:
    epoch_world(const path_profile& profile, const load_state& load, std::uint64_t seed,
                const epoch_config& cfg)
        : profile_(profile), load_(load), cfg_(cfg),
          path_(sched_, profile.forward, profile.reverse) {
        if (profile.random_loss_rate > 0.0) {
            path_.bottleneck().set_random_loss(profile.random_loss_rate,
                                               sim::derive_seed(seed, "randloss"),
                                               profile.loss_burst_s);
        }
        build_cross_traffic(seed);
        build_tools();
    }

    epoch_measurement run();

private:
    void build_cross_traffic(std::uint64_t seed);
    void build_tools();
    void start_pathload();
    void start_prior_ping();
    void start_transfer_phase();
    void collect_during_view_and_continue();
    void start_small_transfer();

    const path_profile& profile_;
    const load_state& load_;
    epoch_config cfg_;

    sim::scheduler sched_;
    net::duplex_path path_;
    std::unique_ptr<net::path_conduit> target_conduit_;
    std::unique_ptr<net::path_conduit> small_conduit_;

    std::unique_ptr<net::poisson_source> poisson_;
    std::vector<std::unique_ptr<net::pareto_onoff_source>> pareto_;
    std::vector<std::unique_ptr<net::shared_link_conduit>> elastic_conduits_;
    std::vector<std::unique_ptr<tcp::tcp_connection>> elastic_flows_;

    std::unique_ptr<probe::pathload> pathload_;
    std::unique_ptr<probe::ping_prober> prior_ping_;
    std::unique_ptr<probe::ping_prober> during_ping_;
    std::unique_ptr<probe::bulk_transfer> target_transfer_;
    std::unique_ptr<probe::bulk_transfer> small_transfer_;

    epoch_measurement out_{};
    bool finished_{false};
};

void epoch_world::build_cross_traffic(std::uint64_t seed) {
    const double cap = profile_.bottleneck_capacity().value();
    const std::size_t bn = profile_.bottleneck;
    const double open_loop_bps = load_.utilization * cap;

    const net::packet_size_mix mix{};
    poisson_ = std::make_unique<net::poisson_source>(
        sched_, path_, bn, k_flow_poisson, sim::derive_seed(seed, "poisson"),
        open_loop_bps * (1.0 - profile_.burstiness), mix, cfg_.cross);
    // The bursty share is an aggregate of a few independent on/off sources:
    // statistical multiplexing keeps single-burst amplitude realistic.
    constexpr int k_onoff_sources = 3;
    net::pareto_onoff_config pcfg0;
    for (int i = 0; i < k_onoff_sources; ++i) {
        net::pareto_onoff_config pcfg;
        pareto_.push_back(std::make_unique<net::pareto_onoff_source>(
            sched_, path_, bn, k_flow_pareto + static_cast<net::flow_id>(i),
            sim::derive_seed(seed, "pareto", static_cast<std::uint64_t>(i)), pcfg,
            cfg_.cross));
        pareto_.back()->set_mean_rate(open_loop_bps * profile_.burstiness /
                                      k_onoff_sources);
    }
    if (cfg_.cross == net::cross_model::fluid) {
        // Buffer-occupancy conversion for the fluid aggregate: mean packet
        // size blended across the Poisson mix and the on/off sources' MTU
        // packets, weighted by their shares of the open-loop load.
        const double blended = (1.0 - profile_.burstiness) * mix.mean_bytes() +
                               profile_.burstiness *
                                   static_cast<double>(pcfg0.packet_bytes);
        path_.forward_link(bn).set_fluid_mean_packet_bytes(blended);
    }

    sim::rng er(sim::derive_seed(seed, "elastic"));
    for (int i = 0; i < load_.elastic_flows; ++i) {
        const double rtt = profile_.elastic_rtt_s * er.uniform(0.7, 1.3);
        const net::flow_id id = k_flow_elastic_base + static_cast<net::flow_id>(i);
        elastic_conduits_.push_back(std::make_unique<net::shared_link_conduit>(
            sched_, path_, bn, id, core::seconds{rtt * 0.25}, core::seconds{rtt * 0.25},
            core::seconds{rtt * 0.5}));
        tcp::tcp_config ecfg = cfg_.tcp;
        ecfg.max_window_bytes = profile_.elastic_window_bytes;
        elastic_flows_.push_back(std::make_unique<tcp::tcp_connection>(
            sched_, *elastic_conduits_.back(), id, ecfg));
        // Staggered starts so the elastic population does not slow-start in
        // lockstep.
        const double start_at = er.uniform(0.0, cfg_.warmup.value() * 0.5);
        auto* conn = elastic_flows_.back().get();
        sched_.schedule_in(start_at, [conn] { conn->start(); });
    }

    poisson_->start();
    for (auto& src : pareto_) src->start();
}

void epoch_world::build_tools() {
    const sim::epoch_fault_plan& faults = cfg_.faults;

    probe::pathload_config plc;
    plc.max_rate = core::bits_per_second{profile_.bottleneck_capacity().value() *
                                        cfg_.pathload_max_rate_factor};
    plc.fault_nonconvergence = faults.pathload_fail;
    pathload_ = std::make_unique<probe::pathload>(sched_, path_, k_flow_pathload, plc);

    probe::ping_config prior_cfg = cfg_.prior_ping;
    if (faults.ping_timeout_rate > 0.0) {
        prior_cfg.fault_timeout_rate = faults.ping_timeout_rate;
        prior_cfg.fault_seed = sim::derive_seed(faults.ping_fault_seed, "prior");
    }
    if (faults.ping_truncate_fraction < 1.0) {
        prior_cfg.fault_truncate_at = static_cast<std::uint64_t>(
            static_cast<double>(prior_cfg.count) * faults.ping_truncate_fraction);
    }
    prior_ping_ = std::make_unique<probe::ping_prober>(sched_, path_, k_flow_ping_prior,
                                                       prior_cfg);

    probe::ping_config during_cfg = cfg_.prior_ping;
    during_cfg.interval = cfg_.during_ping_interval;
    during_cfg.count = static_cast<std::uint64_t>(cfg_.transfer.value() /
                                                  cfg_.during_ping_interval.value());
    if (faults.ping_timeout_rate > 0.0) {
        during_cfg.fault_timeout_rate = faults.ping_timeout_rate;
        during_cfg.fault_seed = sim::derive_seed(faults.ping_fault_seed, "during");
    }
    during_ping_ = std::make_unique<probe::ping_prober>(sched_, path_, k_flow_ping_during,
                                                        during_cfg);

    target_conduit_ = std::make_unique<net::path_conduit>(path_);
    tcp::tcp_config big = cfg_.tcp;
    big.max_window_bytes = cfg_.large_window_bytes;
    target_transfer_ = std::make_unique<probe::bulk_transfer>(
        sched_, *target_conduit_, k_flow_target, cfg_.transfer, big);
    if (faults.transfer_abort_fraction < 1.0) {
        target_transfer_->set_fault_abort(cfg_.transfer *
                                          faults.transfer_abort_fraction);
    }
    if (!cfg_.prefix_s.empty()) target_transfer_->add_prefix_checkpoints(cfg_.prefix_s);

    if (cfg_.run_small_window) {
        small_conduit_ = std::make_unique<net::path_conduit>(path_);
        tcp::tcp_config small = cfg_.tcp;
        small.max_window_bytes = cfg_.small_window_bytes;
        small_transfer_ = std::make_unique<probe::bulk_transfer>(
            sched_, *small_conduit_, k_flow_small, cfg_.transfer, small);
    }
}

void epoch_world::start_pathload() {
    if (!cfg_.run_pathload) {
        start_prior_ping();
        return;
    }
    pathload_->start([this](const probe::probe_result<probe::pathload_result>& r) {
        if (r.usable()) {
            out_.avail_bw_bps = r->estimate().value();
        } else {
            out_.avail_bw_bps = std::numeric_limits<double>::quiet_NaN();
            out_.fault_flags |= fault_pathload_failed;
        }
        start_prior_ping();
    });
}

void epoch_world::start_prior_ping() {
    prior_ping_->start([this](const probe::probe_result<probe::ping_result>& r) {
        if (r->received > 0) {
            out_.phat = r->loss_rate().value();
            out_.phat_events = core::loss_event_rate(r->outcomes);
            out_.that_s = r->mean_rtt().value();
        } else {
            // Every probe lost: there is no RTT sample and the loss estimate
            // carries no signal either.
            out_.phat = std::numeric_limits<double>::quiet_NaN();
            out_.phat_events = std::numeric_limits<double>::quiet_NaN();
            out_.that_s = std::numeric_limits<double>::quiet_NaN();
        }
        if (r->injected_timeouts > 0) out_.fault_flags |= fault_ping_degraded;
        if (r->truncated) out_.fault_flags |= fault_ping_partial;
        start_transfer_phase();
    });
}

void epoch_world::start_transfer_phase() {
    if (load_.intra_epoch_drift != 1.0) {
        // The background load has drifted since the a-priori measurements.
        const double cap = profile_.bottleneck_capacity().value();
        const double drifted = std::min(load_.utilization * load_.intra_epoch_drift, 0.95);
        poisson_->set_rate(drifted * cap * (1.0 - profile_.burstiness));
        for (auto& src : pareto_) {
            src->set_mean_rate(drifted * cap * profile_.burstiness /
                               static_cast<double>(pareto_.size()));
        }
    }
    const sim::epoch_fault_plan& faults = cfg_.faults;
    if (faults.outage) {
        // Transient blackout inside the transfer window, deterministic in
        // absolute sim time (no RNG draws at enqueue time; see link.hpp).
        const double t0 = sched_.now();
        const double from = t0 + faults.outage_start_fraction * cfg_.transfer.value();
        const double until = from + faults.outage_duration_fraction *
                                        cfg_.transfer.value();
        path_.bottleneck().set_outage(from, until);
        out_.fault_flags |= fault_path_outage;
    }
    during_ping_->start();
    target_transfer_->start([this](const probe::probe_result<probe::transfer_result>& r) {
        if (r->aborted) out_.fault_flags |= fault_transfer_aborted;
        out_.r_large_bps = r->goodput().value();
        for (const auto& pg : r->prefix_goodput_bps) out_.prefix_goodputs.push_back(pg);
        const auto& st = r->tcp_stats;
        if (st.segments_sent > 0) {
            out_.tcp_loss_rate = static_cast<double>(st.retransmits) /
                                 static_cast<double>(st.segments_sent);
            out_.tcp_event_rate = static_cast<double>(st.congestion_events()) /
                                  static_cast<double>(st.segments_sent);
        }
        if (!st.rtt_samples.empty()) {
            double s = 0.0;
            for (const double x : st.rtt_samples) s += x;
            out_.tcp_mean_rtt_s = s / static_cast<double>(st.rtt_samples.size());
        }
        collect_during_view_and_continue();
    });
}

void epoch_world::collect_during_view_and_continue() {
    // Give the last concurrent probes their full reply-timeout before
    // reading the during-flow loss/RTT view.
    const double grace = cfg_.prior_ping.reply_timeout.value() + 0.1;
    sched_.schedule_in(grace, [this] {
        const probe::probe_result<probe::ping_result>& r = during_ping_->result();
        if (r->received > 0) {
            out_.ptilde = r->loss_rate().value();
            out_.ttilde_s = r->mean_rtt().value();
        } else {
            out_.ptilde = std::numeric_limits<double>::quiet_NaN();
            out_.ttilde_s = std::numeric_limits<double>::quiet_NaN();
        }
        if (cfg_.run_small_window) {
            start_small_transfer();
        } else {
            finished_ = true;
        }
    });
}

void epoch_world::start_small_transfer() {
    small_transfer_->start([this](const probe::probe_result<probe::transfer_result>& r) {
        out_.r_small_bps = r->goodput().value();
        finished_ = true;
    });
}

epoch_measurement epoch_world::run() {
    sched_.schedule_in(cfg_.warmup.value(), [this] { start_pathload(); });
    while (!finished_ && sched_.now() < cfg_.hard_cap.value()) {
        if (!sched_.step()) break;
    }
    out_.sim_time_s = sched_.now();
    out_.events = sched_.fired();
    return out_;
}

}  // namespace

epoch_measurement run_epoch(const path_profile& profile, const load_state& load,
                            std::uint64_t seed, const epoch_config& cfg) {
    const obs::stage_timer timer("testbed.run_epoch");
    epoch_world world(profile, load, seed, cfg);
    const epoch_measurement m = world.run();

    static const obs::counter c_epochs = obs::counter::get("testbed.epochs_simulated");
    static const obs::counter c_events = obs::counter::get("testbed.sim_events");
    c_epochs.add();
    c_events.add(m.events);
    if (m.fault_flags != 0) {
        // Observed (as opposed to planned) fault outcomes, keyed by the
        // epoch_measurement flag they set.
        static const obs::counter c_pathload =
            obs::counter::get("testbed.faults.pathload_failed");
        static const obs::counter c_ping_deg =
            obs::counter::get("testbed.faults.ping_degraded");
        static const obs::counter c_ping_part =
            obs::counter::get("testbed.faults.ping_partial");
        static const obs::counter c_aborted =
            obs::counter::get("testbed.faults.transfer_aborted");
        static const obs::counter c_outage =
            obs::counter::get("testbed.faults.path_outage");
        if ((m.fault_flags & fault_pathload_failed) != 0) c_pathload.add();
        if ((m.fault_flags & fault_ping_degraded) != 0) c_ping_deg.add();
        if ((m.fault_flags & fault_ping_partial) != 0) c_ping_part.add();
        if ((m.fault_flags & fault_transfer_aborted) != 0) c_aborted.add();
        if ((m.fault_flags & fault_path_outage) != 0) c_outage.add();
    }
    return m;
}

}  // namespace tcppred::testbed
