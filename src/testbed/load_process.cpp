#include "testbed/load_process.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace tcppred::testbed {

std::vector<load_state> load_trajectory(const path_profile& profile,
                                        std::uint64_t trace_seed, int epochs) {
    sim::rng r(trace_seed);
    std::vector<load_state> out;
    out.reserve(static_cast<std::size_t>(epochs));

    double regime_util = profile.base_utilization;
    int regime_elastic = profile.elastic_flows;
    bool heavy_regime = profile.base_utilization > 0.5;
    double drift = 0.0;

    for (int e = 0; e < epochs; ++e) {
        load_state s;
        s.utilization = regime_util + drift;

        if (e > 0 && r.chance(profile.shift_probability)) {
            // Level shift: toggle between a light and a heavy load regime
            // (diurnal load change or a route change). The paper's example
            // shifts (Fig. 15) are 2-3x throughput jumps, which requires a
            // substantial utilization swing — small regime drifts would be
            // indistinguishable from noise.
            heavy_regime = !heavy_regime;
            regime_util = heavy_regime
                              ? r.uniform(0.55, std::min(0.9, profile.regime_util_max + 0.15))
                              : r.uniform(std::max(0.03, profile.regime_util_min - 0.1), 0.35);
            regime_elastic = std::max(
                0, profile.elastic_flows + static_cast<int>(r.uniform_int(-1, 1)));
            drift = 0.0;
            s.utilization = regime_util;
            s.regime_shift = true;
        }

        if (r.chance(profile.outlier_probability)) {
            // Outlier: one-epoch anomaly — a flash crowd (spike) or a lull.
            s.outlier_spike = true;
            if (r.chance(0.7)) {
                s.utilization = std::min(0.93, s.utilization + r.uniform(0.2, 0.4));
            } else {
                s.utilization = std::max(0.0, s.utilization - r.uniform(0.2, 0.4));
            }
        }

        // Intra-epoch drift is available as a knob (see load_state) but is
        // kept off by default: per-epoch independent drift penalizes HB as
        // much as FB, whereas the paper's drift was slow relative to its
        // 2-3 minute epoch spacing.

        // Small epoch-to-epoch jitter around the regime (measurement noise
        // floor of any real path) plus the optional slow trend.
        s.utilization += r.normal(0.0, 0.015);
        s.utilization = std::clamp(s.utilization, 0.0, 0.93);
        s.elastic_flows = s.outlier_spike && s.utilization > regime_util
                              ? regime_elastic + 1
                              : regime_elastic;
        drift += profile.trend_per_epoch;

        out.push_back(s);
    }
    return out;
}

}  // namespace tcppred::testbed
