// Campaign checkpoints: a completed-epoch bitmap plus the completed records,
// persisted mid-run so an interrupted campaign resumes instead of restarting.
//
// Invariants the format defends:
//  - doubles round-trip bit-exactly (hexfloat serialization), so a resumed
//    campaign's CSV is byte-identical to an uninterrupted run's;
//  - a checkpoint is only ever observed whole (write-to-temp + atomic
//    rename), so a kill -9 mid-flush leaves the previous checkpoint intact;
//  - a checkpoint carries the fingerprint of the config that produced it,
//    and resuming under any other config (different seed, size, fault
//    profile — anything but the job count) is refused.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "testbed/campaign.hpp"

namespace tcppred::testbed {

/// In-memory image of a checkpoint file.
struct campaign_checkpoint {
    std::string fingerprint;
    std::size_t total{0};              ///< epochs in the full campaign
    std::vector<char> done;            ///< size == total; nonzero = completed
    std::vector<epoch_record> records; ///< size == total; only done slots valid
};

/// Identity of everything that shapes a campaign's records: sizes, seeds,
/// fault profile, epoch parameters. Deliberately excludes cfg.jobs — the
/// dataset is job-count-invariant (DESIGN.md §6), so a run checkpointed at
/// one REPRO_JOBS may resume at another.
[[nodiscard]] std::string campaign_fingerprint(const campaign_config& cfg);

/// Write atomically: serialize to `file` + ".tmp", then rename over `file`.
void save_checkpoint(const campaign_checkpoint& ck, const std::filesystem::path& file);

/// Load and validate a checkpoint. Returns nullopt when `file` does not
/// exist; throws dataset_error when it exists but is malformed or its
/// fingerprint does not match `expected_fingerprint`.
[[nodiscard]] std::optional<campaign_checkpoint> load_checkpoint(
    const std::filesystem::path& file, const std::string& expected_fingerprint);

}  // namespace tcppred::testbed
