// Campaign checkpoints: a completed-epoch bitmap plus the completed records,
// persisted mid-run so an interrupted campaign resumes instead of restarting.
//
// Invariants the format defends:
//  - doubles round-trip bit-exactly (hexfloat serialization), so a resumed
//    campaign's CSV is byte-identical to an uninterrupted run's;
//  - a checkpoint is only ever observed whole (write-to-temp + atomic
//    rename), so a kill -9 mid-flush leaves the previous checkpoint intact;
//  - a checkpoint carries the fingerprint of the config that produced it,
//    and resuming under any other config (different seed, size, fault
//    profile — anything but the job count) is refused.
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "testbed/campaign.hpp"

namespace tcppred::testbed {

/// In-memory image of a checkpoint file.
struct campaign_checkpoint {
    std::string fingerprint;
    std::size_t total{0};              ///< epochs in the full campaign
    std::vector<char> done;            ///< size == total; nonzero = completed
    std::vector<epoch_record> records; ///< size == total; only done slots valid
};

/// Bit-exact double -> text ("%a" hexfloat): the serialization primitive
/// shared by every bit-exact format (checkpoints, the record store).
/// Decimal at any precision does not guarantee the round trip; hexfloat
/// does, and strtod parses it back everywhere (istream extraction of
/// hexfloat is not required to work, and does not in libstdc++).
[[nodiscard]] std::string hexd(double v);

/// Parse a hexd()-formatted field back to the identical double. Throws
/// dataset_error (with `file`/`line_no` context) unless the entire field
/// parses as one float.
[[nodiscard]] double parse_hexd(const std::string& s, const std::filesystem::path& file,
                                std::size_t line_no);

/// One named field of a campaign fingerprint, e.g. {"seed", "20040501"}.
struct fingerprint_field {
    std::string name;
    std::string value;
};

/// The fingerprint decomposed into named fields, in serialization order.
/// campaign_fingerprint() is exactly the '|'-join of the values, so the two
/// can never drift; the names exist to turn a mismatch into an actionable
/// diagnosis ("seed: checkpoint has X, this run has Y") instead of a bare
/// "fingerprint mismatch".
[[nodiscard]] std::vector<fingerprint_field> campaign_fingerprint_fields(
    const campaign_config& cfg);

/// Identity of everything that shapes a campaign's records: sizes, seeds,
/// fault profile, epoch parameters. Deliberately excludes cfg.jobs — the
/// dataset is job-count-invariant (DESIGN.md §6), so a run checkpointed at
/// one REPRO_JOBS may resume at another.
[[nodiscard]] std::string campaign_fingerprint(const campaign_config& cfg);

/// Field-by-field diff of two fingerprint strings, for error messages:
/// each differing field as "name: checkpoint=<old> requested=<new>".
/// Positional — both sides are split on '|' and compared slot by slot
/// (slot names from the campaign_fingerprint_fields schema).
[[nodiscard]] std::string describe_fingerprint_mismatch(const std::string& in_checkpoint,
                                                        const std::string& requested);

/// Write `contents` to `file` so that readers only ever observe the old
/// bytes or the new bytes, never a torn file. The temp file lands in
/// $TMPDIR when set (else next to `file`) and is published with rename(2);
/// when the temp and target sit on different filesystems (rename fails
/// EXDEV) it falls back to copy + fsync + same-directory rename. The test
/// hook $TCPPRED_FORCE_EXDEV=1 forces the fallback path.
void atomic_write_text(const std::filesystem::path& file, const std::string& contents);

/// Write atomically via atomic_write_text.
void save_checkpoint(const campaign_checkpoint& ck, const std::filesystem::path& file);

/// Load and validate a checkpoint. Returns nullopt when `file` does not
/// exist; throws dataset_error when it exists but is malformed or its
/// fingerprint does not match `expected_fingerprint`.
[[nodiscard]] std::optional<campaign_checkpoint> load_checkpoint(
    const std::filesystem::path& file, const std::string& expected_fingerprint);

/// Streaming cursor over a checkpoint file: the header (magic, fingerprint,
/// total) is validated up front, then records surface one `rec` line at a
/// time, in file order, with O(1) memory. Files written by save_checkpoint
/// carry their records in ascending linear-index order, which is what lets
/// the shard merge (record_store.hpp) walk N shard cursors in lockstep
/// instead of loading every shard whole. load_checkpoint is this reader run
/// to exhaustion. Pass an empty `expected_fingerprint` to accept any.
class checkpoint_reader {
public:
    /// Opens and validates the header; throws dataset_error when the file
    /// cannot be read, is malformed, or carries a different fingerprint.
    checkpoint_reader(const std::filesystem::path& file,
                      const std::string& expected_fingerprint);

    [[nodiscard]] const std::string& fingerprint() const noexcept { return fingerprint_; }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }

    /// The next record and its linear campaign index; nullopt at end of
    /// file. Throws dataset_error on a malformed or out-of-range line.
    [[nodiscard]] std::optional<std::pair<std::size_t, epoch_record>> next();

private:
    std::ifstream in_;
    std::filesystem::path file_;
    std::string fingerprint_;
    std::size_t total_{0};
    std::size_t line_no_{0};
};

}  // namespace tcppred::testbed
