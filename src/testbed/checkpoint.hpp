// Campaign checkpoints: a completed-epoch bitmap plus the completed records,
// persisted mid-run so an interrupted campaign resumes instead of restarting.
//
// Invariants the format defends:
//  - doubles round-trip bit-exactly (hexfloat serialization), so a resumed
//    campaign's CSV is byte-identical to an uninterrupted run's;
//  - a checkpoint is only ever observed whole (write-to-temp + atomic
//    rename), so a kill -9 mid-flush leaves the previous checkpoint intact;
//  - a checkpoint carries the fingerprint of the config that produced it,
//    and resuming under any other config (different seed, size, fault
//    profile — anything but the job count) is refused.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "testbed/campaign.hpp"

namespace tcppred::testbed {

/// In-memory image of a checkpoint file.
struct campaign_checkpoint {
    std::string fingerprint;
    std::size_t total{0};              ///< epochs in the full campaign
    std::vector<char> done;            ///< size == total; nonzero = completed
    std::vector<epoch_record> records; ///< size == total; only done slots valid
};

/// One named field of a campaign fingerprint, e.g. {"seed", "20040501"}.
struct fingerprint_field {
    std::string name;
    std::string value;
};

/// The fingerprint decomposed into named fields, in serialization order.
/// campaign_fingerprint() is exactly the '|'-join of the values, so the two
/// can never drift; the names exist to turn a mismatch into an actionable
/// diagnosis ("seed: checkpoint has X, this run has Y") instead of a bare
/// "fingerprint mismatch".
[[nodiscard]] std::vector<fingerprint_field> campaign_fingerprint_fields(
    const campaign_config& cfg);

/// Identity of everything that shapes a campaign's records: sizes, seeds,
/// fault profile, epoch parameters. Deliberately excludes cfg.jobs — the
/// dataset is job-count-invariant (DESIGN.md §6), so a run checkpointed at
/// one REPRO_JOBS may resume at another.
[[nodiscard]] std::string campaign_fingerprint(const campaign_config& cfg);

/// Field-by-field diff of two fingerprint strings, for error messages:
/// each differing field as "name: checkpoint=<old> requested=<new>".
/// Positional — both sides are split on '|' and compared slot by slot
/// (slot names from the campaign_fingerprint_fields schema).
[[nodiscard]] std::string describe_fingerprint_mismatch(const std::string& in_checkpoint,
                                                        const std::string& requested);

/// Write `contents` to `file` so that readers only ever observe the old
/// bytes or the new bytes, never a torn file. The temp file lands in
/// $TMPDIR when set (else next to `file`) and is published with rename(2);
/// when the temp and target sit on different filesystems (rename fails
/// EXDEV) it falls back to copy + fsync + same-directory rename. The test
/// hook $TCPPRED_FORCE_EXDEV=1 forces the fallback path.
void atomic_write_text(const std::filesystem::path& file, const std::string& contents);

/// Write atomically via atomic_write_text.
void save_checkpoint(const campaign_checkpoint& ck, const std::filesystem::path& file);

/// Load and validate a checkpoint. Returns nullopt when `file` does not
/// exist; throws dataset_error when it exists but is malformed or its
/// fingerprint does not match `expected_fingerprint`.
[[nodiscard]] std::optional<campaign_checkpoint> load_checkpoint(
    const std::filesystem::path& file, const std::string& expected_fingerprint);

}  // namespace tcppred::testbed
