// Per-trace background-load trajectory: a regime-switching utilization
// process with occasional single-epoch outlier spikes and optional linear
// trends. This is what creates the level shifts, outliers and trends the
// paper observes in TCP throughput time series (§5.2, Fig. 15).
#pragma once

#include <cstdint>
#include <vector>

#include "testbed/path_catalog.hpp"

namespace tcppred::testbed {

/// The background-load conditions of one measurement epoch.
struct load_state {
    double utilization{0.3};   ///< open-loop offered load / bottleneck capacity
    int elastic_flows{0};      ///< concurrently active persistent TCP flows
    bool outlier_spike{false}; ///< single-epoch anomaly (flash load / drain)
    bool regime_shift{false};  ///< first epoch of a new regime
    /// Multiplier applied to the open-loop load when the target transfer
    /// starts: the paper's epochs spanned minutes, so the conditions the
    /// transfer met had often drifted from the a-priori measurements
    /// (the staleness error source of s3.2).
    double intra_epoch_drift{1.0};
};

/// Generate the load trajectory of one trace: `epochs` states, derived
/// deterministically from the profile's dynamics parameters and the trace
/// seed.
[[nodiscard]] std::vector<load_state> load_trajectory(const path_profile& profile,
                                                      std::uint64_t trace_seed,
                                                      int epochs);

}  // namespace tcppred::testbed
