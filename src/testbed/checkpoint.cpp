#include "testbed/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tcppred::testbed {

namespace {

/// Bit-exact double -> text. Hexfloat survives the round-trip exactly, which
/// decimal at any precision does not guarantee; printf is used because
/// istream extraction of hexfloat is not required to work (and does not in
/// libstdc++), while strtod is.
std::string hexd(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double parse_hexd(const std::string& s, const std::filesystem::path& file,
                  std::size_t line_no) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
        throw dataset_error(file, line_no, 0, "bad hexfloat field \"" + s + "\"");
    }
    return v;
}

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, sep)) out.push_back(item);
    return out;
}

constexpr std::size_t k_fixed_doubles = 12;  // measurement doubles per record

}  // namespace

std::string campaign_fingerprint(const campaign_config& cfg) {
    // v2: every double goes through hexd so the identity string is a pure
    // function of the config bits, not of decimal formatting. A fingerprint
    // is write-only (compared for equality, never parsed), so the version
    // bump simply refuses to resume checkpoints written by older binaries.
    std::ostringstream os;
    os << "v2|" << cfg.paths << '|' << cfg.traces_per_path << '|'
       << cfg.epochs_per_trace << '|' << cfg.seed << '|' << cfg.second_set << '|'
       << cfg.faults.spec() << '|' << hexd(cfg.epoch.warmup.value()) << '|'
       << hexd(cfg.epoch.transfer.value()) << '|'
       << hexd(cfg.epoch.during_ping_interval.value())
       // tcppred-lint: allow(ser-hexfloat): *_window_bytes are integral fields
       << '|' << cfg.epoch.large_window_bytes << '|' << cfg.epoch.small_window_bytes
       << '|' << cfg.epoch.run_small_window << '|' << cfg.epoch.run_pathload << '|'
       << cfg.epoch.prior_ping.count << '|' << hexd(cfg.epoch.prior_ping.interval.value())
       << '|' << hexd(cfg.epoch.pathload_max_rate_factor) << '|'
       << hexd(cfg.epoch.hard_cap.value());
    for (const double s : cfg.epoch.prefix_s) os << "|px" << hexd(s);
    return os.str();
}

void save_checkpoint(const campaign_checkpoint& ck, const std::filesystem::path& file) {
    const std::filesystem::path tmp = file.string() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            throw std::runtime_error("save_checkpoint: cannot open " + tmp.string());
        }
        out << "tcppred-checkpoint,v1\n";
        out << "fingerprint," << ck.fingerprint << '\n';
        out << "total," << ck.total << '\n';
        for (std::size_t i = 0; i < ck.total; ++i) {
            if (!ck.done[i]) continue;
            const epoch_record& r = ck.records[i];
            const epoch_measurement& m = r.m;
            out << "rec," << i << ',' << r.path_id << ',' << r.trace_id << ','
                << r.epoch_index << ',' << hexd(m.avail_bw_bps) << ','
                << hexd(m.phat) << ',' << hexd(m.phat_events) << ','
                << hexd(m.that_s) << ',' << hexd(m.ptilde) << ','
                << hexd(m.ttilde_s) << ',' << hexd(m.r_large_bps) << ','
                << hexd(m.r_small_bps) << ',' << hexd(m.tcp_loss_rate) << ','
                << hexd(m.tcp_event_rate) << ',' << hexd(m.tcp_mean_rtt_s) << ','
                << hexd(m.sim_time_s) << ',' << m.events << ',' << m.fault_flags
                << ',' << m.prefix_goodputs.size();
            for (const auto& [s, bps] : m.prefix_goodputs) {
                out << ',' << hexd(s) << ',' << hexd(bps);
            }
            out << '\n';
        }
        if (!out) {
            throw std::runtime_error("save_checkpoint: write failed on " + tmp.string());
        }
    }
    // Atomic publish: readers see either the old checkpoint or the new one,
    // never a torn file.
    std::filesystem::rename(tmp, file);
}

std::optional<campaign_checkpoint> load_checkpoint(
    const std::filesystem::path& file, const std::string& expected_fingerprint) {
    std::ifstream in(file);
    if (!in) return std::nullopt;

    campaign_checkpoint ck;
    std::string line;
    std::size_t line_no = 0;

    auto next_line = [&](const char* what) {
        if (!std::getline(in, line)) {
            throw dataset_error(file, line_no + 1, 0,
                                std::string("truncated checkpoint: expected ") + what);
        }
        ++line_no;
    };

    next_line("magic");
    if (line != "tcppred-checkpoint,v1") {
        throw dataset_error(file, line_no, 0, "not a tcppred checkpoint");
    }
    next_line("fingerprint");
    if (line.rfind("fingerprint,", 0) != 0) {
        throw dataset_error(file, line_no, 0, "expected fingerprint line");
    }
    ck.fingerprint = line.substr(12);
    if (ck.fingerprint != expected_fingerprint) {
        throw dataset_error(file, line_no, 0,
                            "checkpoint belongs to a different campaign config "
                            "(fingerprint mismatch) — refusing to resume");
    }
    next_line("total");
    if (line.rfind("total,", 0) != 0) {
        throw dataset_error(file, line_no, 0, "expected total line");
    }
    ck.total = static_cast<std::size_t>(std::stoull(line.substr(6)));
    ck.done.assign(ck.total, 0);
    ck.records.resize(ck.total);

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        const auto f = split(line, ',');
        if (f.size() < 20 || f[0] != "rec") {
            throw dataset_error(file, line_no, 0, "bad checkpoint record line");
        }
        const auto idx = static_cast<std::size_t>(std::stoull(f[1]));
        if (idx >= ck.total) {
            throw dataset_error(file, line_no, 2,
                                "record index " + f[1] + " out of range");
        }
        epoch_record& r = ck.records[idx];
        r.path_id = std::stoi(f[2]);
        r.trace_id = std::stoi(f[3]);
        r.epoch_index = std::stoi(f[4]);
        double* const ds[k_fixed_doubles] = {
            &r.m.avail_bw_bps, &r.m.phat,         &r.m.phat_events,
            &r.m.that_s,       &r.m.ptilde,       &r.m.ttilde_s,
            &r.m.r_large_bps,  &r.m.r_small_bps,  &r.m.tcp_loss_rate,
            &r.m.tcp_event_rate, &r.m.tcp_mean_rtt_s, &r.m.sim_time_s};
        for (std::size_t i = 0; i < k_fixed_doubles; ++i) {
            *ds[i] = parse_hexd(f[5 + i], file, line_no);
        }
        r.m.events = std::stoull(f[17]);
        r.m.fault_flags = static_cast<std::uint32_t>(std::stoul(f[18]));
        const auto n_prefix = static_cast<std::size_t>(std::stoull(f[19]));
        if (f.size() != 20 + 2 * n_prefix) {
            throw dataset_error(file, line_no, 20,
                                "prefix count disagrees with field count");
        }
        r.m.prefix_goodputs.clear();
        for (std::size_t i = 0; i < n_prefix; ++i) {
            const double s = parse_hexd(f[20 + 2 * i], file, line_no);
            const double bps = parse_hexd(f[21 + 2 * i], file, line_no);
            r.m.prefix_goodputs.emplace_back(s, bps);
        }
        ck.done[idx] = 1;
    }
    return ck;
}

}  // namespace tcppred::testbed
