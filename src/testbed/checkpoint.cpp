#include "testbed/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

namespace tcppred::testbed {

std::string hexd(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double parse_hexd(const std::string& s, const std::filesystem::path& file,
                  std::size_t line_no) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
        throw dataset_error(file, line_no, 0, "bad hexfloat field \"" + s + "\"");
    }
    return v;
}

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, sep)) out.push_back(item);
    return out;
}

constexpr std::size_t k_fixed_doubles = 12;  // measurement doubles per record

/// Parse one already-split "rec,..." line into (linear index, record).
/// Shared by the streaming reader and (through it) load_checkpoint.
std::pair<std::size_t, epoch_record> parse_checkpoint_record(
    const std::vector<std::string>& f, std::size_t total,
    const std::filesystem::path& file, std::size_t line_no) {
    if (f.size() < 20 || f[0] != "rec") {
        throw dataset_error(file, line_no, 0, "bad checkpoint record line");
    }
    const auto idx = static_cast<std::size_t>(std::stoull(f[1]));
    if (idx >= total) {
        throw dataset_error(file, line_no, 2, "record index " + f[1] + " out of range");
    }
    epoch_record r;
    r.path_id = std::stoi(f[2]);
    r.trace_id = std::stoi(f[3]);
    r.epoch_index = std::stoi(f[4]);
    double* const ds[k_fixed_doubles] = {
        &r.m.avail_bw_bps, &r.m.phat,         &r.m.phat_events,
        &r.m.that_s,       &r.m.ptilde,       &r.m.ttilde_s,
        &r.m.r_large_bps,  &r.m.r_small_bps,  &r.m.tcp_loss_rate,
        &r.m.tcp_event_rate, &r.m.tcp_mean_rtt_s, &r.m.sim_time_s};
    for (std::size_t i = 0; i < k_fixed_doubles; ++i) {
        *ds[i] = parse_hexd(f[5 + i], file, line_no);
    }
    r.m.events = std::stoull(f[17]);
    r.m.fault_flags = static_cast<std::uint32_t>(std::stoul(f[18]));
    const auto n_prefix = static_cast<std::size_t>(std::stoull(f[19]));
    if (f.size() != 20 + 2 * n_prefix) {
        throw dataset_error(file, line_no, 20, "prefix count disagrees with field count");
    }
    r.m.prefix_goodputs.clear();
    for (std::size_t i = 0; i < n_prefix; ++i) {
        const double s = parse_hexd(f[20 + 2 * i], file, line_no);
        const double bps = parse_hexd(f[21 + 2 * i], file, line_no);
        r.m.prefix_goodputs.emplace_back(s, bps);
    }
    return {idx, std::move(r)};
}

}  // namespace

std::vector<fingerprint_field> campaign_fingerprint_fields(const campaign_config& cfg) {
    // v2: every double goes through hexd so the identity string is a pure
    // function of the config bits, not of decimal formatting. A fingerprint
    // is compared for equality (and positionally diffed on mismatch), never
    // parsed back into a config, so the version bump simply refuses to
    // resume checkpoints written by older binaries. The value serialization
    // here must never change without bumping the version field.
    std::vector<fingerprint_field> f;
    f.push_back({"version", "v2"});
    f.push_back({"paths", std::to_string(cfg.paths)});
    f.push_back({"traces_per_path", std::to_string(cfg.traces_per_path)});
    f.push_back({"epochs_per_trace", std::to_string(cfg.epochs_per_trace)});
    f.push_back({"seed", std::to_string(cfg.seed)});
    f.push_back({"second_set", std::to_string(cfg.second_set ? 1 : 0)});
    f.push_back({"faults", cfg.faults.spec()});
    f.push_back({"epoch.warmup_s", hexd(cfg.epoch.warmup.value())});
    f.push_back({"epoch.transfer_s", hexd(cfg.epoch.transfer.value())});
    f.push_back({"epoch.during_ping_interval_s",
                 hexd(cfg.epoch.during_ping_interval.value())});
    f.push_back({"epoch.large_window_bytes",
                 std::to_string(cfg.epoch.large_window_bytes)});
    f.push_back({"epoch.small_window_bytes",
                 std::to_string(cfg.epoch.small_window_bytes)});
    f.push_back({"epoch.run_small_window",
                 std::to_string(cfg.epoch.run_small_window ? 1 : 0)});
    f.push_back({"epoch.run_pathload", std::to_string(cfg.epoch.run_pathload ? 1 : 0)});
    f.push_back({"epoch.prior_ping.count", std::to_string(cfg.epoch.prior_ping.count)});
    f.push_back({"epoch.prior_ping.interval_s",
                 hexd(cfg.epoch.prior_ping.interval.value())});
    f.push_back({"epoch.pathload_max_rate_factor",
                 hexd(cfg.epoch.pathload_max_rate_factor)});
    f.push_back({"epoch.hard_cap_s", hexd(cfg.epoch.hard_cap.value())});
    for (std::size_t i = 0; i < cfg.epoch.prefix_s.size(); ++i) {
        f.push_back({"epoch.prefix_s[" + std::to_string(i) + "]",
                     "px" + hexd(cfg.epoch.prefix_s[i])});
    }
    return f;
}

std::string campaign_fingerprint(const campaign_config& cfg) {
    // Byte-compatible with the pre-field-diff v2 format: exactly the
    // '|'-join of the field values. (The old direct stream emitted bools as
    // 0/1 via operator<<, which to_string reproduces.)
    std::ostringstream os;
    bool first = true;
    for (const fingerprint_field& f : campaign_fingerprint_fields(cfg)) {
        if (!first) os << '|';
        os << f.value;
        first = false;
    }
    return os.str();
}

std::string describe_fingerprint_mismatch(const std::string& in_checkpoint,
                                          const std::string& requested) {
    // Positional slot names for the v2 layout above. Fields past the fixed
    // schema are the variable-length prefix list.
    static const char* const k_names[] = {
        "version",
        "paths",
        "traces_per_path",
        "epochs_per_trace",
        "seed",
        "second_set",
        "faults",
        "epoch.warmup_s",
        "epoch.transfer_s",
        "epoch.during_ping_interval_s",
        "epoch.large_window_bytes",
        "epoch.small_window_bytes",
        "epoch.run_small_window",
        "epoch.run_pathload",
        "epoch.prior_ping.count",
        "epoch.prior_ping.interval_s",
        "epoch.pathload_max_rate_factor",
        "epoch.hard_cap_s",
    };
    constexpr std::size_t k_fixed = sizeof(k_names) / sizeof(k_names[0]);
    const auto old_f = split(in_checkpoint, '|');
    const auto new_f = split(requested, '|');
    const auto name_of = [&](std::size_t i) -> std::string {
        if (i < k_fixed) return k_names[i];
        return "epoch.prefix_s[" + std::to_string(i - k_fixed) + "]";
    };
    std::ostringstream os;
    const std::size_t n = std::max(old_f.size(), new_f.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::string old_v = i < old_f.size() ? old_f[i] : "<absent>";
        const std::string new_v = i < new_f.size() ? new_f[i] : "<absent>";
        if (old_v == new_v) continue;
        os << "\n  " << name_of(i) << ": checkpoint=" << old_v
           << " requested=" << new_v;
    }
    if (os.str().empty()) return "\n  (fingerprints differ only in field count)";
    return os.str();
}

void atomic_write_text(const std::filesystem::path& file, const std::string& contents) {
    // Temp placement: $TMPDIR when set (keeps half-written files out of
    // shared data directories), else alongside the target. The pid in the
    // name keeps concurrent writers of same-named files (shard workers,
    // parallel tests sharing TMPDIR) from clobbering each other's temps.
    namespace fs = std::filesystem;
    fs::path dir = file.parent_path().empty() ? fs::path(".") : file.parent_path();
    // tcppred-lint: allow(det-env): documented temp-placement knob, not sim state
    if (const char* tmpdir = std::getenv("TMPDIR"); tmpdir && *tmpdir) dir = tmpdir;
    const fs::path tmp =
        dir / (file.filename().string() + "." + std::to_string(::getpid()) + ".tmp");
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out) {
            throw std::runtime_error("atomic_write_text: cannot open " + tmp.string());
        }
        out << contents;
        out.flush();
        if (!out) {
            throw std::runtime_error("atomic_write_text: write failed on " +
                                     tmp.string());
        }
    }
    // Atomic publish: readers see either the old file or the new one, never
    // a torn file. rename(2) cannot cross filesystems — when the temp dir
    // (TMPDIR) sits on another mount it fails EXDEV; fall back to copying
    // next to the target, fsync'ing the copy, and renaming *that*, which is
    // same-filesystem by construction. $TCPPRED_FORCE_EXDEV forces the
    // fallback so tests can cover it without a second mount.
    std::error_code ec;
    // tcppred-lint: allow(det-env): test hook for the EXDEV fallback path
    const bool force_exdev = std::getenv("TCPPRED_FORCE_EXDEV") != nullptr;
    if (!force_exdev) {
        fs::rename(tmp, file, ec);
        if (!ec) return;
        if (ec != std::errc::cross_device_link) {
            fs::remove(tmp, ec);
            throw std::runtime_error("atomic_write_text: cannot rename into " +
                                     file.string());
        }
    }
    const fs::path sibling = file.string() + ".tmp";
    fs::copy_file(tmp, sibling, fs::copy_options::overwrite_existing, ec);
    if (ec) {
        fs::remove(tmp, ec);
        throw std::runtime_error("atomic_write_text: cross-device copy into " +
                                 sibling.string() + " failed");
    }
    // fsync before the final rename: the copy's data must be durable before
    // the name flips, or a crash could publish an empty/short file.
    const int fd = ::open(sibling.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
    fs::rename(sibling, file, ec);
    std::error_code ignore;
    fs::remove(tmp, ignore);
    if (ec) {
        throw std::runtime_error("atomic_write_text: cannot rename " +
                                 sibling.string() + " into " + file.string());
    }
}

void save_checkpoint(const campaign_checkpoint& ck, const std::filesystem::path& file) {
    std::ostringstream out;
    out << "tcppred-checkpoint,v1\n";
    out << "fingerprint," << ck.fingerprint << '\n';
    out << "total," << ck.total << '\n';
    for (std::size_t i = 0; i < ck.total; ++i) {
        if (!ck.done[i]) continue;
        const epoch_record& r = ck.records[i];
        const epoch_measurement& m = r.m;
        out << "rec," << i << ',' << r.path_id << ',' << r.trace_id << ','
            << r.epoch_index << ',' << hexd(m.avail_bw_bps) << ','
            << hexd(m.phat) << ',' << hexd(m.phat_events) << ','
            << hexd(m.that_s) << ',' << hexd(m.ptilde) << ','
            << hexd(m.ttilde_s) << ',' << hexd(m.r_large_bps) << ','
            << hexd(m.r_small_bps) << ',' << hexd(m.tcp_loss_rate) << ','
            << hexd(m.tcp_event_rate) << ',' << hexd(m.tcp_mean_rtt_s) << ','
            << hexd(m.sim_time_s) << ',' << m.events << ',' << m.fault_flags
            << ',' << m.prefix_goodputs.size();
        for (const auto& [s, bps] : m.prefix_goodputs) {
            out << ',' << hexd(s) << ',' << hexd(bps);
        }
        out << '\n';
    }
    atomic_write_text(file, out.str());
}

checkpoint_reader::checkpoint_reader(const std::filesystem::path& file,
                                     const std::string& expected_fingerprint)
    : in_(file), file_(file) {
    if (!in_) {
        throw dataset_error(file_, 0, 0, "cannot open checkpoint");
    }
    std::string line;
    auto next_line = [&](const char* what) {
        if (!std::getline(in_, line)) {
            throw dataset_error(file_, line_no_ + 1, 0,
                                std::string("truncated checkpoint: expected ") + what);
        }
        ++line_no_;
    };
    next_line("magic");
    if (line != "tcppred-checkpoint,v1") {
        throw dataset_error(file_, line_no_, 0, "not a tcppred checkpoint");
    }
    next_line("fingerprint");
    if (line.rfind("fingerprint,", 0) != 0) {
        throw dataset_error(file_, line_no_, 0, "expected fingerprint line");
    }
    fingerprint_ = line.substr(12);
    if (!expected_fingerprint.empty() && fingerprint_ != expected_fingerprint) {
        throw dataset_error(
            file_, line_no_, 0,
            "checkpoint belongs to a different campaign config (fingerprint "
            "mismatch) — refusing to resume; differing fields:" +
                describe_fingerprint_mismatch(fingerprint_, expected_fingerprint));
    }
    next_line("total");
    if (line.rfind("total,", 0) != 0) {
        throw dataset_error(file_, line_no_, 0, "expected total line");
    }
    total_ = static_cast<std::size_t>(std::stoull(line.substr(6)));
}

std::optional<std::pair<std::size_t, epoch_record>> checkpoint_reader::next() {
    std::string line;
    while (std::getline(in_, line)) {
        ++line_no_;
        if (line.empty()) continue;
        return parse_checkpoint_record(split(line, ','), total_, file_, line_no_);
    }
    return std::nullopt;
}

std::optional<campaign_checkpoint> load_checkpoint(
    const std::filesystem::path& file, const std::string& expected_fingerprint) {
    {
        // Missing (or unreadable) file means "no checkpoint yet", not an
        // error — the reader's cannot-open throw is for callers that already
        // know the file must exist (the shard merge).
        std::ifstream probe(file);
        if (!probe) return std::nullopt;
    }
    checkpoint_reader reader(file, expected_fingerprint);
    campaign_checkpoint ck;
    ck.fingerprint = reader.fingerprint();
    ck.total = reader.total();
    ck.done.assign(ck.total, 0);
    ck.records.resize(ck.total);
    while (auto rec = reader.next()) {
        ck.records[rec->first] = std::move(rec->second);
        ck.done[rec->first] = 1;
    }
    return ck;
}

}  // namespace tcppred::testbed
