// Process-wide named counters and gauges — the counting half of the
// observability layer (DESIGN.md §12).
//
// Counters are monotonically increasing event counts (epochs run, faults
// injected by kind, checkpoint flushes, predictions by status, dataset rows
// rejected). The hot path is a single relaxed fetch_add on a per-thread
// shard cell: no locks, no allocation, no false sharing with other threads.
// Shards are merged on snapshot(), and a thread's cells drain into a global
// residue when the thread exits, so counts are never lost.
//
// Determinism contract: every counter in the catalogue counts a *logical*
// event of the workload, never an artifact of scheduling — so for a fixed
// seed the full counter snapshot is identical at any REPRO_JOBS value (the
// trace/counter determinism tests pin this). Gauges are exempt: they record
// last-written execution facts (e.g. worker count) and may legitimately
// differ across job counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tcppred::obs {

/// Upper bound on distinct counter names with per-thread cells. Counters
/// registered beyond this fall back to a shared atomic (still correct, just
/// contended); the catalogue is nowhere near this size.
inline constexpr std::size_t k_max_sharded_counters = 256;

namespace detail {

struct counter_info {
    std::string name;
    /// Contributions from exited threads (and the shared-slot fallback).
    std::atomic<std::uint64_t> residue{0};
};

struct shard;

/// The process-wide registry. Leaked on purpose: thread_local shard
/// destructors may run during process teardown, after function-local
/// statics would have been destroyed.
struct registry_t {
    std::mutex mu;
    std::vector<std::unique_ptr<counter_info>> counters;  // id = index
    std::map<std::string, std::size_t, std::less<>> ids;
    std::vector<shard*> shards;  // live threads' shards
};

inline registry_t& registry() {
    static registry_t* r = new registry_t;  // intentionally leaked
    return *r;
}

/// One thread's counter cells. Registered on first use, drained into each
/// counter's residue on thread exit. Fixed capacity keeps cell addresses
/// stable so the hot path never takes the registry mutex.
struct shard {
    std::array<std::atomic<std::uint64_t>, k_max_sharded_counters> cells{};

    shard() {
        registry_t& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(this);
    }
    ~shard() {
        registry_t& r = registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        for (std::size_t id = 0; id < r.counters.size() && id < cells.size(); ++id) {
            const std::uint64_t v = cells[id].load(std::memory_order_relaxed);
            if (v != 0) r.counters[id]->residue.fetch_add(v, std::memory_order_relaxed);
        }
        std::erase(r.shards, this);
    }
    shard(const shard&) = delete;
    shard& operator=(const shard&) = delete;
};

inline shard& tl_shard() {
    thread_local shard s;
    return s;
}

}  // namespace detail

/// Lightweight handle to a named process-wide counter. Interning (get) takes
/// a mutex; cache the handle at the call site:
///
///     static const obs::counter c_epochs = obs::counter::get("campaign.epochs_run");
///     c_epochs.add();
class counter {
public:
    /// Intern `name` (creating it on first use) and return a handle.
    [[nodiscard]] static counter get(std::string_view name) {
        detail::registry_t& r = detail::registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        const auto it = r.ids.find(name);
        if (it != r.ids.end()) return counter{it->second};
        const std::size_t id = r.counters.size();
        r.counters.push_back(std::make_unique<detail::counter_info>());
        r.counters.back()->name = std::string(name);
        r.ids.emplace(std::string(name), id);
        return counter{id};
    }

    void add(std::uint64_t n = 1) const noexcept {
        if (id_ < k_max_sharded_counters) {
            detail::tl_shard().cells[id_].fetch_add(n, std::memory_order_relaxed);
        } else {
            detail::registry().counters[id_]->residue.fetch_add(
                n, std::memory_order_relaxed);
        }
    }

    [[nodiscard]] std::uint64_t value() const {
        detail::registry_t& r = detail::registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        std::uint64_t sum = r.counters[id_]->residue.load(std::memory_order_relaxed);
        if (id_ < k_max_sharded_counters) {
            for (const detail::shard* s : r.shards) {
                sum += s->cells[id_].load(std::memory_order_relaxed);
            }
        }
        return sum;
    }

private:
    explicit counter(std::size_t id) : id_(id) {}
    std::size_t id_;
};

/// Merged view of every counter, sorted by name (map order). Zero-valued
/// counters are included once registered — a counter that exists but never
/// fired is information too.
[[nodiscard]] inline std::map<std::string, std::uint64_t> counters_snapshot() {
    detail::registry_t& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, std::uint64_t> out;
    for (std::size_t id = 0; id < r.counters.size(); ++id) {
        std::uint64_t sum = r.counters[id]->residue.load(std::memory_order_relaxed);
        if (id < k_max_sharded_counters) {
            for (const detail::shard* s : r.shards) {
                sum += s->cells[id].load(std::memory_order_relaxed);
            }
        }
        out.emplace(r.counters[id]->name, sum);
    }
    return out;
}

/// Zero every counter (names stay registered). Only meaningful while no
/// other thread is incrementing — tests call this between measured runs.
inline void reset_counters() {
    detail::registry_t& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (auto& c : r.counters) c->residue.store(0, std::memory_order_relaxed);
    for (detail::shard* s : r.shards) {
        for (auto& cell : s->cells) cell.store(0, std::memory_order_relaxed);
    }
}

namespace detail {

struct gauge_registry_t {
    std::mutex mu;
    std::map<std::string, std::shared_ptr<std::atomic<std::int64_t>>, std::less<>> values;
};

inline gauge_registry_t& gauge_registry() {
    static gauge_registry_t* r = new gauge_registry_t;  // leaked, as above
    return *r;
}

}  // namespace detail

/// Last-write-wins named gauge (worker counts, queue depths). Excluded from
/// the cross-job-count determinism contract — see the file comment.
class gauge {
public:
    [[nodiscard]] static gauge get(std::string_view name) {
        detail::gauge_registry_t& r = detail::gauge_registry();
        const std::lock_guard<std::mutex> lock(r.mu);
        auto it = r.values.find(name);
        if (it == r.values.end()) {
            it = r.values
                     .emplace(std::string(name),
                              std::make_shared<std::atomic<std::int64_t>>(0))
                     .first;
        }
        return gauge{it->second};
    }

    void set(std::int64_t v) const noexcept {
        cell_->store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return cell_->load(std::memory_order_relaxed);
    }

private:
    explicit gauge(std::shared_ptr<std::atomic<std::int64_t>> cell)
        : cell_(std::move(cell)) {}
    std::shared_ptr<std::atomic<std::int64_t>> cell_;
};

[[nodiscard]] inline std::map<std::string, std::int64_t> gauges_snapshot() {
    detail::gauge_registry_t& r = detail::gauge_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, cell] : r.values) {
        out.emplace(name, cell->load(std::memory_order_relaxed));
    }
    return out;
}

inline void reset_gauges() {
    detail::gauge_registry_t& r = detail::gauge_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, cell] : r.values) cell->store(0, std::memory_order_relaxed);
}

}  // namespace tcppred::obs
