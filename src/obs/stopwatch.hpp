// Wall-clock stage timers and latency recorders — the timing half of the
// observability layer (DESIGN.md §12).
//
// Sample collection is gated on metrics_enabled(): with metrics off (the
// default) record() is one relaxed atomic load and a branch — no locking,
// no allocation — so instrumented hot paths cost nothing in ordinary runs.
// Tools flip the flag via --metrics-summary, benches via $REPRO_METRICS.
//
// Timings are wall-clock facts about *this* execution: they are reported in
// the metrics summary and carried in trace events, but they are never part
// of any determinism contract (the trace canonicalizer strips them).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tcppred::obs {

/// Plain steady-clock stopwatch; running from construction.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}
    void restart() { start_ = std::chrono::steady_clock::now(); }
    [[nodiscard]] double elapsed_s() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Global switch for timing-sample collection (counters are always on).
namespace detail {
inline std::atomic<bool>& metrics_flag() {
    static std::atomic<bool> f{false};
    return f;
}

struct timer_registry_t {
    std::mutex mu;
    std::map<std::string, std::vector<double>, std::less<>> samples;
};

inline timer_registry_t& timer_registry() {
    static timer_registry_t* r = new timer_registry_t;  // leaked; see counters.hpp
    return *r;
}
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() noexcept {
    return detail::metrics_flag().load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) noexcept {
    detail::metrics_flag().store(on, std::memory_order_relaxed);
}

/// Record one duration sample under `name`. No-op (one atomic load) while
/// metrics are disabled. A mutexed push_back otherwise: every instrumented
/// site runs at per-epoch/per-trace granularity, where milliseconds of work
/// amortize a sub-microsecond lock.
inline void record_duration(std::string_view name, double seconds) {
    if (!metrics_enabled()) return;
    detail::timer_registry_t& r = detail::timer_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.samples.find(name);
    if (it != r.samples.end()) {
        it->second.push_back(seconds);
    } else {
        r.samples.emplace(std::string(name), std::vector<double>{seconds});
    }
}

/// RAII stage timer: records the scope's wall time under `name` (e.g.
/// "campaign.sweep", "engine.trace", "analyze.load_csv").
class stage_timer {
public:
    explicit stage_timer(std::string_view name) : name_(name) {}
    ~stage_timer() { record_duration(name_, watch_.elapsed_s()); }
    stage_timer(const stage_timer&) = delete;
    stage_timer& operator=(const stage_timer&) = delete;

    [[nodiscard]] double elapsed_s() const { return watch_.elapsed_s(); }

private:
    std::string name_;
    stopwatch watch_;
};

/// Aggregate view of one named timer's samples.
struct timer_stats {
    std::size_t count{0};
    double total_s{0.0};
    double p50_s{0.0};
    double p95_s{0.0};
    double max_s{0.0};
};

/// Stats for every named timer, sorted by name. Percentiles use the
/// nearest-rank convention — good enough for a run summary.
[[nodiscard]] inline std::map<std::string, timer_stats> timers_snapshot() {
    detail::timer_registry_t& r = detail::timer_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, timer_stats> out;
    for (const auto& [name, samples] : r.samples) {
        timer_stats st;
        st.count = samples.size();
        if (!samples.empty()) {
            std::vector<double> sorted(samples);
            std::sort(sorted.begin(), sorted.end());
            for (const double s : sorted) st.total_s += s;
            const auto rank = [&](double q) {
                const auto i = static_cast<std::size_t>(
                    std::ceil(q * static_cast<double>(sorted.size())));
                return sorted[std::min(i == 0 ? 0 : i - 1, sorted.size() - 1)];
            };
            st.p50_s = rank(0.50);
            st.p95_s = rank(0.95);
            st.max_s = sorted.back();
        }
        out.emplace(name, st);
    }
    return out;
}

inline void reset_timers() {
    detail::timer_registry_t& r = detail::timer_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.samples.clear();
}

}  // namespace tcppred::obs
