#include "obs/trace_writer.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"

namespace tcppred::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

/// Shortest exact double representation: %.17g round-trips every finite
/// value and is identical across runs for identical values, which is what
/// the cross-job-count trace determinism contract needs.
void append_double(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // JSON has no NaN/Inf literals; the schema strings them.
    if (std::isnan(v)) {
        out += "\"nan\"";
    } else if (std::isinf(v)) {
        out += v > 0 ? "\"inf\"" : "\"-inf\"";
    } else {
        out += buf;
    }
}

void append_escaped(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace

json_line& json_line::str(std::string_view k, std::string_view value) {
    key(k);
    append_escaped(buf_, value);
    return *this;
}

json_line& json_line::num(std::string_view k, double value) {
    key(k);
    append_double(buf_, value);
    return *this;
}

json_line& json_line::num(std::string_view k, std::uint64_t value) {
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    buf_ += buf;
    return *this;
}

json_line& json_line::num(std::string_view k, std::int64_t value) {
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    buf_ += buf;
    return *this;
}

void json_line::key(std::string_view k) {
    if (!first_) buf_ += ',';
    first_ = false;
    append_escaped(buf_, k);
    buf_ += ':';
}

std::string json_line::done() {
    buf_ += '}';
    return std::move(buf_);
}

trace_writer& trace_writer::instance() {
    // Leaked like the counter registry: producers may emit from thread_local
    // destructors during teardown; close() is the orderly shutdown path.
    static trace_writer* w = new trace_writer;
    return *w;
}

bool trace_writer::enabled() noexcept {
    return g_trace_enabled.load(std::memory_order_relaxed);
}

void trace_writer::open(const std::filesystem::path& file) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (g_trace_enabled.load(std::memory_order_relaxed)) {
        throw std::runtime_error("trace_writer: a trace is already open (" +
                                 file_.string() + ")");
    }
    // Probe writability up front so --trace to an unwritable path fails the
    // tool immediately instead of surfacing from the drain thread later.
    {
        std::ofstream probe(file, std::ios::trunc);
        if (!probe) {
            throw std::runtime_error("trace_writer: cannot open " + file.string());
        }
    }
    file_ = file;
    closing_ = false;
    error_.clear();
    drain_ = std::thread([this] { drain_loop(); });
    g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_writer::emit(std::string line) {
    if (!enabled()) return;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (closing_) return;  // racing with close(): drop, file is final
        queue_.push_back(std::move(line));
    }
    wake_.notify_one();
}

void trace_writer::close() {
    std::thread to_join;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        if (!drain_.joinable()) return;
        closing_ = true;
        to_join = std::move(drain_);
    }
    g_trace_enabled.store(false, std::memory_order_relaxed);
    wake_.notify_all();
    to_join.join();
    const std::lock_guard<std::mutex> lock(mu_);
    if (!error_.empty()) {
        const std::string err = std::exchange(error_, {});
        throw std::runtime_error("trace_writer: " + err);
    }
}

trace_writer::~trace_writer() {
    try {
        close();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — teardown is best-effort
    }
}

void trace_writer::drain_loop() {
    std::ofstream out(file_, std::ios::trunc);
    if (!out) {
        const std::lock_guard<std::mutex> lock(mu_);
        error_ = "cannot open " + file_.string();
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wake_.wait(lock, [this] { return closing_ || !queue_.empty(); });
        // Swap the whole batch out so producers never wait on file I/O.
        std::deque<std::string> batch;
        batch.swap(queue_);
        const bool finishing = closing_;
        lock.unlock();
        for (const std::string& line : batch) out << line << '\n';
        if (finishing) {
            out.flush();
            lock.lock();
            if (queue_.empty()) {
                if (!out) error_ = "write failed on " + file_.string();
                return;
            }
            continue;  // a producer squeezed one in before closing_ was seen
        }
        lock.lock();
    }
}

void init_from_env() {
    static std::atomic<bool> done{false};
    if (done.exchange(true)) return;
    if (const char* env = std::getenv("REPRO_METRICS")) {  // NOLINT(concurrency-mt-unsafe)
        if (*env != '\0' && std::string_view(env) != "0") {
            set_metrics_enabled(true);
            std::atexit([] {
                std::ostringstream os;
                write_metrics_summary(os);
                std::fputs(os.str().c_str(), stderr);
            });
        }
    }
    // A trace the caller already opened (--trace) wins over $REPRO_TRACE.
    if (const char* env = std::getenv("REPRO_TRACE")) {  // NOLINT(concurrency-mt-unsafe)
        if (*env != '\0' && !trace_writer::enabled()) {
            trace_writer::instance().open(env);
            // The singleton is leaked (see instance()), so an env-opened
            // trace needs an explicit flush point at process exit.
            std::atexit([] {
                try {
                    trace_writer::instance().close();
                } catch (const std::exception& e) {
                    std::fprintf(stderr, "error: %s\n", e.what());
                }
            });
        }
    }
}

namespace {

/// One "VmPeak:  1234 kB"-style value from /proc/self/status, in kB, or -1
/// when unavailable (non-Linux, or the kernel interface changed).
long proc_status_kb([[maybe_unused]] const char* key) {
#ifdef __linux__
    std::ifstream in("/proc/self/status");
    std::string line;
    const std::string prefix = std::string(key) + ":";
    while (std::getline(in, line)) {
        if (line.rfind(prefix, 0) != 0) continue;
        return std::strtol(line.c_str() + prefix.size(), nullptr, 10);
    }
#endif
    return -1;
}

}  // namespace

void write_metrics_summary(std::ostream& os) {
    const auto counters = counters_snapshot();
    const auto gauges = gauges_snapshot();
    const auto timers = timers_snapshot();
    os << "== metrics summary ==\n";
    // Peak memory of this process (Linux: /proc/self/status), emitted with
    // stable greppable names — the CI mem-cap gate parses these to verify
    // the streamed paths stay under their memory budget.
    if (const long kb = proc_status_kb("VmPeak"); kb >= 0) {
        os << "  process  " << std::left << std::setw(36) << "mem.vm_peak_kb" << ' '
           << kb << '\n';
    }
    if (const long kb = proc_status_kb("VmHWM"); kb >= 0) {
        os << "  process  " << std::left << std::setw(36) << "mem.rss_peak_kb" << ' '
           << kb << '\n';
    }
    if (counters.empty() && gauges.empty() && timers.empty()) {
        os << "  (no counters registered)\n";
        return;
    }
    for (const auto& [name, v] : counters) {
        os << "  counter  " << std::left << std::setw(36) << name << ' ' << v << '\n';
    }
    for (const auto& [name, v] : gauges) {
        os << "  gauge    " << std::left << std::setw(36) << name << ' ' << v << '\n';
    }
    if (!timers.empty()) {
        os << "  stage timers (wall clock):\n";
        os << "    " << std::left << std::setw(34) << "stage" << std::right
           << std::setw(8) << "count" << std::setw(12) << "total_s" << std::setw(12)
           << "p50_s" << std::setw(12) << "p95_s" << std::setw(12) << "max_s" << '\n';
        // The metrics summary is a human-oriented stderr table of wall-clock
        // timings — explicitly volatile, never parsed, never compared across
        // runs — so fixed-precision decimal is the right rendering here.
        for (const auto& [name, st] : timers) {
            os << "    " << std::left << std::setw(34) << name << std::right
               // tcppred-lint: allow(ser-hexfloat): human-facing wall-clock table
               << std::setw(8) << st.count << std::fixed << std::setprecision(4)
               // tcppred-lint: allow(ser-hexfloat): human-facing wall-clock table
               << std::setw(12) << st.total_s << std::setw(12) << st.p50_s
               // tcppred-lint: allow(ser-hexfloat): human-facing wall-clock table
               << std::setw(12) << st.p95_s << std::setw(12) << st.max_s << '\n';
            os.unsetf(std::ios::fixed);
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing / canonicalization

namespace {

[[noreturn]] void bad(const std::string& context, const std::string& why) {
    throw std::runtime_error((context.empty() ? std::string("trace") : context) +
                             ": " + why);
}

}  // namespace

trace_event parse_trace_line(std::string_view line, const std::string& context) {
    trace_event ev;
    std::size_t i = 0;
    const auto skip_ws = [&] {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    };
    const auto expect = [&](char c) {
        if (i >= line.size() || line[i] != c) {
            bad(context, std::string("expected '") + c + "' at offset " +
                             std::to_string(i));
        }
        ++i;
    };
    const auto parse_string = [&]() -> std::string {
        expect('"');
        std::string out;
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\') {
                if (i >= line.size()) bad(context, "dangling escape");
                const char e = line[i++];
                switch (e) {
                    case '"': c = '"'; break;
                    case '\\': c = '\\'; break;
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'r': c = '\r'; break;
                    case 'u': {
                        if (i + 4 > line.size()) bad(context, "short \\u escape");
                        c = static_cast<char>(
                            std::strtol(std::string(line.substr(i, 4)).c_str(),
                                        nullptr, 16));
                        i += 4;
                        break;
                    }
                    default: bad(context, std::string("unknown escape \\") + e);
                }
            }
            out += c;
        }
        expect('"');
        return out;
    };

    skip_ws();
    expect('{');
    skip_ws();
    if (i < line.size() && line[i] == '}') {
        ++i;
    } else {
        for (;;) {
            skip_ws();
            const std::string key = parse_string();
            skip_ws();
            expect(':');
            skip_ws();
            if (i < line.size() && line[i] == '"') {
                ev[key] = parse_string();
            } else {
                const std::string rest(line.substr(i));
                char* end = nullptr;
                const double v = std::strtod(rest.c_str(), &end);
                if (end == rest.c_str()) {
                    bad(context, "expected a value for key \"" + key + "\"");
                }
                i += static_cast<std::size_t>(end - rest.c_str());
                ev[key] = v;
            }
            skip_ws();
            if (i < line.size() && line[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        expect('}');
    }
    skip_ws();
    if (i != line.size()) bad(context, "trailing junk after object");
    if (ev.find("ev") == ev.end()) bad(context, "event has no \"ev\" key");
    return ev;
}

std::vector<trace_event> read_trace_file(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) throw std::runtime_error("cannot open trace " + file.string());
    std::vector<trace_event> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        out.push_back(
            parse_trace_line(line, file.string() + ":" + std::to_string(line_no)));
    }
    return out;
}

bool is_volatile_trace_key(std::string_view key) noexcept {
    return key == "ts" || key == "dur_s" || key == "thread";
}

std::string canonical_trace_line(const trace_event& ev) {
    json_line out;
    for (const auto& [key, value] : ev) {  // std::map: keys already sorted
        if (is_volatile_trace_key(key)) continue;
        if (const auto* s = std::get_if<std::string>(&value)) {
            out.str(key, *s);
        } else {
            out.num(key, std::get<double>(value));
        }
    }
    return out.done();
}

std::vector<std::string> canonical_trace_lines(const std::filesystem::path& file) {
    std::vector<std::string> out;
    for (const trace_event& ev : read_trace_file(file)) {
        out.push_back(canonical_trace_line(ev));
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace tcppred::obs
