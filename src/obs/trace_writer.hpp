// Opt-in JSONL run traces — the event half of the observability layer
// (DESIGN.md §12).
//
// When enabled ($REPRO_TRACE=file or a tool's --trace flag) every epoch,
// stage and prediction appends one JSON object line to the trace file.
// Producers format the line and hand it to a bounded queue; a single
// background drain thread owns the file, so emit() never blocks on disk and
// the worker threads' relative timing — and therefore the campaign's
// determinism contract — is untouched. With tracing disabled, enabled() is
// one relaxed atomic load and nothing on the hot path allocates.
//
// Event schema and the volatile-key list live in DESIGN.md §12; the
// canonicalizer below (parse → drop volatile keys → re-serialize with
// sorted keys) is what the determinism tests and `tcppred_analyze
// --from-trace` consume.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

namespace tcppred::obs {

/// Incremental builder for one flat JSON object line. Keys are emitted in
/// call order; values are strings, doubles (shortest round-trip form), or
/// unsigned integers.
class json_line {
public:
    json_line& str(std::string_view key, std::string_view value);
    json_line& num(std::string_view key, double value);
    json_line& num(std::string_view key, std::uint64_t value);
    json_line& num(std::string_view key, std::int64_t value);
    /// Finish the object. The builder is spent afterwards.
    [[nodiscard]] std::string done();

private:
    void key(std::string_view k);
    std::string buf_{"{"};
    bool first_{true};
};

/// The process-wide trace sink. Thread-safe; at most one open trace at a
/// time (second open() throws).
class trace_writer {
public:
    [[nodiscard]] static trace_writer& instance();

    /// Start tracing into `file` (truncating it) and spawn the drain thread.
    void open(const std::filesystem::path& file);
    /// Flush everything queued, join the drain thread, close the file.
    /// Idempotent. Throws if the drain thread hit a write error.
    void close();

    /// Fast global check for producers: gate all event construction on this.
    [[nodiscard]] static bool enabled() noexcept;

    /// Enqueue one complete JSON object line (no trailing newline).
    /// Silently drops when tracing is off, so call sites may skip the
    /// enabled() check when they already built the line for other reasons.
    void emit(std::string line);

    ~trace_writer();
    trace_writer(const trace_writer&) = delete;
    trace_writer& operator=(const trace_writer&) = delete;

private:
    trace_writer() = default;
    void drain_loop();

    std::mutex mu_;
    std::condition_variable wake_;
    std::deque<std::string> queue_;
    std::thread drain_;
    std::filesystem::path file_;
    bool closing_{false};
    std::string error_;  // first drain-thread write failure
};

/// Shorthands for producer code.
[[nodiscard]] inline bool trace_enabled() noexcept { return trace_writer::enabled(); }
inline void trace_emit(std::string line) {
    trace_writer::instance().emit(std::move(line));
}

/// Honor the observability environment: $REPRO_TRACE=file opens the trace,
/// $REPRO_METRICS (any non-empty value but "0") enables timing collection
/// and prints the metrics summary to stderr at process exit. Call once from
/// main() or a shared entry point (bench_util does); extra calls are no-ops.
void init_from_env();

/// Human-oriented counters + gauges + stage-timer table (the
/// --metrics-summary output). Gauges and timers are listed only when
/// non-empty.
void write_metrics_summary(std::ostream& os);

// ---------------------------------------------------------------------------
// Trace consumption: parsing, canonicalization (--from-trace, tests, CI).

using trace_value = std::variant<std::string, double>;
using trace_event = std::map<std::string, trace_value>;

/// Parse one flat JSON object line of the schema this writer emits.
/// Throws std::runtime_error (with `context` in the message) on anything
/// malformed — the CI trace validator relies on that.
[[nodiscard]] trace_event parse_trace_line(std::string_view line,
                                           const std::string& context = {});

/// Read a whole JSONL trace file. Empty lines are rejected (the writer
/// never produces them).
[[nodiscard]] std::vector<trace_event> read_trace_file(
    const std::filesystem::path& file);

/// Keys whose values are wall-clock/scheduling facts rather than workload
/// facts: "ts", "dur_s", "thread". Stripped before any determinism compare.
[[nodiscard]] bool is_volatile_trace_key(std::string_view key) noexcept;

/// Canonical form of one event: volatile keys dropped, remaining keys
/// serialized in sorted order. Two runs of the same seed produce the same
/// multiset of canonical lines at any job count.
[[nodiscard]] std::string canonical_trace_line(const trace_event& ev);

/// Canonicalize and sort a whole trace file — the byte sequence the
/// determinism tests compare across job counts.
[[nodiscard]] std::vector<std::string> canonical_trace_lines(
    const std::filesystem::path& file);

}  // namespace tcppred::obs
