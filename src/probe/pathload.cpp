#include "probe/pathload.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"
#include "obs/counters.hpp"

namespace tcppred::probe {

namespace {

double median_of(std::vector<double> v) {
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
        const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
        m = 0.5 * (m + lo);
    }
    return m;
}

}  // namespace

owd_trend classify_trend(const std::vector<double>& owds) {
    if (owds.size() < 6) return owd_trend::ambiguous;

    // Group medians: Γ = sqrt(K) groups, as in pathload.
    const auto groups = static_cast<std::size_t>(std::sqrt(static_cast<double>(owds.size())));
    const std::size_t per_group = owds.size() / groups;
    std::vector<double> medians;
    medians.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
        const auto begin = owds.begin() + static_cast<std::ptrdiff_t>(g * per_group);
        const auto end = (g + 1 == groups) ? owds.end()
                                           : begin + static_cast<std::ptrdiff_t>(per_group);
        medians.push_back(median_of(std::vector<double>(begin, end)));
    }
    if (medians.size() < 3) return owd_trend::ambiguous;

    // PCT: fraction of consecutive increases.
    std::size_t increases = 0;
    double abs_diff_sum = 0.0;
    for (std::size_t i = 1; i < medians.size(); ++i) {
        if (medians[i] > medians[i - 1]) ++increases;
        abs_diff_sum += std::abs(medians[i] - medians[i - 1]);
    }
    const double pct =
        static_cast<double>(increases) / static_cast<double>(medians.size() - 1);
    // PDT: net increase relative to total variation.
    const double pdt =
        abs_diff_sum > 0.0 ? (medians.back() - medians.front()) / abs_diff_sum : 0.0;

    const bool pct_up = pct > 0.66;
    const bool pct_down = pct < 0.54;
    const bool pdt_up = pdt > 0.55;
    const bool pdt_down = pdt < 0.45;
    if (pct_up || pdt_up) {
        if (!(pct_down || pdt_down)) return owd_trend::increasing;
        return owd_trend::ambiguous;
    }
    if (pct_down && pdt_down) return owd_trend::non_increasing;
    return owd_trend::ambiguous;
}

pathload::pathload(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
                   pathload_config cfg)
    : sched_(&sched),
      path_(&path),
      flow_(flow),
      cfg_(cfg),
      low_(cfg.min_rate.value()),
      high_(cfg.max_rate.value()) {
    TCPPRED_EXPECTS(cfg_.min_rate.value() > 0.0);
    TCPPRED_EXPECTS(cfg_.max_rate >= cfg_.min_rate);
    TCPPRED_EXPECTS(cfg_.inter_stream_gap.value() >= 0.0);
    path_->on_deliver_forward(flow_, [this](net::packet p) {
        ++stream_received_;
        stream_owds_.push_back(sched_->now() - p.sent_at);
    });
}

pathload::~pathload() {
    sched_->cancel(chain_event_);
    path_->on_deliver_forward(flow_, nullptr);
}

void pathload::start(std::function<void(const probe_result<pathload_result>&)> on_done) {
    on_done_ = std::move(on_done);
    send_stream(0.5 * (low_ + high_));
}

void pathload::send_stream(double rate_bps) {
    current_rate_ = rate_bps;
    stream_received_ = 0;
    stream_owds_.clear();
    ++streams_sent_;
    const double spacing = static_cast<double>(cfg_.packet_bytes) * 8.0 / rate_bps;
    emit_packet(0, cfg_.stream_packets, spacing);
}

void pathload::emit_packet(std::uint32_t index, std::uint32_t total, double spacing) {
    net::packet p;
    p.flow = flow_;
    p.kind = net::packet_kind::probe;
    p.size_bytes = cfg_.packet_bytes;
    p.seq = index;
    p.sent_at = sched_->now();
    path_->send_forward(p);

    if (index + 1 < total) {
        chain_event_ = sched_->schedule_in(spacing, [this, index, total, spacing] {
            emit_packet(index + 1, total, spacing);
        });
    } else {
        // Allow the tail of the stream (and any queue we built) to land.
        chain_event_ = sched_->schedule_in(cfg_.inter_stream_gap.value() + 4.0 * spacing,
                                           [this] { conclude_stream(); });
    }
}

void pathload::conclude_stream() {
    // Injected non-convergence: the tool keeps probing (spending real
    // measurement time, as the paper's failed runs did) but its verdicts
    // never tighten the bracket, so it exhausts the stream budget and fails.
    if (cfg_.fault_nonconvergence) {
        if (streams_sent_ >= cfg_.max_streams) {
            finish();
            return;
        }
        send_stream(0.5 * (low_ + high_));
        return;
    }
    const double lost_fraction =
        1.0 - static_cast<double>(stream_received_) / static_cast<double>(cfg_.stream_packets);

    owd_trend trend;
    if (lost_fraction > cfg_.loss_fraction_increasing) {
        trend = owd_trend::increasing;  // the stream itself overloaded the path
    } else {
        trend = classify_trend(stream_owds_);
    }

    switch (trend) {
        case owd_trend::increasing:
            high_ = current_rate_;
            break;
        case owd_trend::non_increasing:
            low_ = current_rate_;
            break;
        case owd_trend::ambiguous:
            // Grey region: bias the bracket conservatively downward, as
            // pathload shrinks its grey window.
            high_ = 0.5 * (high_ + current_rate_);
            break;
    }

    const bool converged = (high_ - low_) / std::max(high_, 1.0) < cfg_.resolution_fraction;
    if (converged || streams_sent_ >= cfg_.max_streams || high_ <= low_) {
        finish();
        return;
    }
    send_stream(0.5 * (low_ + high_));
}

void pathload::finish() {
    done_ = true;
    pathload_result& m = result_.measurement;
    m.low_bps = low_;
    m.high_bps = std::max(high_, low_);
    m.streams_used = streams_sent_;
    result_.status =
        cfg_.fault_nonconvergence ? probe_status::failed : probe_status::ok;

    static const obs::counter c_runs = obs::counter::get("probe.pathload_runs");
    static const obs::counter c_streams = obs::counter::get("probe.pathload_streams");
    static const obs::counter c_failed =
        obs::counter::get("probe.pathload_nonconverged");
    c_runs.add();
    c_streams.add(static_cast<std::uint64_t>(streams_sent_));
    if (result_.status == probe_status::failed) c_failed.add();

    if (on_done_) on_done_(result_);
}

}  // namespace tcppred::probe
