#include "probe/bulk_transfer.hpp"

#include "core/contracts.hpp"

namespace tcppred::probe {

bulk_transfer::bulk_transfer(sim::scheduler& sched, net::conduit& conduit,
                             net::flow_id flow, core::seconds duration,
                             tcp::tcp_config cfg)
    : sched_(&sched),
      duration_s_(duration.value()),
      conn_(std::make_unique<tcp::tcp_connection>(sched, conduit, flow, cfg)) {
    TCPPRED_EXPECTS(duration_s_ > 0.0);
}

bulk_transfer::~bulk_transfer() {
    for (const auto h : pending_events_) sched_->cancel(h);
}

void bulk_transfer::add_prefix_checkpoints(const std::vector<double>& prefixes) {
    prefixes_.insert(prefixes_.end(), prefixes.begin(), prefixes.end());
}

void bulk_transfer::start(std::function<void(const transfer_result&)> on_done) {
    on_done_ = std::move(on_done);
    const double t0 = sched_->now();

    for (const double prefix : prefixes_) {
        pending_events_.push_back(sched_->schedule_in(prefix, [this, prefix] {
            const double goodput =
                static_cast<double>(conn_->sender().acked_bytes()) * 8.0 / prefix;
            result_.prefix_goodput_bps.emplace_back(prefix, goodput);
        }));
    }

    conn_->start();
    pending_events_.push_back(sched_->schedule_in(duration_s_, [this, t0] {
        conn_->quiesce();
        done_ = true;
        result_.duration_s = sched_->now() - t0;
        result_.bytes = conn_->sender().acked_bytes();
        // A transfer that delivered nothing still "measured" a throughput of
        // less than one segment per lifetime; report that floor instead of a
        // hard zero so downstream relative errors stay finite.
        if (result_.bytes == 0) result_.bytes = conn_->sender().config().mss_bytes;
        result_.tcp_stats = conn_->sender().stats();
        if (on_done_) on_done_(result_);
    }));
}

}  // namespace tcppred::probe
