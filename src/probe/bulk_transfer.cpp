#include "probe/bulk_transfer.hpp"

#include <algorithm>

#include "core/contracts.hpp"
#include "obs/counters.hpp"

namespace tcppred::probe {

bulk_transfer::bulk_transfer(sim::scheduler& sched, net::conduit& conduit,
                             net::flow_id flow, core::seconds duration,
                             tcp::tcp_config cfg)
    : sched_(&sched),
      duration_s_(duration.value()),
      conn_(std::make_unique<tcp::tcp_connection>(sched, conduit, flow, cfg)) {
    TCPPRED_EXPECTS(duration_s_ > 0.0);
}

bulk_transfer::~bulk_transfer() {
    for (const auto h : pending_events_) sched_->cancel(h);
}

void bulk_transfer::add_prefix_checkpoints(const std::vector<double>& prefixes) {
    prefixes_.insert(prefixes_.end(), prefixes.begin(), prefixes.end());
}

void bulk_transfer::set_fault_abort(core::seconds at) {
    TCPPRED_EXPECTS(at.value() > 0.0);
    abort_at_s_ = at.value() < duration_s_ ? at.value() : 0.0;
}

void bulk_transfer::start(std::function<void(const probe_result<transfer_result>&)> on_done) {
    on_done_ = std::move(on_done);
    const double t0 = sched_->now();

    for (const double prefix : prefixes_) {
        // Prefixes past an injected abort never materialize: the flow is
        // gone before the checkpoint fires.
        if (abort_at_s_ > 0.0 && prefix >= abort_at_s_) continue;
        pending_events_.push_back(sched_->schedule_in(prefix, [this, prefix] {
            const double goodput =
                static_cast<double>(conn_->sender().acked_bytes()) * 8.0 / prefix;
            result_.measurement.prefix_goodput_bps.emplace_back(prefix, goodput);
        }));
    }

    conn_->start();
    const double lifetime = abort_at_s_ > 0.0 ? abort_at_s_ : duration_s_;
    pending_events_.push_back(sched_->schedule_in(
        lifetime, [this, t0] { finalize(t0, abort_at_s_ > 0.0); }));
}

void bulk_transfer::finalize(double t0, bool aborted) {
    conn_->quiesce();
    done_ = true;
    transfer_result& m = result_.measurement;
    m.duration_s = sched_->now() - t0;
    m.bytes = conn_->sender().acked_bytes();
    // A transfer that delivered nothing still "measured" a throughput of
    // less than one segment per lifetime; report that floor instead of a
    // hard zero so downstream relative errors stay finite.
    if (m.bytes == 0) m.bytes = conn_->sender().config().mss_bytes;
    m.tcp_stats = conn_->sender().stats();
    m.aborted = aborted;
    result_.status = aborted ? probe_status::degraded : probe_status::ok;

    static const obs::counter c_transfers = obs::counter::get("probe.transfers");
    static const obs::counter c_aborted = obs::counter::get("probe.transfers_aborted");
    c_transfers.add();
    if (aborted) c_aborted.add();

    if (on_done_) on_done_(result_);
}

}  // namespace tcppred::probe
