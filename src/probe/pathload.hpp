// SLoPS available-bandwidth estimator in the style of pathload
// (Jain & Dovrolis): send constant-rate packet streams, decide from the
// one-way-delay trend whether the stream rate exceeds the avail-bw, and
// binary-search the rate until the bracket is tight or the stream budget is
// exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "net/path.hpp"
#include "probe/probe_result.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::probe {

/// Trend of one-way delays within a probing stream.
enum class owd_trend { increasing, non_increasing, ambiguous };

/// Pairwise Comparison Test / Pairwise Difference Test verdict on a series
/// of one-way delays (applied to per-group medians, as in pathload).
/// Exposed for unit testing.
[[nodiscard]] owd_trend classify_trend(const std::vector<double>& owds);

/// Result of an avail-bw estimation run.
struct pathload_result {
    double low_bps{0.0};    ///< final bracket lower bound
    double high_bps{0.0};   ///< final bracket upper bound
    int streams_used{0};

    /// Point estimate Â: the bracket midpoint.
    [[nodiscard]] core::bits_per_second estimate() const noexcept {
        return core::bits_per_second{0.5 * (low_bps + high_bps)};
    }
};

/// Iterative SLoPS measurement over a duplex path.
/// SLoPS measurement parameters.
struct pathload_config {
    core::bits_per_second min_rate{50e3};
    core::bits_per_second max_rate{12e6};  ///< upper bound of the search bracket
    std::uint32_t stream_packets{60};
    std::uint32_t packet_bytes{600};
    int max_streams{10};
    double resolution_fraction{0.08};///< stop when (high-low)/high below this
    core::seconds inter_stream_gap{0.10};  ///< drain time between streams
    double loss_fraction_increasing{0.10};///< stream loss that implies rate > avail-bw
    /// Injected measurement fault: the run spends its full stream budget but
    /// never converges (the bracket never tightens), mirroring the paper's
    /// pathload failures on loaded paths. The outcome is `failed` and the
    /// estimate must be treated as missing.
    bool fault_nonconvergence{false};
};

class pathload {
public:
    pathload(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
             pathload_config cfg = {});

    /// Cancels the pending stream event and unregisters from the path.
    ~pathload();

    /// Start measuring; `on_done` fires with the converged (or failed)
    /// outcome.
    void start(std::function<void(const probe_result<pathload_result>&)> on_done = nullptr);

    [[nodiscard]] bool done() const noexcept { return done_; }
    [[nodiscard]] const probe_result<pathload_result>& result() const noexcept {
        return result_;
    }

private:
    void send_stream(double rate_bps);
    void emit_packet(std::uint32_t index, std::uint32_t total, double spacing);
    void conclude_stream();
    void finish();

    sim::scheduler* sched_;
    net::duplex_path* path_;
    net::flow_id flow_;
    pathload_config cfg_;
    std::function<void(const probe_result<pathload_result>&)> on_done_;

    sim::event_handle chain_event_{};
    double low_;
    double high_;
    double current_rate_{0.0};
    int streams_sent_{0};
    std::uint32_t stream_received_{0};
    std::vector<double> stream_owds_;
    bool done_{false};
    probe_result<pathload_result> result_{};
};

}  // namespace tcppred::probe
