// Periodic small-packet RTT / loss-rate prober — the "homespun ping utility"
// of the paper (§4.1): a 41-byte probe every fixed interval, echoed by the
// far end over the reverse path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "net/path.hpp"
#include "probe/probe_result.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::probe {

/// Outcome of a probing session.
struct ping_result {
    std::uint64_t sent{0};
    std::uint64_t received{0};
    std::vector<double> rtts;  ///< RTT of each answered probe, seconds
    /// Per-probe outcome by sequence number (1 = echoed, 0 = lost) -- the
    /// input to loss-event collapsing (core/loss_events.hpp).
    std::vector<std::uint8_t> outcomes;
    /// Probes that never reached the path because an injected measurement
    /// fault swallowed them (they still count as sent/lost above, exactly
    /// like a real echo timeout would).
    std::uint64_t injected_timeouts{0};
    /// True when the session was cut short by an injected fault, so the
    /// sample counts are below the configured count.
    bool truncated{false};

    /// Loss fraction among probes sent (p̂ or p̃ in the paper).
    [[nodiscard]] core::probability loss_rate() const {
        return core::probability{
            sent == 0 ? 0.0
                      : 1.0 - static_cast<double>(received) / static_cast<double>(sent)};
    }
    /// Mean RTT of answered probes (T̂ or T̃).
    [[nodiscard]] core::seconds mean_rtt() const noexcept {
        if (rtts.empty()) return core::seconds{0.0};
        double s = 0.0;
        for (const double r : rtts) s += r;
        return core::seconds{s / static_cast<double>(rtts.size())};
    }
};

/// Sends `count` probes spaced `interval` apart and collects echoes.
/// A probe with no echo after `reply_timeout` counts as lost. `finish()`
/// fires once the last probe is either answered or timed out.
/// Probing-session parameters.
struct ping_config {
    core::seconds interval{0.015};
    std::uint64_t count{400};
    core::seconds reply_timeout{2.0};
    std::uint32_t probe_bytes{net::ping_probe_bytes};
    /// Injected measurement faults (sim/fault_injector.hpp plan, resolved by
    /// the epoch runner). `timeout_rate` > 0 makes individual probes vanish
    /// before reaching the path (deterministic per `fault_seed`);
    /// `truncate_at` > 0 ends the session after that many probes.
    double fault_timeout_rate{0.0};
    std::uint64_t fault_seed{0};
    std::uint64_t fault_truncate_at{0};  ///< 0 = send all `count` probes
};

class ping_prober {
public:
    ping_prober(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
                ping_config cfg = {});

    /// Cancels all pending probe/timeout events and unregisters from the
    /// path: a prober is safe to destroy at any point of the simulation.
    ~ping_prober();

    /// Begin probing now; `on_done` fires when the session completes. The
    /// outcome is `degraded` when any injected fault touched the session.
    void start(std::function<void(const probe_result<ping_result>&)> on_done = nullptr);

    [[nodiscard]] bool done() const noexcept { return done_; }
    [[nodiscard]] const probe_result<ping_result>& result() const noexcept {
        return result_;
    }

private:
    void send_probe();
    void check_done();

    sim::scheduler* sched_;
    net::duplex_path* path_;
    net::flow_id flow_;
    ping_config cfg_;
    std::function<void(const probe_result<ping_result>&)> on_done_;

    struct pending {
        double sent_at{0.0};
        sim::event_handle timeout{};
        bool outstanding{false};
    };
    /// Direct-indexed by probe sequence number (sequential from 0), replacing
    /// the per-probe hash-map find/erase on the echo path; bounded by
    /// cfg_.count entries per session.
    std::vector<pending> outstanding_;
    sim::event_handle next_probe_event_{};
    std::optional<sim::rng> fault_rng_;
    std::uint64_t next_seq_{0};
    std::uint64_t resolved_{0};  ///< answered or timed out
    bool sending_done_{false};
    bool done_{false};
    probe_result<ping_result> result_{};
};

}  // namespace tcppred::probe
