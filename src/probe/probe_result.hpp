// Typed outcome wrapper for measurement tools.
//
// On the real testbed measurements failed routinely (pathload
// non-convergence, probe timeouts, aborted transfers), so no consumer may
// assume success: every prober completes with a probe_result<T> that couples
// the gathered data with an explicit status, and the epoch runner translates
// non-ok outcomes into flagged / missing record fields instead of bogus
// numbers.
#pragma once

#include <cstdint>
#include <string_view>

namespace tcppred::probe {

/// How a measurement session ended.
enum class probe_status : std::uint8_t {
    ok,        ///< completed normally; measurement fully trustworthy
    degraded,  ///< completed with injected faults (partial samples, extra
               ///< timeouts); measurement usable but suspect
    failed,    ///< did not produce a usable measurement (e.g. pathload never
               ///< converged); measurement must be treated as missing
};

[[nodiscard]] constexpr std::string_view to_string(probe_status s) noexcept {
    switch (s) {
        case probe_status::ok: return "ok";
        case probe_status::degraded: return "degraded";
        case probe_status::failed: return "failed";
    }
    return "?";
}

/// A measurement plus the status under which it was produced. The
/// measurement is always populated with whatever the session gathered —
/// `failed` means it must not be trusted, not that it is absent (partial
/// data still informs diagnostics).
template <class T>
struct probe_result {
    T measurement{};
    probe_status status{probe_status::ok};

    [[nodiscard]] bool ok() const noexcept { return status == probe_status::ok; }
    /// Usable = ok or degraded; failed measurements are missing data.
    [[nodiscard]] bool usable() const noexcept { return status != probe_status::failed; }

    [[nodiscard]] const T& operator*() const noexcept { return measurement; }
    [[nodiscard]] const T* operator->() const noexcept { return &measurement; }
};

}  // namespace tcppred::probe
