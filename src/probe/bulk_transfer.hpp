// IPerf-like bulk TCP transfer: run a Reno connection for a fixed duration
// and report its average goodput, plus goodput over prefixes of its
// lifetime (used by the paper's transfer-length experiment, Fig. 11).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/units.hpp"
#include "net/path.hpp"
#include "probe/probe_result.hpp"
#include "sim/scheduler.hpp"
#include "tcp/tcp.hpp"

namespace tcppred::probe {

/// Result of a timed bulk transfer.
struct transfer_result {
    double duration_s{0.0};
    std::uint64_t bytes{0};
    /// (prefix length, goodput over that prefix) pairs, in request order.
    std::vector<std::pair<double, double>> prefix_goodput_bps;
    tcp::sender_stats tcp_stats;
    /// True when the transfer was cut short by an injected abort; goodput is
    /// then averaged over the shorter actual lifetime.
    bool aborted{false};

    /// Average goodput over the whole transfer (R in the paper).
    [[nodiscard]] core::bits_per_second goodput() const noexcept {
        return core::bits_per_second{
            duration_s > 0.0 ? static_cast<double>(bytes) * 8.0 / duration_s : 0.0};
    }
};

/// Runs one timed bulk transfer over a conduit.
class bulk_transfer {
public:
    bulk_transfer(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
                  core::seconds duration, tcp::tcp_config cfg = {});

    /// Cancels the checkpoint/end events: safe to destroy mid-transfer.
    ~bulk_transfer();

    /// Request goodput checkpoints at the given prefix lengths (seconds from
    /// start; must be called before start()).
    void add_prefix_checkpoints(const std::vector<double>& prefixes);

    /// Inject an abort `at` seconds after start (sender host crash, control
    /// connection lost): the transfer ends there with status `degraded` and
    /// `aborted` set. Must be called before start(); values >= the configured
    /// duration are ignored.
    void set_fault_abort(core::seconds at);

    /// Begin the transfer now; `on_done` fires when the duration elapses (or
    /// the injected abort cuts it short).
    void start(std::function<void(const probe_result<transfer_result>&)> on_done = nullptr);

    [[nodiscard]] bool done() const noexcept { return done_; }
    [[nodiscard]] const probe_result<transfer_result>& result() const noexcept {
        return result_;
    }
    [[nodiscard]] tcp::tcp_connection& connection() noexcept { return *conn_; }

private:
    void finalize(double t0, bool aborted);

    sim::scheduler* sched_;
    double duration_s_;
    double abort_at_s_{0.0};  ///< 0 = no injected abort
    std::unique_ptr<tcp::tcp_connection> conn_;
    std::vector<double> prefixes_;
    std::vector<sim::event_handle> pending_events_;
    std::function<void(const probe_result<transfer_result>&)> on_done_;
    bool done_{false};
    probe_result<transfer_result> result_{};
};

}  // namespace tcppred::probe
