#include "probe/ping_prober.hpp"

#include "core/contracts.hpp"
#include "obs/counters.hpp"

namespace tcppred::probe {

ping_prober::ping_prober(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
                         ping_config cfg)
    : sched_(&sched), path_(&path), flow_(flow), cfg_(cfg) {
    TCPPRED_EXPECTS(cfg_.interval.value() > 0.0);
    TCPPRED_EXPECTS(cfg_.reply_timeout.value() > 0.0);
    TCPPRED_EXPECTS(cfg_.fault_timeout_rate >= 0.0 && cfg_.fault_timeout_rate <= 1.0);
    if (cfg_.fault_timeout_rate > 0.0) fault_rng_.emplace(cfg_.fault_seed);
    // Far end: echo every probe back over the reverse path.
    path_->on_deliver_forward(flow_, [this](net::packet p) {
        net::packet echo = p;
        echo.kind = net::packet_kind::probe_reply;
        path_->send_reverse(echo);
    });
    // Near end: match echoes against outstanding probes.
    path_->on_deliver_reverse(flow_, [this](net::packet p) {
        if (p.seq >= outstanding_.size()) return;
        pending& entry = outstanding_[p.seq];
        if (!entry.outstanding) return;  // echo arrived after timeout
        entry.outstanding = false;
        ping_result& session = result_.measurement;
        session.rtts.push_back(sched_->now() - entry.sent_at);
        ++session.received;
        if (p.seq < session.outcomes.size()) session.outcomes[p.seq] = 1;
        sched_->cancel(entry.timeout);
        ++resolved_;
        check_done();
    });
}

ping_prober::~ping_prober() {
    sched_->cancel(next_probe_event_);
    for (pending& p : outstanding_) {
        if (p.outstanding) sched_->cancel(p.timeout);
    }
    path_->on_deliver_forward(flow_, nullptr);
    path_->on_deliver_reverse(flow_, nullptr);
}

void ping_prober::start(std::function<void(const probe_result<ping_result>&)> on_done) {
    on_done_ = std::move(on_done);
    send_probe();
}

void ping_prober::send_probe() {
    // Injected truncation: the session dies early (the real tool's SSH
    // channel dropped, its host rebooted, ...), leaving partial samples.
    const std::uint64_t budget =
        cfg_.fault_truncate_at > 0 && cfg_.fault_truncate_at < cfg_.count
            ? cfg_.fault_truncate_at
            : cfg_.count;
    if (next_seq_ >= budget) {
        if (budget < cfg_.count) result_.measurement.truncated = true;
        sending_done_ = true;
        check_done();
        return;
    }
    const std::uint64_t seq = next_seq_++;
    ping_result& session = result_.measurement;
    TCPPRED_ASSERT(seq == outstanding_.size());  // sequence numbers are dense
    pending& entry = outstanding_.emplace_back();
    entry.outstanding = true;
    entry.sent_at = sched_->now();
    ++session.sent;
    if (session.outcomes.size() <= seq) session.outcomes.resize(seq + 1, 0);

    // An injected timeout swallows the probe before it reaches the path —
    // indistinguishable from a real no-echo at the measuring end.
    const bool swallowed = fault_rng_ && fault_rng_->chance(cfg_.fault_timeout_rate);
    if (swallowed) {
        ++session.injected_timeouts;
    } else {
        net::packet p;
        p.flow = flow_;
        p.kind = net::packet_kind::probe;
        p.size_bytes = cfg_.probe_bytes;
        p.seq = seq;
        p.sent_at = sched_->now();
        path_->send_forward(p);
    }

    entry.timeout = sched_->schedule_in(cfg_.reply_timeout.value(), [this, seq] {
        pending& out = outstanding_[seq];
        if (out.outstanding) {
            out.outstanding = false;
            ++resolved_;  // timed out: lost
            check_done();
        }
    });
    next_probe_event_ = sched_->schedule_in(cfg_.interval.value(), [this] { send_probe(); });
}

void ping_prober::check_done() {
    const std::uint64_t expected = sending_done_ ? result_.measurement.sent : cfg_.count;
    if (done_ || !sending_done_ || resolved_ < expected) return;
    done_ = true;
    const ping_result& session = result_.measurement;
    result_.status = session.injected_timeouts > 0 || session.truncated
                         ? probe_status::degraded
                         : probe_status::ok;

    // Aggregated once per session (not per probe) so the hot send path stays
    // untouched; all of these are seed-derived logical quantities.
    static const obs::counter c_sessions = obs::counter::get("probe.ping_sessions");
    static const obs::counter c_sent = obs::counter::get("probe.ping_probes_sent");
    static const obs::counter c_recv = obs::counter::get("probe.ping_replies");
    static const obs::counter c_injected =
        obs::counter::get("probe.ping_injected_timeouts");
    static const obs::counter c_truncated =
        obs::counter::get("probe.ping_sessions_truncated");
    c_sessions.add();
    c_sent.add(session.sent);
    c_recv.add(session.received);
    if (session.injected_timeouts > 0) c_injected.add(session.injected_timeouts);
    if (session.truncated) c_truncated.add();

    if (on_done_) on_done_(result_);
}

}  // namespace tcppred::probe
