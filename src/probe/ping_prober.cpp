#include "probe/ping_prober.hpp"

#include "core/contracts.hpp"

namespace tcppred::probe {

ping_prober::ping_prober(sim::scheduler& sched, net::duplex_path& path, net::flow_id flow,
                         ping_config cfg)
    : sched_(&sched), path_(&path), flow_(flow), cfg_(cfg) {
    TCPPRED_EXPECTS(cfg_.interval.value() > 0.0);
    TCPPRED_EXPECTS(cfg_.reply_timeout.value() > 0.0);
    // Far end: echo every probe back over the reverse path.
    path_->on_deliver_forward(flow_, [this](net::packet p) {
        net::packet echo = p;
        echo.kind = net::packet_kind::probe_reply;
        path_->send_reverse(echo);
    });
    // Near end: match echoes against outstanding probes.
    path_->on_deliver_reverse(flow_, [this](net::packet p) {
        auto it = outstanding_.find(p.seq);
        if (it == outstanding_.end()) return;  // echo arrived after timeout
        result_.rtts.push_back(sched_->now() - it->second.sent_at);
        ++result_.received;
        if (p.seq < result_.outcomes.size()) result_.outcomes[p.seq] = 1;
        sched_->cancel(it->second.timeout);
        outstanding_.erase(it);
        ++resolved_;
        check_done();
    });
}

ping_prober::~ping_prober() {
    sched_->cancel(next_probe_event_);
    for (auto& [seq, p] : outstanding_) sched_->cancel(p.timeout);
    path_->on_deliver_forward(flow_, nullptr);
    path_->on_deliver_reverse(flow_, nullptr);
}

void ping_prober::start(std::function<void(const ping_result&)> on_done) {
    on_done_ = std::move(on_done);
    send_probe();
}

void ping_prober::send_probe() {
    if (next_seq_ >= cfg_.count) {
        sending_done_ = true;
        check_done();
        return;
    }
    const std::uint64_t seq = next_seq_++;
    net::packet p;
    p.flow = flow_;
    p.kind = net::packet_kind::probe;
    p.size_bytes = cfg_.probe_bytes;
    p.seq = seq;
    p.sent_at = sched_->now();
    pending& entry = outstanding_[seq];
    entry.sent_at = sched_->now();
    ++result_.sent;
    if (result_.outcomes.size() <= seq) result_.outcomes.resize(seq + 1, 0);
    path_->send_forward(p);

    entry.timeout = sched_->schedule_in(cfg_.reply_timeout.value(), [this, seq] {
        if (outstanding_.erase(seq) > 0) {
            ++resolved_;  // timed out: lost
            check_done();
        }
    });
    next_probe_event_ = sched_->schedule_in(cfg_.interval.value(), [this] { send_probe(); });
}

void ping_prober::check_done() {
    if (done_ || !sending_done_ || resolved_ < cfg_.count) return;
    done_ = true;
    if (on_done_) on_done_(result_);
}

}  // namespace tcppred::probe
