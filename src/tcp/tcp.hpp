// TCP Reno over the simulator: sender (slow start, congestion avoidance,
// fast retransmit / fast recovery, RTO estimation with Karn's algorithm and
// exponential backoff, receiver-window limiting) and receiver (cumulative
// ACKs, delayed ACKs, out-of-order buffering).
//
// Sequence numbers are counted in whole MSS-sized segments — the granularity
// at which Reno's control loop and the PFTK model both operate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "net/path.hpp"
#include "sim/scheduler.hpp"

namespace tcppred::tcp {

/// Loss-recovery flavour of the sender.
enum class tcp_variant {
    tahoe,    ///< no fast recovery: any loss indication slow-starts from 1
    newreno,  ///< fast retransmit + NewReno partial-ACK recovery (default)
    sack,     ///< selective acknowledgements with pipe-style recovery
};

/// Tuning parameters; defaults follow RFC 5681 / RFC 6298 and the
/// paper-era conventions (1 s minimum RTO, delayed ACKs with b = 2).
struct tcp_config {
    tcp_variant variant{tcp_variant::newreno};
    std::uint32_t mss_bytes{1460};          ///< segment payload (M in the paper)
    std::uint64_t max_window_bytes{1 << 20};///< receiver advertised window (W)
    std::uint32_t init_cwnd_segments{2};
    /// Initial slow-start threshold in segments; 0 = unlimited (blind Reno).
    /// Real stacks cache ssthresh per destination, which bounds the first
    /// slow-start overshoot on repeat paths — the testbed uses that.
    std::uint64_t initial_ssthresh_segments{0};
    std::uint32_t dupack_threshold{3};
    double initial_rto_s{1.0};
    double min_rto_s{0.2};                  ///< Linux-style floor (RFC says 1 s)
    double max_rto_s{60.0};
    /// Cap on consecutive RTO doublings (2^n). The protocol value is ~6
    /// (64x); the testbed uses 2 (4x) to compensate for its compressed
    /// transfer durations — a 10 s transfer must not lose its whole
    /// lifetime to a backoff spiral a 50 s transfer would amortize.
    std::uint32_t max_rto_backoff{6};
    bool delayed_ack{true};                 ///< ACK every b = 2 segments
    double delack_timeout_s{0.1};
};

/// Counters and samples a finished (or running) sender exposes. These feed
/// the throughput measurements and the TCP-sampling ablation (§3.3).
struct sender_stats {
    std::uint64_t segments_sent{0};          ///< transmissions incl. retransmits
    std::uint64_t segments_delivered{0};     ///< cumulative-ACK progress
    std::uint64_t retransmits{0};
    std::uint64_t timeouts{0};
    std::uint64_t fast_recoveries{0};
    /// Loss events as TCP perceives them (fast recovery entries + timeouts):
    /// the "congestion events" whose probability p' PFTK actually wants.
    [[nodiscard]] std::uint64_t congestion_events() const noexcept {
        return timeouts + fast_recoveries;
    }
    std::vector<double> rtt_samples;         ///< RTTs measured by TCP itself
};

/// TCP Reno sender with an infinite (bulk) data source.
class tcp_sender {
public:
    tcp_sender(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
               tcp_config cfg = {});

    tcp_sender(const tcp_sender&) = delete;
    tcp_sender& operator=(const tcp_sender&) = delete;
    /// Cancels pending timers and unregisters from the conduit: a sender is
    /// safe to destroy while the simulation continues.
    ~tcp_sender();

    /// Open the connection and start transmitting immediately.
    void start();
    /// Stop offering new data. In-flight data may still be retransmitted
    /// until `quiesce()`.
    void stop();
    /// Hard-stop: cancel timers, send nothing further.
    void quiesce();

    [[nodiscard]] bool active() const noexcept { return active_; }
    [[nodiscard]] const sender_stats& stats() const noexcept { return stats_; }

    /// Payload bytes delivered (cumulatively ACKed) so far.
    [[nodiscard]] std::uint64_t acked_bytes() const noexcept {
        return snd_una_ * cfg_.mss_bytes;
    }
    [[nodiscard]] core::seconds smoothed_rtt() const noexcept {
        return core::seconds{srtt_};
    }
    [[nodiscard]] double current_rto() const noexcept { return rto_; }
    [[nodiscard]] double cwnd_segments() const noexcept { return cwnd_; }
    [[nodiscard]] const tcp_config& config() const noexcept { return cfg_; }

    /// Deliver an ACK packet (wired by tcp_connection).
    void on_ack(const net::packet& p);

private:
    struct seg_meta {
        double send_time{0.0};
        bool retransmitted{false};
        bool sacked{false};            ///< selectively acknowledged (SACK)
        std::uint32_t retx_epoch{0};   ///< recovery episode of the last retransmit
    };

    [[nodiscard]] std::uint64_t flight() const noexcept { return next_seq_ - snd_una_; }
    [[nodiscard]] std::uint64_t usable_window() const noexcept;
    void try_send();
    void transmit(std::uint64_t seq);
    void enter_fast_recovery();
    void apply_sack_block(std::uint64_t begin, std::uint64_t end);
    void sack_send_during_recovery();
    [[nodiscard]] std::uint64_t sacked_count() const noexcept;
    void on_new_ack(std::uint64_t ack, std::uint64_t newly);
    void update_rtt(double sample);
    void arm_rto(double timeout_s);
    void disarm_rto();
    void schedule_rto_event(double when);
    void on_rto_event();
    [[nodiscard]] seg_meta& meta(std::uint64_t seq);
    /// Number of live metadata entries (segments in [snd_una_, next_seq_)).
    [[nodiscard]] std::size_t metas_live() const noexcept {
        return metas_.size() - metas_head_;
    }
    void metas_pop_front(std::size_t n);
    void metas_clear() noexcept {
        metas_.clear();
        metas_head_ = 0;
    }

    sim::scheduler* sched_;
    net::conduit* conduit_;
    net::flow_id flow_;
    tcp_config cfg_;

    bool active_{false};
    bool quiesced_{false};
    std::uint64_t snd_una_{0};      ///< lowest unacknowledged segment
    std::uint64_t next_seq_{0};     ///< next segment to transmit
    std::uint64_t max_seq_sent_{0}; ///< high-water mark: transmissions below it are retransmits
    /// Metadata for [snd_una_, next_seq_), stored flat: entry for seq lives
    /// at metas_[metas_head_ + (seq - snd_una_)]. ACK progress advances the
    /// head index; the vector is compacted (or cleared) amortized-O(1), so
    /// the per-ACK path never shifts elements or frees memory.
    std::vector<seg_meta> metas_;
    std::size_t metas_head_{0};

    double cwnd_{1.0};           ///< congestion window, segments (fractional in CA)
    double ssthresh_;
    std::uint64_t rwnd_segments_;
    std::uint32_t dupacks_{0};
    bool in_recovery_{false};
    std::uint64_t recover_point_{0};
    /// Fast-recovery window inflation (dupacks since the last partial ACK);
    /// kept separate from cwnd_ so recovery never permanently inflates it.
    std::uint64_t inflation_{0};
    std::uint32_t recovery_epoch_{0};   ///< id of the current recovery episode
    std::uint64_t highest_sacked_{0};

    double srtt_{0.0};
    double rttvar_{0.0};
    bool have_rtt_{false};
    double rto_;
    std::uint32_t backoff_{0};
    // Lazy RTO timer: re-arming per ACK only moves `rto_deadline_` forward;
    // the single scheduled event checks the deadline when it fires and
    // re-schedules itself for the remainder. This replaces a cancel +
    // schedule pair per ACK with plain stores (the common case).
    bool rto_armed_{false};
    bool rto_event_live_{false};  ///< an event is pending in the scheduler
    double rto_deadline_{0.0};
    double rto_event_when_{0.0};  ///< firing time of the pending event
    sim::event_handle rto_event_{};

    sender_stats stats_{};
};

/// TCP receiver: cumulative + delayed ACKs, out-of-order buffer.
class tcp_receiver {
public:
    tcp_receiver(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
                 tcp_config cfg = {});

    tcp_receiver(const tcp_receiver&) = delete;
    tcp_receiver& operator=(const tcp_receiver&) = delete;
    /// Cancels the delayed-ACK timer and unregisters from the conduit.
    ~tcp_receiver();

    /// Deliver a data packet (wired by tcp_connection).
    void on_data(const net::packet& p);

    [[nodiscard]] std::uint64_t next_expected() const noexcept { return rcv_next_; }
    [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }

private:
    void send_ack_now();
    void maybe_delay_ack();

    std::uint64_t last_arrival_{0};  ///< seq of the most recent data segment

    sim::scheduler* sched_;
    net::conduit* conduit_;
    net::flow_id flow_;
    tcp_config cfg_;

    std::uint64_t rcv_next_{0};
    /// Sorted unique seqs above rcv_next_ (a flat replacement for the old
    /// std::set: holes are few and short-lived, so sorted-vector insertion
    /// and run-scans beat node allocation on the per-segment path).
    std::vector<std::uint64_t> out_of_order_;
    std::uint32_t unacked_segments_{0};
    std::uint64_t delack_generation_{0};
    bool delack_armed_{false};
    sim::event_handle delack_event_{};
    std::uint64_t acks_sent_{0};
};

/// Wires a sender and a receiver across a conduit.
class tcp_connection {
public:
    tcp_connection(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
                   tcp_config cfg = {});

    void start() { sender_.start(); }
    void stop() { sender_.stop(); }
    void quiesce() { sender_.quiesce(); }

    [[nodiscard]] tcp_sender& sender() noexcept { return sender_; }
    [[nodiscard]] const tcp_sender& sender() const noexcept { return sender_; }
    [[nodiscard]] tcp_receiver& receiver() noexcept { return receiver_; }

private:
    tcp_sender sender_;
    tcp_receiver receiver_;
};

}  // namespace tcppred::tcp
