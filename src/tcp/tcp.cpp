#include "tcp/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "core/contracts.hpp"

namespace tcppred::tcp {

namespace {
constexpr double k_rtt_alpha = 1.0 / 8.0;  // RFC 6298 SRTT gain
constexpr double k_rtt_beta = 1.0 / 4.0;   // RFC 6298 RTTVAR gain
}  // namespace

tcp_sender::tcp_sender(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
                       tcp_config cfg)
    : sched_(&sched),
      conduit_(&conduit),
      flow_(flow),
      cfg_(cfg),
      cwnd_(static_cast<double>(cfg.init_cwnd_segments)),
      rto_(cfg.initial_rto_s) {
    rwnd_segments_ = std::max<std::uint64_t>(1, cfg_.max_window_bytes / cfg_.mss_bytes);
    ssthresh_ = static_cast<double>(
        cfg_.initial_ssthresh_segments > 0
            ? std::min(cfg_.initial_ssthresh_segments, rwnd_segments_)
            : rwnd_segments_);
    conduit_->on_deliver_ack(flow_, [this](net::packet p) { on_ack(p); });
}

tcp_sender::~tcp_sender() {
    disarm_rto();
    sched_->cancel(rto_event_);  // eager: the callback captures `this`
    rto_event_live_ = false;
    conduit_->on_deliver_ack(flow_, nullptr);
}

void tcp_sender::start() {
    if (active_) return;
    active_ = true;
    try_send();
}

void tcp_sender::stop() { active_ = false; }

void tcp_sender::quiesce() {
    active_ = false;
    quiesced_ = true;
    disarm_rto();
    sched_->cancel(rto_event_);  // a quiesced sender schedules nothing more
    rto_event_live_ = false;
}

std::uint64_t tcp_sender::usable_window() const noexcept {
    double wnd = cwnd_;
    if (in_recovery_) wnd += static_cast<double>(inflation_);
    wnd = std::min(wnd, static_cast<double>(rwnd_segments_));
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(wnd), 1);
}

tcp_sender::seg_meta& tcp_sender::meta(std::uint64_t seq) {
    return metas_.at(metas_head_ + static_cast<std::size_t>(seq - snd_una_));
}

void tcp_sender::metas_pop_front(std::size_t n) {
    metas_head_ += n;
    TCPPRED_ASSERT(metas_head_ <= metas_.size());
    if (metas_head_ == metas_.size()) {
        metas_clear();
    } else if (metas_head_ > metas_.size() / 2 && metas_head_ >= 64) {
        // Amortized compaction: each element is moved at most once per
        // doubling of consumed prefix, keeping ACK processing O(newly acked).
        metas_.erase(metas_.begin(), metas_.begin() + static_cast<std::ptrdiff_t>(metas_head_));
        metas_head_ = 0;
    }
}

void tcp_sender::try_send() {
    const std::uint64_t wnd = usable_window();
    // A stopped sender offers no new data but still drains retransmissions
    // of data already on the wire (stop() vs quiesce()).
    while ((active_ || next_seq_ < max_seq_sent_) && flight() < wnd) {
        const std::uint64_t seq = next_seq_++;
        metas_.emplace_back();
        transmit(seq);
    }
}

void tcp_sender::transmit(std::uint64_t seq) {
    // Anything below the high-water mark has been on the wire before: a
    // retransmission (first transmissions after a go-back-N rewind included),
    // and therefore invalid for RTT timing (Karn's algorithm).
    const bool is_retx = seq < max_seq_sent_;
    max_seq_sent_ = std::max(max_seq_sent_, seq + 1);

    seg_meta& m = meta(seq);
    m.send_time = sched_->now();
    if (is_retx) m.retransmitted = true;

    net::packet p;
    p.flow = flow_;
    p.kind = net::packet_kind::tcp_data;
    p.size_bytes = cfg_.mss_bytes + net::tcp_ip_header_bytes;
    p.seq = seq;
    p.sent_at = sched_->now();
    conduit_->send_data(p);
    ++stats_.segments_sent;
    if (is_retx) ++stats_.retransmits;
    if (!rto_armed_) arm_rto(rto_);
}

void tcp_sender::on_ack(const net::packet& p) {
    if (quiesced_) return;
    const std::uint64_t ack = p.ack;
    if (cfg_.variant == tcp_variant::sack && p.sack_end > p.sack_begin) {
        apply_sack_block(std::max(p.sack_begin, ack), p.sack_end);
    }
    if (ack > snd_una_) {
        const std::uint64_t newly = ack - snd_una_;
        on_new_ack(ack, newly);
        return;
    }
    if (ack == snd_una_ && flight() > 0) {
        ++dupacks_;
        if (in_recovery_) {
            if (cfg_.variant == tcp_variant::sack) {
                sack_send_during_recovery();
            } else {
                // Each extra dupack signals a departure from the pipe:
                // inflate the usable window transiently.
                ++inflation_;
                try_send();
            }
        } else if (dupacks_ == cfg_.dupack_threshold) {
            enter_fast_recovery();
        }
    }
}

void tcp_sender::apply_sack_block(std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t seq = begin; seq < end && seq < next_seq_; ++seq) {
        if (seq < snd_una_) continue;
        seg_meta& m = meta(seq);
        if (!m.sacked) {
            m.sacked = true;
            highest_sacked_ = std::max(highest_sacked_, seq + 1);
        }
    }
}

std::uint64_t tcp_sender::sacked_count() const noexcept {
    std::uint64_t n = 0;
    for (std::size_t i = metas_head_; i < metas_.size(); ++i) {
        n += metas_[i].sacked ? 1 : 0;
    }
    return n;
}

void tcp_sender::sack_send_during_recovery() {
    // RFC 3517-style pipe algorithm, simplified: keep cwnd segments in the
    // pipe; fill it first with retransmissions of segments inferred lost
    // (unSACKed below the highest SACKed seq, not yet retransmitted this
    // recovery episode), then with new data.
    for (;;) {
        const std::uint64_t pipe = flight() - sacked_count();
        if (pipe >= usable_window()) return;
        bool sent = false;
        for (std::uint64_t seq = snd_una_; seq < highest_sacked_ && seq < next_seq_;
             ++seq) {
            seg_meta& m = meta(seq);
            if (!m.sacked && m.retx_epoch != recovery_epoch_) {
                m.retx_epoch = recovery_epoch_;
                transmit(seq);
                sent = true;
                break;
            }
        }
        if (!sent) {
            if (!active_) return;
            const std::uint64_t seq = next_seq_++;
            metas_.emplace_back();
            transmit(seq);
        }
    }
}

void tcp_sender::on_new_ack(std::uint64_t ack, std::uint64_t newly) {
    // After a go-back-N rewind the receiver's cumulative ACK can run ahead
    // of our resend pointer (it buffered the out-of-order tail): skip what
    // it already holds.
    if (ack > next_seq_) next_seq_ = ack;

    // RTT sample from the highest newly-acked segment we still have timing
    // for, only if it was never retransmitted (Karn's algorithm).
    const std::uint64_t covered = std::min<std::uint64_t>(newly, metas_live());
    if (covered > 0) {
        const seg_meta& last = metas_[metas_head_ + static_cast<std::size_t>(covered - 1)];
        if (!last.retransmitted) update_rtt(sched_->now() - last.send_time);
    }

    snd_una_ = ack;
    metas_pop_front(static_cast<std::size_t>(covered));
    stats_.segments_delivered += newly;
    backoff_ = 0;
    dupacks_ = 0;

    if (in_recovery_) {
        if (ack >= recover_point_) {
            // Full ACK: recovery complete, deflate to ssthresh.
            in_recovery_ = false;
            inflation_ = 0;
            cwnd_ = ssthresh_;
        } else if (cfg_.variant == tcp_variant::sack) {
            // SACK partial ACK: the scoreboard drives what to resend next.
            inflation_ = 0;
            sack_send_during_recovery();
        } else {
            // NewReno partial ACK (RFC 6582): the ACK exposes the next hole;
            // retransmit it immediately, drop the transient inflation and
            // stay in recovery. This is what keeps multi-loss windows from
            // ending in RTOs.
            inflation_ = 0;
            transmit(snd_una_);
        }
    } else if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly);  // slow start
        if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    } else {
        cwnd_ += static_cast<double>(newly) / cwnd_;  // congestion avoidance
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(rwnd_segments_));
    cwnd_ = std::max(cwnd_, 1.0);

    if (flight() == 0) {
        disarm_rto();
    } else {
        disarm_rto();
        arm_rto(rto_);
    }
    try_send();
}

void tcp_sender::enter_fast_recovery() {
    ++stats_.fast_recoveries;
    ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0);

    if (cfg_.variant == tcp_variant::tahoe) {
        // Tahoe: no fast recovery — slow-start from one segment, resending
        // from the loss point (go-back-N), like a timeout without backoff.
        cwnd_ = 1.0;
        dupacks_ = 0;
        next_seq_ = snd_una_;
        metas_clear();
        highest_sacked_ = snd_una_;
        try_send();
        disarm_rto();
        arm_rto(rto_);
        return;
    }

    recover_point_ = next_seq_;
    in_recovery_ = true;
    ++recovery_epoch_;
    cwnd_ = ssthresh_;
    inflation_ = cfg_.dupack_threshold;
    if (cfg_.variant == tcp_variant::sack) {
        seg_meta& first = meta(snd_una_);
        first.retx_epoch = recovery_epoch_;
        transmit(snd_una_);
        sack_send_during_recovery();
    } else {
        transmit(snd_una_);
    }
    disarm_rto();
    arm_rto(rto_);
}

void tcp_sender::update_rtt(double sample) {
    stats_.rtt_samples.push_back(sample);
    if (!have_rtt_) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
        have_rtt_ = true;
    } else {
        rttvar_ = (1.0 - k_rtt_beta) * rttvar_ + k_rtt_beta * std::abs(srtt_ - sample);
        srtt_ = (1.0 - k_rtt_alpha) * srtt_ + k_rtt_alpha * sample;
    }
    rto_ = std::clamp(srtt_ + 4.0 * rttvar_, cfg_.min_rto_s, cfg_.max_rto_s);
}

void tcp_sender::schedule_rto_event(double when) {
    rto_event_live_ = true;
    rto_event_when_ = when;
    rto_event_ = sched_->schedule_at(when, [this] { on_rto_event(); });
}

void tcp_sender::arm_rto(double timeout_s) {
    rto_armed_ = true;
    rto_deadline_ = sched_->now() + timeout_s;
    if (!rto_event_live_) {
        schedule_rto_event(rto_deadline_);
    } else if (rto_deadline_ < rto_event_when_) {
        // The pending event fires too late for the new deadline (RTT
        // collapsed, or a backed-off timer was replaced): replace it.
        sched_->cancel(rto_event_);
        schedule_rto_event(rto_deadline_);
    }
    // Otherwise the pending event fires at or before the deadline and
    // lazily re-schedules itself for the remainder.
}

void tcp_sender::disarm_rto() {
    rto_armed_ = false;
    // The pending event, if any, stays in the scheduler and no-ops on fire
    // (or is superseded by a later arm_rto). The destructor and quiesce()
    // cancel it eagerly so `this` is never touched after teardown.
}

void tcp_sender::on_rto_event() {
    rto_event_live_ = false;
    if (!rto_armed_) return;  // lazily disarmed since scheduling
    if (sched_->now() < rto_deadline_) {
        // Re-armed to a later deadline since this event was scheduled:
        // sleep for the remainder.
        schedule_rto_event(rto_deadline_);
        return;
    }
    rto_armed_ = false;
    if (flight() == 0) return;

    ++stats_.timeouts;
    ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0);
    cwnd_ = 1.0;
    in_recovery_ = false;
    inflation_ = 0;
    dupacks_ = 0;
    backoff_ = std::min<std::uint32_t>(backoff_ + 1, cfg_.max_rto_backoff);
    // Go-back-N: rewind the send pointer to the first unacknowledged
    // segment and resend forward from there as the window reopens — absent
    // SACK this is how a timeout recovers a multi-loss window. Segments the
    // receiver already buffered are re-ACKed past in on_new_ack.
    next_seq_ = snd_una_;
    metas_clear();
    highest_sacked_ = snd_una_;
    try_send();  // cwnd = 1: retransmits exactly the first hole
    const double backed_off =
        std::min(rto_ * static_cast<double>(1u << backoff_), cfg_.max_rto_s);
    disarm_rto();
    arm_rto(backed_off);
}

tcp_receiver::tcp_receiver(sim::scheduler& sched, net::conduit& conduit, net::flow_id flow,
                           tcp_config cfg)
    : sched_(&sched), conduit_(&conduit), flow_(flow), cfg_(cfg) {
    conduit_->on_deliver_data(flow_, [this](net::packet p) { on_data(p); });
}

tcp_receiver::~tcp_receiver() {
    sched_->cancel(delack_event_);
    conduit_->on_deliver_data(flow_, nullptr);
}

void tcp_receiver::on_data(const net::packet& p) {
    last_arrival_ = p.seq;
    if (p.seq == rcv_next_) {
        ++rcv_next_;
        // Drain the contiguous run at the front in one erase (the vector is
        // sorted, so consecutive buffered seqs are adjacent).
        std::size_t run = 0;
        while (run < out_of_order_.size() && out_of_order_[run] == rcv_next_) {
            ++run;
            ++rcv_next_;
        }
        if (run > 0) {
            out_of_order_.erase(out_of_order_.begin(),
                                out_of_order_.begin() + static_cast<std::ptrdiff_t>(run));
        }
        if (!out_of_order_.empty()) {
            // Still a hole: keep the sender's dupack clock running.
            send_ack_now();
        } else if (cfg_.delayed_ack) {
            maybe_delay_ack();
        } else {
            send_ack_now();
        }
        return;
    }
    if (p.seq > rcv_next_) {
        const auto it = std::lower_bound(out_of_order_.begin(), out_of_order_.end(), p.seq);
        if (it == out_of_order_.end() || *it != p.seq) out_of_order_.insert(it, p.seq);
        send_ack_now();  // duplicate ACK
        return;
    }
    // Below rcv_next_: spurious retransmission; re-ACK immediately.
    send_ack_now();
}

void tcp_receiver::maybe_delay_ack() {
    ++unacked_segments_;
    if (unacked_segments_ >= 2) {
        send_ack_now();
        return;
    }
    delack_armed_ = true;
    const std::uint64_t generation = ++delack_generation_;
    delack_event_ = sched_->schedule_in(cfg_.delack_timeout_s, [this, generation] {
        if (delack_armed_ && generation == delack_generation_) send_ack_now();
    });
}

void tcp_receiver::send_ack_now() {
    unacked_segments_ = 0;
    if (delack_armed_) {
        // O(1) with the pooled scheduler: reclaim the pending timer instead
        // of letting it fire as a generation-checked no-op.
        sched_->cancel(delack_event_);
        delack_armed_ = false;
    }
    ++delack_generation_;

    net::packet a;
    a.flow = flow_;
    a.kind = net::packet_kind::tcp_ack;
    a.size_bytes = net::tcp_ip_header_bytes;
    a.ack = rcv_next_;
    // SACK option: report the out-of-order run containing the most recently
    // received segment (one block per ACK, as real stacks lead with the
    // most recent block).
    if (!out_of_order_.empty()) {
        const auto it =
            std::lower_bound(out_of_order_.begin(), out_of_order_.end(), last_arrival_);
        if (it != out_of_order_.end() && *it == last_arrival_) {
            // Expand to the contiguous run around last_arrival_: in a sorted
            // unique vector, consecutive seqs sit in adjacent slots.
            auto lo = it, hi = it;
            while (lo != out_of_order_.begin() && *(lo - 1) == *lo - 1) --lo;
            while (hi + 1 != out_of_order_.end() && *(hi + 1) == *hi + 1) ++hi;
            a.sack_begin = *lo;
            a.sack_end = *hi + 1;
        }
    }
    a.sent_at = sched_->now();
    conduit_->send_ack(a);
    ++acks_sent_;
}

tcp_connection::tcp_connection(sim::scheduler& sched, net::conduit& conduit,
                               net::flow_id flow, tcp_config cfg)
    : sender_(sched, conduit, flow, cfg), receiver_(sched, conduit, flow, cfg) {}

}  // namespace tcppred::tcp
