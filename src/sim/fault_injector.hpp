// Deterministic measurement-fault model for the simulated testbed.
//
// The paper's RON deployment was lossy in practice: pathload sometimes
// failed to converge, ping probes timed out, bulk transfers aborted, and
// paths suffered transient outages. The seed campaign assumed every
// measurement succeeds; this layer reintroduces those failure modes as a
// *deterministic, seeded* process so faulty campaigns replay byte-identically
// (same contract as the rest of the simulator, DESIGN.md §6/§10).
//
// Layering: this file is pure decision logic (rates in, per-epoch plan out)
// on top of sim/rng.hpp. It knows nothing about probes or the testbed —
// probe/ and testbed/ consume the plan and apply it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tcppred::sim {

/// Per-path fault rates for a campaign. All rates are probabilities per
/// epoch (per probe for ping_timeout_rate). Everything defaults to 0, i.e. the
/// fault layer is off and campaigns behave exactly as before it existed.
struct fault_profile {
    double pathload_fail{0.0};    ///< P[pathload fails to converge this epoch]
    double ping_timeout_rate{0.0};///< P[an individual probe gets no echo]
    double ping_truncate{0.0};    ///< P[the a-priori ping session ends early]
    double transfer_abort{0.0};   ///< P[the target transfer aborts mid-flight]
    double outage{0.0};           ///< P[a transient path blackout during the transfer]
    /// Fault-stream seed. 0 (the default) derives the stream from the
    /// campaign seed, so `--seed` alone still pins the whole run; a nonzero
    /// value decouples fault placement from the measurement seed.
    std::uint64_t seed{0};

    [[nodiscard]] bool enabled() const noexcept {
        return pathload_fail > 0.0 || ping_timeout_rate > 0.0 || ping_truncate > 0.0 ||
               transfer_abort > 0.0 || outage > 0.0;
    }

    /// Canonical spec string ("off" when disabled). Feeds the checkpoint
    /// fingerprint: resuming under a different fault profile must be refused.
    [[nodiscard]] std::string spec() const;

    /// Parse a comma-separated spec, e.g.
    ///   "pathload=0.1,ping-timeout=0.02,ping-truncate=0.05,abort=0.1,outage=0.05,seed=7"
    /// Unknown keys or rates outside [0,1] throw std::invalid_argument.
    [[nodiscard]] static fault_profile parse(std::string_view spec);

    /// Profile from the environment: $REPRO_FAULTS (a spec as above),
    /// overridden field-wise by $REPRO_FAULT_PATHLOAD, $REPRO_FAULT_PING_TIMEOUT,
    /// $REPRO_FAULT_PING_TRUNCATE, $REPRO_FAULT_ABORT, $REPRO_FAULT_OUTAGE and
    /// $REPRO_FAULT_SEED. Unset everything -> disabled profile.
    [[nodiscard]] static fault_profile from_env();
};

/// The faults one specific epoch will experience, fully resolved: every
/// stochastic decision is drawn up front in plan_epoch_faults(), so the
/// epoch simulation itself consumes no draws from the fault stream and the
/// measurement RNG streams are untouched (faults change *what happens*, not
/// how unrelated randomness is advanced).
struct epoch_fault_plan {
    bool pathload_fail{false};
    double ping_timeout_rate{0.0};       ///< injected per-probe no-echo probability
    std::uint64_t ping_fault_seed{0};    ///< stream for the per-probe draws
    double ping_truncate_fraction{1.0};  ///< < 1: stop the a-priori session early
    double transfer_abort_fraction{1.0}; ///< < 1: abort the target transfer early
    bool outage{false};
    double outage_start_fraction{0.0};   ///< of the transfer duration
    double outage_duration_fraction{0.0};///< of the transfer duration

    [[nodiscard]] bool any() const noexcept {
        return pathload_fail || ping_timeout_rate > 0.0 ||
               ping_truncate_fraction < 1.0 || transfer_abort_fraction < 1.0 || outage;
    }
};

/// Resolve the fault plan of epoch (path_id, trace, epoch). Deterministic in
/// (profile, campaign_seed, coordinates) alone; the draw sequence is fixed,
/// so enabling one fault type never re-randomizes another.
[[nodiscard]] epoch_fault_plan plan_epoch_faults(const fault_profile& profile,
                                                 std::uint64_t campaign_seed,
                                                 int path_id, int trace, int epoch);

}  // namespace tcppred::sim
