#include "sim/chaos.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "core/checked_parse.hpp"
#include "sim/rng.hpp"

namespace tcppred::sim {

namespace {

double parse_nonneg(std::string_view key, std::string_view value, double max) {
    std::size_t pos = 0;
    double v = 0.0;
    const std::string s(value);
    try {
        v = std::stod(s, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument("chaos_profile: bad value for '" + std::string(key) +
                                    "': " + s);
    }
    if (pos != s.size() || !(v >= 0.0 && v <= max)) {
        throw std::invalid_argument("chaos_profile: value for '" + std::string(key) +
                                    "' out of range: " + s);
    }
    return v;
}

}  // namespace

std::string chaos_profile::spec() const {
    if (!enabled()) return "off";
    std::ostringstream out;
    out.precision(17);  // exact enough to round-trip any configured rate
    bool first = true;
    const chaos_profile defaults{};
    const auto emit = [&](const char* key, double v) {
        out << (first ? "" : ",") << key << '=' << v;
        first = false;
    };
    if (kill_rate != defaults.kill_rate) emit("kill", kill_rate);
    if (hang_rate != defaults.hang_rate) emit("hang", hang_rate);
    if (hang_s != defaults.hang_s) emit("hang-s", hang_s);
    if (seed != 0) out << (first ? "" : ",") << "seed=" << seed;
    return out.str();
}

chaos_profile chaos_profile::parse(std::string_view spec) {
    chaos_profile p;
    if (spec.empty() || spec == "off") return p;
    std::stringstream ss{std::string(spec)};
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("chaos_profile: expected key=value, got '" +
                                        item + "'");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "kill") {
            p.kill_rate = parse_nonneg(key, value, 1.0);
        } else if (key == "hang") {
            p.hang_rate = parse_nonneg(key, value, 1.0);
        } else if (key == "hang-s") {
            p.hang_s = parse_nonneg(key, value, 1e9);
        } else if (key == "seed") {
            try {
                p.seed = std::stoull(value);
            } catch (const std::exception&) {
                throw std::invalid_argument("chaos_profile: bad seed '" + value + "'");
            }
        } else {
            throw std::invalid_argument("chaos_profile: unknown key '" + key + "'");
        }
    }
    if (p.kill_rate + p.hang_rate > 1.0) {
        throw std::invalid_argument("chaos_profile: kill + hang rates exceed 1");
    }
    return p;
}

chaos_profile chaos_profile::from_env() {
    if (const char* spec = std::getenv("REPRO_CHAOS")) return parse(spec);  // NOLINT(concurrency-mt-unsafe)
    return {};
}

chaos_action plan_chaos(const chaos_profile& profile, std::uint64_t campaign_seed,
                        int attempt, std::size_t idx) {
    if (!profile.enabled()) return chaos_action::none;
    const std::uint64_t master = profile.seed != 0 ? profile.seed : campaign_seed;
    rng stream(derive_seed(master, "chaos", static_cast<std::uint64_t>(attempt),
                           static_cast<std::uint64_t>(idx)));
    // Single draw, fixed split: [0, kill) kills, [kill, kill+hang) hangs.
    const double u = stream.uniform();
    if (u < profile.kill_rate) return chaos_action::kill;
    if (u < profile.kill_rate + profile.hang_rate) return chaos_action::hang;
    return chaos_action::none;
}

int chaos_attempt_from_env() {
    const char* v = std::getenv("REPRO_CHAOS_ATTEMPT");  // NOLINT(concurrency-mt-unsafe)
    if (!v || *v == '\0') return 0;
    // Checked parse: a garbled attempt counter used to silently restart the
    // chaos schedule at attempt 0, which silently changes which epochs die.
    return static_cast<int>(
        core::parse_checked_int("REPRO_CHAOS_ATTEMPT", v, 0, 1 << 30));
}

}  // namespace tcppred::sim
