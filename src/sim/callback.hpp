// Small-buffer move-only callable: the event callback type of the
// discrete-event scheduler. Unlike std::function, captures up to
// k_inline_bytes live inside the object itself — scheduling a packet
// delivery (capturing ~64 bytes of lambda state) performs no heap
// allocation. Larger callables transparently fall back to the heap, so any
// `void()` callable is accepted; the steady-state simulation path never
// produces one that spills.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tcppred::sim {

class small_callback {
public:
    /// Inline capture capacity. Sized for the largest steady-state capture
    /// in the simulator: a lambda holding `this` plus a net::packet by value
    /// (8 + 56 bytes). Checked by static_asserts at the capture sites that
    /// matter (net/link.cpp) and by tests/scheduler_test.cpp.
    static constexpr std::size_t k_inline_bytes = 80;

    small_callback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, small_callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    small_callback(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
        using fn = std::decay_t<F>;
        if constexpr (sizeof(fn) <= k_inline_bytes &&
                      alignof(fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(storage_)) fn(std::forward<F>(f));
            vt_ = &vtable_inline<fn>;
        } else {
            ::new (static_cast<void*>(storage_)) fn*(new fn(std::forward<F>(f)));
            vt_ = &vtable_heap<fn>;
        }
    }

    small_callback(small_callback&& other) noexcept : vt_(other.vt_) {
        if (vt_ != nullptr) {
            vt_->relocate(other.storage_, storage_);
            other.vt_ = nullptr;
        }
    }

    small_callback& operator=(small_callback&& other) noexcept {
        if (this != &other) {
            reset();
            vt_ = other.vt_;
            if (vt_ != nullptr) {
                vt_->relocate(other.storage_, storage_);
                other.vt_ = nullptr;
            }
        }
        return *this;
    }

    small_callback(const small_callback&) = delete;
    small_callback& operator=(const small_callback&) = delete;

    ~small_callback() { reset(); }

    /// Destroy the held callable (no-op when empty).
    void reset() noexcept {
        if (vt_ != nullptr) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

    [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

    void operator()() { vt_->invoke(storage_); }

private:
    struct vtable {
        void (*invoke)(void* self);
        /// Move-construct the callable from `from` into `to`, destroying the
        /// source. Must not throw: event nodes relocate while the queue is
        /// in a partially updated state.
        void (*relocate)(void* from, void* to) noexcept;
        void (*destroy)(void* self) noexcept;
    };

    template <typename Fn>
    static constexpr vtable vtable_inline{
        [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
        [](void* from, void* to) noexcept {
            Fn* src = std::launder(reinterpret_cast<Fn*>(from));
            ::new (to) Fn(std::move(*src));
            src->~Fn();
        },
        [](void* self) noexcept { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
    };

    template <typename Fn>
    static constexpr vtable vtable_heap{
        [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
        [](void* from, void* to) noexcept {
            Fn** src = std::launder(reinterpret_cast<Fn**>(from));
            ::new (to) Fn*(*src);
            *src = nullptr;
        },
        [](void* self) noexcept { delete *std::launder(reinterpret_cast<Fn**>(self)); },
    };

    alignas(std::max_align_t) unsigned char storage_[k_inline_bytes];
    const vtable* vt_{nullptr};
};

}  // namespace tcppred::sim
