#include "sim/fault_injector.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/counters.hpp"
#include "sim/rng.hpp"

namespace tcppred::sim {

namespace {

double parse_rate(std::string_view key, std::string_view value) {
    std::size_t pos = 0;
    double rate = 0.0;
    const std::string v(value);
    try {
        rate = std::stod(v, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument("fault_profile: bad value for '" + std::string(key) +
                                    "': " + v);
    }
    if (pos != v.size() || !(rate >= 0.0 && rate <= 1.0)) {
        throw std::invalid_argument("fault_profile: rate for '" + std::string(key) +
                                    "' must be in [0,1], got " + v);
    }
    return rate;
}

struct knob {
    std::string_view key;   ///< spec key
    const char* env;        ///< per-field environment override
    double fault_profile::*field;
};

constexpr knob k_knobs[] = {
    {"pathload", "REPRO_FAULT_PATHLOAD", &fault_profile::pathload_fail},
    {"ping-timeout", "REPRO_FAULT_PING_TIMEOUT", &fault_profile::ping_timeout_rate},
    {"ping-truncate", "REPRO_FAULT_PING_TRUNCATE", &fault_profile::ping_truncate},
    {"abort", "REPRO_FAULT_ABORT", &fault_profile::transfer_abort},
    {"outage", "REPRO_FAULT_OUTAGE", &fault_profile::outage},
};

}  // namespace

std::string fault_profile::spec() const {
    if (!enabled()) return "off";
    std::ostringstream out;
    out.precision(17);  // exact enough to round-trip any configured rate
    bool first = true;
    const fault_profile defaults{};
    for (const knob& k : k_knobs) {
        if (this->*k.field == defaults.*k.field) continue;
        out << (first ? "" : ",") << k.key << '=' << this->*k.field;
        first = false;
    }
    if (seed != 0) out << (first ? "" : ",") << "seed=" << seed;
    return out.str();
}

fault_profile fault_profile::parse(std::string_view spec) {
    fault_profile p;
    if (spec.empty() || spec == "off") return p;
    std::stringstream ss{std::string(spec)};
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty()) continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos) {
            throw std::invalid_argument("fault_profile: expected key=value, got '" + item +
                                        "'");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed") {
            try {
                p.seed = std::stoull(value);
            } catch (const std::exception&) {
                throw std::invalid_argument("fault_profile: bad seed '" + value + "'");
            }
            continue;
        }
        bool known = false;
        for (const knob& k : k_knobs) {
            if (key == k.key) {
                p.*k.field = parse_rate(k.key, value);
                known = true;
                break;
            }
        }
        if (!known) {
            throw std::invalid_argument("fault_profile: unknown key '" + key + "'");
        }
    }
    return p;
}

fault_profile fault_profile::from_env() {
    fault_profile p;
    if (const char* spec = std::getenv("REPRO_FAULTS")) p = parse(spec);  // NOLINT(concurrency-mt-unsafe)
    for (const knob& k : k_knobs) {
        if (const char* v = std::getenv(k.env)) p.*k.field = parse_rate(k.key, v);  // NOLINT(concurrency-mt-unsafe)
    }
    if (const char* v = std::getenv("REPRO_FAULT_SEED")) {  // NOLINT(concurrency-mt-unsafe)
        try {
            p.seed = std::stoull(v);
        } catch (const std::exception&) {
            throw std::invalid_argument(std::string("fault_profile: bad REPRO_FAULT_SEED '") +
                                        v + "'");
        }
    }
    return p;
}

epoch_fault_plan plan_epoch_faults(const fault_profile& profile,
                                   std::uint64_t campaign_seed, int path_id, int trace,
                                   int epoch) {
    epoch_fault_plan plan;
    if (!profile.enabled()) return plan;

    const std::uint64_t master =
        profile.seed != 0 ? profile.seed : derive_seed(campaign_seed, "fault-master");
    rng r(derive_seed(master, "fault", static_cast<std::uint64_t>(path_id),
                      static_cast<std::uint64_t>(trace),
                      static_cast<std::uint64_t>(epoch)));

    // Fixed draw order: every decision consumes its draws whether or not the
    // corresponding rate is zero, so enabling one fault type never shifts
    // the draws (and hence the placement) of another.
    plan.pathload_fail = r.chance(profile.pathload_fail);

    plan.ping_timeout_rate = profile.ping_timeout_rate;
    plan.ping_fault_seed = derive_seed(master, "ping-drops",
                                       static_cast<std::uint64_t>(path_id),
                                       static_cast<std::uint64_t>(trace),
                                       static_cast<std::uint64_t>(epoch));

    const bool truncate = r.chance(profile.ping_truncate);
    const double truncate_frac = r.uniform(0.2, 0.8);
    if (truncate) plan.ping_truncate_fraction = truncate_frac;

    const bool abort = r.chance(profile.transfer_abort);
    const double abort_frac = r.uniform(0.1, 0.9);
    if (abort) plan.transfer_abort_fraction = abort_frac;

    const bool outage = r.chance(profile.outage);
    const double outage_start = r.uniform(0.0, 0.6);
    const double outage_dur = r.uniform(0.05, 0.2);
    if (outage) {
        plan.outage = true;
        plan.outage_start_fraction = outage_start;
        plan.outage_duration_fraction = outage_dur;
    }

    // Planned-fault counters: these count logical decisions derived purely
    // from seeds, so snapshots are identical at any REPRO_JOBS setting.
    // (ping_timeout_rate is a rate, not a plan-time decision; the probe counts
    // the timeouts it actually injects.)
    static const obs::counter c_pathload = obs::counter::get("fault.pathload_planned");
    static const obs::counter c_truncate =
        obs::counter::get("fault.ping_truncate_planned");
    static const obs::counter c_abort = obs::counter::get("fault.abort_planned");
    static const obs::counter c_outage = obs::counter::get("fault.outage_planned");
    if (plan.pathload_fail) c_pathload.add();
    if (truncate) c_truncate.add();
    if (abort) c_abort.add();
    if (outage) c_outage.add();
    return plan;
}

}  // namespace tcppred::sim
