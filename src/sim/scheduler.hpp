// Discrete-event scheduler: the clock and event queue every simulated
// component (links, TCP endpoints, probers, traffic sources) runs on.
//
// Implementation: a calendar queue (Brown 1988) over pool-allocated event
// nodes whose callbacks live in inline small-buffer storage
// (sim/callback.hpp) — the steady-state schedule/fire cycle performs no
// heap allocation. Design and contracts: DESIGN.md §13.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hpp"

namespace tcppred::sim {

/// Simulated time in seconds since the start of the simulation.
using time_point = double;

/// Opaque handle for a scheduled event, usable to cancel it before it fires.
/// A handle never dangles: cancelling after the event fired (or was itself
/// cancelled, or the slot was reused by a later event) is a safe no-op,
/// because the (node, id) pair only matches while the original event is
/// still pending.
struct event_handle {
    std::uint64_t id{0};
    void* node{nullptr};

    [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

/// Single-threaded discrete-event scheduler.
///
/// Events are callbacks tagged with an absolute firing time. The dispatch
/// order contract (DESIGN.md §13.2):
///   - strictly by ascending firing time;
///   - events scheduled for the same instant fire in the order they were
///     scheduled (FIFO tie-breaking, by monotonically increasing event id),
///     which keeps packet-level simulations deterministic.
///
/// Cancellation is O(1): `cancel()` marks the node dead and destroys its
/// callback immediately; the node itself is reclaimed when the queue next
/// walks past it (or on rebucketing). `pending()` counts such dead-but-not-
/// yet-reclaimed events, exactly as the previous heap-based implementation
/// counted cancelled-but-not-yet-popped entries.
class scheduler {
public:
    using callback = small_callback;

    scheduler();
    ~scheduler();
    scheduler(const scheduler&) = delete;
    scheduler& operator=(const scheduler&) = delete;

    /// Current simulated time.
    [[nodiscard]] time_point now() const noexcept { return now_; }

    /// Schedule `cb` at absolute time `when` (must be >= now()).
    event_handle schedule_at(time_point when, callback cb);

    /// Schedule `cb` to fire `delay` seconds from now (delay >= 0).
    event_handle schedule_in(time_point delay, callback cb) {
        return schedule_at(now_ + delay, std::move(cb));
    }

    /// Cancel a previously scheduled event. Safe to call with an invalid,
    /// already-fired, or already-cancelled handle (no effect).
    void cancel(event_handle h);

    /// Fire the next pending event, advancing the clock. Returns false when
    /// the queue is empty.
    bool step();

    /// Run events until the queue is empty or the clock passes `t_end`.
    /// Leaves the clock at min(t_end, time of last event fired) — the clock
    /// is always advanced to `t_end` on return so subsequent schedule_in
    /// calls are relative to the horizon.
    void run_until(time_point t_end);

    /// Run until no events remain.
    void run_all();

    /// Number of events currently pending (including cancelled-but-not-yet
    /// reclaimed ones).
    [[nodiscard]] std::size_t pending() const noexcept { return live_ + dead_; }

    /// Total number of events fired so far (diagnostics / micro-benchmarks).
    [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

private:
    /// Pool-allocated intrusive event node. Nodes never move once allocated;
    /// buckets chain them through `next`. A dead (cancelled) node keeps its
    /// queue position but has id == 0 and an empty callback.
    struct event_node {
        time_point when{0.0};
        std::uint64_t id{0};
        event_node* next{nullptr};
        small_callback cb;
    };

    [[nodiscard]] event_node* alloc_node();
    void release_node(event_node* n) noexcept;
    void insert_node(event_node* n);
    [[nodiscard]] event_node* pop_min();
    [[nodiscard]] const event_node* peek_min();
    void rebucket(std::size_t new_bucket_count);
    void purge_all_dead() noexcept;
    /// Virtual (un-wrapped) bucket index of an event time.
    [[nodiscard]] double virtual_bucket(time_point t) const noexcept;

    // --- calendar queue ---
    std::vector<event_node*> buckets_;
    std::size_t bucket_mask_{0};   ///< buckets_.size() - 1 (power of two)
    double width_{1e-3};           ///< bucket width, simulated seconds
    double inv_width_{1e3};
    double v_cur_{0.0};            ///< virtual bucket the scan is positioned at
    std::size_t cur_{0};           ///< v_cur_ wrapped into buckets_
    std::size_t live_{0};          ///< pending, not cancelled
    std::size_t dead_{0};          ///< cancelled, not yet reclaimed
    /// EMA of positive inter-dequeue gaps: the width estimate feeding
    /// rebucket() (Brown's rule of thumb: width a small multiple of the
    /// mean gap keeps ~1 live event per bucket).
    double gap_ema_{0.0};
    double last_dequeued_{0.0};

    // --- node pool ---
    std::vector<std::unique_ptr<event_node[]>> chunks_;
    event_node* free_list_{nullptr};

    time_point now_{0.0};
    std::uint64_t next_id_{1};
    std::uint64_t fired_{0};
};

}  // namespace tcppred::sim
