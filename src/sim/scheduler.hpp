// Discrete-event scheduler: the clock and event queue every simulated
// component (links, TCP endpoints, probers, traffic sources) runs on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace tcppred::sim {

/// Simulated time in seconds since the start of the simulation.
using time_point = double;

/// Opaque handle for a scheduled event, usable to cancel it before it fires.
struct event_handle {
    std::uint64_t id{0};

    [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

/// Single-threaded discrete-event scheduler.
///
/// Events are callbacks tagged with an absolute firing time. Events scheduled
/// for the same instant fire in the order they were scheduled (FIFO
/// tie-breaking), which keeps packet-level simulations deterministic.
///
/// Cancellation is lazy: `cancel()` marks the handle dead and the event is
/// discarded when it reaches the head of the queue.
class scheduler {
public:
    using callback = std::function<void()>;

    scheduler() = default;
    scheduler(const scheduler&) = delete;
    scheduler& operator=(const scheduler&) = delete;

    /// Current simulated time.
    [[nodiscard]] time_point now() const noexcept { return now_; }

    /// Schedule `cb` at absolute time `when` (must be >= now()).
    event_handle schedule_at(time_point when, callback cb);

    /// Schedule `cb` to fire `delay` seconds from now (delay >= 0).
    event_handle schedule_in(time_point delay, callback cb) {
        return schedule_at(now_ + delay, std::move(cb));
    }

    /// Cancel a previously scheduled event. Safe to call with an invalid or
    /// already-fired handle (no effect).
    void cancel(event_handle h);

    /// Fire the next pending event, advancing the clock. Returns false when
    /// the queue is empty.
    bool step();

    /// Run events until the queue is empty or the clock passes `t_end`.
    /// Leaves the clock at min(t_end, time of last event fired) — the clock
    /// is always advanced to `t_end` on return so subsequent schedule_in
    /// calls are relative to the horizon.
    void run_until(time_point t_end);

    /// Run until no events remain.
    void run_all();

    /// Number of events currently pending (including cancelled-but-not-yet
    /// popped ones).
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

    /// Total number of events fired so far (diagnostics / micro-benchmarks).
    [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

private:
    struct entry {
        time_point when;
        std::uint64_t id;
        callback cb;
    };
    struct later {
        bool operator()(const entry& a, const entry& b) const noexcept {
            if (a.when != b.when) return a.when > b.when;
            return a.id > b.id;  // FIFO among simultaneous events
        }
    };

    [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
    void forget_cancelled(std::uint64_t id);

    std::priority_queue<entry, std::vector<entry>, later> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    time_point now_{0.0};
    std::uint64_t next_id_{1};
    std::uint64_t fired_{0};
};

}  // namespace tcppred::sim
