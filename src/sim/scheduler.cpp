#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/contracts.hpp"

namespace tcppred::sim {

event_handle scheduler::schedule_at(time_point when, callback cb) {
    if (when < now_) {
        // Guard against accidental scheduling into the past; tolerate tiny
        // floating-point backsliding by clamping.
        if (now_ - when > 1e-9) {
            throw std::invalid_argument("scheduler: event scheduled in the past");
        }
        when = now_;
    }
    const std::uint64_t id = next_id_++;
    queue_.push(entry{when, id, std::move(cb)});
    return event_handle{id};
}

void scheduler::cancel(event_handle h) {
    if (!h.valid() || h.id >= next_id_) return;
    cancelled_.insert(h.id);
}

bool scheduler::is_cancelled(std::uint64_t id) const {
    return cancelled_.find(id) != cancelled_.end();
}

void scheduler::forget_cancelled(std::uint64_t id) { cancelled_.erase(id); }

bool scheduler::step() {
    while (!queue_.empty()) {
        // std::priority_queue::top() is const; we need to move the callback
        // out, so copy the POD parts first and pop.
        const entry& top = queue_.top();
        const time_point when = top.when;
        const std::uint64_t id = top.id;
        if (is_cancelled(id)) {
            forget_cancelled(id);
            queue_.pop();
            continue;
        }
        callback cb = std::move(const_cast<entry&>(top).cb);
        queue_.pop();
        // Dispatch must never move simulated time backwards: schedule_at
        // clamps, so a violation here means the queue ordering itself broke.
        TCPPRED_ASSERT(when >= now_);
        now_ = when;
        ++fired_;
        cb();
        return true;
    }
    return false;
}

void scheduler::run_until(time_point t_end) {
    for (;;) {
        // Drop cancelled events at the head so the horizon check below looks
        // at a live event (step() would otherwise skip past t_end).
        while (!queue_.empty() && is_cancelled(queue_.top().id)) {
            forget_cancelled(queue_.top().id);
            queue_.pop();
        }
        if (queue_.empty() || queue_.top().when > t_end) break;
        step();
    }
    if (now_ < t_end) now_ = t_end;
}

void scheduler::run_all() {
    while (step()) {
    }
}

}  // namespace tcppred::sim
