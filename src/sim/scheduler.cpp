#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace tcppred::sim {

namespace {
constexpr std::size_t k_min_buckets = 64;    // power of two
constexpr std::size_t k_pool_chunk = 256;    // nodes per pool growth
/// Bucket width as a multiple of the mean inter-dequeue gap. Brown's
/// calendar-queue analysis wants a small multiple so the scan visits ~1
/// live event per bucket without long intra-bucket insertion walks.
constexpr double k_width_gap_factor = 4.0;
}  // namespace

scheduler::scheduler() : buckets_(k_min_buckets, nullptr), bucket_mask_(k_min_buckets - 1) {}

scheduler::~scheduler() = default;

double scheduler::virtual_bucket(time_point t) const noexcept {
    return std::floor(t * inv_width_);
}

scheduler::event_node* scheduler::alloc_node() {
    if (free_list_ == nullptr) {
        chunks_.push_back(std::make_unique<event_node[]>(k_pool_chunk));
        event_node* chunk = chunks_.back().get();
        for (std::size_t i = k_pool_chunk; i > 0; --i) {
            chunk[i - 1].next = free_list_;
            free_list_ = &chunk[i - 1];
        }
    }
    event_node* n = free_list_;
    free_list_ = n->next;
    n->next = nullptr;
    return n;
}

void scheduler::release_node(event_node* n) noexcept {
    n->id = 0;
    n->cb.reset();
    n->next = free_list_;
    free_list_ = n;
}

void scheduler::insert_node(event_node* n) {
    const double vb = virtual_bucket(n->when);
    // Keep the scan-position invariant: v_cur_ never exceeds the virtual
    // bucket of any pending event (otherwise the year-scan could return a
    // later event first).
    if (vb < v_cur_) {
        v_cur_ = vb;
        cur_ = static_cast<std::size_t>(static_cast<std::uint64_t>(vb)) & bucket_mask_;
    }
    const std::size_t idx =
        static_cast<std::size_t>(static_cast<std::uint64_t>(vb)) & bucket_mask_;
    // Sorted insertion by (when, id): FIFO among simultaneous events. Dead
    // nodes (id == 0) order as "smaller" at equal times, which leaves the
    // relative order of live nodes untouched.
    event_node** p = &buckets_[idx];
    while (*p != nullptr &&
           ((*p)->when < n->when || ((*p)->when == n->when && (*p)->id < n->id))) {
        p = &(*p)->next;
    }
    n->next = *p;
    *p = n;
}

event_handle scheduler::schedule_at(time_point when, callback cb) {
    if (when < now_) {
        // Guard against accidental scheduling into the past; tolerate tiny
        // floating-point backsliding by clamping.
        if (now_ - when > 1e-9) {
            throw std::invalid_argument("scheduler: event scheduled in the past");
        }
        when = now_;
    }
    event_node* n = alloc_node();
    n->when = when;
    n->id = next_id_++;
    n->cb = std::move(cb);
    insert_node(n);
    ++live_;
    if (live_ > buckets_.size() * 2) rebucket(buckets_.size() * 2);
    return event_handle{n->id, n};
}

void scheduler::cancel(event_handle h) {
    if (!h.valid() || h.node == nullptr) return;
    auto* n = static_cast<event_node*>(h.node);
    if (n->id != h.id) return;  // already fired, cancelled, or slot reused
    n->id = 0;
    n->cb.reset();
    TCPPRED_ASSERT(live_ > 0);
    --live_;
    ++dead_;
}

void scheduler::purge_all_dead() noexcept {
    if (dead_ == 0) return;
    for (event_node*& head : buckets_) {
        while (head != nullptr) {
            event_node* n = head;
            head = n->next;
            release_node(n);
        }
    }
    dead_ = 0;
}

const scheduler::event_node* scheduler::peek_min() {
    if (live_ == 0) {
        // Match the previous implementation's observable behaviour: once
        // no live events remain, cancelled leftovers are discarded too.
        purge_all_dead();
        return nullptr;
    }
    std::size_t scanned = 0;
    for (;;) {
        // Reclaim dead nodes at the head of the bucket under the cursor.
        event_node** head = &buckets_[cur_];
        while (*head != nullptr && (*head)->id == 0) {
            event_node* d = *head;
            *head = d->next;
            --dead_;
            release_node(d);
        }
        event_node* h = *head;
        if (h != nullptr && virtual_bucket(h->when) <= v_cur_) return h;
        v_cur_ += 1.0;
        cur_ = (cur_ + 1) & bucket_mask_;
        if (++scanned > buckets_.size()) {
            // A full sweep found nothing in the current "year": the queue is
            // sparse relative to its horizon. Jump straight to the bucket
            // holding the global minimum instead of sweeping year by year.
            const event_node* best = nullptr;
            for (event_node* b : buckets_) {
                event_node* n = b;
                while (n != nullptr && n->id == 0) n = n->next;
                if (n == nullptr) continue;
                if (best == nullptr || n->when < best->when ||
                    (n->when == best->when && n->id < best->id)) {
                    best = n;
                }
            }
            TCPPRED_ASSERT(best != nullptr);  // live_ > 0
            v_cur_ = virtual_bucket(best->when);
            cur_ = static_cast<std::size_t>(static_cast<std::uint64_t>(v_cur_)) &
                   bucket_mask_;
            scanned = 0;
        }
    }
}

scheduler::event_node* scheduler::pop_min() {
    const event_node* c = peek_min();
    if (c == nullptr) return nullptr;
    // peek_min leaves the cursor on the bucket whose head is the global
    // minimum live event.
    event_node* h = buckets_[cur_];
    TCPPRED_ASSERT(h == c);
    buckets_[cur_] = h->next;
    h->next = nullptr;
    --live_;
    const double gap = h->when - last_dequeued_;
    last_dequeued_ = h->when;
    if (gap > 0.0) {
        gap_ema_ = gap_ema_ == 0.0 ? gap : 0.9 * gap_ema_ + 0.1 * gap;
    }
    if (buckets_.size() > k_min_buckets && live_ < buckets_.size() / 8) {
        rebucket(buckets_.size() / 2);
    }
    return h;
}

void scheduler::rebucket(std::size_t new_bucket_count) {
    // Gather live nodes (dropping dead ones) and re-distribute them over the
    // new bucket array with a width re-derived from the observed event-gap
    // EMA. Nodes themselves never move: only the bucket chains are relinked.
    std::vector<event_node*> nodes;
    nodes.reserve(live_);
    for (event_node*& head : buckets_) {
        while (head != nullptr) {
            event_node* n = head;
            head = n->next;
            if (n->id == 0) {
                release_node(n);
            } else {
                n->next = nullptr;
                nodes.push_back(n);
            }
        }
    }
    dead_ = 0;
    buckets_.assign(new_bucket_count, nullptr);
    bucket_mask_ = new_bucket_count - 1;
    if (gap_ema_ > 0.0) {
        width_ = std::clamp(gap_ema_ * k_width_gap_factor, 1e-12, 1e9);
        inv_width_ = 1.0 / width_;
    }
    v_cur_ = virtual_bucket(now_);
    cur_ = static_cast<std::size_t>(static_cast<std::uint64_t>(v_cur_)) & bucket_mask_;
    for (event_node* n : nodes) insert_node(n);
}

bool scheduler::step() {
    event_node* n = pop_min();
    if (n == nullptr) return false;
    // Dispatch must never move simulated time backwards: schedule_at
    // clamps, so a violation here means the queue ordering itself broke.
    TCPPRED_ASSERT(n->when >= now_);
    now_ = n->when;
    ++fired_;
    // Move the callback out and recycle the node before invoking: the
    // callback may schedule new events (which may reuse this very node).
    small_callback cb = std::move(n->cb);
    release_node(n);
    cb();
    return true;
}

void scheduler::run_until(time_point t_end) {
    for (;;) {
        const event_node* head = peek_min();
        if (head == nullptr || head->when > t_end) break;
        step();
    }
    if (now_ < t_end) now_ = t_end;
}

void scheduler::run_all() {
    while (step()) {
    }
}

}  // namespace tcppred::sim
