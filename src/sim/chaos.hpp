// Seeded process-level chaos for sharded campaigns.
//
// The fault injector (sim/fault_injector.hpp) breaks *measurements*; this
// layer breaks *workers*. Under a chaos profile a campaign worker process
// SIGKILLs itself or wedges (stops making progress) just before running a
// planned epoch, so the supervisor's crash detection, hang detection,
// retry/backoff and shard reassignment paths are exercised by tests instead
// of trusted on faith (DESIGN.md §15.4).
//
// Same discipline as PR 3 faults: every decision is drawn up front from a
// dedicated derive_seed stream, so a chaos run is a pure function of
// (profile, campaign seed, attempt, epoch index). The relaunch attempt
// number participates in the stream on purpose — a kill planned at epoch e
// must not be re-planned at e forever, or no amount of retrying would ever
// finish the shard. Each attempt re-rolls the surviving epochs, so progress
// plus per-epoch checkpointing converges with probability 1 while the full
// kill/hang schedule stays exactly replayable.
//
// Layering: pure decision logic on sim/rng.hpp; knows nothing about
// processes or the testbed. tools/tcppred_campaign applies the plan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tcppred::sim {

/// Per-epoch chaos rates for a campaign worker. Default-off: a disabled
/// profile makes workers behave exactly as if this layer did not exist.
struct chaos_profile {
    double kill_rate{0.0};  ///< P[worker SIGKILLs itself before an epoch]
    double hang_rate{0.0};  ///< P[worker wedges before an epoch]
    /// How long a wedged worker sleeps. Far longer than any sane heartbeat
    /// timeout, so a hang is indistinguishable from a real wedge; the
    /// supervisor must SIGKILL it.
    double hang_s{3600.0};
    /// Chaos-stream seed. 0 (the default) derives the stream from the
    /// campaign seed, so `--seed` alone pins the whole chaos schedule.
    std::uint64_t seed{0};

    [[nodiscard]] bool enabled() const noexcept {
        return kill_rate > 0.0 || hang_rate > 0.0;
    }

    /// Canonical spec string ("off" when disabled).
    [[nodiscard]] std::string spec() const;

    /// Parse a comma-separated spec, e.g. "kill=0.05,hang=0.02,hang-s=60,seed=9".
    /// Unknown keys or rates outside [0,1] throw std::invalid_argument.
    [[nodiscard]] static chaos_profile parse(std::string_view spec);

    /// Profile from $REPRO_CHAOS (unset or empty -> disabled).
    [[nodiscard]] static chaos_profile from_env();
};

/// What a worker does immediately before running one epoch.
enum class chaos_action { none, kill, hang };

/// Resolve the chaos decision for linear epoch `idx` on relaunch `attempt`
/// (0 = first launch). Deterministic in (profile, campaign_seed, attempt,
/// idx) alone; one draw per epoch in fixed order, so enabling hangs never
/// re-randomizes the kill schedule.
[[nodiscard]] chaos_action plan_chaos(const chaos_profile& profile,
                                      std::uint64_t campaign_seed, int attempt,
                                      std::size_t idx);

/// The relaunch attempt number the supervisor hands to a worker process via
/// $REPRO_CHAOS_ATTEMPT (absent or unparsable -> 0).
[[nodiscard]] int chaos_attempt_from_env();

}  // namespace tcppred::sim
