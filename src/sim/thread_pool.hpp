// A small fixed-size thread pool / work queue for embarrassingly parallel
// campaign work (one task per worker pulling indices off a shared counter).
//
// Determinism note: the pool itself imposes no ordering — callers that need
// reproducible output must write results into pre-sized slots keyed by work
// index, never in completion order (see testbed::run_campaign and the
// determinism contract in DESIGN.md §6).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcppred::sim {

/// Fixed set of worker threads draining a FIFO task queue.
///
/// Exceptions thrown by tasks are captured (first one wins) and rethrown
/// from the next wait() call; remaining tasks still run to completion so
/// every submitted task executes exactly once.
class thread_pool {
public:
    /// Spawn `threads` workers (0 selects std::thread::hardware_concurrency,
    /// with a floor of 1).
    explicit thread_pool(unsigned threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Enqueue a task. Thread-safe; may be called from worker tasks.
    void submit(std::function<void()> task);

    /// Block until the queue is empty and every worker is idle, then rethrow
    /// the first exception any task raised (if any). The pool is reusable
    /// after wait() returns or throws.
    void wait();

    [[nodiscard]] unsigned thread_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::exception_ptr first_error_;
    unsigned busy_{0};
    bool stopping_{false};
};

/// Run body(i) for every i in [0, n), spread across `jobs` threads.
///
/// jobs <= 1 runs inline on the calling thread (no pool, no locking) — the
/// serial fallback used when REPRO_JOBS=1. Otherwise `jobs` pool workers
/// pull indices from a shared atomic counter, so no index is run twice and
/// no index is skipped. If body throws, draining stops early (indices not
/// yet claimed may be skipped), in-flight indices finish, and the first
/// exception is rethrown on the calling thread.
void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body);

/// Worker-thread count for parallel campaign work: $REPRO_JOBS if set and a
/// positive integer, otherwise std::thread::hardware_concurrency (floor 1).
[[nodiscard]] unsigned jobs_from_env();

}  // namespace tcppred::sim
