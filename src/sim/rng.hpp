// Deterministic random-number streams for the simulator.
//
// Every stochastic component (cross-traffic source, load process, path
// catalogue) owns its own stream derived from (campaign seed, purpose tag),
// so adding a component or reordering draws in one component never perturbs
// another — campaigns are exactly reproducible from (seed, config).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>

namespace tcppred::sim {

/// Mix a 64-bit value (SplitMix64 finalizer). Used to derive independent
/// sub-seeds from a master seed plus tags.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// FNV-1a hash of a string tag, for naming RNG streams.
[[nodiscard]] constexpr std::uint64_t hash_tag(std::string_view tag) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : tag) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Derive an independent sub-seed from a master seed and up to three indices
/// plus a purpose tag.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master, std::string_view tag,
                                                  std::uint64_t a = 0, std::uint64_t b = 0,
                                                  std::uint64_t c = 0) noexcept {
    std::uint64_t s = mix64(master ^ hash_tag(tag));
    s = mix64(s ^ (a * 0x9e3779b97f4a7c15ULL));
    s = mix64(s ^ (b * 0xc2b2ae3d27d4eb4fULL));
    s = mix64(s ^ (c * 0x165667b19e3779f9ULL));
    return s;
}

/// A seeded random stream with the distributions the simulator needs.
class rng {
public:
    explicit rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [0, 1).
    [[nodiscard]] double uniform() { return unit_(engine_); }

    /// Uniform in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Exponential with the given mean (mean > 0).
    [[nodiscard]] double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Pareto with shape `alpha` and minimum `xmin` (heavy-tailed on/off
    /// periods; alpha in (1, 2] gives infinite variance burstiness).
    [[nodiscard]] double pareto(double alpha, double xmin) {
        const double u = 1.0 - uniform();  // in (0, 1]
        return xmin / std::pow(u, 1.0 / alpha);
    }

    /// Normal with given mean and standard deviation.
    [[nodiscard]] double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Bernoulli trial with success probability `p`.
    [[nodiscard]] bool chance(double p) { return uniform() < p; }

    /// Underlying engine (for std distributions not wrapped here).
    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace tcppred::sim
