#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "core/checked_parse.hpp"
#include "obs/counters.hpp"

namespace tcppred::sim {

namespace {

unsigned resolve_threads(unsigned requested) {
    if (requested > 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

}  // namespace

thread_pool::thread_pool(unsigned threads) {
    const unsigned n = resolve_threads(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void thread_pool::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
    if (first_error_) {
        const std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void thread_pool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_) return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
        lock.unlock();
        try {
            task();
        } catch (...) {
            const std::lock_guard<std::mutex> err_lock(mutex_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        lock.lock();
        --busy_;
        if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
    }
}

void parallel_for(std::size_t n, unsigned jobs,
                  const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    // Counts logical work items (not worker spawns), so the snapshot is
    // identical whether the serial bypass or the pool runs the loop. The
    // worker count is timing-dependent context and goes in a gauge, which
    // the determinism contract exempts.
    static const obs::counter c_items = obs::counter::get("sim.parallel_items");
    c_items.add(n);
    if (jobs <= 1) {
        obs::gauge::get("sim.pool_workers").set(1);
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(resolve_threads(jobs), n));
    obs::gauge::get("sim.pool_workers").set(static_cast<std::int64_t>(workers));
    thread_pool pool(workers);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    for (unsigned w = 0; w < workers; ++w) {
        pool.submit([&] {
            for (;;) {
                if (abort.load(std::memory_order_relaxed)) return;
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) return;
                try {
                    body(i);
                } catch (...) {
                    abort.store(true, std::memory_order_relaxed);
                    throw;  // captured by the pool, rethrown from wait()
                }
            }
        });
    }
    pool.wait();
}

unsigned jobs_from_env() {
    if (const char* env = std::getenv("REPRO_JOBS")) {  // NOLINT(concurrency-mt-unsafe)
        // Checked parse (core/checked_parse.hpp): "REPRO_JOBS=garbage" used
        // to silently fall back to all cores; now it is a loud typed error.
        // An empty value means unset (matching `REPRO_JOBS= cmd` usage) and
        // 0 means auto, mirroring the tools' --jobs 0.
        if (*env == '\0') return resolve_threads(0);
        return resolve_threads(static_cast<unsigned>(
            core::parse_checked_int("REPRO_JOBS", env, 0, 4096)));
    }
    return resolve_threads(0);
}

}  // namespace tcppred::sim
