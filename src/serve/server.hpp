// The serve daemon's socket front-end: a listening Unix-domain or loopback
// TCP socket, a bounded admission queue, and a fixed worker pool
// (sim::thread_pool) where each worker owns one client connection at a time
// — so one connection's requests apply strictly in arrival order, which is
// what makes a replayed observation stream reproduce the offline engine
// (path_table.hpp).
//
// Shutdown contract: run() polls `stop` (set by the tool's SIGINT handler);
// once raised, the listener closes, workers finish the line in flight and
// hang up, and run() returns after the pool drains — the tool then writes
// the final snapshot and exits 0. Snapshots are also written every
// --snapshot-every observations (count-based, so WHEN one is cut is a
// function of the workload, not the clock) and on the SNAPSHOT request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/path_table.hpp"

namespace tcppred::serve {

struct server_config {
    /// Unix-domain socket path; takes precedence over tcp_port when set.
    std::string unix_socket;
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    int tcp_port{-1};
    std::size_t workers{4};
    /// Bound on connections admitted but not yet finished; the accept loop
    /// stops accepting (backpressure) at the cap instead of queueing
    /// without limit.
    std::size_t max_inflight{64};
    /// Write a snapshot every N observations (0 = only on SNAPSHOT/SIGINT).
    std::uint64_t snapshot_every{0};
    /// Snapshot file; empty disables snapshotting entirely.
    std::filesystem::path snapshot_file;
};

class server {
public:
    /// Binds and listens; throws std::runtime_error on any socket failure.
    server(path_table& table, server_config cfg);
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Accept/serve until `stop` becomes true; returns once every admitted
    /// connection has been handled. Callable once.
    void run(const std::atomic<bool>& stop);

    /// The bound TCP port (resolved when tcp_port was 0); -1 for Unix.
    [[nodiscard]] int port() const noexcept { return port_; }

    /// One request line in, one response line out (no trailing newline) —
    /// the dispatch workers run per line, exposed for tests.
    [[nodiscard]] std::string handle_line(std::string_view line);

private:
    void handle_connection(int fd, const std::atomic<bool>& stop);
    void maybe_periodic_snapshot(std::uint64_t observation_count);

    path_table& table_;
    server_config cfg_;
    int listen_fd_{-1};
    int port_{-1};
    std::mutex snapshot_mu_;

    std::mutex inflight_mu_;
    std::condition_variable inflight_cv_;
    std::size_t inflight_{0};
};

}  // namespace tcppred::serve
