#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "sim/thread_pool.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::serve {

namespace {

const char* status_name(core::prediction_status s) {
    switch (s) {
        case core::prediction_status::ok: return "ok";
        case core::prediction_status::no_history: return "no_history";
        case core::prediction_status::unavailable: return "unavailable";
    }
    return "unknown";
}

const char* source_name(core::prediction_source s) {
    switch (s) {
        case core::prediction_source::history: return "history";
        case core::prediction_source::model_based: return "model_based";
        case core::prediction_source::avail_bw: return "avail_bw";
        case core::prediction_source::window_bound: return "window_bound";
        case core::prediction_source::blended: return "blended";
    }
    return "unknown";
}

[[noreturn]] void sock_fail(const std::string& what) {
    throw std::runtime_error("tcppred_serve: " + what + ": " + std::strerror(errno));
}

/// write(2) the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::write(fd, data.data(), data.size());
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

}  // namespace

server::server(path_table& table, server_config cfg)
    : table_(table), cfg_(std::move(cfg)) {
    if (!cfg_.unix_socket.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg_.unix_socket.size() >= sizeof(addr.sun_path)) {
            throw std::runtime_error("tcppred_serve: socket path too long: " +
                                     cfg_.unix_socket);
        }
        std::memcpy(addr.sun_path, cfg_.unix_socket.c_str(),
                    cfg_.unix_socket.size() + 1);
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0) sock_fail("socket");
        ::unlink(cfg_.unix_socket.c_str());  // stale socket from a previous run
        if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            sock_fail("bind " + cfg_.unix_socket);
        }
    } else if (cfg_.tcp_port >= 0) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) sock_fail("socket");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
        if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            sock_fail("bind 127.0.0.1:" + std::to_string(cfg_.tcp_port));
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
            sock_fail("getsockname");
        }
        port_ = static_cast<int>(ntohs(bound.sin_port));
    } else {
        throw std::runtime_error("tcppred_serve: no listen address (need --socket or --port)");
    }
    if (::listen(listen_fd_, 64) != 0) sock_fail("listen");
}

server::~server() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!cfg_.unix_socket.empty()) ::unlink(cfg_.unix_socket.c_str());
}

void server::maybe_periodic_snapshot(std::uint64_t observation_count) {
    if (cfg_.snapshot_every == 0 || cfg_.snapshot_file.empty()) return;
    if (observation_count % cfg_.snapshot_every != 0) return;
    const std::lock_guard<std::mutex> lock(snapshot_mu_);
    write_snapshot(table_, cfg_.snapshot_file);
}

std::string server::handle_line(std::string_view line) {
    static const obs::counter c_requests = obs::counter::get("serve.requests");
    static const obs::counter c_errors = obs::counter::get("serve.request_errors");
    c_requests.add();
    try {
        const request req = parse_request_line(line);
        switch (req.kind) {
            case request_kind::observe: {
                const std::uint64_t count = table_.observe(req.path, req.obs);
                maybe_periodic_snapshot(count);
                return "OK";
            }
            case request_kind::predict: {
                const predict_reply reply = table_.predict(req.path, req.spec);
                switch (reply.st) {
                    case predict_reply::status::unknown_spec:
                        c_errors.add();
                        return "ERR unknown spec (not in this daemon's --specs)";
                    case predict_reply::status::unknown_path:
                        c_errors.add();
                        return "ERR unknown path";
                    case predict_reply::status::no_observations:
                        c_errors.add();
                        return "ERR no observations for path";
                    case predict_reply::status::ok: break;
                }
                std::string out = "OK ";
                out += testbed::hexd(reply.value.value_bps);
                out += ' ';
                out += status_name(reply.value.status);
                out += ' ';
                out += source_name(reply.value.inputs_used.source);
                out += ' ';
                out += std::to_string(reply.value.inputs_used.staleness);
                out += ' ';
                out += std::to_string(reply.epoch);
                return out;
            }
            case request_kind::stats: {
                std::string out = "OK paths=";
                out += std::to_string(table_.path_count());
                out += " observations=";
                out += std::to_string(table_.observations());
                out += " specs=";
                out += join_specs(table_.spec_names());
                return out;
            }
            case request_kind::snapshot: {
                if (cfg_.snapshot_file.empty()) {
                    c_errors.add();
                    return "ERR no snapshot file configured (--snapshot)";
                }
                const std::lock_guard<std::mutex> lock(snapshot_mu_);
                write_snapshot(table_, cfg_.snapshot_file);
                return "OK";
            }
        }
        c_errors.add();
        return "ERR internal: unhandled request kind";
    } catch (const protocol_error& e) {
        c_errors.add();
        return std::string("ERR ") + e.what();
    } catch (const testbed::dataset_error& e) {
        c_errors.add();
        return std::string("ERR snapshot failed: ") + e.what();
    }
}

void server::handle_connection(int fd, const std::atomic<bool>& stop) {
    static const obs::counter c_conns = obs::counter::get("serve.connections");
    c_conns.add();
    std::string buf;
    char chunk[4096];
    bool open = true;
    while (open && !stop.load(std::memory_order_relaxed)) {
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (pr == 0) continue;  // timeout: re-check stop
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break;  // client hung up
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        while (true) {
            const std::size_t nl = buf.find('\n', start);
            if (nl == std::string::npos) break;
            std::string_view line(buf.data() + start, nl - start);
            if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
            std::string response = handle_line(line);
            response += '\n';
            if (!write_all(fd, response)) {
                open = false;
                break;
            }
            start = nl + 1;
        }
        buf.erase(0, start);
        if (buf.size() > k_max_line_bytes) {
            // A line that long can only be hostile; answer once and drop.
            write_all(fd, "ERR request line too long\n");
            break;
        }
    }
    ::close(fd);
}

void server::run(const std::atomic<bool>& stop) {
    sim::thread_pool pool(static_cast<unsigned>(cfg_.workers == 0 ? 1 : cfg_.workers));
    while (!stop.load(std::memory_order_relaxed)) {
        // Bounded admission: wait for a free slot before accepting, so a
        // flood of connections backs up in the kernel's listen queue
        // instead of an unbounded task queue.
        {
            std::unique_lock<std::mutex> lock(inflight_mu_);
            if (!inflight_cv_.wait_for(lock, std::chrono::milliseconds(100), [&] {
                    return inflight_ < cfg_.max_inflight ||
                           stop.load(std::memory_order_relaxed);
                })) {
                continue;
            }
            if (stop.load(std::memory_order_relaxed)) break;
            ++inflight_;
        }
        bool admitted = false;
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr > 0) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd >= 0) {
                admitted = true;
                pool.submit([this, fd, &stop] {
                    handle_connection(fd, stop);
                    const std::lock_guard<std::mutex> lock(inflight_mu_);
                    --inflight_;
                    inflight_cv_.notify_one();
                });
            }
        }
        if (!admitted) {
            const std::lock_guard<std::mutex> lock(inflight_mu_);
            --inflight_;
            inflight_cv_.notify_one();
        }
    }
    pool.wait();
}

}  // namespace tcppred::serve
