#include "serve/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "core/checked_parse.hpp"
#include "obs/counters.hpp"
#include "testbed/checkpoint.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::serve {

namespace {

constexpr const char* k_magic = "tcppred-serve-snapshot,v1";

std::vector<std::string> split(const std::string& line, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = line.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
}

[[noreturn]] void bad(const std::filesystem::path& file, std::size_t line_no,
                      const std::string& reason) {
    throw testbed::dataset_error(file, line_no, 0, reason);
}

}  // namespace

std::string join_specs(const std::vector<std::string>& specs) {
    std::string out;
    for (std::size_t j = 0; j < specs.size(); ++j) {
        if (j != 0) out += ';';
        out += specs[j];
    }
    return out;
}

std::string render_snapshot(const path_table& table) {
    std::ostringstream out;
    out << k_magic << '\n';
    out << "specs," << join_specs(table.specs()) << '\n';

    // Two passes under one visit: count first, then body — visit_sorted
    // holds every shard lock, so both passes see the same table.
    std::uint64_t total = 0;
    std::ostringstream body;
    std::size_t paths = 0;
    table.visit_sorted([&](const std::string& name, const path_state& st) {
        ++paths;
        body << "path," << name << ',' << st.log.size() << '\n';
        for (const observation& ev : st.log) {
            body << "ev," << ev.epoch << ',' << testbed::hexd(ev.avail_bw_bps) << ','
                 << testbed::hexd(ev.phat) << ',' << testbed::hexd(ev.phat_events)
                 << ',' << testbed::hexd(ev.that_s) << ','
                 << testbed::hexd(ev.r_large_bps) << ',' << ev.fault_flags << '\n';
            ++total;
        }
    });
    out << "paths," << paths << '\n';
    out << body.str();
    out << "end," << total << '\n';
    return out.str();
}

void write_snapshot(const path_table& table, const std::filesystem::path& file) {
    static const obs::counter c_written = obs::counter::get("serve.snapshots_written");
    testbed::atomic_write_text(file, render_snapshot(table));
    c_written.add();
}

snapshot_stats load_snapshot(path_table& table, const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in) bad(file, 0, "cannot open snapshot");

    std::string line;
    std::size_t line_no = 0;
    const auto next_line = [&]() -> bool {
        if (!std::getline(in, line)) return false;
        ++line_no;
        return true;
    };

    if (!next_line() || line != k_magic) bad(file, 1, "not a serve snapshot (bad magic)");
    if (!next_line() || line.rfind("specs,", 0) != 0) bad(file, line_no, "missing specs line");
    const std::string want = join_specs(table.specs());
    const std::string got = line.substr(6);
    if (got != want) {
        bad(file, line_no,
            "spec list mismatch: snapshot has \"" + got + "\", this daemon serves \"" +
                want + "\" — refusing to resume");
    }
    if (!next_line() || line.rfind("paths,", 0) != 0) bad(file, line_no, "missing paths line");
    std::size_t paths_declared = 0;
    try {
        paths_declared = static_cast<std::size_t>(
            core::parse_checked_u64("paths", line.substr(6), 0, 1ULL << 32));
    } catch (const core::parse_error& e) {
        bad(file, line_no, e.what());
    }

    snapshot_stats stats;
    std::string current_path;
    std::uint64_t remaining = 0;  // events still expected for current_path
    bool saw_end = false;
    while (next_line()) {
        if (line.rfind("path,", 0) == 0) {
            if (remaining != 0) bad(file, line_no, "path starts before previous one's events end");
            const std::vector<std::string> f = split(line, ',');
            if (f.size() != 3) bad(file, line_no, "malformed path line");
            if (!valid_path_name(f[1])) bad(file, line_no, "illegal path name");
            current_path = f[1];
            try {
                remaining = core::parse_checked_u64("events", f[2], 0, 1ULL << 40);
            } catch (const core::parse_error& e) {
                bad(file, line_no, e.what());
            }
            ++stats.paths;
        } else if (line.rfind("ev,", 0) == 0) {
            if (current_path.empty() || remaining == 0) {
                bad(file, line_no, "event outside a path block");
            }
            const std::vector<std::string> f = split(line, ',');
            if (f.size() != 8) bad(file, line_no, "malformed event line");
            observation ev;
            try {
                ev.epoch = core::parse_checked_int("epoch", f[1], 0, std::int64_t{1} << 40);
                ev.fault_flags = static_cast<std::uint32_t>(
                    core::parse_checked_u64("flags", f[7], 0, 0xffffffffULL));
            } catch (const core::parse_error& e) {
                bad(file, line_no, e.what());
            }
            ev.avail_bw_bps = testbed::parse_hexd(f[2], file, line_no);
            ev.phat = testbed::parse_hexd(f[3], file, line_no);
            ev.phat_events = testbed::parse_hexd(f[4], file, line_no);
            ev.that_s = testbed::parse_hexd(f[5], file, line_no);
            ev.r_large_bps = testbed::parse_hexd(f[6], file, line_no);
            // Replay through the live apply path: predict-then-observe, so
            // restored state is bitwise what the writer held.
            table.observe(current_path, ev);
            --remaining;
            ++stats.events;
        } else if (line.rfind("end,", 0) == 0) {
            if (remaining != 0) bad(file, line_no, "end before last path's events");
            std::uint64_t declared = 0;
            try {
                declared = core::parse_checked_u64("end", line.substr(4), 0, 1ULL << 40);
            } catch (const core::parse_error& e) {
                bad(file, line_no, e.what());
            }
            if (declared != stats.events) {
                bad(file, line_no, "event count mismatch (truncated snapshot?)");
            }
            saw_end = true;
            break;
        } else if (line.empty()) {
            bad(file, line_no, "unexpected blank line");
        } else {
            bad(file, line_no, "unrecognized line");
        }
    }
    if (!saw_end) bad(file, line_no, "snapshot has no end marker (truncated?)");
    if (stats.paths != paths_declared) {
        bad(file, line_no, "path count mismatch (truncated snapshot?)");
    }
    return stats;
}

}  // namespace tcppred::serve
