#include "serve/protocol.hpp"

#include <cmath>
#include <vector>

#include "core/checked_parse.hpp"
#include "testbed/checkpoint.hpp"

namespace tcppred::serve {

namespace {

bool path_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '.' || c == '/' || c == ':' || c == '-';
}

/// Split on runs of spaces. Any other control/whitespace byte is rejected
/// up front so a request can never smuggle a newline or NUL into a path.
std::vector<std::string_view> tokenize(std::string_view line) {
    for (const char c : line) {
        if (c == ' ') continue;
        if (static_cast<unsigned char>(c) < 0x21 || static_cast<unsigned char>(c) > 0x7e) {
            throw protocol_error("illegal byte in request line");
        }
    }
    std::vector<std::string_view> toks;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ') ++i;
        if (i > start) toks.push_back(line.substr(start, i - start));
    }
    return toks;
}

std::string take_path(std::string_view tok) {
    if (!valid_path_name(tok)) {
        throw protocol_error("illegal path name (want 1.." +
                             std::to_string(k_max_path_bytes) +
                             " chars of [A-Za-z0-9_./:-])");
    }
    return std::string(tok);
}

/// A measurement field: any finite double or NaN (a faulted field), never
/// ±inf. Whole-token or nothing, same as core::parse_checked_double.
double parse_meas(std::string_view field, std::string_view tok) {
    const std::string buf(tok);
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || end == buf.c_str()) {
        throw protocol_error("bad value for " + std::string(field) + ": \"" + buf +
                             "\" (expected a number)");
    }
    if (std::isinf(v)) {
        throw protocol_error("bad value for " + std::string(field) + ": \"" + buf +
                             "\" (must be finite or nan)");
    }
    return v;
}

/// A loss-rate field: as parse_meas, plus the probability invariant — the
/// value feeds core::probability, whose constructor asserts [0,1].
double parse_loss(std::string_view field, std::string_view tok) {
    const double v = parse_meas(field, tok);
    if (!std::isnan(v) && !(v >= 0.0 && v <= 1.0)) {
        throw protocol_error("bad value for " + std::string(field) + ": \"" +
                             std::string(tok) + "\" (loss rate must be in [0,1] or nan)");
    }
    return v;
}

}  // namespace

bool valid_path_name(std::string_view path) noexcept {
    if (path.empty() || path.size() > k_max_path_bytes) return false;
    for (const char c : path) {
        if (!path_char(c)) return false;
    }
    return true;
}

request parse_request_line(std::string_view line) {
    if (line.size() > k_max_line_bytes) throw protocol_error("request line too long");
    const std::vector<std::string_view> toks = tokenize(line);
    if (toks.empty()) throw protocol_error("empty request line");

    request req;
    const std::string_view verb = toks[0];
    try {
        if (verb == "OBSERVE") {
            if (toks.size() != 9) {
                throw protocol_error(
                    "OBSERVE wants 8 fields: <path> <epoch> <availbw> <phat> "
                    "<phat_events> <that_s> <r_large> <flags>");
            }
            req.kind = request_kind::observe;
            req.path = take_path(toks[1]);
            req.obs.epoch = core::parse_checked_int("epoch", toks[2], 0,
                                                    std::int64_t{1} << 40);
            req.obs.avail_bw_bps = parse_meas("availbw", toks[3]);
            req.obs.phat = parse_loss("phat", toks[4]);
            req.obs.phat_events = parse_loss("phat_events", toks[5]);
            req.obs.that_s = parse_meas("that_s", toks[6]);
            req.obs.r_large_bps = parse_meas("r_large", toks[7]);
            req.obs.fault_flags = static_cast<std::uint32_t>(
                core::parse_checked_u64("flags", toks[8], 0, 0xffffffffULL));
        } else if (verb == "PREDICT") {
            if (toks.size() != 3) {
                throw protocol_error("PREDICT wants 2 fields: <path> <spec>");
            }
            req.kind = request_kind::predict;
            req.path = take_path(toks[1]);
            req.spec = std::string(toks[2]);
        } else if (verb == "STATS") {
            if (toks.size() != 1) throw protocol_error("STATS takes no fields");
            req.kind = request_kind::stats;
        } else if (verb == "SNAPSHOT") {
            if (toks.size() != 1) throw protocol_error("SNAPSHOT takes no fields");
            req.kind = request_kind::snapshot;
        } else {
            throw protocol_error("unknown verb (want OBSERVE, PREDICT, STATS or "
                                 "SNAPSHOT)");
        }
    } catch (const core::parse_error& e) {
        throw protocol_error(e.what());
    }
    return req;
}

std::string format_observe(std::string_view path, const observation& obs) {
    std::string out = "OBSERVE ";
    out += path;
    out += ' ';
    out += std::to_string(obs.epoch);
    for (const double v : {obs.avail_bw_bps, obs.phat, obs.phat_events, obs.that_s,
                           obs.r_large_bps}) {
        out += ' ';
        out += testbed::hexd(v);
    }
    out += ' ';
    out += std::to_string(obs.fault_flags);
    return out;
}

}  // namespace tcppred::serve
