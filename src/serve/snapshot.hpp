// Serve daemon snapshots: the path table persisted as an event-sourced
// replay log, reusing the repo's bit-exact persistence primitives
// (testbed::hexd + atomic_write_text, DESIGN.md §17).
//
// Format (line-oriented, doubles in hexfloat):
//
//   tcppred-serve-snapshot,v1
//   specs,<spec1>;<spec2>;...
//   paths,<path count>
//   path,<name>,<event count>
//   ev,<epoch>,<availbw>,<phat>,<phat_events>,<that_s>,<r_large>,<flags>
//   ...
//   end,<total events>
//
// Paths are emitted in ascending name order (shard-count independent), each
// followed by its events in observation order. Restoring replays every
// event through path_table::observe — the same predict-then-observe apply
// path live requests take — so a restored daemon's predictor state and
// cached forecasts are bitwise identical to the one that wrote the
// snapshot, and re-rendering immediately after a restore reproduces the
// file byte for byte (the round-trip test pins this).
//
// The specs line is the snapshot's fingerprint: restoring under any other
// spec list is refused (testbed::dataset_error), mirroring the campaign
// checkpoint contract.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "serve/path_table.hpp"

namespace tcppred::serve {

/// What a snapshot load replayed.
struct snapshot_stats {
    std::size_t paths{0};
    std::uint64_t events{0};
};

/// Render the table's snapshot text (format above).
[[nodiscard]] std::string render_snapshot(const path_table& table);

/// Render and persist via testbed::atomic_write_text — readers only ever
/// observe the previous snapshot or this one, never a torn file.
void write_snapshot(const path_table& table, const std::filesystem::path& file);

/// Parse `file` and replay every event into `table` (which must be empty
/// and configured with the exact spec list the snapshot names). Throws
/// testbed::dataset_error on a malformed file or a spec-list mismatch.
snapshot_stats load_snapshot(path_table& table, const std::filesystem::path& file);

/// The specs fingerprint line body for a spec list (';'-joined).
[[nodiscard]] std::string join_specs(const std::vector<std::string>& specs);

}  // namespace tcppred::serve
