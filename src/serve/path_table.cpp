#include "serve/path_table.hpp"

#include <utility>

#include "analysis/evaluation.hpp"
#include "obs/counters.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::serve {

path_table::path_table(std::vector<std::string> specs, core::predictor_config cfg,
                       std::size_t shards)
    : specs_(std::move(specs)) {
    protos_.reserve(specs_.size());
    names_.reserve(specs_.size());
    for (std::size_t j = 0; j < specs_.size(); ++j) {
        protos_.push_back(core::make_predictor(specs_[j], cfg));
        names_.push_back(protos_.back()->name());
        spec_index_.emplace(specs_[j], j);
        spec_index_.emplace(names_.back(), j);
    }
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) shards_.push_back(std::make_unique<shard>());
}

std::size_t path_table::shard_of(std::string_view path) const noexcept {
    // FNV-1a: stable across platforms, so snapshots and tests never depend
    // on std::hash's implementation.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : path) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h % shards_.size());
}

std::uint64_t path_table::observe(const std::string& path, const observation& ev) {
    static const obs::counter c_observe = obs::counter::get("serve.observations");
    static const obs::counter c_paths = obs::counter::get("serve.paths_created");

    // The observation projected exactly as the engine's default view
    // (analysis::view_of_record): same failed/absent/valid decision, same
    // actual masking — the root of the bitwise-equivalence contract.
    testbed::epoch_record rec;
    rec.epoch_index = static_cast<int>(ev.epoch);
    rec.m.avail_bw_bps = ev.avail_bw_bps;
    rec.m.phat = ev.phat;
    rec.m.phat_events = ev.phat_events;
    rec.m.that_s = ev.that_s;
    rec.m.r_large_bps = ev.r_large_bps;
    rec.m.fault_flags = ev.fault_flags;
    const analysis::record_view rv = analysis::view_of_record(rec);

    shard& sh = *shards_[shard_of(path)];
    const std::lock_guard<std::mutex> lock(sh.mu);
    auto [it, inserted] = sh.paths.try_emplace(path);
    path_state& st = it->second;
    if (inserted) {
        st.preds.reserve(protos_.size());
        for (const auto& proto : protos_) st.preds.push_back(proto->clone_empty());
        st.last.resize(protos_.size());
        c_paths.add();
    }
    for (std::size_t j = 0; j < st.preds.size(); ++j) {
        st.last[j] = cached_prediction{st.preds[j]->predict(rv.inputs), ev.epoch};
        st.preds[j]->observe_maybe(rv.actual_bps);
    }
    st.log.push_back(ev);
    c_observe.add();
    return observations_.fetch_add(1, std::memory_order_relaxed) + 1;
}

predict_reply path_table::predict(const std::string& path,
                                  const std::string& spec) const {
    static const obs::counter c_predict = obs::counter::get("serve.predictions");
    predict_reply reply;
    const auto spec_it = spec_index_.find(spec);
    if (spec_it == spec_index_.end()) {
        reply.st = predict_reply::status::unknown_spec;
        return reply;
    }
    const shard& sh = *shards_[shard_of(path)];
    const std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.paths.find(path);
    if (it == sh.paths.end()) {
        reply.st = predict_reply::status::unknown_path;
        return reply;
    }
    const cached_prediction& cached = it->second.last[spec_it->second];
    if (cached.epoch < 0) {
        reply.st = predict_reply::status::no_observations;
        return reply;
    }
    reply.value = cached.value;
    reply.epoch = cached.epoch;
    c_predict.add();
    return reply;
}

std::size_t path_table::path_count() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) {
        const std::lock_guard<std::mutex> lock(sh->mu);
        n += sh->paths.size();
    }
    return n;
}

void path_table::visit_sorted(
    const std::function<void(const std::string&, const path_state&)>& fn) const {
    // Lock every shard (fixed index order — the only multi-shard lock site,
    // so no ordering conflicts), then walk a merged sorted view.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (const auto& sh : shards_) locks.emplace_back(sh->mu);
    std::map<std::string_view, const path_state*> merged;
    for (const auto& sh : shards_) {
        for (const auto& [name, st] : sh->paths) merged.emplace(name, &st);
    }
    for (const auto& [name, st] : merged) fn(std::string(name), *st);
}

}  // namespace tcppred::serve
