// Per-path predictor state for the serve daemon: a sharded, mutex-striped
// table mapping path keys to a set of live predictors (one per configured
// spec), their latest cached forecasts, and the replay log snapshots are
// built from (snapshot.hpp).
//
// Equivalence contract (DESIGN.md §17): applying an OBSERVE runs the exact
// per-epoch pipeline of the offline engine — analysis::view_of_record for
// the input projection, then predict() before observe_maybe() on every
// predictor — so a replayed observation stream yields forecasts bitwise
// identical to analysis::evaluation_engine over the same records. predict()
// is only ever called from the observe path (one call per epoch; the FB
// staleness fallback ages on every call) — PREDICT requests return the
// cached forecast and never touch predictor state.
//
// Concurrency: paths are striped over N shards by FNV-1a hash, one mutex
// per shard; operations on different shards run concurrently, operations on
// one path serialize. Per-path state depends only on that path's
// observation order, so any interleaving of disjoint paths reaches the same
// state (the concurrent determinism test pins this). Shard maps are
// std::map: deterministic iteration, per the det-unordered-iter lint rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/predictor_registry.hpp"
#include "serve/protocol.hpp"

namespace tcppred::serve {

/// The forecast a predictor produced at a path's latest observed epoch.
struct cached_prediction {
    core::prediction value{};
    std::int64_t epoch{-1};  ///< epoch of the observation; -1 = none yet
};

/// One path's live state. Vectors are indexed by spec position.
struct path_state {
    std::vector<std::unique_ptr<core::predictor>> preds;
    std::vector<cached_prediction> last;
    std::vector<observation> log;  ///< replay log, observation order
};

/// Outcome of a PREDICT lookup.
struct predict_reply {
    enum class status { ok, unknown_path, unknown_spec, no_observations };
    status st{status::ok};
    core::prediction value{};
    std::int64_t epoch{-1};
};

class path_table {
public:
    /// Builds one prototype per spec up front (throws
    /// core::predictor_spec_error on a bad spec before any request is
    /// served). `shards` has a floor of 1.
    path_table(std::vector<std::string> specs, core::predictor_config cfg = {},
               std::size_t shards = 8);

    /// Apply one observation to `path` (creating it on first sight):
    /// project, predict every spec, cache, observe, append to the log.
    /// Returns the table-wide observation count after this one.
    std::uint64_t observe(const std::string& path, const observation& obs);

    /// The cached forecast `spec` made at `path`'s latest epoch. `spec`
    /// matches either the configured spec string or its canonical
    /// predictor::name() form.
    [[nodiscard]] predict_reply predict(const std::string& path,
                                        const std::string& spec) const;

    [[nodiscard]] std::uint64_t observations() const noexcept {
        return observations_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t path_count() const;

    [[nodiscard]] const std::vector<std::string>& specs() const noexcept {
        return specs_;
    }
    /// Canonical names (predictor::name()), spec order.
    [[nodiscard]] const std::vector<std::string>& spec_names() const noexcept {
        return names_;
    }

    /// Visit every path in ascending name order — shard-count independent —
    /// holding all shard locks for the duration (snapshot rendering).
    void visit_sorted(
        const std::function<void(const std::string&, const path_state&)>& fn) const;

private:
    struct shard {
        mutable std::mutex mu;
        std::map<std::string, path_state> paths;
    };

    [[nodiscard]] std::size_t shard_of(std::string_view path) const noexcept;

    std::vector<std::string> specs_;
    std::vector<std::string> names_;
    std::map<std::string, std::size_t> spec_index_;  ///< spec AND name -> index
    std::vector<std::unique_ptr<core::predictor>> protos_;
    std::vector<std::unique_ptr<shard>> shards_;
    std::atomic<std::uint64_t> observations_{0};
};

}  // namespace tcppred::serve
