// The serve daemon's line-oriented request protocol (DESIGN.md §17).
//
// One request per line, ASCII, space-separated fields:
//
//   OBSERVE <path> <epoch> <availbw> <phat> <phat_events> <that_s> <r_large> <flags>
//       Append one epoch's measurement to <path>'s series. Doubles are any
//       strtod-parseable form; the bit-exact interchange format is hexfloat
//       (testbed::hexd), and "nan" marks a faulted field. <flags> is the
//       epoch_fault_flag bitmask (decimal).
//   PREDICT <path> <spec>
//       Return the cached forecast <spec> made at <path>'s latest epoch.
//   STATS
//       One-line daemon summary (paths, observations, specs).
//   SNAPSHOT
//       Synchronously persist a snapshot (needs --snapshot).
//
// Responses are single lines: "OK[ fields...]" or "ERR <reason>". This
// parser is the daemon's untrusted-input boundary — every malformed line
// must surface as protocol_error, never as a crash or a contract violation
// downstream (core::probability asserts its [0,1] invariant, so loss-rate
// fields are range-checked HERE). It is fuzzed (tests/fuzz/fuzz_serve_request).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tcppred::serve {

/// Hard cap on one request line (bytes, excluding the newline). The server
/// drops connections that exceed it; the parser rejects longer inputs too
/// so the limit cannot be bypassed by other transports.
inline constexpr std::size_t k_max_line_bytes = 64 * 1024;

/// Hard cap on a path name; keeps per-path keys (and snapshot lines) small.
inline constexpr std::size_t k_max_path_bytes = 256;

/// Thrown on any malformed request line. The message is safe to echo back
/// to the client ("ERR <what()>").
class protocol_error : public std::runtime_error {
public:
    explicit protocol_error(const std::string& reason) : std::runtime_error(reason) {}
};

/// One OBSERVE payload: the a-priori measurement fields the engine's
/// default view consumes (analysis::view_of_record) plus the fault bitmask.
/// This is also the unit of the snapshot replay log (snapshot.hpp).
struct observation {
    std::int64_t epoch{0};
    double avail_bw_bps{0.0};
    double phat{0.0};
    double phat_events{0.0};
    double that_s{0.0};
    double r_large_bps{0.0};
    std::uint32_t fault_flags{0};
};

enum class request_kind { observe, predict, stats, snapshot };

/// One parsed request. `path`/`spec`/`obs` are meaningful per kind.
struct request {
    request_kind kind{request_kind::stats};
    std::string path;
    std::string spec;  ///< PREDICT only
    observation obs{};  ///< OBSERVE only
};

/// Whether `path` is a legal path key: 1..k_max_path_bytes characters from
/// [A-Za-z0-9_./:-]. The charset deliberately excludes ',' and whitespace so
/// path names embed verbatim in snapshot lines and response fields.
[[nodiscard]] bool valid_path_name(std::string_view path) noexcept;

/// Parse one request line (no trailing newline). Throws protocol_error on
/// anything malformed: unknown verb, wrong field count, bad numbers,
/// loss rates outside [0,1], non-finite non-NaN fields, illegal path names.
[[nodiscard]] request parse_request_line(std::string_view line);

/// Render an OBSERVE line for `path` carrying `obs`, doubles in hexfloat —
/// the exact inverse of parse_request_line (loadgen and tests use this).
[[nodiscard]] std::string format_observe(std::string_view path, const observation& obs);

}  // namespace tcppred::serve
