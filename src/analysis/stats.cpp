#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcppred::analysis {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (const double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (const double x : xs) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) return 0.0;
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
    if (xs.size() < 2) return 0.0;
    const double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double cov(std::span<const double> xs) {
    const double m = mean(xs);
    if (m == 0.0) return 0.0;
    return stddev(xs) / m;
}

double weighted_cov(const std::vector<double>& series, core::lso_config lso) {
    if (series.empty()) return 0.0;
    const core::lso_scan_result scan = core::lso_scan(series, lso);

    double weighted_sum = 0.0;
    std::size_t total = 0;
    for (std::size_t s = 0; s < scan.segment_starts.size(); ++s) {
        const std::size_t begin = scan.segment_starts[s];
        const std::size_t end = (s + 1 < scan.segment_starts.size())
                                    ? scan.segment_starts[s + 1]
                                    : series.size();
        std::vector<double> segment;
        for (std::size_t i = begin; i < end; ++i) {
            if (!scan.is_outlier[i]) segment.push_back(series[i]);
        }
        if (segment.size() < 2) continue;
        weighted_sum += cov(segment) * static_cast<double>(segment.size());
        total += segment.size();
    }
    return total > 0 ? weighted_sum / static_cast<double>(total) : 0.0;
}

ecdf::ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
}

double ecdf::at(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double ecdf::quantile(double q) const {
    if (sorted_.empty()) return 0.0;
    if (q <= 0.0) return sorted_.front();
    if (q >= 1.0) return sorted_.back();
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_.size()));
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> ecdf::curve(std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points == 0) return out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double q = static_cast<double>(i + 1) / static_cast<double>(points);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

}  // namespace tcppred::analysis
