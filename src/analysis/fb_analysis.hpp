// Applies the FB predictor (Eq. 3) across a measurement dataset and
// computes the per-epoch relative errors and per-trace/per-path summaries
// that Figs. 2-14 and 19 report.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fb_predictor.hpp"
#include "core/metrics.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::analysis {

/// How to evaluate the FB predictor over a dataset.
struct fb_options {
    core::fb_formula formula{core::fb_formula::pftk};
    /// Use the during-flow probing view (T̃, p̃) instead of the a-priori one
    /// (the hypothetical of §4.2.3 / Fig. 6).
    bool use_during_flow{false};
    /// Use the loss-EVENT rate (consecutive probe losses collapsed, Goyal
    /// et al.) instead of the raw probe loss rate as the PFTK input.
    bool use_event_loss{false};
    /// Smooth the RTT/loss inputs with a 10-sample moving average over the
    /// preceding epochs of the same trace (§4.2.10 / Fig. 14).
    bool smooth_inputs{false};
    std::size_t smooth_window{10};
    /// Predict/score the W=20KB companion transfer instead of the W=1MB
    /// target (Fig. 12).
    bool small_window{false};
    core::tcp_flow_params flow{};  ///< max_window is overridden by window_bytes
    std::uint64_t window_bytes{1 << 20};
    /// Fallback policy for epochs whose a-priori measurement failed
    /// (fault-injected campaigns): reuse the last good measurement of the
    /// trace up to max_staleness epochs old (core/fb_predictor.hpp).
    core::degraded_fb_config degraded{};
};

/// One scored epoch.
struct fb_epoch_eval {
    const testbed::epoch_record* rec{nullptr};
    core::fb_prediction pred;
    double actual_bps{0.0};
    double error{0.0};  ///< E (Eq. 4)
    /// Epochs between this prediction's inputs and the epoch it scored
    /// (0 = fresh measurement; >0 only under measurement faults).
    std::size_t staleness{0};
};

/// Score every epoch in the dataset. Epochs whose actual throughput is zero
/// (transfer never got going within the epoch) are skipped. Epochs whose
/// a-priori measurement failed (fault flags / NaN inputs) are predicted from
/// the last good measurement within opts.degraded.max_staleness, or skipped
/// when no usable fallback exists; faults degrade coverage, never abort the
/// analysis.
[[nodiscard]] std::vector<fb_epoch_eval> evaluate_fb(const testbed::dataset& data,
                                                     fb_options opts = {});

/// RMSRE conditioned on measurement-failure status (fault-injection
/// campaigns): clean epochs vs epochs carrying any fault flag, plus the
/// stale-input subset. For fault-free datasets n_faulty == n_stale == 0 and
/// rmsre_clean equals the unconditional RMSRE.
struct fb_conditioned_rmsre {
    double rmsre_clean{0.0};
    std::size_t n_clean{0};
    double rmsre_faulty{0.0};   ///< epochs with any fault flag set
    std::size_t n_faulty{0};
    double rmsre_stale{0.0};    ///< scored from a stale fallback measurement
    std::size_t n_stale{0};
};
[[nodiscard]] fb_conditioned_rmsre fb_rmsre_conditioned(
    const std::vector<fb_epoch_eval>& evals);

/// Extract just the error values (for CDFs).
[[nodiscard]] std::vector<double> errors_of(const std::vector<fb_epoch_eval>& evals);

/// Per-trace RMSRE of the FB predictor (Fig. 19, Fig. 12).
struct trace_rmsre {
    int path_id{0};
    int trace_id{0};
    double rmsre{0.0};
    std::size_t samples{0};
};
[[nodiscard]] std::vector<trace_rmsre> fb_rmsre_per_trace(
    const std::vector<fb_epoch_eval>& evals);

/// Per-path error distribution summary (Fig. 7).
struct path_error_summary {
    int path_id{0};
    double p10{0.0};
    double median{0.0};
    double p90{0.0};
    std::size_t samples{0};
};
[[nodiscard]] std::vector<path_error_summary> fb_error_per_path(
    const std::vector<fb_epoch_eval>& evals);

}  // namespace tcppred::analysis
