#include "analysis/fb_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "analysis/stats.hpp"

namespace tcppred::analysis {

std::vector<fb_epoch_eval> evaluate_fb(const testbed::dataset& data, fb_options opts) {
    core::tcp_flow_params flow = opts.flow;
    flow.max_window = core::bytes{static_cast<double>(opts.window_bytes)};

    // For input smoothing we need per-trace history of (p̂, T̂) in epoch
    // order; build an index once.
    const auto traces = data.traces();

    std::vector<fb_epoch_eval> out;
    out.reserve(data.records.size());
    for (const auto& [key, recs] : traces) {
        std::vector<double> p_hist, t_hist;
        core::degraded_fb_predictor degraded(flow, opts.formula, opts.degraded);
        for (const testbed::epoch_record* rec : recs) {
            const auto& m = rec->m;
            const double actual = opts.small_window ? m.r_small_bps : m.r_large_bps;

            // Smoothing and branching happen on the raw doubles; the strong
            // types are applied once, at the fb_predict boundary below.
            double loss_in = 0.0;
            double rtt_in = 0.0;
            if (opts.use_during_flow) {
                loss_in = m.ptilde;
                rtt_in = m.ttilde_s;
            } else {
                loss_in = opts.use_event_loss ? m.phat_events : m.phat;
                rtt_in = m.that_s;
            }

            // A failed a-priori measurement (fault flags or NaN fields) never
            // reaches the formula; the degraded predictor below substitutes
            // the trace's last good measurement instead.
            const bool meas_failed = testbed::apriori_faulty(m.fault_flags) ||
                                     std::isnan(loss_in) || std::isnan(rtt_in) ||
                                     std::isnan(m.avail_bw_bps);

            if (opts.smooth_inputs && !meas_failed) {
                // One-step-ahead moving average over the previous epochs'
                // good measurements; the raw current measurement seeds the
                // very first epoch of a trace.
                if (!p_hist.empty()) {
                    const std::size_t n = std::min(opts.smooth_window, p_hist.size());
                    double ps = 0.0, ts = 0.0;
                    for (std::size_t k = p_hist.size() - n; k < p_hist.size(); ++k) {
                        ps += p_hist[k];
                        ts += t_hist[k];
                    }
                    loss_in = ps / static_cast<double>(n);
                    rtt_in = ts / static_cast<double>(n);
                }
                p_hist.push_back(opts.use_during_flow ? m.ptilde : m.phat);
                t_hist.push_back(opts.use_during_flow ? m.ttilde_s : m.that_s);
            }

            // Legacy guard for clean data: a zero RTT means the epoch never
            // produced a prior view; it is skipped outright, not substituted.
            if (!meas_failed && rtt_in <= 0.0) continue;

            std::optional<core::path_measurement> meas;
            if (!meas_failed) {
                meas.emplace(core::path_measurement{
                    core::probability{loss_in}, core::seconds{rtt_in},
                    core::bits_per_second{m.avail_bw_bps}});
            }
            const auto predicted = degraded.predict(meas);
            if (!predicted) continue;  // nothing usable within the staleness bound
            if (std::isnan(actual) || actual <= 0.0) continue;

            fb_epoch_eval e;
            e.rec = rec;
            e.pred = predicted->pred;
            e.actual_bps = actual;
            e.error = core::relative_error(e.pred.throughput.value(), actual);
            e.staleness = predicted->staleness;
            out.push_back(e);
        }
    }
    return out;
}

fb_conditioned_rmsre fb_rmsre_conditioned(const std::vector<fb_epoch_eval>& evals) {
    std::vector<double> clean, faulty, stale;
    for (const auto& e : evals) {
        if (e.rec->m.fault_flags == testbed::fault_none) {
            clean.push_back(e.error);
        } else {
            faulty.push_back(e.error);
        }
        if (e.staleness > 0) stale.push_back(e.error);
    }
    fb_conditioned_rmsre out;
    out.rmsre_clean = core::rmsre(clean);
    out.n_clean = clean.size();
    out.rmsre_faulty = core::rmsre(faulty);
    out.n_faulty = faulty.size();
    out.rmsre_stale = core::rmsre(stale);
    out.n_stale = stale.size();
    return out;
}

std::vector<double> errors_of(const std::vector<fb_epoch_eval>& evals) {
    std::vector<double> out;
    out.reserve(evals.size());
    for (const auto& e : evals) out.push_back(e.error);
    return out;
}

std::vector<trace_rmsre> fb_rmsre_per_trace(const std::vector<fb_epoch_eval>& evals) {
    std::map<std::pair<int, int>, std::vector<double>> grouped;
    for (const auto& e : evals) {
        grouped[{e.rec->path_id, e.rec->trace_id}].push_back(e.error);
    }
    std::vector<trace_rmsre> out;
    out.reserve(grouped.size());
    for (const auto& [key, errors] : grouped) {
        out.push_back(trace_rmsre{key.first, key.second, core::rmsre(errors),
                                  errors.size()});
    }
    return out;
}

std::vector<path_error_summary> fb_error_per_path(const std::vector<fb_epoch_eval>& evals) {
    std::map<int, std::vector<double>> grouped;
    for (const auto& e : evals) grouped[e.rec->path_id].push_back(e.error);

    std::vector<path_error_summary> out;
    out.reserve(grouped.size());
    for (const auto& [path, errors] : grouped) {
        out.push_back(path_error_summary{path, quantile(errors, 0.10),
                                         quantile(errors, 0.50), quantile(errors, 0.90),
                                         errors.size()});
    }
    return out;
}

}  // namespace tcppred::analysis
