// The single streaming evaluation engine behind every figure and tool:
// walks a dataset once per (path, trace), feeds each epoch to every
// registered predictor (predict → score → observe), and emits per-epoch
// relative errors (Eq. 4) plus per-trace RMSREs (Eq. 5). Formula-based and
// history-based predictors run through the same loop — the engine builds
// each epoch's a-priori measurement view for FB-style predictors and the
// masked throughput series for HB-style ones, and fault-flagged epochs
// reach predictors uniformly as observe_gap()/failed-measurement inputs.
//
// Determinism (DESIGN.md §6): traces are processed in dataset::traces()
// order, results land in pre-sized slots indexed by trace, and every
// predictor is cloned fresh per trace — so the output is byte-identical for
// any jobs / $REPRO_JOBS value.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/lso.hpp"
#include "core/predictor.hpp"
#include "core/predictor_registry.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::analysis {

/// How the engine turns a dataset into per-epoch inputs and actuals.
struct engine_options {
    /// Use the during-flow probing view (T̃, p̃) instead of the a-priori one
    /// (the hypothetical of §4.2.3 / Fig. 6).
    bool use_during_flow{false};
    /// Use the loss-EVENT rate (consecutive probe losses collapsed, Goyal
    /// et al.) instead of the raw probe loss rate as the model input.
    bool use_event_loss{false};
    /// Smooth the RTT/loss inputs with a moving average over the preceding
    /// epochs of the same trace (§4.2.10 / Fig. 14).
    bool smooth_inputs{false};
    std::size_t smooth_window{10};
    /// Predict/score the W=20KB companion transfer instead of the W=1MB
    /// target (Figs. 12, 22).
    bool small_window{false};
    /// Keep every k-th epoch of each trace (sporadic transfers, §6.1.6).
    std::size_t downsample{1};
    /// Skip scoring the first `warmup` walked epochs of each trace (they
    /// only seed history). History-based predictors already return
    /// no_history at epoch 0, so 0 reproduces the paper's HB evaluation.
    std::size_t warmup{0};
    /// Retrospectively exclude samples flagged as outliers by an LSO scan
    /// from the error statistics (CoV analysis, §6.1.3). Scan parameters
    /// come from predictor.lso.
    bool exclude_outliers{false};
    /// Worker threads over traces: 0 = $REPRO_JOBS/auto, 1 = serial.
    /// Results are byte-identical for every value.
    int jobs{1};
    /// Shared predictor parameters (flow, window, fallback, LSO tuning).
    core::predictor_config predictor{};
};

/// One epoch record projected to the engine's per-epoch evaluation inputs:
/// the a-priori measurement view predict() sees and the (possibly masked)
/// actual throughput observe_maybe() reveals.
struct record_view {
    core::epoch_inputs inputs{};
    /// Measured throughput; NaN when the transfer measurement faulted.
    double actual_bps{std::numeric_limits<double>::quiet_NaN()};
};

/// The stateless per-record slice of the engine's view building, honouring
/// the stateless engine_options switches (use_during_flow, use_event_loss,
/// small_window) and ignoring the cross-epoch ones (smooth_inputs,
/// downsample, which need trace context). The engine itself routes every
/// non-smoothed epoch through this function, so an online consumer — the
/// serve daemon replaying an observation stream — sees bitwise-identical
/// inputs to an offline engine run over the same records by construction.
[[nodiscard]] record_view view_of_record(const testbed::epoch_record& rec,
                                         const engine_options& opts = {});

/// One scored epoch of one predictor.
struct epoch_score {
    const testbed::epoch_record* rec{nullptr};  ///< null for series evaluation
    std::size_t index{0};        ///< position in the walked (downsampled) series
    double predicted_bps{0.0};   ///< R̂
    double actual_bps{0.0};      ///< R
    double error{0.0};           ///< E (Eq. 4)
    core::prediction_source source{core::prediction_source::history};
    /// Epochs between the prediction's inputs and the epoch it scored
    /// (0 = fresh; >0 only under measurement faults, FB-style predictors).
    std::size_t staleness{0};
};

/// One predictor's scored epochs and RMSRE on one (path, trace) series.
struct trace_result {
    int path_id{0};
    int trace_id{0};
    double rmsre{0.0};
    std::vector<epoch_score> epochs;

    [[nodiscard]] std::size_t forecasts() const noexcept { return epochs.size(); }
};

/// One predictor's results over the whole dataset, traces in
/// dataset::traces() order. Traces shorter than the predictor's
/// min_trace_length(), and traces where no epoch could be scored, are
/// omitted from `traces` and tallied in `traces_unscored` — an all-faulty
/// trace has NO error (core::rmsre of nothing is NaN), not a perfect one,
/// and tools render the gap as "n/a" instead of silently shrinking the
/// denominator.
struct predictor_result {
    std::string name;  ///< canonical spec (predictor::name())
    std::vector<trace_result> traces;
    /// Input traces that produced no scored epoch (too short for the
    /// predictor, every epoch faulty/warmup/excluded, ...).
    std::size_t traces_unscored{0};

    /// Per-trace RMSRE values, trace order (for CDFs over traces).
    [[nodiscard]] std::vector<double> trace_rmsres() const;
    /// Per-epoch relative errors, trace order (for CDFs over epochs).
    [[nodiscard]] std::vector<double> epoch_errors() const;
    /// All scored epochs flattened, trace order.
    [[nodiscard]] std::vector<epoch_score> all_epochs() const;
};

/// The engine. Construct with options, run over a dataset with a list of
/// registry specs (core::make_predictor) or pre-built prototypes.
class evaluation_engine {
public:
    explicit evaluation_engine(engine_options opts = {}) : opts_(opts) {}

    /// Evaluate every spec in one pass over the data. Throws
    /// core::predictor_spec_error on a bad spec before touching the data.
    [[nodiscard]] std::vector<predictor_result> run(
        const testbed::dataset& data, const std::vector<std::string>& specs) const;

    /// Evaluate externally constructed prototypes (cloned per trace).
    [[nodiscard]] std::vector<predictor_result> run(
        const testbed::dataset& data,
        const std::vector<const core::predictor*>& prototypes) const;

    /// Convenience: evaluate a single spec.
    [[nodiscard]] predictor_result run_one(const testbed::dataset& data,
                                           const std::string& spec) const;

    [[nodiscard]] const engine_options& options() const noexcept { return opts_; }

private:
    engine_options opts_;
};

/// Evaluate one predictor over a bare throughput series (synthetic traces,
/// micro-benchmarks): each epoch is presented with no measurement view, NaN
/// samples are gaps. The same scoring loop the engine uses per trace.
struct series_options {
    /// Skip forecasting the first `warmup` samples (they seed history).
    std::size_t warmup{1};
    bool exclude_outliers{false};
    core::lso_config lso{};  ///< parameters for the exclusion scan
};

struct series_evaluation {
    std::vector<double> errors;        ///< relative error of each forecast made
    std::vector<std::size_t> indices;  ///< series index each error refers to
    double rmsre{0.0};

    [[nodiscard]] std::size_t forecasts() const noexcept { return errors.size(); }
};

[[nodiscard]] series_evaluation evaluate_series(const std::vector<double>& series,
                                                const core::predictor& prototype,
                                                series_options opts = {});

/// Keep every k-th sample of a series (down-sampling to a longer transfer
/// period, §6.1.6).
[[nodiscard]] std::vector<double> downsample(const std::vector<double>& series,
                                             std::size_t factor);

/// RMSRE conditioned on measurement-failure status (fault-injection
/// campaigns): clean epochs vs epochs carrying any fault flag, plus the
/// stale-input subset. For fault-free datasets n_faulty == n_stale == 0 and
/// rmsre_clean equals the unconditional RMSRE.
struct conditioned_rmsre {
    double rmsre_clean{0.0};
    std::size_t n_clean{0};
    double rmsre_faulty{0.0};  ///< epochs with any fault flag set
    std::size_t n_faulty{0};
    double rmsre_stale{0.0};   ///< scored from a stale fallback measurement
    std::size_t n_stale{0};
};
[[nodiscard]] conditioned_rmsre rmsre_conditioned(const predictor_result& result);

/// Pull-based record source for evaluate_stream: fill `out` with the next
/// record and return true, or return false at end of data. Records must
/// arrive grouped by (path, trace) in ascending (path, trace) order — the
/// order dataset::traces() iterates and the linear order a record store
/// (testbed/record_store.hpp) streams, so a store reader plugs in directly.
using record_source = std::function<bool(testbed::epoch_record&)>;

/// One trace's RMSRE in a streamed evaluation (the per-trace scalars of
/// trace_result, without the per-epoch payload).
struct stream_trace_rmsre {
    int path_id{0};
    int trace_id{0};
    double rmsre{0.0};
    std::size_t epochs{0};  ///< scored epochs behind the RMSRE
};

/// One predictor's summary from a streamed evaluation: everything the
/// analysis tools print, at O(traces) memory instead of O(epochs).
/// Bitwise-identical to summarize() of the in-memory engine's
/// predictor_result on the same records (the equivalence the stream tests
/// pin): same per-trace RMSREs, same conditioned aggregation, same optional
/// epoch-error list.
struct stream_predictor_summary {
    std::string name;  ///< canonical spec (predictor::name())
    std::vector<stream_trace_rmsre> traces;
    std::size_t traces_unscored{0};
    conditioned_rmsre conditioned{};
    /// Per-epoch relative errors in trace order; filled only when the
    /// predictor's index is listed in stream_eval_options::keep_epoch_errors
    /// (this is the one O(epochs) field — opt in per predictor).
    std::vector<double> epoch_errors;

    /// Per-trace RMSRE values, trace order (for CDFs over traces).
    [[nodiscard]] std::vector<double> trace_rmsres() const;
};

struct stream_eval_options {
    /// Engine knobs. `jobs` is ignored: the stream walk is one pass, serial
    /// by construction — and the engine's determinism contract makes the
    /// result identical to any parallel in-memory run anyway.
    engine_options engine{};
    /// Indices into the spec list whose per-epoch errors to keep.
    std::vector<std::size_t> keep_epoch_errors{};
};

/// One-pass streaming evaluation: pull records from `source`, buffer ONE
/// (path, trace) series at a time, and on each trace boundary run exactly
/// the engine's per-trace pipeline (build_view → optional LSO scan →
/// clone_empty → score_walk) for every spec, folding per-trace RMSREs and
/// the conditioned error sums incrementally. Peak memory is O(longest trace
/// + traces·specs), independent of the dataset size. Throws
/// core::predictor_spec_error on a bad spec before pulling any record.
[[nodiscard]] std::vector<stream_predictor_summary> evaluate_stream(
    const record_source& source, const std::vector<std::string>& specs,
    const stream_eval_options& opts = {});

/// Collapse an in-memory predictor_result to the streamed summary form —
/// the bridge that lets one report printer serve both evaluation paths.
[[nodiscard]] stream_predictor_summary summarize(const predictor_result& result,
                                                 bool keep_epoch_errors);

/// Per-path error distribution summary (Fig. 7).
struct path_error_summary {
    int path_id{0};
    double p10{0.0};
    double median{0.0};
    double p90{0.0};
    std::size_t samples{0};
};
[[nodiscard]] std::vector<path_error_summary> error_per_path(
    const predictor_result& result);

/// Per-trace (CoV, RMSRE) pairs for a predictor spec (Fig. 20). Paper
/// §6.1.3: both sides exclude detected outliers; the CoV is additionally
/// computed per stationary period and weighted.
struct cov_rmsre_point {
    int path_id{0};
    int trace_id{0};
    double cov{0.0};
    double rmsre{0.0};
};
[[nodiscard]] std::vector<cov_rmsre_point> cov_vs_rmsre(
    const testbed::dataset& data, const std::string& spec,
    core::predictor_config cfg = {});

}  // namespace tcppred::analysis
