#include "analysis/hb_analysis.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "analysis/stats.hpp"
#include "core/adaptive_selector.hpp"
#include "core/ar_predictor.hpp"

namespace tcppred::analysis {

namespace {

/// Throughput series with unreliable samples (aborted transfer / path
/// outage) masked to NaN — the gap marker of the gap-aware HB pipeline
/// (core/hb_evaluation.hpp): the predictor observes the gap, the sample is
/// never scored, and nothing downstream aborts.
std::vector<double> masked_series(const std::vector<const testbed::epoch_record*>& recs,
                                  bool small_window) {
    std::vector<double> series;
    series.reserve(recs.size());
    for (const testbed::epoch_record* r : recs) {
        const double v = small_window ? r->m.r_small_bps : r->m.r_large_bps;
        series.push_back(testbed::actual_faulty(r->m.fault_flags)
                             ? std::numeric_limits<double>::quiet_NaN()
                             : v);
    }
    return series;
}

}  // namespace

std::vector<hb_trace_eval> hb_rmsre_per_trace(const testbed::dataset& data,
                                              const core::hb_predictor& prototype,
                                              hb_options opts) {
    std::vector<hb_trace_eval> out;
    for (const auto& [key, recs] : data.traces()) {
        std::vector<double> series = masked_series(recs, opts.small_window);
        if (opts.downsample > 1) series = core::downsample(series, opts.downsample);
        if (series.size() < 3) continue;

        const core::hb_evaluation eval = core::evaluate_one_step(series, prototype,
                                                                 opts.eval);
        out.push_back(hb_trace_eval{key.first, key.second, eval.rmsre, eval.forecasts()});
    }
    return out;
}

std::unique_ptr<core::hb_predictor> make_predictor(const std::string& spec,
                                                   core::lso_config lso, double hw_beta) {
    if (spec == "NWS") return core::adaptive_selector::standard();

    const bool with_lso = spec.size() > 4 && spec.ends_with("-LSO");
    const std::string base = with_lso ? spec.substr(0, spec.size() - 4) : spec;

    const auto dash = base.rfind('-');
    if (dash == std::string::npos) {
        throw std::invalid_argument("make_predictor: bad spec '" + spec + "'");
    }
    const std::string param = base.substr(0, dash);
    const std::string kind = base.substr(dash + 1);

    std::unique_ptr<core::hb_predictor> inner;
    if (kind == "MA") {
        inner = std::make_unique<core::moving_average>(std::stoul(param));
    } else if (kind == "EWMA") {
        inner = std::make_unique<core::ewma>(std::stod(param));
    } else if (kind == "HW") {
        inner = std::make_unique<core::holt_winters>(std::stod(param), hw_beta);
    } else if (kind == "AR") {
        inner = std::make_unique<core::ar_predictor>(std::stoul(param));
    } else {
        throw std::invalid_argument("make_predictor: unknown kind '" + kind + "'");
    }
    if (with_lso) return std::make_unique<core::lso_predictor>(std::move(inner), lso);
    return inner;
}

std::vector<double> rmsre_of(const std::vector<hb_trace_eval>& evals) {
    std::vector<double> out;
    out.reserve(evals.size());
    for (const auto& e : evals) out.push_back(e.rmsre);
    return out;
}

std::vector<cov_rmsre_point> cov_vs_rmsre(const testbed::dataset& data,
                                          const core::hb_predictor& prototype,
                                          core::lso_config lso) {
    // Paper §6.1.3: both the CoV and the RMSRE exclude detected outliers;
    // the CoV is additionally computed per stationary period and weighted.
    hb_options opts;
    opts.eval.exclude_outliers = true;
    opts.eval.lso = lso;

    std::vector<cov_rmsre_point> out;
    for (const auto& [key, recs] : data.traces()) {
        const std::vector<double> series = masked_series(recs, false);
        if (series.size() < 3) continue;

        // The CoV side has no gap concept: compute it over the usable
        // samples only (identical to the full series when nothing faulted).
        std::vector<double> usable;
        usable.reserve(series.size());
        for (const double v : series) {
            if (!std::isnan(v)) usable.push_back(v);
        }
        if (usable.size() < 3) continue;

        const core::hb_evaluation eval =
            core::evaluate_one_step(series, prototype, opts.eval);
        out.push_back(cov_rmsre_point{key.first, key.second, weighted_cov(usable, lso),
                                      eval.rmsre});
    }
    return out;
}

}  // namespace tcppred::analysis
