// Statistics toolkit for the evaluation: empirical CDFs, quantiles,
// correlation, and the stationarity-weighted coefficient of variation the
// paper uses in §6.1.3.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/lso.hpp"

namespace tcppred::analysis {

/// Mean of a series (0 for empty input).
[[nodiscard]] double mean(std::span<const double> xs);
/// Population standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);
/// Median (copies and partially sorts).
[[nodiscard]] double median(std::span<const double> xs);
/// q-quantile, q in [0,1], linear interpolation between order statistics.
[[nodiscard]] double quantile(std::span<const double> xs, double q);
/// Pearson correlation coefficient; 0 when either side is degenerate.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);
/// Coefficient of variation: stddev / mean (0 for degenerate input).
[[nodiscard]] double cov(std::span<const double> xs);

/// Weighted CoV of a trace per §6.1.3: split the series into stationary
/// periods at detected level shifts, drop outliers, compute each period's
/// CoV, and average them weighted by period length.
[[nodiscard]] double weighted_cov(const std::vector<double>& series,
                                  core::lso_config lso = {});

/// Empirical CDF over a sample.
class ecdf {
public:
    explicit ecdf(std::vector<double> samples);

    /// F(x): fraction of samples <= x.
    [[nodiscard]] double at(double x) const;
    /// Inverse: smallest sample value v with F(v) >= q.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
    [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

    /// Evenly spaced (x, F(x)) points for printing a CDF curve.
    [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points) const;

private:
    std::vector<double> sorted_;
};

}  // namespace tcppred::analysis
