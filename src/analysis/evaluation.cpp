#include "analysis/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "analysis/stats.hpp"
#include "core/metrics.hpp"
#include "obs/counters.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace_writer.hpp"
#include "sim/thread_pool.hpp"

namespace tcppred::analysis {

record_view view_of_record(const testbed::epoch_record& rec,
                           const engine_options& opts) {
    const auto& m = rec.m;

    double loss_in = 0.0;
    double rtt_in = 0.0;
    if (opts.use_during_flow) {
        loss_in = m.ptilde;
        rtt_in = m.ttilde_s;
    } else {
        loss_in = opts.use_event_loss ? m.phat_events : m.phat;
        rtt_in = m.that_s;
    }

    // A failed a-priori measurement (fault flags or NaN fields) never
    // reaches a formula; FB-style predictors substitute the trace's last
    // good measurement instead (their staleness fallback).
    const bool meas_failed = testbed::apriori_faulty(m.fault_flags) ||
                             std::isnan(loss_in) || std::isnan(rtt_in) ||
                             std::isnan(m.avail_bw_bps);

    record_view rv;
    if (meas_failed) {
        rv.inputs = core::epoch_inputs::failed_measurement();
    } else if (rtt_in <= 0.0) {
        // A zero RTT means the epoch never produced a prior view: the epoch
        // carries no measurement at all (and is skipped without aging any
        // fallback), rather than counting as a failure.
        rv.inputs = core::epoch_inputs::absent();
    } else {
        rv.inputs = core::epoch_inputs::valid(core::path_measurement{
            core::probability{loss_in}, core::seconds{rtt_in},
            core::bits_per_second{m.avail_bw_bps}});
    }

    const double actual = opts.small_window ? m.r_small_bps : m.r_large_bps;
    rv.actual_bps = testbed::actual_faulty(m.fault_flags)
                        ? std::numeric_limits<double>::quiet_NaN()
                        : actual;
    return rv;
}

namespace {

const char* source_name(core::prediction_source s) {
    switch (s) {
        case core::prediction_source::history: return "history";
        case core::prediction_source::model_based: return "model_based";
        case core::prediction_source::avail_bw: return "avail_bw";
        case core::prediction_source::window_bound: return "window_bound";
        case core::prediction_source::blended: return "blended";
    }
    return "unknown";
}

/// One (path, trace) series prepared for the streaming walk: the walked
/// (downsampled) records, each epoch's a-priori measurement view, and the
/// masked actual throughputs (NaN = failed transfer measurement).
struct trace_view {
    int path_id{0};
    int trace_id{0};
    std::vector<const testbed::epoch_record*> recs;
    std::vector<core::epoch_inputs> inputs;
    std::vector<double> actuals;
};

trace_view build_view(std::pair<int, int> key,
                      const std::vector<const testbed::epoch_record*>& recs,
                      const engine_options& opts) {
    trace_view v;
    v.path_id = key.first;
    v.trace_id = key.second;
    for (std::size_t i = 0; i < recs.size(); i += opts.downsample) {
        v.recs.push_back(recs[i]);
    }
    v.inputs.reserve(v.recs.size());
    v.actuals.reserve(v.recs.size());

    if (!opts.smooth_inputs) {
        // The stateless path: one shared projection per record, the same
        // function online consumers (src/serve/) call per observation.
        for (const testbed::epoch_record* rec : v.recs) {
            const record_view rv = view_of_record(*rec, opts);
            v.inputs.push_back(rv.inputs);
            v.actuals.push_back(rv.actual_bps);
        }
        return v;
    }

    // Per-trace (p, T) history for input smoothing, in walked-epoch order.
    std::vector<double> p_hist, t_hist;
    for (const testbed::epoch_record* rec : v.recs) {
        const auto& m = rec->m;

        double loss_in = 0.0;
        double rtt_in = 0.0;
        if (opts.use_during_flow) {
            loss_in = m.ptilde;
            rtt_in = m.ttilde_s;
        } else {
            loss_in = opts.use_event_loss ? m.phat_events : m.phat;
            rtt_in = m.that_s;
        }

        // A failed a-priori measurement (fault flags or NaN fields) never
        // reaches a formula; FB-style predictors substitute the trace's
        // last good measurement instead (their staleness fallback).
        const bool meas_failed = testbed::apriori_faulty(m.fault_flags) ||
                                 std::isnan(loss_in) || std::isnan(rtt_in) ||
                                 std::isnan(m.avail_bw_bps);

        if (!meas_failed) {
            // One-step-ahead moving average over the previous epochs' good
            // measurements; the raw current measurement seeds the very
            // first epoch of a trace.
            if (!p_hist.empty()) {
                const std::size_t n = std::min(opts.smooth_window, p_hist.size());
                double ps = 0.0, ts = 0.0;
                for (std::size_t k = p_hist.size() - n; k < p_hist.size(); ++k) {
                    ps += p_hist[k];
                    ts += t_hist[k];
                }
                loss_in = ps / static_cast<double>(n);
                rtt_in = ts / static_cast<double>(n);
            }
            p_hist.push_back(opts.use_during_flow ? m.ptilde : m.phat);
            t_hist.push_back(opts.use_during_flow ? m.ttilde_s : m.that_s);
        }

        if (meas_failed) {
            v.inputs.push_back(core::epoch_inputs::failed_measurement());
        } else if (rtt_in <= 0.0) {
            // A zero RTT means the epoch never produced a prior view: the
            // epoch carries no measurement at all (and is skipped without
            // aging any fallback), rather than counting as a failure.
            v.inputs.push_back(core::epoch_inputs::absent());
        } else {
            v.inputs.push_back(core::epoch_inputs::valid(core::path_measurement{
                core::probability{loss_in}, core::seconds{rtt_in},
                core::bits_per_second{m.avail_bw_bps}}));
        }

        const double actual = opts.small_window ? m.r_small_bps : m.r_large_bps;
        v.actuals.push_back(testbed::actual_faulty(m.fault_flags)
                                ? std::numeric_limits<double>::quiet_NaN()
                                : actual);
    }
    return v;
}

/// The one scoring loop (see file comment of evaluation.hpp): per epoch,
/// predict, score if scorable, then reveal the outcome. An epoch is scored
/// unless it is within the warmup, the predictor produced no usable
/// forecast, the actual throughput is missing or non-positive (the transfer
/// never got going), or it was retrospectively excluded as an outlier.
void score_walk(const std::vector<core::epoch_inputs>& inputs,
                const std::vector<double>& actuals,
                const std::vector<const testbed::epoch_record*>* recs,
                core::predictor& pred, std::size_t warmup,
                const std::vector<bool>* excluded, std::vector<epoch_score>& out) {
    // Prediction-status catalogue (DESIGN.md §12): valid = usable on fresh
    // inputs, degraded = usable but from the staleness fallback, absent = no
    // usable forecast. All are functions of the data alone, so snapshots
    // match across job counts.
    static const obs::counter c_valid = obs::counter::get("engine.predictions_valid");
    static const obs::counter c_degraded =
        obs::counter::get("engine.predictions_degraded");
    static const obs::counter c_absent = obs::counter::get("engine.predictions_absent");
    static const obs::counter c_scored = obs::counter::get("engine.epochs_scored");
    static const obs::counter c_skipped = obs::counter::get("engine.epochs_skipped");

    for (std::size_t i = 0; i < actuals.size(); ++i) {
        const core::prediction p = pred.predict(inputs[i]);
        const double actual = actuals[i];
        if (!p.usable()) {
            c_absent.add();
        } else if (p.inputs_used.staleness > 0) {
            c_degraded.add();
        } else {
            c_valid.add();
        }
        const bool skip = i < warmup || !p.usable() || std::isnan(actual) ||
                          actual <= 0.0 || (excluded != nullptr && (*excluded)[i]);
        if (!skip) {
            const double error = core::relative_error(p.value_bps, actual);
            out.push_back(epoch_score{recs != nullptr ? (*recs)[i] : nullptr, i,
                                      p.value_bps, actual, error,
                                      p.inputs_used.source, p.inputs_used.staleness});
            c_scored.add();
            if (obs::trace_enabled() && recs != nullptr) {
                const testbed::epoch_record& rec = *(*recs)[i];
                obs::trace_emit(
                    obs::json_line{}
                        .str("ev", "predict")
                        .str("predictor", pred.name())
                        .num("path", static_cast<std::int64_t>(rec.path_id))
                        .num("trace", static_cast<std::int64_t>(rec.trace_id))
                        .num("epoch", static_cast<std::int64_t>(rec.epoch_index))
                        .num("predicted_bps", p.value_bps)
                        .num("actual_bps", actual)
                        .num("error", error)
                        .str("source", source_name(p.inputs_used.source))
                        .num("staleness",
                             static_cast<std::uint64_t>(p.inputs_used.staleness))
                        .num("fault_flags",
                             static_cast<std::uint64_t>(rec.m.fault_flags))
                        .done());
            }
        } else {
            c_skipped.add();
        }
        pred.observe_maybe(actual);
    }
}

double rmsre_of_epochs(const std::vector<epoch_score>& epochs) {
    std::vector<double> errors;
    errors.reserve(epochs.size());
    for (const auto& e : epochs) errors.push_back(e.error);
    return core::rmsre(errors);
}

}  // namespace

std::vector<double> predictor_result::trace_rmsres() const {
    std::vector<double> out;
    out.reserve(traces.size());
    for (const auto& t : traces) out.push_back(t.rmsre);
    return out;
}

std::vector<double> predictor_result::epoch_errors() const {
    std::vector<double> out;
    for (const auto& t : traces) {
        for (const auto& e : t.epochs) out.push_back(e.error);
    }
    return out;
}

std::vector<epoch_score> predictor_result::all_epochs() const {
    std::vector<epoch_score> out;
    for (const auto& t : traces) out.insert(out.end(), t.epochs.begin(), t.epochs.end());
    return out;
}

std::vector<predictor_result> evaluation_engine::run(
    const testbed::dataset& data, const std::vector<std::string>& specs) const {
    std::vector<std::unique_ptr<core::predictor>> owned;
    owned.reserve(specs.size());
    for (const auto& spec : specs) owned.push_back(core::make_predictor(spec, opts_.predictor));
    std::vector<const core::predictor*> prototypes;
    prototypes.reserve(owned.size());
    for (const auto& p : owned) prototypes.push_back(p.get());
    return run(data, prototypes);
}

std::vector<predictor_result> evaluation_engine::run(
    const testbed::dataset& data,
    const std::vector<const core::predictor*>& prototypes) const {
    if (opts_.downsample == 0) {
        throw std::invalid_argument("evaluation_engine: downsample must be >= 1");
    }

    const auto traces_map = data.traces();
    std::vector<std::pair<std::pair<int, int>,
                          const std::vector<const testbed::epoch_record*>*>>
        traces;
    traces.reserve(traces_map.size());
    for (const auto& [key, recs] : traces_map) traces.emplace_back(key, &recs);

    // Pre-sized result slots indexed by (predictor, trace) keep the output
    // independent of worker completion order (determinism contract).
    std::vector<std::vector<std::optional<trace_result>>> slots(
        prototypes.size(),
        std::vector<std::optional<trace_result>>(traces.size()));

    const unsigned jobs =
        opts_.jobs > 0 ? static_cast<unsigned>(opts_.jobs) : sim::jobs_from_env();
    sim::parallel_for(traces.size(), jobs, [&](std::size_t ti) {
        const obs::stage_timer t_trace("engine.trace");
        const trace_view view = build_view(traces[ti].first, *traces[ti].second, opts_);

        std::optional<std::vector<bool>> excluded;
        if (opts_.exclude_outliers) {
            excluded = core::lso_scan(view.actuals, opts_.predictor.lso).is_outlier;
        }

        for (std::size_t pj = 0; pj < prototypes.size(); ++pj) {
            if (view.actuals.size() < prototypes[pj]->min_trace_length()) continue;
            const auto pred = prototypes[pj]->clone_empty();

            trace_result tr;
            tr.path_id = view.path_id;
            tr.trace_id = view.trace_id;
            score_walk(view.inputs, view.actuals, &view.recs, *pred, opts_.warmup,
                       excluded ? &*excluded : nullptr, tr.epochs);
            if (tr.epochs.empty()) continue;  // nothing scorable on this trace
            tr.rmsre = rmsre_of_epochs(tr.epochs);
            slots[pj][ti] = std::move(tr);
        }
    });

    static const obs::counter c_traces_scored = obs::counter::get("engine.traces_scored");
    static const obs::counter c_traces_unscored =
        obs::counter::get("engine.traces_unscored");
    std::vector<predictor_result> out(prototypes.size());
    for (std::size_t pj = 0; pj < prototypes.size(); ++pj) {
        out[pj].name = prototypes[pj]->name();
        for (auto& slot : slots[pj]) {
            if (slot) out[pj].traces.push_back(std::move(*slot));
        }
        out[pj].traces_unscored = traces.size() - out[pj].traces.size();
        c_traces_scored.add(out[pj].traces.size());
        c_traces_unscored.add(out[pj].traces_unscored);
    }
    return out;
}

predictor_result evaluation_engine::run_one(const testbed::dataset& data,
                                            const std::string& spec) const {
    return run(data, std::vector<std::string>{spec}).front();
}

series_evaluation evaluate_series(const std::vector<double>& series,
                                  const core::predictor& prototype,
                                  series_options opts) {
    const std::vector<core::epoch_inputs> inputs(series.size(),
                                                 core::epoch_inputs::absent());
    std::optional<std::vector<bool>> excluded;
    if (opts.exclude_outliers) {
        excluded = core::lso_scan(series, opts.lso).is_outlier;
    }

    const auto pred = prototype.clone_empty();
    std::vector<epoch_score> epochs;
    score_walk(inputs, series, nullptr, *pred, opts.warmup,
               excluded ? &*excluded : nullptr, epochs);

    series_evaluation out;
    out.errors.reserve(epochs.size());
    out.indices.reserve(epochs.size());
    for (const auto& e : epochs) {
        out.errors.push_back(e.error);
        out.indices.push_back(e.index);
    }
    out.rmsre = core::rmsre(out.errors);
    return out;
}

std::vector<double> downsample(const std::vector<double>& series, std::size_t factor) {
    if (factor == 0) throw std::invalid_argument("downsample: factor must be >= 1");
    std::vector<double> out;
    out.reserve(series.size() / factor + 1);
    for (std::size_t i = 0; i < series.size(); i += factor) out.push_back(series[i]);
    return out;
}

conditioned_rmsre rmsre_conditioned(const predictor_result& result) {
    std::vector<double> clean, faulty, stale;
    for (const auto& t : result.traces) {
        for (const auto& e : t.epochs) {
            if (e.rec == nullptr || e.rec->m.fault_flags == testbed::fault_none) {
                clean.push_back(e.error);
            } else {
                faulty.push_back(e.error);
            }
            if (e.staleness > 0) stale.push_back(e.error);
        }
    }
    conditioned_rmsre out;
    out.rmsre_clean = core::rmsre(clean);
    out.n_clean = clean.size();
    out.rmsre_faulty = core::rmsre(faulty);
    out.n_faulty = faulty.size();
    out.rmsre_stale = core::rmsre(stale);
    out.n_stale = stale.size();
    return out;
}

std::vector<double> stream_predictor_summary::trace_rmsres() const {
    std::vector<double> out;
    out.reserve(traces.size());
    for (const auto& t : traces) out.push_back(t.rmsre);
    return out;
}

stream_predictor_summary summarize(const predictor_result& result,
                                   bool keep_epoch_errors) {
    stream_predictor_summary s;
    s.name = result.name;
    s.traces.reserve(result.traces.size());
    for (const auto& t : result.traces) {
        s.traces.push_back(
            stream_trace_rmsre{t.path_id, t.trace_id, t.rmsre, t.epochs.size()});
    }
    s.traces_unscored = result.traces_unscored;
    s.conditioned = rmsre_conditioned(result);
    if (keep_epoch_errors) s.epoch_errors = result.epoch_errors();
    return s;
}

std::vector<stream_predictor_summary> evaluate_stream(
    const record_source& source, const std::vector<std::string>& specs,
    const stream_eval_options& opts) {
    const engine_options& eopts = opts.engine;
    if (eopts.downsample == 0) {
        throw std::invalid_argument("evaluate_stream: downsample must be >= 1");
    }
    std::vector<std::unique_ptr<core::predictor>> owned;
    owned.reserve(specs.size());
    for (const auto& spec : specs) {
        owned.push_back(core::make_predictor(spec, eopts.predictor));
    }

    std::vector<stream_predictor_summary> out(specs.size());
    // Running conditioned-RMSRE sums, folded in the exact order
    // rmsre_conditioned encounters errors (traces, then epochs): since
    // core::rmsre is a left fold of e², finishing with sqrt(sum/n) is
    // bitwise identical to collecting the vectors.
    struct cond_accum {
        double clean_sq{0.0};
        std::size_t n_clean{0};
        double faulty_sq{0.0};
        std::size_t n_faulty{0};
        double stale_sq{0.0};
        std::size_t n_stale{0};
    };
    std::vector<cond_accum> cond(specs.size());
    std::vector<bool> keep(specs.size(), false);
    for (const std::size_t i : opts.keep_epoch_errors) {
        if (i < specs.size()) keep[i] = true;
    }
    for (std::size_t pj = 0; pj < specs.size(); ++pj) out[pj].name = owned[pj]->name();

    static const obs::counter c_traces_scored = obs::counter::get("engine.traces_scored");
    static const obs::counter c_traces_unscored =
        obs::counter::get("engine.traces_unscored");

    std::size_t n_traces_seen = 0;
    std::vector<testbed::epoch_record> trace_recs;  // ONE trace buffered at a time
    int cur_path = 0;
    int cur_trace = 0;

    const auto flush_trace = [&] {
        if (trace_recs.empty()) return;
        ++n_traces_seen;
        const obs::stage_timer t_trace("engine.trace");
        std::vector<const testbed::epoch_record*> recs;
        recs.reserve(trace_recs.size());
        for (const auto& r : trace_recs) recs.push_back(&r);
        const trace_view view = build_view({cur_path, cur_trace}, recs, eopts);

        std::optional<std::vector<bool>> excluded;
        if (eopts.exclude_outliers) {
            excluded = core::lso_scan(view.actuals, eopts.predictor.lso).is_outlier;
        }

        for (std::size_t pj = 0; pj < owned.size(); ++pj) {
            if (view.actuals.size() < owned[pj]->min_trace_length()) continue;
            const auto pred = owned[pj]->clone_empty();
            std::vector<epoch_score> epochs;
            score_walk(view.inputs, view.actuals, &view.recs, *pred, eopts.warmup,
                       excluded ? &*excluded : nullptr, epochs);
            if (epochs.empty()) continue;  // nothing scorable on this trace
            out[pj].traces.push_back(stream_trace_rmsre{
                cur_path, cur_trace, rmsre_of_epochs(epochs), epochs.size()});
            for (const auto& e : epochs) {
                if (e.rec == nullptr || e.rec->m.fault_flags == testbed::fault_none) {
                    cond[pj].clean_sq += e.error * e.error;
                    ++cond[pj].n_clean;
                } else {
                    cond[pj].faulty_sq += e.error * e.error;
                    ++cond[pj].n_faulty;
                }
                if (e.staleness > 0) {
                    cond[pj].stale_sq += e.error * e.error;
                    ++cond[pj].n_stale;
                }
                if (keep[pj]) out[pj].epoch_errors.push_back(e.error);
            }
        }
        trace_recs.clear();
    };

    testbed::epoch_record rec;
    while (source(rec)) {
        if (!trace_recs.empty() &&
            (rec.path_id != cur_path || rec.trace_id != cur_trace)) {
            flush_trace();
        }
        cur_path = rec.path_id;
        cur_trace = rec.trace_id;
        trace_recs.push_back(std::move(rec));
        rec = testbed::epoch_record{};
    }
    flush_trace();

    const auto finish = [](double sq, std::size_t n) {
        return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : std::sqrt(sq / static_cast<double>(n));
    };
    for (std::size_t pj = 0; pj < specs.size(); ++pj) {
        out[pj].traces_unscored = n_traces_seen - out[pj].traces.size();
        out[pj].conditioned.rmsre_clean = finish(cond[pj].clean_sq, cond[pj].n_clean);
        out[pj].conditioned.n_clean = cond[pj].n_clean;
        out[pj].conditioned.rmsre_faulty = finish(cond[pj].faulty_sq, cond[pj].n_faulty);
        out[pj].conditioned.n_faulty = cond[pj].n_faulty;
        out[pj].conditioned.rmsre_stale = finish(cond[pj].stale_sq, cond[pj].n_stale);
        out[pj].conditioned.n_stale = cond[pj].n_stale;
        c_traces_scored.add(out[pj].traces.size());
        c_traces_unscored.add(out[pj].traces_unscored);
    }
    return out;
}

std::vector<path_error_summary> error_per_path(const predictor_result& result) {
    std::map<int, std::vector<double>> grouped;
    for (const auto& t : result.traces) {
        for (const auto& e : t.epochs) grouped[t.path_id].push_back(e.error);
    }
    std::vector<path_error_summary> out;
    out.reserve(grouped.size());
    for (const auto& [path, errors] : grouped) {
        out.push_back(path_error_summary{path, quantile(errors, 0.10),
                                         quantile(errors, 0.50),
                                         quantile(errors, 0.90), errors.size()});
    }
    return out;
}

std::vector<cov_rmsre_point> cov_vs_rmsre(const testbed::dataset& data,
                                          const std::string& spec,
                                          core::predictor_config cfg) {
    const auto prototype = core::make_predictor(spec, cfg);

    std::vector<cov_rmsre_point> out;
    for (const auto& [key, recs] : data.traces()) {
        std::vector<double> series;
        series.reserve(recs.size());
        for (const testbed::epoch_record* r : recs) {
            series.push_back(testbed::actual_faulty(r->m.fault_flags)
                                 ? std::numeric_limits<double>::quiet_NaN()
                                 : r->m.r_large_bps);
        }
        if (series.size() < 3) continue;

        // The CoV side has no gap concept: compute it over the usable
        // samples only (identical to the full series when nothing faulted).
        std::vector<double> usable;
        usable.reserve(series.size());
        for (const double v : series) {
            if (!std::isnan(v)) usable.push_back(v);
        }
        if (usable.size() < 3) continue;

        series_options so;
        so.exclude_outliers = true;
        so.lso = cfg.lso;
        const series_evaluation eval = evaluate_series(series, *prototype, so);
        // A trace where nothing was forecastable has no RMSRE (NaN since the
        // empty-series fix) — it used to land here as a bogus 0.0 point.
        if (eval.forecasts() == 0) continue;
        out.push_back(cov_rmsre_point{key.first, key.second,
                                      weighted_cov(usable, cfg.lso), eval.rmsre});
    }
    return out;
}

}  // namespace tcppred::analysis
