// Applies HB predictors across all traces of a dataset: per-trace RMSREs
// (Figs. 15-19, 21-23) and the CoV relation (Fig. 20).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/hb_evaluation.hpp"
#include "core/hb_predictors.hpp"
#include "core/lso.hpp"
#include "testbed/dataset.hpp"

namespace tcppred::analysis {

/// RMSRE of one predictor on one trace.
struct hb_trace_eval {
    int path_id{0};
    int trace_id{0};
    double rmsre{0.0};
    std::size_t forecasts{0};
};

struct hb_options {
    core::hb_evaluation_options eval{};
    std::size_t downsample{1};     ///< keep every k-th epoch (§6.1.6)
    bool small_window{false};      ///< evaluate on the W=20KB series (Fig. 22)
};

/// Evaluate `prototype` one-step-ahead over every (path, trace) series.
[[nodiscard]] std::vector<hb_trace_eval> hb_rmsre_per_trace(
    const testbed::dataset& data, const core::hb_predictor& prototype,
    hb_options opts = {});

/// Convenience predictor factory used by benches and examples: builds the
/// named predictors of the paper plus the extensions. `spec` examples:
/// "1-MA", "10-MA", "0.8-EWMA", "0.8-HW", "10-MA-LSO", "0.8-HW-LSO",
/// "4-AR", "4-AR-LSO", and "NWS" (the adaptive selector).
[[nodiscard]] std::unique_ptr<core::hb_predictor> make_predictor(
    const std::string& spec, core::lso_config lso = {}, double hw_beta = 0.2);

/// Extract the RMSRE values (for CDF curves).
[[nodiscard]] std::vector<double> rmsre_of(const std::vector<hb_trace_eval>& evals);

/// Per-trace (CoV, RMSRE) pairs with a given predictor (Fig. 20).
struct cov_rmsre_point {
    int path_id{0};
    int trace_id{0};
    double cov{0.0};
    double rmsre{0.0};
};
[[nodiscard]] std::vector<cov_rmsre_point> cov_vs_rmsre(
    const testbed::dataset& data, const core::hb_predictor& prototype,
    core::lso_config lso = {});

}  // namespace tcppred::analysis
