// NWS-style adaptive predictor selection (Network Weather Service, Swany &
// Wolski — the operational HB system cited in §2). Runs a set of candidate
// forecasters in parallel, tracks each one's recent one-step error on the
// *same* series, and forecasts with whichever candidate currently has the
// lowest exponentially-discounted mean squared relative error. Supports the
// paper's finding that no single predictor dominates on every path by
// letting the data pick per path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/hb_predictors.hpp"

namespace tcppred::core {

class adaptive_selector final : public hb_predictor {
public:
    /// @param candidates      forecasters to race (at least one)
    /// @param score_discount  exponential discount of past errors in (0,1];
    ///                        1 = plain cumulative MSE, smaller = adaptive
    explicit adaptive_selector(std::vector<std::unique_ptr<hb_predictor>> candidates,
                               double score_discount = 0.9);

    void observe(double x) override;
    [[nodiscard]] double predict() const override;
    void reset() override;
    [[nodiscard]] std::unique_ptr<hb_predictor> clone_empty() const override;
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t history_size() const override { return seen_; }

    /// Index and name of the currently winning candidate.
    [[nodiscard]] std::size_t best_index() const;
    [[nodiscard]] std::string best_name() const;

    /// The paper-standard candidate set: MA{5,10}, EWMA 0.5, HW 0.8 — all
    /// LSO-wrapped — raced with discount 0.9.
    [[nodiscard]] static std::unique_ptr<adaptive_selector> standard();

private:
    struct entry {
        std::unique_ptr<hb_predictor> predictor;
        double score{0.0};   ///< discounted sum of squared relative errors
        double weight{0.0};  ///< discounted number of scored forecasts
    };

    std::vector<entry> candidates_;
    double discount_;
    std::size_t seen_{0};
};

}  // namespace tcppred::core
