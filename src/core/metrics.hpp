// Prediction-error metrics of the paper: the relative error E (Eq. 4) and
// the Root Mean Square Relative Error over a series (Eq. 5).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace tcppred::core {

/// Relative prediction error (Eq. 4):
///   E = (R̂ − R) / min(R̂, R).
/// Symmetric in over/under-estimation: predicting w·R or R/w both yield
/// |E| = w − 1. Both arguments must be non-negative; a tiny floor guards
/// degenerate zero measurements.
[[nodiscard]] inline double relative_error(double predicted, double actual) {
    TCPPRED_EXPECTS(predicted >= 0.0);
    TCPPRED_EXPECTS(actual >= 0.0);
    constexpr double floor = 1e-12;
    const double denom = std::max(std::min(predicted, actual), floor);
    return (predicted - actual) / denom;
}

/// Relative prediction error of a throughput forecast (typed overload).
[[nodiscard]] inline double relative_error(bits_per_second predicted,
                                           bits_per_second actual) {
    return relative_error(predicted.value(), actual.value());
}

/// Root Mean Square Relative Error (Eq. 5) over a series of relative errors.
/// An empty series has zero error by convention (no forecasts were scored).
[[nodiscard]] inline double rmsre(std::span<const double> errors) noexcept {
    if (errors.empty()) return 0.0;
    double sum = 0.0;
    for (const double e : errors) sum += e * e;
    return std::sqrt(sum / static_cast<double>(errors.size()));
}

}  // namespace tcppred::core
