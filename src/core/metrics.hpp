// Prediction-error metrics of the paper: the relative error E (Eq. 4) and
// the Root Mean Square Relative Error over a series (Eq. 5).
#pragma once

#include <cmath>
#include <span>

namespace tcppred::core {

/// Relative prediction error (Eq. 4):
///   E = (R̂ − R) / min(R̂, R).
/// Symmetric in over/under-estimation: predicting w·R or R/w both yield
/// |E| = w − 1. Both arguments must be positive; a tiny floor guards
/// degenerate zero measurements.
[[nodiscard]] inline double relative_error(double predicted, double actual) noexcept {
    constexpr double floor = 1e-12;
    const double denom = std::max(std::min(predicted, actual), floor);
    return (predicted - actual) / denom;
}

/// Root Mean Square Relative Error (Eq. 5) over a series of relative errors.
[[nodiscard]] inline double rmsre(std::span<const double> errors) noexcept {
    if (errors.empty()) return 0.0;
    double sum = 0.0;
    for (const double e : errors) sum += e * e;
    return std::sqrt(sum / static_cast<double>(errors.size()));
}

}  // namespace tcppred::core
