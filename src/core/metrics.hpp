// Prediction-error metrics of the paper: the relative error E (Eq. 4) and
// the Root Mean Square Relative Error over a series (Eq. 5).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "core/contracts.hpp"
#include "core/units.hpp"

namespace tcppred::core {

/// Smallest denominator relative_error will divide by, in bits per second.
/// The quantities E compares are transfer throughputs — even the paper's
/// DSL paths sit at hundreds of kbit/s — so anything below 1 kbit/s is a
/// transfer that effectively never ran. Clamping the denominator here keeps
/// a true-zero (or epsilon) measurement from turning one epoch into an
/// E ≈ R/1e-12 ≈ 1e18 outlier that single-handedly dominates a RMSRE
/// (Eq. 5 squares E). The old floor of 1e-12 was sized for unit-scale
/// values and was meaningless at bps scale; see metrics_test for the pinned
/// edge-case behaviour.
inline constexpr double k_min_error_denominator_bps = 1e3;

/// Relative prediction error (Eq. 4):
///   E = (R̂ − R) / min(R̂, R).
/// Symmetric in over/under-estimation: predicting w·R or R/w both yield
/// |E| = w − 1. Both arguments must be non-negative; the denominator is
/// clamped to k_min_error_denominator_bps so degenerate zero-throughput
/// inputs yield large-but-bounded errors (R̂/1kbps) instead of ~1e18.
[[nodiscard]] inline double relative_error(double predicted, double actual) {
    TCPPRED_EXPECTS(predicted >= 0.0);
    TCPPRED_EXPECTS(actual >= 0.0);
    const double denom =
        std::max(std::min(predicted, actual), k_min_error_denominator_bps);
    return (predicted - actual) / denom;
}

/// Relative prediction error of a throughput forecast (typed overload).
[[nodiscard]] inline double relative_error(bits_per_second predicted,
                                           bits_per_second actual) {
    return relative_error(predicted.value(), actual.value());
}

/// Root Mean Square Relative Error (Eq. 5) over a series of relative errors.
/// An empty series has NO error, not zero error: zero would score an
/// all-faulty or all-warmup trace as a perfect forecast. Returns NaN so the
/// absence of evidence propagates visibly; consumers that tabulate RMSREs
/// render it as "n/a" (evaluation_engine drops unscored traces from its
/// per-trace output and counts them instead).
[[nodiscard]] inline double rmsre(std::span<const double> errors) noexcept {
    if (errors.empty()) return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (const double e : errors) sum += e * e;
    return std::sqrt(sum / static_cast<double>(errors.size()));
}

}  // namespace tcppred::core
