// One-step-ahead evaluation of HB predictors over a throughput trace:
// for each sample, forecast it from the preceding history, then reveal it.
// Produces the per-sample relative errors and the trace RMSRE (Eq. 5).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/hb_predictors.hpp"
#include "core/lso.hpp"

namespace tcppred::core {

/// Result of evaluating a predictor over one trace.
struct hb_evaluation {
    std::vector<double> errors;        ///< relative error of each forecast made
    std::vector<std::size_t> indices;  ///< series index each error refers to
    double rmsre{0.0};

    /// Number of forecasts that were actually made (history permitting).
    [[nodiscard]] std::size_t forecasts() const noexcept { return errors.size(); }
};

struct hb_evaluation_options {
    /// Skip forecasting the first `warmup` samples even if the predictor
    /// could forecast earlier (they only seed the history).
    std::size_t warmup{1};
    /// Retrospectively exclude samples flagged as outliers by an LSO scan
    /// from the error statistics (used by the CoV analysis, §6.1.3).
    bool exclude_outliers{false};
    lso_config lso{};  ///< parameters for the exclusion scan
};

/// Run `prototype` (cloned empty) over `series` one step ahead.
[[nodiscard]] hb_evaluation evaluate_one_step(const std::vector<double>& series,
                                              const hb_predictor& prototype,
                                              hb_evaluation_options opts = {});

/// Keep every k-th sample of a series (down-sampling to a longer transfer
/// period, §6.1.6).
[[nodiscard]] std::vector<double> downsample(const std::vector<double>& series,
                                             std::size_t factor);

}  // namespace tcppred::core
