#include "core/predictor.hpp"

#include <utility>

namespace tcppred::core {

namespace {

fb_formula to_fb_formula(formula_kind kind) {
    switch (kind) {
        case formula_kind::square_root: return fb_formula::square_root;
        case formula_kind::pftk_full: return fb_formula::pftk_full;
        // min_wa forces p = 0, so Eq. 3 always takes the lossless branch and
        // the lossy-branch formula choice is irrelevant.
        case formula_kind::pftk:
        case formula_kind::min_wa: return fb_formula::pftk;
    }
    return fb_formula::pftk;
}

prediction_source source_of(fb_branch branch) {
    switch (branch) {
        case fb_branch::model_based: return prediction_source::model_based;
        case fb_branch::avail_bw: return prediction_source::avail_bw;
        case fb_branch::window_bound: return prediction_source::window_bound;
    }
    return prediction_source::model_based;
}

/// The measurement view Eq. 3 actually consumes for this formula kind:
/// min_wa discards the loss estimate so the lossless min(W/T̂, Â) branch is
/// evaluated unconditionally.
std::optional<path_measurement> formula_view(formula_kind kind,
                                             const epoch_inputs& in) {
    std::optional<path_measurement> meas = in.measurement;
    if (kind == formula_kind::min_wa && meas) meas->loss_rate = probability{0.0};
    return meas;
}

}  // namespace

// ---- history_predictor

history_predictor::history_predictor(std::unique_ptr<hb_predictor> inner)
    : inner_(std::move(inner)) {}

prediction history_predictor::predict(const epoch_inputs& /*in*/) {
    prediction p;
    p.inputs_used.source = prediction_source::history;
    p.inputs_used.history_samples = inner_->history_size();
    const double forecast = inner_->predict();
    if (std::isnan(forecast)) return p;  // status stays no_history
    p.value_bps = forecast;
    p.status = prediction_status::ok;
    return p;
}

void history_predictor::observe(double actual_bps) { inner_->observe(actual_bps); }
void history_predictor::observe_gap() { inner_->observe_gap(); }
void history_predictor::reset() { inner_->reset(); }

std::unique_ptr<predictor> history_predictor::clone_empty() const {
    return std::make_unique<history_predictor>(inner_->clone_empty());
}

std::string history_predictor::name() const { return inner_->name(); }

// ---- formula_predictor

formula_predictor::formula_predictor(formula_kind kind, tcp_flow_params flow,
                                     degraded_fb_config degraded)
    : kind_(kind),
      flow_(flow),
      degraded_cfg_(degraded),
      degraded_(flow, to_fb_formula(kind), degraded) {}

prediction formula_predictor::predict(const epoch_inputs& in) {
    prediction p;
    p.status = prediction_status::unavailable;
    // An absent epoch (no measurement, not failed either) carries no
    // a-priori view: skip without aging the staleness fallback, so a later
    // failed epoch can still reuse the last good measurement.
    if (!in.measurement && !in.failed) return p;

    const auto out = degraded_.predict(formula_view(kind_, in));
    if (!out) return p;  // nothing usable within the staleness bound
    p.value_bps = out->pred.throughput.value();
    p.status = prediction_status::ok;
    p.inputs_used.source = source_of(out->pred.branch);
    p.inputs_used.staleness = out->staleness;
    return p;
}

void formula_predictor::reset() {
    degraded_ = degraded_fb_predictor(flow_, to_fb_formula(kind_), degraded_cfg_);
}

std::unique_ptr<predictor> formula_predictor::clone_empty() const {
    return std::make_unique<formula_predictor>(kind_, flow_, degraded_cfg_);
}

std::string formula_predictor::name() const {
    switch (kind_) {
        case formula_kind::square_root: return "fb:sqrt";
        case formula_kind::pftk: return "fb:pftk";
        case formula_kind::pftk_full: return "fb:pftk-full";
        case formula_kind::min_wa: return "fb:minwa";
    }
    return "fb";
}

// ---- blended_predictor

blended_predictor::blended_predictor(std::unique_ptr<hb_predictor> history,
                                     double fb_weight_samples, formula_kind kind,
                                     tcp_flow_params flow, degraded_fb_config degraded)
    : fb_weight_samples_(fb_weight_samples),
      kind_(kind),
      flow_(flow),
      degraded_cfg_(degraded),
      degraded_(flow, to_fb_formula(kind), degraded),
      blend_(std::move(history), fb_weight_samples) {}

prediction blended_predictor::predict(const epoch_inputs& in) {
    prediction p;
    p.inputs_used.source = prediction_source::blended;
    p.inputs_used.history_samples = blend_.history().history_size();

    if (in.measurement || in.failed) {
        const auto fb = degraded_.predict(formula_view(kind_, in));
        blend_.set_formula_prediction(fb ? fb->pred.throughput.value()
                                         : std::numeric_limits<double>::quiet_NaN());
        if (fb) p.inputs_used.staleness = fb->staleness;
    } else {
        // No measurement side this epoch (synthetic series): blend from
        // history alone rather than an FB estimate of some other epoch.
        blend_.set_formula_prediction(std::numeric_limits<double>::quiet_NaN());
    }

    const double forecast = blend_.predict();
    if (std::isnan(forecast)) return p;  // no history AND no formula input
    p.value_bps = forecast;
    p.status = prediction_status::ok;
    return p;
}

void blended_predictor::observe(double actual_bps) { blend_.observe(actual_bps); }

void blended_predictor::observe_gap() {
    ++gaps_;
    blend_.observe_gap();
}

void blended_predictor::reset() {
    blend_.reset();
    blend_.set_formula_prediction(std::numeric_limits<double>::quiet_NaN());
    degraded_ = degraded_fb_predictor(flow_, to_fb_formula(kind_), degraded_cfg_);
}

std::unique_ptr<predictor> blended_predictor::clone_empty() const {
    return std::make_unique<blended_predictor>(blend_.history().clone_empty(),
                                               fb_weight_samples_, kind_, flow_,
                                               degraded_cfg_);
}

std::string blended_predictor::name() const {
    return "hybrid:" + blend_.history().name();
}

}  // namespace tcppred::core
